// Tests for the xpdnn command-line driver (src/cli).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "cli/commands.hpp"
#include "measure/binary.hpp"
#include "measure/io.hpp"
#include "noise/injector.hpp"
#include "pmnf/serialize.hpp"
#include "xpcore/rng.hpp"

namespace {

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult run_cli(std::vector<std::string> argv_strings) {
    argv_strings.insert(argv_strings.begin(), "xpdnn");
    std::vector<const char*> argv;
    for (const auto& s : argv_strings) argv.push_back(s.c_str());
    std::ostringstream out, err;
    const int code = cli::run(static_cast<int>(argv.size()), argv.data(), out, err);
    return {code, out.str(), err.str()};
}

/// Writes a measurement file of f(p) = 2 + 3p with mild noise. The path is
/// per-process: ctest runs each discovered test in its own process, possibly
/// in parallel, and a shared fixed name lets one test read another's
/// half-written file.
std::string write_linear_measurements() {
    const std::string path = ::testing::TempDir() + "/xpdnn_cli_linear_" +
                             std::to_string(::getpid()) + ".txt";
    xpcore::Rng rng(1);
    noise::Injector injector(0.05, rng);
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        set.add({p}, injector.repetitions(2.0 + 3.0 * p, 5));
    }
    measure::save_text_file(set, path);
    return path;
}

TEST(Cli, NoArgumentsPrintsUsage) {
    const auto result = run_cli({});
    EXPECT_EQ(result.code, 1);
    EXPECT_NE(result.err.find("usage:"), std::string::npos);
}

TEST(Cli, HelpPrintsUsageToStdout) {
    const auto result = run_cli({"help"});
    EXPECT_EQ(result.code, 0);
    EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
    const auto result = run_cli({"frobnicate"});
    EXPECT_EQ(result.code, 1);
    EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, ModelRegressionRecoversLinear) {
    const auto result = run_cli({"model", write_linear_measurements(), "--modeler=regression"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("model:"), std::string::npos);
    EXPECT_NE(result.out.find("* p"), std::string::npos);  // linear term present
    EXPECT_NE(result.out.find("estimated noise"), std::string::npos);
}

TEST(Cli, ModelMissingFileFails) {
    const auto result = run_cli({"model"});
    EXPECT_EQ(result.code, 1);
}

TEST(Cli, ModelNonexistentFileFailsGracefully) {
    const auto result = run_cli({"model", "/nonexistent.txt", "--modeler=regression"});
    EXPECT_EQ(result.code, 2);
    EXPECT_FALSE(result.err.empty());
}

TEST(Cli, ModelUnknownModelerFails) {
    const auto result = run_cli({"model", write_linear_measurements(), "--modeler=psychic"});
    EXPECT_EQ(result.code, 1);
}

TEST(Cli, ModelJsonOutputIsLoadable) {
    const auto result =
        run_cli({"model", write_linear_measurements(), "--modeler=regression", "--json"});
    ASSERT_EQ(result.code, 0) << result.err;
    const auto model = pmnf::from_json(result.out.substr(0, result.out.find('\n')));
    EXPECT_NEAR(model.evaluate({{128.0}}), 2.0 + 3.0 * 128.0, 40.0);
}

TEST(Cli, ModelAlternativesPrintsRunnersUp) {
    const auto result = run_cli(
        {"model", write_linear_measurements(), "--modeler=regression", "--alternatives=2"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("alternative:"), std::string::npos);
}

TEST(Cli, ModelEvalPointPrintsPrediction) {
    const auto result = run_cli({"model", write_linear_measurements(), "--modeler=regression",
                                 "--eval=128"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("prediction at (128)"), std::string::npos);
}

TEST(Cli, ModelEvalArityMismatchFails) {
    const auto result = run_cli({"model", write_linear_measurements(), "--modeler=regression",
                                 "--eval=128,256"});
    EXPECT_EQ(result.code, 1);
}

TEST(Cli, ModelSimplifyOptionAccepted) {
    const auto result = run_cli(
        {"model", write_linear_measurements(), "--modeler=regression", "--simplify"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("model:"), std::string::npos);
}

TEST(Cli, ModelAggregationOptionAccepted) {
    for (const char* agg : {"median", "mean", "minimum"}) {
        const auto result = run_cli({"model", write_linear_measurements(),
                                     "--modeler=regression",
                                     std::string("--aggregation=") + agg});
        EXPECT_EQ(result.code, 0) << agg << ": " << result.err;
    }
}

TEST(Cli, ModelBadAggregationFails) {
    const auto result = run_cli(
        {"model", write_linear_measurements(), "--modeler=regression", "--aggregation=mode"});
    EXPECT_EQ(result.code, 2);
}

TEST(Cli, NoiseReportsLevels) {
    const auto result = run_cli({"noise", write_linear_measurements()});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("noise estimate:"), std::string::npos);
    EXPECT_NE(result.out.find("per-point noise:"), std::string::npos);
}

TEST(Cli, PredictEvaluatesStoredModel) {
    const std::string path = ::testing::TempDir() + "/xpdnn_cli_model.json";
    pmnf::CompoundTerm term{3.0, {{0, {pmnf::Rational(1), 0}}}};
    std::ofstream(path) << pmnf::to_json(pmnf::Model(2.0, {term}));
    const auto result = run_cli({"predict", path, "10"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NEAR(std::stod(result.out), 32.0, 1e-9);
}

TEST(Cli, PredictRejectsTrailingGarbageInCoordinates) {
    // Regression: coordinates used to go through std::stod without a
    // consumed-length check, so "1.5abc" silently evaluated at 1.5.
    const std::string path = ::testing::TempDir() + "/xpdnn_cli_model_garbage.json";
    pmnf::CompoundTerm term{3.0, {{0, {pmnf::Rational(1), 0}}}};
    std::ofstream(path) << pmnf::to_json(pmnf::Model(2.0, {term}));
    for (const char* bad : {"1.5abc", "abc", "", "nan", "inf", "2,5"}) {
        const auto result = run_cli({"predict", path, bad});
        EXPECT_EQ(result.code, 2) << "accepted coordinate '" << bad << "'";
        EXPECT_NE(result.err.find("malformed coordinate"), std::string::npos) << result.err;
    }
    const auto good = run_cli({"predict", path, "10"});
    ASSERT_EQ(good.code, 0) << good.err;
}

TEST(Cli, ModelEvalRejectsTrailingGarbage) {
    const auto result = run_cli(
        {"model", write_linear_measurements(), "--modeler=regression", "--eval=8,16x"});
    EXPECT_EQ(result.code, 2);
    EXPECT_NE(result.err.find("malformed coordinate"), std::string::npos) << result.err;
}

TEST(Cli, PredictMissingArgsFails) {
    EXPECT_EQ(run_cli({"predict"}).code, 1);
    EXPECT_EQ(run_cli({"predict", "model.json"}).code, 1);
}

TEST(Cli, PredictMissingFileFails) {
    const auto result = run_cli({"predict", "/nonexistent.json", "1"});
    EXPECT_EQ(result.code, 2);
}

TEST(Cli, SimulateWritesLoadableCampaign) {
    const std::string path = ::testing::TempDir() + "/xpdnn_cli_sim.txt";
    const auto result = run_cli({"simulate", "relearn", "--out=" + path, "--seed=5"});
    ASSERT_EQ(result.code, 0) << result.err;
    const auto set = measure::load_text_file(path);
    EXPECT_EQ(set.size(), 9u);  // RELeARN's two overlapping lines
    EXPECT_EQ(set.parameter_count(), 2u);
}

TEST(Cli, SimulateToStdout) {
    const auto result = run_cli({"simulate", "relearn"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("params: p n"), std::string::npos);
}

TEST(Cli, SimulateSelectsKernel) {
    const auto result = run_cli({"simulate", "kripke", "LTimes"});
    EXPECT_EQ(result.code, 0) << result.err;
}

TEST(Cli, SimulateUnknownAppOrKernelFails) {
    EXPECT_EQ(run_cli({"simulate", "doom"}).code, 1);
    const auto result = run_cli({"simulate", "kripke", "NoSuchKernel"});
    EXPECT_EQ(result.code, 1);
    EXPECT_NE(result.err.find("SweepSolver"), std::string::npos);  // lists kernels
}

TEST(Cli, SimulateDeterministicWithSeed) {
    const auto a = run_cli({"simulate", "fastest", "--seed=9"});
    const auto b = run_cli({"simulate", "fastest", "--seed=9"});
    EXPECT_EQ(a.out, b.out);
}

TEST(Cli, SimulateAllKernelsEmitsArchive) {
    const auto result = run_cli({"simulate", "relearn", "--all-kernels"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("kernel: connectivity_update metric: time"), std::string::npos);
    EXPECT_NE(result.out.find("kernel: gather_neurons metric: time"), std::string::npos);
}

TEST(Cli, ModelAllModelsArchiveWithBatchAdaptation) {
    const std::string dir = ::testing::TempDir() + "/xpdnn_cli_modelall";
    std::filesystem::create_directories(dir);
    ::setenv("XPDNN_CACHE_DIR", dir.c_str(), 1);
    const std::string path = dir + "/archive.txt";
    ASSERT_EQ(run_cli({"simulate", "relearn", "--all-kernels", "--out=" + path}).code, 0);

    const auto result = run_cli({"model-all", path, "--net=tiny"});
    ::unsetenv("XPDNN_CACHE_DIR");
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("connectivity_update/time"), std::string::npos);
    EXPECT_NE(result.out.find("domain adaptation(s)"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Cli, ModelAllMissingFileFails) {
    EXPECT_EQ(run_cli({"model-all"}).code, 1);
    EXPECT_EQ(run_cli({"model-all", "/nonexistent.txt"}).code, 2);
}

TEST(Cli, ModelersListsRegisteredNames) {
    const auto result = run_cli({"modelers"});
    ASSERT_EQ(result.code, 0) << result.err;
    for (const char* name : {"regression", "dnn", "ensemble", "adaptive", "batch", "noise"}) {
        EXPECT_NE(result.out.find(name), std::string::npos) << name;
    }
    EXPECT_NE(result.out.find("diagnostic"), std::string::npos);  // noise's kind
}

TEST(Cli, ModelReportJsonEmitsSchemaDocument) {
    const auto result =
        run_cli({"model", write_linear_measurements(), "--modeler=regression", "--report=json"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_EQ(result.out.rfind("{\"schema\": \"xpdnn.report\"", 0), 0u);
}

/// Writes a multi-kernel text archive (RELeARN, all kernels) under a fresh
/// per-process scratch dir and returns {dir, archive_path}.
std::pair<std::string, std::string> write_relearn_archive_batch() {
    const std::string dir = ::testing::TempDir() + "/xpdnn_cli_ingest_" +
                            std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    const std::string batch = dir + "/batch.txt";
    EXPECT_EQ(run_cli({"simulate", "relearn", "--all-kernels", "--out=" + batch,
                       "--seed=4"})
                  .code,
              0);
    return {dir, batch};
}

TEST(Cli, IngestArchiveBatchAppendsEveryEntry) {
    const auto [dir, batch] = write_relearn_archive_batch();
    const std::string arch = dir + "/live_all.arch";

    const auto created = run_cli({"ingest", arch, batch});
    ASSERT_EQ(created.code, 0) << created.err;
    EXPECT_NE(created.out.find("created"), std::string::npos) << created.out;

    const auto appended = run_cli({"ingest", arch, batch});
    ASSERT_EQ(appended.code, 0) << appended.err;
    EXPECT_NE(appended.out.find("appended"), std::string::npos) << appended.out;

    const auto live = measure::load_binary_archive_file(arch);
    const auto source = measure::load_archive_file_any(batch);
    ASSERT_EQ(live.size(), source.size());
    for (const auto& entry : source.entries()) {
        const auto* got = live.find(entry.kernel, entry.metric);
        ASSERT_NE(got, nullptr) << entry.kernel << "/" << entry.metric;
        EXPECT_EQ(got->experiments.size(), 2 * entry.experiments.size());
    }
    std::filesystem::remove_all(dir);
}

TEST(Cli, IngestArchiveBatchSelectorPicksOneEntry) {
    const auto [dir, batch] = write_relearn_archive_batch();
    const std::string arch = dir + "/live_one.arch";

    const auto result = run_cli({"ingest", arch, batch, "--kernel=connectivity_update",
                                 "--metric=time"});
    ASSERT_EQ(result.code, 0) << result.err;
    const auto live = measure::load_binary_archive_file(arch);
    EXPECT_EQ(live.size(), 1u);
    EXPECT_NE(live.find("connectivity_update", "time"), nullptr);

    const auto missing = run_cli({"ingest", arch, batch, "--kernel=no_such_kernel",
                                  "--metric=time"});
    EXPECT_EQ(missing.code, 1);
    EXPECT_NE(missing.err.find("no measurements for"), std::string::npos) << missing.err;
    std::filesystem::remove_all(dir);
}

TEST(Cli, IngestModelOnMultiKernelBatchNeedsSelector) {
    const auto [dir, batch] = write_relearn_archive_batch();
    const std::string arch = dir + "/live_model.arch";

    const auto result = run_cli({"ingest", arch, batch, "--model", "--modeler=regression"});
    EXPECT_EQ(result.code, 1);
    EXPECT_NE(result.err.find("--kernel and --metric"), std::string::npos) << result.err;
    // The error fires before any append: nothing was published.
    EXPECT_FALSE(std::filesystem::exists(arch));
    std::filesystem::remove_all(dir);
}

TEST(Cli, IngestShapeMismatchIsATypedError) {
    const auto [dir, batch] = write_relearn_archive_batch();
    const std::string arch = dir + "/live_shape.arch";
    ASSERT_EQ(run_cli({"ingest", arch, batch}).code, 0);

    // A single-set batch without a selector cannot land in an archive-shaped
    // target: ValidationError, exit 2 like every bad input.
    const auto mismatch = run_cli({"ingest", arch, write_linear_measurements()});
    EXPECT_EQ(mismatch.code, 2);
    EXPECT_FALSE(mismatch.err.empty());
    std::filesystem::remove_all(dir);
}

TEST(Cli, ModelRoundTripThroughSimulate) {
    // simulate -> model --modeler=regression: the full user workflow.
    const std::string path = ::testing::TempDir() + "/xpdnn_cli_roundtrip.txt";
    ASSERT_EQ(run_cli({"simulate", "relearn", "update_electrical_activity",
                       "--out=" + path, "--seed=3"})
                  .code,
              0);
    const auto result = run_cli({"model", path, "--modeler=regression"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("model:"), std::string::npos);
}

}  // namespace
