// Tests for the pluggable noise-family zoo (noise/model.hpp): registry
// contract, spec parsing, per-family sampling moments, per-family level
// estimation, and the detect_family arbiter's accuracy gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "dnn/training_data.hpp"
#include "measure/experiment.hpp"
#include "noise/estimator.hpp"
#include "noise/injector.hpp"
#include "noise/model.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"

namespace {

using namespace noise;

// ---- registry contract -----------------------------------------------------

TEST(NoiseRegistry, BuiltinFamiliesAreRegistered) {
    for (const char* family : {"uniform", "gaussian", "lognormal", "mixture"}) {
        EXPECT_TRUE(is_registered_family(family)) << family;
        EXPECT_EQ(noise_model(family).family(), family);
    }
    EXPECT_FALSE(is_registered_family("cauchy"));
}

TEST(NoiseRegistry, FamiliesListIsSorted) {
    const auto families = registered_families();
    EXPECT_TRUE(std::is_sorted(families.begin(), families.end()));
    EXPECT_GE(families.size(), 4u);
}

TEST(NoiseRegistry, UnknownFamilyThrowsWithKnownList) {
    try {
        (void)noise_model("bogus");
        FAIL() << "unknown family accepted";
    } catch (const xpcore::ValidationError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("uniform"), std::string::npos);
        EXPECT_NE(what.find("lognormal"), std::string::npos);
    }
}

TEST(NoiseRegistry, InjectorResolvesFamilies) {
    xpcore::Rng rng(3);
    Injector injector("gaussian", 0.2, rng);
    EXPECT_EQ(injector.family(), "gaussian");
    EXPECT_THROW(Injector("bogus", 0.2, rng), xpcore::ValidationError);
}

// ---- spec parsing ----------------------------------------------------------

TEST(NoiseSpec, BareNumberIsUniform) {
    const auto spec = parse_noise_spec("0.25");
    EXPECT_EQ(spec.family, "uniform");
    EXPECT_DOUBLE_EQ(spec.level, 0.25);
}

TEST(NoiseSpec, BareFamilyUsesDefaultLevel) {
    const auto spec = parse_noise_spec("lognormal");
    EXPECT_EQ(spec.family, "lognormal");
    EXPECT_DOUBLE_EQ(spec.level, 0.10);
}

TEST(NoiseSpec, FamilyColonLevel) {
    const auto spec = parse_noise_spec("gaussian:0.3");
    EXPECT_EQ(spec.family, "gaussian");
    EXPECT_DOUBLE_EQ(spec.level, 0.3);
}

TEST(NoiseSpec, ErrorTaxonomy) {
    // Unknown family and out-of-domain levels are validation errors (the
    // text decodes, the value is wrong); undecodable text is a parse error.
    EXPECT_THROW((void)parse_noise_spec("bogus:0.1"), xpcore::ValidationError);
    EXPECT_THROW((void)parse_noise_spec("uniform:-0.1"), xpcore::ValidationError);
    EXPECT_THROW((void)parse_noise_spec("uniform:nan"), xpcore::ValidationError);
    EXPECT_THROW((void)parse_noise_spec("uniform:abc"), xpcore::ParseError);
    // An empty spec is "unknown family ''" — validation, not parsing.
    EXPECT_THROW((void)parse_noise_spec(""), xpcore::ValidationError);
}

TEST(NoiseSpec, DiagnosticCarriesSource) {
    try {
        (void)parse_noise_spec("bogus:0.1", "--noise");
        FAIL() << "unknown family accepted";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_NE(std::string(e.what()).find("--noise"), std::string::npos);
    }
}

// ---- sampling moments ------------------------------------------------------

// All families normalize to var(factor) = level^2 / 12 — one level, one
// perturbation strength. The mixture's tainted mode shifts its mean up by
// level/4; the others are unit-mean.
TEST(NoiseSampling, FamiliesMatchAnalyticMoments) {
    const double level = 0.36;
    const double expected_sd = level / std::sqrt(12.0);
    const std::size_t n = 50000;
    for (const auto& family : registered_families()) {
        const NoiseModel& model = noise_model(family);
        xpcore::Rng rng(0xFACADEu);
        std::vector<double> factors(n);
        for (auto& f : factors) f = model.sample(1.0, level, rng);
        const double mean = xpcore::mean(factors);
        const double expected_mean = family == "mixture" ? 1.0 + level / 4.0 : 1.0;
        EXPECT_NEAR(mean, expected_mean, 0.005) << family;
        if (family != "mixture") {
            EXPECT_NEAR(xpcore::stddev(factors), expected_sd, 0.05 * expected_sd) << family;
        }
        if (family == "uniform") {
            EXPECT_GE(xpcore::min_value(factors), 1.0 - level / 2.0);
            EXPECT_LE(xpcore::max_value(factors), 1.0 + level / 2.0);
        }
    }
}

TEST(NoiseSampling, LevelZeroIsNoiseFreeForEveryFamily) {
    for (const auto& family : registered_families()) {
        xpcore::Rng rng(11);
        EXPECT_DOUBLE_EQ(noise_model(family).sample(7.5, 0.0, rng), 7.5) << family;
    }
}

// ---- per-family level estimation -------------------------------------------

measure::ExperimentSet synthetic_set(const std::string& family, double level,
                                     std::uint64_t seed, std::size_t points = 100,
                                     std::size_t reps = 5) {
    xpcore::Rng rng(seed);
    measure::ExperimentSet set({"p"});
    Injector injector(family, level, rng);
    for (std::size_t i = 0; i < points; ++i) {
        const double x = static_cast<double>(i + 1);
        set.add({x}, injector.repetitions(5.0 + 0.3 * x * x, reps));
    }
    return set;
}

TEST(NoiseEstimation, PerFamilyEstimatorRecoversInjectedLevel) {
    // Each family's estimate_level debiases the raw rrd with that family's
    // own Monte-Carlo expectation; on a 100-point set the estimate must
    // land within 25% of the injected level.
    for (const auto& family : registered_families()) {
        for (double level : {0.10, 0.30}) {
            const auto set = synthetic_set(family, level, 77);
            const double estimated = noise_model(family).estimate_level(set);
            EXPECT_NEAR(estimated, level, 0.25 * level) << family << " @ " << level;
        }
    }
}

TEST(NoiseEstimation, UniformEstimatorIsTheLegacyEstimator) {
    const auto set = synthetic_set("uniform", 0.2, 5);
    EXPECT_EQ(noise_model("uniform").estimate_level(set), estimate_noise(set));
}

// ---- family detection ------------------------------------------------------

TEST(NoiseDetection, FallsBackToUniformOnTinySets) {
    measure::ExperimentSet set({"p"});
    set.add({1.0}, {1.0, 1.1});
    const auto detection = detect_family(set);
    EXPECT_EQ(detection.family, "uniform");
    EXPECT_DOUBLE_EQ(detection.score, 0.0);
}

TEST(NoiseDetection, ReportsPerFamilyScores) {
    const auto set = synthetic_set("mixture", 0.3, 123, 150);
    const auto detection = detect_family(set);
    EXPECT_EQ(detection.scores.size(), registered_families().size());
    EXPECT_EQ(detection.family, "mixture");
    EXPECT_GT(detection.level, 0.0);
}

// The tentpole acceptance gate: >= 90% accuracy across all four families on
// synthetic sets with 5 repetitions and levels spanning 5%..50%. The corpus
// is fixed-seed, so the measured accuracy (105/112 at capture time) is
// deterministic and the gate cannot flake.
TEST(NoiseDetection, AccuracyGateOnSyntheticCorpus) {
    const std::size_t points = 300, reps = 5, trials = 7;
    const std::vector<double> levels = {0.05, 0.15, 0.30, 0.50};
    std::uint64_t seed = 9000;
    std::size_t total = 0, correct = 0;
    for (const auto& family : registered_families()) {
        for (double level : levels) {
            for (std::size_t t = 0; t < trials; ++t) {
                const auto set = synthetic_set(family, level, seed++, points, reps);
                ++total;
                if (detect_family(set).family == family) ++correct;
            }
        }
    }
    const double accuracy = static_cast<double>(correct) / static_cast<double>(total);
    EXPECT_GE(accuracy, 0.90) << correct << "/" << total;
}

// ---- training-data integration ---------------------------------------------

TEST(NoiseTrainingData, FamilyMixIsDeterministicAndDistinct) {
    dnn::GeneratorConfig config;
    config.samples_per_class = 2;
    config.noise_families = {"uniform", "lognormal", "mixture"};
    xpcore::Rng rng_a(99), rng_b(99), rng_c(99);
    const auto a = dnn::generate_training_data(config, rng_a);
    const auto b = dnn::generate_training_data(config, rng_b);
    ASSERT_EQ(a.inputs.size(), b.inputs.size());
    for (std::size_t i = 0; i < a.inputs.size(); ++i) {
        ASSERT_EQ(a.inputs.data()[i], b.inputs.data()[i]) << i;
    }
    dnn::GeneratorConfig uniform_only = config;
    uniform_only.noise_families = {"uniform"};
    const auto c = dnn::generate_training_data(uniform_only, rng_c);
    bool any_difference = false;
    for (std::size_t i = 0; i < a.inputs.size() && !any_difference; ++i) {
        any_difference = a.inputs.data()[i] != c.inputs.data()[i];
    }
    EXPECT_TRUE(any_difference);
}

TEST(NoiseTrainingData, UnknownFamilyFailsFast) {
    dnn::GeneratorConfig config;
    config.samples_per_class = 1;
    config.noise_families = {"uniform", "bogus"};
    xpcore::Rng rng(1);
    EXPECT_THROW((void)dnn::generate_training_data(config, rng), xpcore::ValidationError);
    config.noise_families = {};
    EXPECT_THROW((void)dnn::generate_training_data(config, rng), std::invalid_argument);
}

}  // namespace
