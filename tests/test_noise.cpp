// Tests for noise estimation (the rrd heuristic, Sec. IV-B) and injection.

#include <gtest/gtest.h>

#include <cmath>

#include "noise/estimator.hpp"
#include "noise/injector.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"

namespace {

using namespace noise;

TEST(RelativeDeviation, HandComputed) {
    measure::Measurement m{{1.0}, {90.0, 110.0}};
    const auto rd = relative_deviations(m);
    ASSERT_EQ(rd.size(), 2u);
    EXPECT_DOUBLE_EQ(rd[0], -0.1);
    EXPECT_DOUBLE_EQ(rd[1], 0.1);
}

TEST(RelativeDeviation, SingleRepetitionEmpty) {
    measure::Measurement m{{1.0}, {5.0}};
    EXPECT_TRUE(relative_deviations(m).empty());
}

TEST(RelativeDeviation, ZeroMeanEmpty) {
    measure::Measurement m{{1.0}, {-1.0, 1.0}};
    EXPECT_TRUE(relative_deviations(m).empty());
}

TEST(RelativeDeviation, NearZeroMeanGuard) {
    // Mixed-sign values whose mean is vanishingly small relative to their
    // magnitude: dividing by it would explode the quotients to ~1e13, so
    // the relative-epsilon guard drops the group instead.
    measure::Measurement m{{1.0}, {1.0e6, -1.0e6 + 1e-7}};
    EXPECT_TRUE(relative_deviations(m).empty());
}

TEST(RelativeDeviation, TinyMagnitudesAreNotDropped) {
    // An all-positive group of tiny values has a mean of the same scale as
    // the values; the guard must not treat "small" as "degenerate".
    measure::Measurement m{{1.0}, {9.0e-300, 1.1e-299}};
    const auto rd = relative_deviations(m);
    ASSERT_EQ(rd.size(), 2u);
    EXPECT_NEAR(rd[0], -0.1, 1e-9);
    EXPECT_NEAR(rd[1], 0.1, 1e-9);
}

TEST(Rrd, RangeOfKnownSet) {
    const std::vector<double> deviations = {-0.05, 0.02, 0.08};
    EXPECT_NEAR(range_of_relative_deviation(deviations), 0.13, 1e-12);
}

TEST(Rrd, DegenerateSetsAreZero) {
    EXPECT_DOUBLE_EQ(range_of_relative_deviation({}), 0.0);
    const std::vector<double> one = {0.3};
    EXPECT_DOUBLE_EQ(range_of_relative_deviation(one), 0.0);
}

TEST(Injector, ZeroLevelIsExact) {
    xpcore::Rng rng(1);
    Injector injector(0.0, rng);
    EXPECT_DOUBLE_EQ(injector.sample(42.0), 42.0);
}

TEST(Injector, NegativeLevelThrows) {
    xpcore::Rng rng(1);
    // A structured ValidationError, not std::invalid_argument: the CLI maps
    // it to exit code 2 with a source-tagged diagnostic.
    EXPECT_THROW(Injector(-0.1, rng), xpcore::ValidationError);
}

TEST(Injector, SamplesWithinHalfLevel) {
    xpcore::Rng rng(2);
    Injector injector(0.2, rng);  // +-10%
    for (int i = 0; i < 2000; ++i) {
        const double v = injector.sample(100.0);
        EXPECT_GE(v, 90.0);
        EXPECT_LE(v, 110.0);
    }
}

TEST(Injector, RepetitionsCount) {
    xpcore::Rng rng(3);
    Injector injector(0.5, rng);
    EXPECT_EQ(injector.repetitions(10.0, 5).size(), 5u);
}

/// Property: the pooled rrd estimate recovers the injected noise level.
/// The paper reports an average estimation error of 4.93%; we assert each
/// estimate is within 15% relative (25 points x 5 reps is a small sample)
/// and that the mean absolute error over levels stays below ~8%.
class RrdRecovery : public ::testing::TestWithParam<double> {};

TEST_P(RrdRecovery, EstimatesInjectedLevel) {
    const double level = GetParam();
    xpcore::Rng rng(static_cast<std::uint64_t>(level * 1000) + 17);
    measure::ExperimentSet set({"p"});
    Injector injector(level, rng);
    for (int p = 1; p <= 25; ++p) {
        const double truth = 10.0 + 3.0 * p;
        set.add({static_cast<double>(p)}, injector.repetitions(truth, 5));
    }
    const double estimated = estimate_noise(set);
    // The estimator's single-trial scatter grows with the level (~8%
    // relative at 100% noise for 25 points x 5 reps): widen accordingly.
    const double tolerance = level <= 0.5 ? 0.15 : 0.25;
    EXPECT_NEAR(estimated, level, level * tolerance);
}

INSTANTIATE_TEST_SUITE_P(Levels, RrdRecovery,
                         ::testing::Values(0.02, 0.05, 0.10, 0.20, 0.50, 0.75, 1.00));

TEST(Rrd, MeanRecoveryErrorBelowEightPercent) {
    xpcore::Rng rng(99);
    std::vector<double> rel_errors;
    for (double level : {0.05, 0.1, 0.2, 0.5, 1.0}) {
        for (int trial = 0; trial < 10; ++trial) {
            measure::ExperimentSet set({"p"});
            Injector injector(level, rng);
            for (int p = 1; p <= 25; ++p) {
                set.add({static_cast<double>(p)}, injector.repetitions(5.0 + p, 5));
            }
            rel_errors.push_back(std::abs(estimate_noise(set) - level) / level);
        }
    }
    EXPECT_LT(xpcore::mean(rel_errors), 0.08);
}

TEST(Rrd, PoolingBeatsSinglePoint) {
    // The pooled estimate must be no smaller than any per-point estimate
    // (range of a superset dominates the range of each subset).
    xpcore::Rng rng(5);
    measure::ExperimentSet set({"p"});
    Injector injector(0.4, rng);
    for (int p = 1; p <= 10; ++p) set.add({static_cast<double>(p)}, injector.repetitions(50.0, 5));
    const double pooled = estimate_noise(set);
    for (double per_point : per_point_noise(set, /*bias_correct=*/false)) {
        EXPECT_GE(pooled + 1e-12, per_point);
    }
}

TEST(PerPointNoise, BiasCorrectionFactor) {
    xpcore::Rng rng(6);
    measure::ExperimentSet set({"p"});
    Injector injector(0.3, rng);
    set.add({1.0}, injector.repetitions(10.0, 5));
    const auto raw = per_point_noise(set, false);
    const auto corrected = per_point_noise(set, true);
    ASSERT_EQ(raw.size(), 1u);
    ASSERT_EQ(corrected.size(), 1u);
    EXPECT_NEAR(corrected[0], raw[0] * 6.0 / 4.0, 1e-12);
}

TEST(PerPointNoise, CorrectedMeanApproachesTrueLevel) {
    xpcore::Rng rng(7);
    measure::ExperimentSet set({"p"});
    Injector injector(0.5, rng);
    for (int p = 1; p <= 200; ++p) set.add({static_cast<double>(p)}, injector.repetitions(9.0, 5));
    const auto levels = per_point_noise(set, true);
    EXPECT_NEAR(xpcore::mean(levels), 0.5, 0.05);
}

TEST(AnalyzeNoise, StatsOrdering) {
    xpcore::Rng rng(8);
    measure::ExperimentSet set({"p"});
    Injector injector(0.4, rng);
    for (int p = 1; p <= 30; ++p) set.add({static_cast<double>(p)}, injector.repetitions(7.0, 5));
    const auto stats = analyze_noise(set);
    EXPECT_LE(stats.min, stats.median);
    EXPECT_LE(stats.median, stats.max);
    EXPECT_GT(stats.mean, 0.0);
}

TEST(AnalyzeNoise, EmptySetIsZeroed) {
    measure::ExperimentSet set({"p"});
    const auto stats = analyze_noise(set);
    EXPECT_DOUBLE_EQ(stats.min, 0.0);
    EXPECT_DOUBLE_EQ(stats.max, 0.0);
}

TEST(EstimateNoise, CleanMeasurementsNearZero) {
    measure::ExperimentSet set({"p"});
    for (int p = 1; p <= 5; ++p) {
        const double v = 3.0 * p;
        set.add({static_cast<double>(p)}, {v, v, v});
    }
    EXPECT_DOUBLE_EQ(estimate_noise(set), 0.0);
}

}  // namespace
