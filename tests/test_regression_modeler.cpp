// End-to-end tests for the regression (Extra-P baseline) modeler.

#include <gtest/gtest.h>

#include <cmath>

#include "noise/injector.hpp"
#include "regression/modeler.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace regression;
using pmnf::Rational;
using pmnf::TermClass;

TEST(RegressionModeler, RecoversSingleParameterModel) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        set.add({p}, {3.0 + 0.5 * p * std::log2(p)});
    }
    RegressionModeler modeler;
    const auto result = modeler.model(set);
    EXPECT_NEAR(result.fit_smape, 0.0, 1e-6);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(0), 1.25);
    EXPECT_NEAR(result.model.evaluate({{128.0}}), 3.0 + 0.5 * 128.0 * 7.0, 1e-3);
}

TEST(RegressionModeler, RecoversTwoParameterMultiplicativeModel) {
    measure::ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double n : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({p, n}, {1.0 + 0.2 * std::sqrt(p) * n});
        }
    }
    RegressionModeler modeler;
    const auto result = modeler.model(set);
    EXPECT_NEAR(result.fit_smape, 0.0, 1e-5);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(0), 0.5);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(1), 1.0);
}

TEST(RegressionModeler, RecoversKripkeSweepModelFromCleanData) {
    // The paper's model on a noise-free 125-point grid.
    measure::ExperimentSet set({"p", "d", "g"});
    for (double p : {8.0, 64.0, 512.0, 4096.0, 32768.0}) {
        for (double d : {2.0, 4.0, 6.0, 8.0, 10.0}) {
            for (double g : {32.0, 64.0, 96.0, 128.0, 160.0}) {
                set.add({p, d, g}, {8.51 + 0.11 * std::cbrt(p) * d * std::pow(g, 0.8)});
            }
        }
    }
    RegressionModeler modeler;
    const auto result = modeler.model(set);
    EXPECT_NEAR(result.fit_smape, 0.0, 0.01);
    EXPECT_NEAR(result.model.lead_exponent(0), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(result.model.lead_exponent(1), 1.0, 1e-9);
    EXPECT_NEAR(result.model.lead_exponent(2), 0.8, 1e-9);
}

TEST(RegressionModeler, ToleratesMildNoise) {
    xpcore::Rng rng(3);
    noise::Injector injector(0.05, rng);
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        set.add({p}, injector.repetitions(10.0 + 2.0 * p, 5));
    }
    RegressionModeler modeler;
    const auto result = modeler.model(set);
    EXPECT_NEAR(result.model.lead_exponent(0), 1.0, 0.25 + 1e-12);
}

TEST(RegressionModeler, ConstantKernel) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {42.0});
    RegressionModeler modeler;
    const auto result = modeler.model(set);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(0), 0.0);
    EXPECT_NEAR(result.model.evaluate({{1024.0}}), 42.0, 1e-9);
}

TEST(RegressionModeler, TwoLinesLayoutLikeCaseStudies) {
    // FASTEST/RELeARN style: two overlapping lines instead of a full grid.
    measure::ExperimentSet set({"p", "s"});
    for (double p : {16.0, 32.0, 64.0, 128.0, 256.0}) {
        set.add({p, 1000.0}, {5.0 + 2.0 * std::log2(p) + 0.01 * 1000.0});
    }
    for (double s : {2000.0, 4000.0, 8000.0, 16000.0}) {
        set.add({256.0, s}, {5.0 + 2.0 * std::log2(256.0) + 0.01 * s});
    }
    RegressionModeler modeler;
    const auto result = modeler.model(set);
    EXPECT_NEAR(result.fit_smape, 0.0, 1e-4);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(0), 0.25);  // log2(p)
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(1), 1.0);   // s
}

TEST(RegressionModeler, EmptySetThrows) {
    measure::ExperimentSet set({"p"});
    RegressionModeler modeler;
    EXPECT_THROW(modeler.model(set), std::invalid_argument);
}

TEST(RegressionModeler, MissingLineThrows) {
    measure::ExperimentSet set({"p", "n"});
    set.add({1.0, 10.0}, {1.0});
    set.add({2.0, 20.0}, {2.0});  // no line with >= 2 points for either param
    RegressionModeler modeler;
    EXPECT_THROW(modeler.model(set), std::invalid_argument);
}

TEST(RegressionModeler, ConfigDefaults) {
    RegressionModeler modeler;
    EXPECT_EQ(modeler.config().top_k, 3u);
    EXPECT_EQ(modeler.config().max_folds, 25u);
    EXPECT_EQ(modeler.config().aggregation, measure::Aggregation::Median);
}

TEST(RegressionModeler, AlternativesAreRankedAndDistinct) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {3.0 + 2.0 * p});
    RegressionModeler modeler;
    const auto ranked = modeler.model_alternatives(set, 4);
    ASSERT_GE(ranked.size(), 2u);
    ASSERT_LE(ranked.size(), 4u);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_LE(ranked[i - 1].cv_smape, ranked[i].cv_smape);
        EXPECT_NE(ranked[i - 1].model.to_string(), ranked[i].model.to_string());
    }
    // The first alternative must agree with the single-model API.
    EXPECT_EQ(ranked.front().model.to_string(), modeler.model(set).model.to_string());
}

TEST(RegressionModeler, AlternativesKeepOneAtMinimum) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {7.0});
    RegressionModeler modeler;
    EXPECT_GE(modeler.model_alternatives(set, 1).size(), 1u);
}

}  // namespace
