// Tests for the thread pool and parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "xpcore/thread_pool.hpp"

namespace {

using namespace xpcore;

TEST(ThreadPool, SerialPoolRunsInline) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    int value = 0;
    pool.submit([&] { value = 42; });
    EXPECT_EQ(value, 42);  // already executed
    pool.wait_idle();      // must not hang
}

TEST(ThreadPool, ParallelPoolExecutesAllTasks) {
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            for (volatile int spin = 0; spin < 100000; ++spin) {
            }
            done.fetch_add(1);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 8);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallback) {
    ThreadPool pool(0);
    std::vector<int> hits(64, 0);
    parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
    ThreadPool pool(2);
    bool called = false;
    parallel_for(pool, 0, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, GrainForcesInline) {
    ThreadPool pool(2);
    // n <= grain must run inline as one chunk.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for(
        pool, 10, [&](std::size_t begin, std::size_t end) { chunks.emplace_back(begin, end); },
        /*grain=*/16);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], std::make_pair(std::size_t{0}, std::size_t{10}));
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
    ThreadPool& a = ThreadPool::global();
    ThreadPool& b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
}

}  // namespace
