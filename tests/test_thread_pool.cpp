// Tests for the thread pool and parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "xpcore/thread_pool.hpp"

namespace {

using namespace xpcore;

TEST(ThreadPool, SerialPoolRunsInline) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    int value = 0;
    pool.submit([&] { value = 42; });
    EXPECT_EQ(value, 42);  // already executed
    pool.wait_idle();      // must not hang
}

TEST(ThreadPool, ParallelPoolExecutesAllTasks) {
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&] {
            std::atomic<int> spin{0};
            while (spin.fetch_add(1) < 100000) {
            }
            done.fetch_add(1);
        });
    }
    pool.wait_idle();
    EXPECT_EQ(done.load(), 8);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallback) {
    ThreadPool pool(0);
    std::vector<int> hits(64, 0);
    parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
    ThreadPool pool(2);
    bool called = false;
    parallel_for(pool, 0, [&](std::size_t, std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, GrainForcesInline) {
    ThreadPool pool(2);
    // n <= grain must run inline as one chunk.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for(
        pool, 10, [&](std::size_t begin, std::size_t end) { chunks.emplace_back(begin, end); },
        /*grain=*/16);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0], std::make_pair(std::size_t{0}, std::size_t{10}));
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
    ThreadPool& a = ThreadPool::global();
    ThreadPool& b = ThreadPool::global();
    EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, ResetGlobalChangesWorkerCount) {
    ThreadPool::reset_global(2);
    EXPECT_EQ(ThreadPool::global().size(), 2u);
    ThreadPool::reset_global(0);
    EXPECT_EQ(ThreadPool::global().size(), 0u);
    ThreadPool::reset_global();  // back to the env/hardware default
}

TEST(ParallelFor, PropagatesBodyException) {
    ThreadPool pool(3);
    EXPECT_THROW(parallel_for(pool, 256,
                              [&](std::size_t begin, std::size_t) {
                                  if (begin == 0) throw std::runtime_error("boom");
                              },
                              /*grain=*/1),
                 std::runtime_error);
    // The pool must stay usable after an exception escaped a chunk.
    std::atomic<int> counter{0};
    parallel_for(pool, 100, [&](std::size_t begin, std::size_t end) {
        counter.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, SerialFallbackPropagatesException) {
    ThreadPool pool(0);
    EXPECT_THROW(
        parallel_for(pool, 8, [](std::size_t, std::size_t) { throw std::logic_error("serial"); }),
        std::logic_error);
}

TEST(ParallelFor, ConcurrentCallsFromMultipleThreads) {
    // Per-call completion latches: two callers sharing one pool must each
    // see exactly their own indices, never the other call's completion.
    ThreadPool pool(3);
    constexpr std::size_t kN = 5000;
    std::vector<std::atomic<int>> hits_a(kN), hits_b(kN);
    auto run = [&pool](std::vector<std::atomic<int>>& hits) {
        for (int round = 0; round < 5; ++round) {
            parallel_for(pool, kN, [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
            });
        }
    };
    std::thread caller_a(run, std::ref(hits_a));
    std::thread caller_b(run, std::ref(hits_b));
    caller_a.join();
    caller_b.join();
    for (const auto& h : hits_a) ASSERT_EQ(h.load(), 5);
    for (const auto& h : hits_b) ASSERT_EQ(h.load(), 5);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
    ThreadPool pool(2);
    std::atomic<int> inner_total{0};
    parallel_for(
        pool, 8,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                parallel_for(
                    pool, 16,
                    [&](std::size_t b, std::size_t e) {
                        inner_total.fetch_add(static_cast<int>(e - b));
                    },
                    /*grain=*/1);
            }
        },
        /*grain=*/1);
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, WaitIdleRethrowsSubmitException) {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // First error is consumed; the pool keeps working.
    std::atomic<int> counter{0};
    pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SerialGuardDisablesParallelDispatch) {
    EXPECT_TRUE(parallel_enabled());
    {
        SerialGuard guard;
        EXPECT_FALSE(parallel_enabled());
        // parallel_for still covers all indices, just inline.
        ThreadPool pool(2);
        std::vector<int> hits(64, 0);
        parallel_for(pool, hits.size(), [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) ++hits[i];
        });
        EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
    }
    EXPECT_TRUE(parallel_enabled());
}

}  // namespace
