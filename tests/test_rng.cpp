// Tests for xpcore::Rng: determinism, distribution ranges, splitting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "xpcore/rng.hpp"

namespace {

TEST(Rng, SameSeedSameSequence) {
    xpcore::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    xpcore::Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformWithinBounds) {
    xpcore::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-3.5, 2.5);
        EXPECT_GE(v, -3.5);
        EXPECT_LT(v, 2.5);
    }
}

TEST(Rng, UniformIntInclusiveBounds) {
    xpcore::Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniform_int(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformMeanApproximately) {
    xpcore::Rng rng(99);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += rng.uniform(0, 10);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
    xpcore::Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(sq / n - mean * mean, 9.0, 0.3);
}

TEST(Rng, ChanceFrequency) {
    xpcore::Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PickCoversAllElements) {
    xpcore::Rng rng(13);
    const std::vector<int> items = {10, 20, 30};
    std::set<int> seen;
    for (int i = 0; i < 300; ++i) seen.insert(rng.pick(items));
    EXPECT_EQ(seen.size(), items.size());
}

TEST(Rng, ShuffleIsPermutation) {
    xpcore::Rng rng(17);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(Rng, ShuffleChangesOrderEventually) {
    xpcore::Rng rng(19);
    std::vector<int> v(20);
    for (int i = 0; i < 20; ++i) v[i] = i;
    const auto original = v;
    rng.shuffle(v);
    EXPECT_NE(v, original);  // 1/20! chance of failing
}

TEST(Rng, SplitIndependentStreams) {
    xpcore::Rng parent(23);
    xpcore::Rng c1 = parent.split();
    xpcore::Rng c2 = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (c1.uniform(0, 1) == c2.uniform(0, 1)) ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, SplitDeterministic) {
    xpcore::Rng a(31), b(31);
    xpcore::Rng ca = a.split();
    xpcore::Rng cb = b.split();
    for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(ca.uniform(0, 1), cb.uniform(0, 1));
    }
}

}  // namespace
