// Tests for the unified modeling engine (src/modeling): the modeler
// registry, session-owned resources with order-independent tasks, and the
// provenance stamped into every Report.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "casestudy/casestudy.hpp"
#include "measure/experiment.hpp"
#include "modeling/modeler.hpp"
#include "modeling/report.hpp"
#include "modeling/session.hpp"
#include "noise/injector.hpp"
#include "pmnf/serialize.hpp"
#include "xpcore/rng.hpp"

namespace {

/// f(p) = 2 + 3p with mild noise — enough for the regression paths.
measure::ExperimentSet linear_set() {
    xpcore::Rng rng(1);
    noise::Injector injector(0.05, rng);
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        set.add({p}, injector.repetitions(2.0 + 3.0 * p, 5));
    }
    return set;
}

/// Options over a very small classifier, no disk cache: cheap to pretrain
/// within a test, and hermetic.
modeling::Options tiny_options(std::uint64_t seed) {
    modeling::Options options;
    options.seed = seed;
    options.net_profile = "test-tiny";
    options.net.hidden = {32, 16};
    options.net.pretrain_samples_per_class = 40;
    options.net.pretrain_epochs = 1;
    options.net.adapt_samples_per_class = 40;
    options.use_cache = false;
    return options;
}

TEST(Registry, BuiltinsAreRegistered) {
    for (const char* name : {"regression", "dnn", "ensemble", "adaptive", "batch", "noise"}) {
        EXPECT_TRUE(modeling::is_registered(name)) << name;
    }
    EXPECT_FALSE(modeling::is_registered("psychic"));
    const auto names = modeling::registered_modelers();
    EXPECT_GE(names.size(), 6u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, CreateUnknownThrows) {
    modeling::Session session{modeling::Options{}};
    EXPECT_THROW((void)modeling::create_modeler("psychic", session), std::invalid_argument);
    EXPECT_THROW((void)session.run("psychic", linear_set()), std::invalid_argument);
}

TEST(Registry, CustomModelersCanBeRegistered) {
    struct Echo : modeling::Modeler {
        std::string name() const override { return "echo"; }
        modeling::Capabilities capabilities() const override { return {.produces_model = false}; }
        modeling::Report model(const measure::ExperimentSet& set,
                               modeling::Context&) override {
            modeling::Report report;
            report.noise = modeling::summarize_noise(set);
            return report;
        }
    };
    modeling::register_modeler("echo",
                               [](modeling::Session&) { return std::make_unique<Echo>(); });
    ASSERT_TRUE(modeling::is_registered("echo"));

    modeling::Session session{modeling::Options{}};
    const auto report = session.run("echo", linear_set());
    EXPECT_EQ(report.modeler, "echo");  // stamped by the session, not the modeler
    EXPECT_FALSE(report.has_model);
    EXPECT_GT(report.noise.estimate, 0.0);
}

TEST(OptionsHash, CoversResultRelevantFields) {
    const modeling::Options base;
    EXPECT_EQ(modeling::options_hash(base), modeling::options_hash(modeling::Options{}));

    modeling::Options changed;
    changed.seed = base.seed + 1;
    EXPECT_NE(modeling::options_hash(base), modeling::options_hash(changed));

    changed = base;
    changed.net.hidden = {16};
    EXPECT_NE(modeling::options_hash(base), modeling::options_hash(changed));

    changed = base;
    changed.thresholds.one_parameter += 0.1;
    EXPECT_NE(modeling::options_hash(base), modeling::options_hash(changed));

    changed = base;
    changed.ensemble_members = 3;
    EXPECT_NE(modeling::options_hash(base), modeling::options_hash(changed));

    changed = base;
    changed.group_tolerance = 0.0;
    EXPECT_NE(modeling::options_hash(base), modeling::options_hash(changed));
}

TEST(OptionsProfile, KnownAndUnknownNames) {
    EXPECT_EQ(modeling::Options::profile("fast").hidden, dnn::DnnConfig::fast().hidden);
    EXPECT_EQ(modeling::Options::profile("paper").hidden, dnn::DnnConfig::paper().hidden);
    EXPECT_FALSE(modeling::Options::profile("tiny").hidden.empty());
    EXPECT_THROW((void)modeling::Options::profile("bogus"), std::invalid_argument);
}

TEST(Session, StampsProvenanceIntoReports) {
    const modeling::Options options;
    modeling::Session session(options);
    EXPECT_EQ(session.config_hash(), modeling::options_hash(options));

    modeling::Context context;
    context.task = "linear";
    const auto report = session.run("regression", linear_set(), context);
    EXPECT_EQ(report.modeler, "regression");
    EXPECT_EQ(report.task, "linear");
    EXPECT_EQ(report.config_hash, session.config_hash());
    EXPECT_TRUE(report.has_model);
    EXPECT_TRUE(report.used_regression);
    EXPECT_FALSE(report.used_dnn);
    EXPECT_EQ(report.winner, "regression");
    EXPECT_GT(report.timings.total_seconds, 0.0);
    EXPECT_GT(report.noise.estimate, 0.0);
}

TEST(Session, RegressionAlternativesAreRanked) {
    modeling::Session session{modeling::Options{}};
    modeling::Context context;
    context.alternatives = 2;
    const auto report = session.run("regression", linear_set(), context);
    ASSERT_GE(report.alternatives.size(), 1u);
    EXPECT_LE(report.alternatives.size(), 2u);
    for (const auto& alternative : report.alternatives) {
        EXPECT_GE(alternative.cv_smape, report.selected.cv_smape);
    }
}

TEST(Session, NoiseIsDiagnosticOnly) {
    modeling::Session session{modeling::Options{}};
    const auto report = session.run("noise", linear_set());
    EXPECT_FALSE(report.has_model);
    EXPECT_TRUE(report.winner.empty());
    EXPECT_GT(report.noise.estimate, 0.0);
    EXPECT_LE(report.noise.min, report.noise.median);
    EXPECT_LE(report.noise.median, report.noise.max);
}

// The adaptation-state leak regression test: domain adaptation replaces the
// classifier's active network and advances its RNG, so without the
// session's snapshot/restore a task's result would depend on which tasks
// ran before it. Running task A alone in one session and after an unrelated
// task B in another must produce byte-identical selections.
TEST(Session, TasksAreOrderIndependent) {
    const auto study = casestudy::relearn();
    xpcore::Rng rng_a(101), rng_b(202);
    const auto set_a = study.generate_modeling(study.kernels[0], rng_a);
    const auto set_b = study.generate_modeling(study.kernels[1], rng_b);

    modeling::Session first(tiny_options(11));
    const auto alone = first.run("adaptive", set_a);

    modeling::Session second(tiny_options(11));
    (void)second.run("adaptive", set_b);  // must not leak into the next task
    const auto after_b = second.run("adaptive", set_a);

    EXPECT_EQ(pmnf::to_json(alone.selected.model), pmnf::to_json(after_b.selected.model));
    EXPECT_EQ(alone.selected.cv_smape, after_b.selected.cv_smape);
    EXPECT_EQ(alone.winner, after_b.winner);
    EXPECT_EQ(alone.noise.estimate, after_b.noise.estimate);
}

TEST(Session, RepeatedRunsOfTheSameTaskAreIdentical) {
    const auto study = casestudy::relearn();
    xpcore::Rng rng(303);
    const auto set = study.generate_modeling(study.kernels.front(), rng);

    modeling::Session session(tiny_options(12));
    const auto first = session.run("adaptive", set);
    const auto second = session.run("adaptive", set);
    EXPECT_EQ(pmnf::to_json(first.selected.model), pmnf::to_json(second.selected.model));
    EXPECT_EQ(first.selected.cv_smape, second.selected.cv_smape);
    EXPECT_EQ(first.winner, second.winner);
}

}  // namespace
