// Tests for the repetition-aggregation policies.

#include <gtest/gtest.h>

#include "measure/aggregation.hpp"
#include "regression/modeler.hpp"

namespace {

using namespace measure;

Measurement sample() { return {{1.0}, {5.0, 1.0, 3.0, 9.0}}; }

TEST(Aggregation, PolicyValues) {
    const auto m = sample();
    EXPECT_DOUBLE_EQ(aggregate(m, Aggregation::Median), 4.0);
    EXPECT_DOUBLE_EQ(aggregate(m, Aggregation::Mean), 4.5);
    EXPECT_DOUBLE_EQ(aggregate(m, Aggregation::Minimum), 1.0);
}

TEST(Aggregation, Names) {
    EXPECT_EQ(to_string(Aggregation::Median), "median");
    EXPECT_EQ(to_string(Aggregation::Mean), "mean");
    EXPECT_EQ(to_string(Aggregation::Minimum), "minimum");
}

TEST(Aggregation, FromStringRoundTrip) {
    for (auto policy : {Aggregation::Median, Aggregation::Mean, Aggregation::Minimum}) {
        EXPECT_EQ(aggregation_from_string(to_string(policy)), policy);
    }
    EXPECT_EQ(aggregation_from_string("min"), Aggregation::Minimum);
    EXPECT_THROW(aggregation_from_string("mode"), std::invalid_argument);
}

TEST(Aggregation, AggregateAllOrder) {
    ExperimentSet set({"p"});
    set.add({1.0}, {2.0, 4.0});
    set.add({2.0}, {10.0, 20.0, 30.0});
    EXPECT_EQ(aggregate_all(set, Aggregation::Median), (std::vector<double>{3.0, 20.0}));
    EXPECT_EQ(aggregate_all(set, Aggregation::Minimum), (std::vector<double>{2.0, 10.0}));
}

TEST(Aggregation, AggregateLine) {
    ExperimentSet set({"p"});
    set.add({2.0}, {8.0, 6.0});
    set.add({1.0}, {3.0, 5.0});
    const auto line = set.best_line(0);
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(aggregate_line(*line, Aggregation::Mean), (std::vector<double>{4.0, 7.0}));
}

TEST(Aggregation, MinimumPolicyModelsLowerEnvelope) {
    // With one-sided positive outliers the minimum recovers the clean
    // function exactly while the mean is pulled upward.
    ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        const double truth = 1.0 + 2.0 * p;
        set.add({p}, {truth, truth * 1.8, truth * 2.1});  // outliers upward
    }
    regression::RegressionModeler::Config config;
    config.aggregation = Aggregation::Minimum;
    const regression::RegressionModeler modeler(config);
    const auto result = modeler.model(set);
    EXPECT_NEAR(result.model.evaluate({{128.0}}), 257.0, 1.0);
}

TEST(Aggregation, PolicyChangesTheFit) {
    ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        const double truth = 1.0 + 2.0 * p;
        set.add({p}, {truth, truth * 3.0});
    }
    regression::RegressionModeler::Config min_config;
    min_config.aggregation = Aggregation::Minimum;
    regression::RegressionModeler::Config mean_config;
    mean_config.aggregation = Aggregation::Mean;
    const auto min_fit = regression::RegressionModeler(min_config).model(set);
    const auto mean_fit = regression::RegressionModeler(mean_config).model(set);
    EXPECT_LT(min_fit.model.evaluate({{64.0}}), mean_fit.model.evaluate({{64.0}}));
}

}  // namespace
