// Tests for multi-kernel measurement archives.

#include <gtest/gtest.h>

#include <sstream>

#include "casestudy/casestudy.hpp"
#include "measure/archive.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace measure;

ExperimentSet small_set(double scale) {
    ExperimentSet set({"p", "n"});
    set.add({2.0, 10.0}, {scale * 1.0, scale * 1.1});
    set.add({4.0, 10.0}, {scale * 2.0});
    return set;
}

Archive sample_archive() {
    Archive archive({"p", "n"});
    archive.add("SweepSolver", "time", small_set(1.0));
    archive.add("LTimes", "time", small_set(0.5));
    archive.add("SweepSolver", "visits", small_set(100.0));
    return archive;
}

TEST(Archive, AddAndFind) {
    const Archive archive = sample_archive();
    EXPECT_EQ(archive.size(), 3u);
    ASSERT_NE(archive.find("LTimes", "time"), nullptr);
    EXPECT_EQ(archive.find("LTimes", "time")->experiments.size(), 2u);
    EXPECT_EQ(archive.find("LTimes", "visits"), nullptr);
    EXPECT_EQ(archive.find("NoSuchKernel", "time"), nullptr);
}

TEST(Archive, KernelsDistinctInOrder) {
    const Archive archive = sample_archive();
    EXPECT_EQ(archive.kernels(), (std::vector<std::string>{"SweepSolver", "LTimes"}));
}

TEST(Archive, DuplicateEntryThrows) {
    Archive archive({"p", "n"});
    archive.add("k", "time", small_set(1.0));
    EXPECT_THROW(archive.add("k", "time", small_set(2.0)), std::invalid_argument);
}

TEST(Archive, ParameterMismatchThrows) {
    Archive archive({"p"});
    EXPECT_THROW(archive.add("k", "time", small_set(1.0)), std::invalid_argument);
}

TEST(Archive, RoundTrip) {
    const Archive original = sample_archive();
    std::stringstream buffer;
    save_archive(original, buffer);
    const Archive loaded = load_archive(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.parameter_names(), original.parameter_names());
    for (const auto& entry : original.entries()) {
        const auto* found = loaded.find(entry.kernel, entry.metric);
        ASSERT_NE(found, nullptr) << entry.kernel << "/" << entry.metric;
        ASSERT_EQ(found->experiments.size(), entry.experiments.size());
        for (std::size_t i = 0; i < entry.experiments.size(); ++i) {
            EXPECT_EQ(found->experiments.measurements()[i].values,
                      entry.experiments.measurements()[i].values);
        }
    }
}

TEST(Archive, LoadRejectsMeasurementBeforeKernel) {
    std::stringstream in("params: p\n2 : 1.0\n");
    EXPECT_THROW(load_archive(in), std::runtime_error);
}

TEST(Archive, LoadRejectsMalformedKernelHeader) {
    std::stringstream in("params: p\nkernel: foo\n2 : 1.0\n");
    EXPECT_THROW(load_archive(in), std::runtime_error);
}

TEST(Archive, LoadRejectsEmptyEntry) {
    std::stringstream in("params: p\nkernel: a metric: time\nkernel: b metric: time\n2 : 1.0\n");
    EXPECT_THROW(load_archive(in), std::runtime_error);
}

TEST(Archive, LoadSkipsCommentsAndBlankLines) {
    std::stringstream in(
        "# archive\nparams: p\n\nkernel: a metric: time\n# data below\n2 : 1.0\n\n4 : 2.0\n");
    const Archive archive = load_archive(in);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_EQ(archive.entries()[0].experiments.size(), 2u);
}

TEST(Archive, MissingFileThrows) {
    EXPECT_THROW(load_archive_file("/nonexistent/archive.txt"), std::runtime_error);
}

TEST(Archive, CrlfArchiveLoads) {
    std::stringstream in(
        "params: p\r\n\r\nkernel: a metric: time\r\n2 : 1.0\r\n\r\n4 : 2.0\r\n");
    const Archive archive = load_archive(in);
    EXPECT_EQ(archive.size(), 1u);
    EXPECT_EQ(archive.entries()[0].experiments.size(), 2u);
}

TEST(Archive, ErrorsCarryStructuredDiagnostics) {
    std::stringstream in("params: p\nkernel: a metric: time\n2 : 1.0\n4 : oops\n");
    try {
        load_archive(in, "profile.txt");
        FAIL() << "expected xpcore::ParseError";
    } catch (const xpcore::ParseError& e) {
        EXPECT_EQ(e.source(), "profile.txt");
        EXPECT_EQ(e.line(), 4u);
        EXPECT_EQ(e.column(), 5u);
        EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
    }
}

TEST(Archive, DuplicateEntryInFileIsValidationError) {
    std::stringstream in(
        "params: p\nkernel: a metric: time\n2 : 1.0\nkernel: a metric: time\n4 : 2.0\n");
    EXPECT_THROW(load_archive(in), xpcore::ValidationError);
}

TEST(Archive, NonFiniteMeasurementRejected) {
    std::stringstream in("params: p\nkernel: a metric: time\n2 : inf\n");
    EXPECT_THROW(load_archive(in), xpcore::ValidationError);
}

TEST(Archive, TryLoadCollectsDiagnosticsAcrossEntries) {
    std::stringstream in(
        "params: p\n"
        "kernel: a metric: time\n"
        "2 : 1.0\n"
        "4 : nan\n"        // bad row in entry a
        "kernel: b metric: time\n"
        "broken\n"         // bad row in entry b
        "8 : 3.0\n");
    const auto result = try_load_archive(in, "multi.txt");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.diagnostics.size(), 2u);
    EXPECT_EQ(result.diagnostics[0].line, 4u);
    EXPECT_EQ(result.diagnostics[1].line, 6u);
    EXPECT_EQ(result.diagnostics[0].source, "multi.txt");
}

TEST(Archive, TryLoadOkOnCleanInput) {
    std::stringstream buffer;
    save_archive(sample_archive(), buffer);
    const auto result = try_load_archive(buffer);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.archive->size(), 3u);
}

TEST(Archive, CaseStudyGeneratesFullArchive) {
    const auto study = casestudy::kripke();
    xpcore::Rng rng(3);
    const auto archive = study.generate_archive(rng);
    EXPECT_EQ(archive.size(), study.kernels.size());
    EXPECT_EQ(archive.parameter_names(), study.parameters);
    const auto* sweep = archive.find("SweepSolver", "time");
    ASSERT_NE(sweep, nullptr);
    EXPECT_EQ(sweep->experiments.size(), study.modeling_points.size());
}

}  // namespace
