// Tests for the table printer and CLI argument parser.

#include <gtest/gtest.h>

#include "xpcore/cli.hpp"
#include "xpcore/table.hpp"

namespace {

using namespace xpcore;

TEST(Table, AlignsColumns) {
    Table t({"a", "long-header"});
    t.add_row({"wide-cell", "1"});
    const std::string out = t.to_string();
    EXPECT_NE(out.find("| a         | long-header |"), std::string::npos);
    EXPECT_NE(out.find("| wide-cell | 1           |"), std::string::npos);
}

TEST(Table, SeparatorLinePresent) {
    Table t({"x"});
    t.add_row({"1"});
    EXPECT_NE(t.to_string().find("|---|"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, RowCount) {
    Table t({"x"});
    EXPECT_EQ(t.row_count(), 0u);
    t.add_row({"1"});
    t.add_row({"2"});
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Cli, ParsesKeyValueAndFlags) {
    const char* argv[] = {"prog", "--alpha=3", "--flag", "positional"};
    CliArgs args(4, argv);
    EXPECT_TRUE(args.has("alpha"));
    EXPECT_EQ(args.get_int("alpha", 0), 3);
    EXPECT_TRUE(args.get_bool("flag", false));
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "positional");
}

TEST(Cli, FallbacksWhenAbsent) {
    const char* argv[] = {"prog"};
    CliArgs args(1, argv);
    EXPECT_EQ(args.get("missing", "dflt"), "dflt");
    EXPECT_EQ(args.get_int("missing", 7), 7);
    EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
    EXPECT_FALSE(args.get_bool("missing", false));
}

TEST(Cli, ParsesDoubles) {
    const char* argv[] = {"prog", "--noise=0.75"};
    CliArgs args(2, argv);
    EXPECT_DOUBLE_EQ(args.get_double("noise", 0), 0.75);
}

TEST(Cli, MalformedNumbersThrow) {
    const char* argv[] = {"prog", "--n=12abc", "--x=1.5.2"};
    CliArgs args(3, argv);
    EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
    EXPECT_THROW(args.get_double("x", 0), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
    const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
    CliArgs args(5, argv);
    EXPECT_TRUE(args.get_bool("a", false));
    EXPECT_FALSE(args.get_bool("b", true));
    EXPECT_TRUE(args.get_bool("c", false));
    EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Cli, MalformedBooleanThrows) {
    const char* argv[] = {"prog", "--a=maybe"};
    CliArgs args(2, argv);
    EXPECT_THROW(args.get_bool("a", false), std::invalid_argument);
}

}  // namespace
