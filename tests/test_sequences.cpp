// Tests for parameter-value sequence generators.

#include <gtest/gtest.h>

#include "measure/sequences.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace measure;

class SequenceKinds : public ::testing::TestWithParam<SequenceKind> {};

TEST_P(SequenceKinds, StrictlyIncreasingAndPositive) {
    xpcore::Rng rng(123);
    for (int trial = 0; trial < 20; ++trial) {
        const auto seq = generate_sequence(GetParam(), 7, rng);
        ASSERT_EQ(seq.size(), 7u);
        EXPECT_GT(seq[0], 0.0);
        for (std::size_t i = 1; i < seq.size(); ++i) {
            EXPECT_GT(seq[i], seq[i - 1]) << to_string(GetParam());
        }
    }
}

TEST_P(SequenceKinds, RespectsRequestedLength) {
    xpcore::Rng rng(7);
    for (std::size_t length : {2u, 5u, 11u}) {
        EXPECT_EQ(generate_sequence(GetParam(), length, rng).size(), length);
    }
}

TEST_P(SequenceKinds, DeterministicGivenSeed) {
    xpcore::Rng a(42), b(42);
    EXPECT_EQ(generate_sequence(GetParam(), 6, a), generate_sequence(GetParam(), 6, b));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SequenceKinds,
                         ::testing::ValuesIn(all_sequence_kinds()),
                         [](const auto& info) {
                             std::string name = to_string(info.param);
                             for (auto& c : name) {
                                 if (c == '-') c = '_';
                             }
                             return name;
                         });

TEST(Sequences, LengthBelowTwoThrows) {
    xpcore::Rng rng(1);
    EXPECT_THROW(generate_sequence(SequenceKind::Linear, 1, rng), std::invalid_argument);
}

TEST(Sequences, LinearHasConstantStep) {
    xpcore::Rng rng(5);
    const auto seq = generate_sequence(SequenceKind::Linear, 5, rng);
    const double step = seq[1] - seq[0];
    for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_DOUBLE_EQ(seq[i] - seq[i - 1], step);
    }
}

TEST(Sequences, SmallExponentialDoubles) {
    xpcore::Rng rng(5);
    const auto seq = generate_sequence(SequenceKind::SmallExponential, 5, rng);
    for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_DOUBLE_EQ(seq[i] / seq[i - 1], 2.0);
    }
}

TEST(Sequences, ExponentialConstantRatio) {
    xpcore::Rng rng(5);
    const auto seq = generate_sequence(SequenceKind::Exponential, 5, rng);
    const double ratio = seq[1] / seq[0];
    EXPECT_GE(ratio, 4.0);
    EXPECT_LE(ratio, 8.0);
    for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_NEAR(seq[i] / seq[i - 1], ratio, 1e-9);
    }
}

TEST(Sequences, RandomSequenceSamplesAnyKind) {
    xpcore::Rng rng(9);
    const auto seq = random_sequence(5, rng);
    EXPECT_EQ(seq.size(), 5u);
}

TEST(ContinueSequence, GeometricContinuation) {
    const std::vector<double> seq = {8, 64, 512, 4096, 32768};
    const auto next = continue_sequence(seq, 3);
    ASSERT_EQ(next.size(), 3u);
    EXPECT_DOUBLE_EQ(next[0], 262144.0);
    EXPECT_DOUBLE_EQ(next[1], 2097152.0);
    EXPECT_DOUBLE_EQ(next[2], 16777216.0);
}

TEST(ContinueSequence, ArithmeticContinuation) {
    const std::vector<double> seq = {10, 20, 30, 40, 50};
    const auto next = continue_sequence(seq, 4);
    EXPECT_EQ(next, (std::vector<double>{60, 70, 80, 90}));
}

TEST(ContinueSequence, PowersOfTwo) {
    const std::vector<double> seq = {4, 8, 16, 32, 64};
    const auto next = continue_sequence(seq, 2);
    EXPECT_DOUBLE_EQ(next[0], 128.0);
    EXPECT_DOUBLE_EQ(next[1], 256.0);
}

TEST(ContinueSequence, ValuesAreBeyondRange) {
    xpcore::Rng rng(31);
    for (const auto kind : all_sequence_kinds()) {
        const auto seq = generate_sequence(kind, 5, rng);
        const auto next = continue_sequence(seq, 4);
        for (double v : next) EXPECT_GT(v, seq.back());
        for (std::size_t i = 1; i < next.size(); ++i) EXPECT_GT(next[i], next[i - 1]);
    }
}

TEST(ContinueSequence, TooShortThrows) {
    EXPECT_THROW(continue_sequence({1.0}, 2), std::invalid_argument);
}

TEST(Sequences, KindNames) {
    EXPECT_EQ(to_string(SequenceKind::Linear), "linear");
    EXPECT_EQ(to_string(SequenceKind::Exponential), "exponential");
    EXPECT_EQ(all_sequence_kinds().size(), 5u);
}

}  // namespace
