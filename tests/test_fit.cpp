// Tests for PMNF coefficient fitting and cross-validation.

#include <gtest/gtest.h>

#include <cmath>

#include "regression/fit.hpp"

namespace {

using namespace regression;
using pmnf::Rational;

std::vector<measure::Coordinate> points_1d(const std::vector<double>& xs) {
    std::vector<measure::Coordinate> points;
    for (double x : xs) points.push_back({x});
    return points;
}

TEST(FitShape, RecoversLinearCoefficients) {
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(1), 0}}});  // c0 + c1 * x
    const auto points = points_1d({2, 4, 8, 16, 32});
    std::vector<double> values;
    for (const auto& p : points) values.push_back(3.0 + 0.5 * p[0]);
    const auto model = fit_shape(shape, points, values);
    ASSERT_TRUE(model.has_value());
    EXPECT_NEAR(model->constant(), 3.0, 1e-9);
    ASSERT_EQ(model->terms().size(), 1u);
    EXPECT_NEAR(model->terms()[0].coefficient, 0.5, 1e-9);
}

TEST(FitShape, RecoversLogModel) {
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(0), 1}}});  // c0 + c1 * log2(x)
    const auto points = points_1d({2, 4, 8, 16, 32});
    std::vector<double> values;
    for (const auto& p : points) values.push_back(1.0 + 7.0 * std::log2(p[0]));
    const auto model = fit_shape(shape, points, values);
    ASSERT_TRUE(model.has_value());
    EXPECT_NEAR(model->constant(), 1.0, 1e-8);
    EXPECT_NEAR(model->terms()[0].coefficient, 7.0, 1e-8);
}

TEST(FitShape, HandlesHugeDynamicRange) {
    // x^3 at x = 32768 is ~3.5e13; column scaling must keep this stable.
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(3), 0}}});
    const auto points = points_1d({8, 64, 512, 4096, 32768});
    std::vector<double> values;
    for (const auto& p : points) values.push_back(5.0 + 1e-6 * std::pow(p[0], 3));
    const auto model = fit_shape(shape, points, values);
    ASSERT_TRUE(model.has_value());
    EXPECT_NEAR(model->terms()[0].coefficient, 1e-6, 1e-12);
}

TEST(FitShape, MultiParameterMultiplicative) {
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(1), 0}}, {1, {Rational(1, 2), 0}}});
    std::vector<measure::Coordinate> points;
    std::vector<double> values;
    for (double x : {2.0, 4.0, 8.0}) {
        for (double y : {16.0, 64.0, 256.0}) {
            points.push_back({x, y});
            values.push_back(2.0 + 0.25 * x * std::sqrt(y));
        }
    }
    const auto model = fit_shape(shape, points, values);
    ASSERT_TRUE(model.has_value());
    EXPECT_NEAR(model->constant(), 2.0, 1e-8);
    EXPECT_NEAR(model->terms()[0].coefficient, 0.25, 1e-9);
}

TEST(FitShape, ConstantOnlyShape) {
    CandidateShape shape;  // just c0
    const auto points = points_1d({1, 2, 3});
    const std::vector<double> values = {5.0, 5.0, 5.0};
    const auto model = fit_shape(shape, points, values);
    ASSERT_TRUE(model.has_value());
    EXPECT_NEAR(model->constant(), 5.0, 1e-12);
}

TEST(FitShape, UnderdeterminedReturnsNullopt) {
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(1), 0}}});
    const auto points = points_1d({4});
    const std::vector<double> values = {1.0};
    EXPECT_FALSE(fit_shape(shape, points, values).has_value());
}

TEST(ModelSmape, ZeroForExactFit) {
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(1), 0}}});
    const auto points = points_1d({1, 2, 3, 4});
    std::vector<double> values;
    for (const auto& p : points) values.push_back(2.0 * p[0]);
    const auto model = fit_shape(shape, points, values);
    ASSERT_TRUE(model.has_value());
    EXPECT_NEAR(model_smape(*model, points, values), 0.0, 1e-9);
}

TEST(CrossValidation, TrueShapeScoresBetterThanWrongShape) {
    const auto points = points_1d({2, 4, 8, 16, 32, 64});
    std::vector<double> values;
    for (const auto& p : points) values.push_back(1.0 + 0.3 * p[0] * p[0]);

    CandidateShape quadratic;
    quadratic.terms.push_back({{0, {Rational(2), 0}}});
    CandidateShape logarithmic;
    logarithmic.terms.push_back({{0, {Rational(0), 1}}});

    const double good = cross_validated_smape(quadratic, points, values);
    const double bad = cross_validated_smape(logarithmic, points, values);
    EXPECT_LT(good, bad);
    EXPECT_NEAR(good, 0.0, 1e-6);
}

TEST(CrossValidation, TooFewPointsIsWorstScore) {
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(1), 0}}});
    const auto points = points_1d({1, 2});
    const std::vector<double> values = {1.0, 2.0};
    EXPECT_DOUBLE_EQ(cross_validated_smape(shape, points, values), 200.0);
}

TEST(CrossValidation, FailedFitScoresWorstCaseOnZeroValues) {
    // Regression: a failed training fit used to "predict" -value, which
    // rates a held-out value of 0 as perfect (denominator 0, pair skipped).
    // A shape with more coefficients than any fold's training rows never
    // fits, so on all-zero data it must score 200, not 0.
    CandidateShape overparameterized;
    for (int t = 0; t < 4; ++t) {
        overparameterized.terms.push_back({{0, {Rational(t + 1), 0}}});
    }
    ASSERT_EQ(overparameterized.coefficient_count(), 5u);
    const auto points = points_1d({1, 2, 3, 4, 5, 6, 7});
    const std::vector<double> zeros(7, 0.0);
    // 2 folds: each training split has 3-4 rows < 5 coefficients.
    EXPECT_DOUBLE_EQ(cross_validated_smape(overparameterized, points, zeros, 2), 200.0);
}

TEST(CrossValidation, FailedFitStillWorstCaseOnNonzeroValues) {
    CandidateShape overparameterized;
    for (int t = 0; t < 4; ++t) {
        overparameterized.terms.push_back({{0, {Rational(t + 1), 0}}});
    }
    const auto points = points_1d({1, 2, 3, 4, 5, 6, 7});
    std::vector<double> values;
    for (const auto& p : points) values.push_back(1.0 + p[0]);
    EXPECT_DOUBLE_EQ(cross_validated_smape(overparameterized, points, values, 2), 200.0);
}

TEST(CrossValidation, DegenerateShapeCannotBeatFittableShapeOnZeros) {
    // The misranking the sentinel fix prevents: on data containing zeros, a
    // never-fitting hypothesis must rank behind one that fits.
    CandidateShape linear;
    linear.terms.push_back({{0, {Rational(1), 0}}});
    CandidateShape degenerate;
    for (int t = 0; t < 4; ++t) degenerate.terms.push_back({{0, {Rational(t + 1), 0}}});
    const auto points = points_1d({1, 2, 3, 4, 5, 6, 7});
    const std::vector<double> zeros(7, 0.0);
    EXPECT_LT(cross_validated_smape(linear, points, zeros, 2),
              cross_validated_smape(degenerate, points, zeros, 2));
}

TEST(CrossValidation, FoldCapKeepsAllPointsEvaluated) {
    const auto points = points_1d({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
    std::vector<double> values;
    for (const auto& p : points) values.push_back(3.0 + p[0]);
    CandidateShape shape;
    shape.terms.push_back({{0, {Rational(1), 0}}});
    // k-fold with 3 folds still evaluates every point once; with an exact
    // linear relationship the score stays ~0.
    EXPECT_NEAR(cross_validated_smape(shape, points, values, 3), 0.0, 1e-8);
}

TEST(CandidateShape, CoefficientCount) {
    CandidateShape shape;
    EXPECT_EQ(shape.coefficient_count(), 1u);
    shape.terms.push_back({{0, {Rational(1), 0}}});
    shape.terms.push_back({{1, {Rational(1), 0}}});
    EXPECT_EQ(shape.coefficient_count(), 3u);
}

}  // namespace
