// Tests for the durable-state layer (xpcore/store.hpp): the shared
// atomic-publish/quarantine primitives, the keyed blob store's round trip,
// corruption repair, schema gating, deterministic capacity eviction, and
// publish-failure warnings — plus the archive compaction golden: a
// many-batch ingest archive compacts to one section per (kernel, metric)
// with byte-identical text materialization.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "measure/archive.hpp"
#include "measure/binary.hpp"
#include "measure/experiment.hpp"
#include "measure/io.hpp"
#include "xpcore/archive.hpp"
#include "xpcore/error.hpp"
#include "xpcore/store.hpp"

namespace {

namespace fs = std::filesystem;
using xpcore::store::Config;
using xpcore::store::Store;

// Per-test scratch directory so parallel ctest processes never collide.
class ScratchDir {
public:
    ScratchDir() {
        dir_ = fs::temp_directory_path() /
               ("xpdnn_store_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        fs::create_directories(dir_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path(const std::string& name) const { return (dir_ / name).string(); }
    const fs::path& dir() const { return dir_; }

private:
    static inline int counter_ = 0;
    fs::path dir_;
};

Config store_config(const ScratchDir& scratch, const std::string& sub = "store") {
    Config config;
    config.dir = scratch.path(sub);
    config.prefix = "t";
    return config;
}

/// Flip one byte of `path` at `offset` in place.
void flip_byte(const std::string& path, std::size_t offset) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
}

std::size_t count_files_matching(const fs::path& dir, const std::string& needle) {
    std::size_t count = 0;
    if (!fs::exists(dir)) return 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        if (entry.path().filename().string().find(needle) != std::string::npos) ++count;
    }
    return count;
}

// ---- atomic-publish primitives ---------------------------------------------

TEST(StorePrimitives, AtomicPublishCommitsWholeFile) {
    ScratchDir scratch;
    const std::string path = scratch.path("out.bin");
    xpcore::atomic_publish(path, [](std::ostream& out) { out << "payload-bytes"; });
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), "payload-bytes");
    EXPECT_EQ(count_files_matching(scratch.dir(), ".tmp"), 0u);
}

TEST(StorePrimitives, AtomicPublishThrowsWithoutTempLeftovers) {
    ScratchDir scratch;
    const std::string path = scratch.path("no_such_dir/out.bin");
    EXPECT_THROW(
        xpcore::atomic_publish(path, [](std::ostream& out) { out << "x"; }),
        xpcore::Error);
    EXPECT_FALSE(fs::exists(scratch.path("no_such_dir")));
}

TEST(StorePrimitives, TempPathsAreDistinct) {
    const std::string a = xpcore::temp_path_for("/tmp/f");
    const std::string b = xpcore::temp_path_for("/tmp/f");
    EXPECT_NE(a, b);
    EXPECT_EQ(a.rfind("/tmp/f.", 0), 0u);
}

TEST(StorePrimitives, QuarantineMovesAside) {
    ScratchDir scratch;
    const std::string path = scratch.path("bad.bin");
    std::ofstream(path, std::ios::binary) << "damaged";
    EXPECT_TRUE(xpcore::quarantine_corrupt(path));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
}

// ---- keyed blob store -------------------------------------------------------

TEST(StoreTest, RoundTripSurvivesReopen) {
    ScratchDir scratch;
    const std::string payload(1024, '\x7f');
    {
        Store store(store_config(scratch));
        EXPECT_FALSE(store.load("alpha").has_value());
        EXPECT_TRUE(store.put("alpha", payload));
        EXPECT_TRUE(store.put("beta", "small"));
        const auto loaded = store.load("alpha");
        ASSERT_TRUE(loaded.has_value());
        EXPECT_EQ(*loaded, payload);
    }
    // A second instance over the same directory indexes the published
    // blobs — this is the restart-survival contract.
    Store reopened(store_config(scratch));
    const auto alpha = reopened.load("alpha");
    const auto beta = reopened.load("beta");
    ASSERT_TRUE(alpha.has_value());
    ASSERT_TRUE(beta.has_value());
    EXPECT_EQ(*alpha, payload);
    EXPECT_EQ(*beta, "small");
    EXPECT_EQ(reopened.stats().entries, 2u);
    EXPECT_EQ(count_files_matching(fs::path(reopened.config().dir), ".tmp"), 0u);
}

TEST(StoreTest, PutReplacesExistingEntry) {
    ScratchDir scratch;
    Store store(store_config(scratch));
    EXPECT_TRUE(store.put("k", "v1"));
    EXPECT_TRUE(store.put("k", "v2-longer"));
    EXPECT_EQ(store.stats().entries, 1u);
    EXPECT_EQ(store.load("k").value_or(""), "v2-longer");
    EXPECT_EQ(store.stats().payload_bytes, 9u);
}

TEST(StoreTest, SchemaMismatchIsAPlainMissNotCorruption) {
    ScratchDir scratch;
    std::vector<std::string> warnings;
    Config config = store_config(scratch);
    config.schema_version = 1;
    config.warn = [&](const xpcore::Diagnostic& d) { warnings.push_back(d.format()); };
    {
        Store store(config);
        EXPECT_TRUE(store.put("k", "old-schema"));
    }
    config.schema_version = 2;
    Store stale(config);
    EXPECT_FALSE(stale.load("k").has_value());
    // A stale schema is expected after an upgrade: no warning, no
    // quarantine — the same slot is simply overwritten by the next put.
    EXPECT_EQ(stale.stats().repairs, 0u);
    EXPECT_TRUE(warnings.empty());
    EXPECT_EQ(count_files_matching(fs::path(config.dir), ".corrupt"), 0u);
    EXPECT_TRUE(stale.put("k", "new-schema"));
    EXPECT_EQ(stale.load("k").value_or(""), "new-schema");
}

TEST(StoreTest, CorruptPayloadIsQuarantinedWithWarning) {
    ScratchDir scratch;
    std::vector<std::string> warnings;
    Config config = store_config(scratch);
    config.warn = [&](const xpcore::Diagnostic& d) { warnings.push_back(d.format()); };
    Store store(config);
    ASSERT_TRUE(store.put("k", "precious-payload"));
    const std::string blob = store.path_for("k");
    // Damage the first payload byte: the header still decodes, the
    // byte-wise fingerprint does not.
    flip_byte(blob, 64 + std::string("k").size());

    Store fresh(config);
    EXPECT_FALSE(fresh.load("k").has_value());
    EXPECT_EQ(fresh.stats().repairs, 1u);
    EXPECT_EQ(fresh.stats().misses, 1u);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find(blob), std::string::npos) << warnings[0];
    EXPECT_FALSE(fs::exists(blob));
    EXPECT_TRUE(fs::exists(blob + ".corrupt"));

    // The next put repairs the slot in place.
    EXPECT_TRUE(fresh.put("k", "precious-payload"));
    EXPECT_EQ(fresh.load("k").value_or(""), "precious-payload");
}

TEST(StoreTest, HeaderCorruptBlobQuarantinedAtScan) {
    ScratchDir scratch;
    std::vector<std::string> warnings;
    Config config = store_config(scratch);
    config.warn = [&](const xpcore::Diagnostic& d) { warnings.push_back(d.format()); };
    std::string blob;
    {
        Store store(config);
        ASSERT_TRUE(store.put("k", "payload"));
        blob = store.path_for("k");
    }
    flip_byte(blob, 16);  // inside the checksummed header span

    Store scanned(config);
    EXPECT_EQ(scanned.stats().entries, 0u);
    EXPECT_EQ(scanned.stats().repairs, 1u);
    EXPECT_EQ(warnings.size(), 1u);
    EXPECT_TRUE(fs::exists(blob + ".corrupt"));
}

TEST(StoreTest, ForeignKeyInSlotIsAPlainMiss) {
    ScratchDir scratch;
    Store store(store_config(scratch));
    ASSERT_TRUE(store.put("original", "payload"));
    // Simulate an FNV slot collision: the blob of "original" sits in the
    // file "other" maps to. The header and fingerprint are intact, so this
    // must be a miss, not a quarantine.
    fs::rename(store.path_for("original"), store.path_for("other"));

    Store fresh(store_config(scratch));
    EXPECT_FALSE(fresh.load("other").has_value());
    EXPECT_EQ(fresh.stats().repairs, 0u);
    EXPECT_TRUE(fs::exists(fresh.path_for("other")));
}

TEST(StoreTest, CapacityEvictsOldestDeterministically) {
    ScratchDir scratch;
    Config config = store_config(scratch);
    config.capacity = 3;
    Store store(config);
    for (const char* key : {"a", "b", "c", "d", "e"}) {
        ASSERT_TRUE(store.put(key, std::string("payload-") + key));
    }
    EXPECT_EQ(store.stats().entries, 3u);
    EXPECT_EQ(store.stats().evictions, 2u);
    EXPECT_EQ(store.keys(), (std::vector<std::string>{"c", "d", "e"}));
    EXPECT_FALSE(store.load("a").has_value());
    EXPECT_FALSE(fs::exists(store.path_for("a")));
    EXPECT_TRUE(store.load("e").has_value());

    // Re-touching an entry re-puts it to the back of the eviction order.
    ASSERT_TRUE(store.put("c", "payload-c2"));
    ASSERT_TRUE(store.put("f", "payload-f"));
    EXPECT_EQ(store.keys(), (std::vector<std::string>{"e", "c", "f"}));
}

TEST(StoreTest, ExplicitEvictKeepsNewest) {
    ScratchDir scratch;
    Store store(store_config(scratch));
    for (const char* key : {"a", "b", "c"}) ASSERT_TRUE(store.put(key, key));
    EXPECT_EQ(store.evict(1), 2u);
    EXPECT_EQ(store.keys(), std::vector<std::string>{"c"});
    EXPECT_EQ(store.evict(1), 0u);
    EXPECT_EQ(store.evict(0), 1u);
    EXPECT_EQ(store.stats().entries, 0u);
}

TEST(StoreTest, EraseRemovesBlobFile) {
    ScratchDir scratch;
    Store store(store_config(scratch));
    ASSERT_TRUE(store.put("k", "v"));
    EXPECT_TRUE(store.erase("k"));
    EXPECT_FALSE(store.erase("k"));
    EXPECT_FALSE(fs::exists(store.path_for("k")));
    EXPECT_FALSE(store.load("k").has_value());
}

TEST(StoreTest, PutFailureWarnsInsteadOfThrowing) {
    ScratchDir scratch;
    // The store "directory" is a regular file: create_directories and the
    // temp-file open both fail, which must surface as a warning + false,
    // never an exception (satellite: no silently-swallowed write failures).
    const std::string blocked = scratch.path("blocked");
    std::ofstream(blocked) << "not a directory";

    std::vector<std::string> warnings;
    Config config;
    config.dir = blocked;
    config.prefix = "t";
    config.warn = [&](const xpcore::Diagnostic& d) { warnings.push_back(d.format()); };
    Store store(config);
    EXPECT_FALSE(store.put("k", "v"));
    EXPECT_EQ(store.stats().put_failures, 1u);
    EXPECT_EQ(store.stats().puts, 0u);
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_FALSE(store.load("k").has_value());
}

TEST(StoreTest, StatsCountersTrackTraffic) {
    ScratchDir scratch;
    Store store(store_config(scratch));
    store.load("missing");
    store.put("k", "v");
    store.load("k");
    store.load("k");
    const auto stats = store.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.puts, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.payload_bytes, 1u);
}

TEST(StoreTest, PrefixesAreIndependentKeySets) {
    ScratchDir scratch;
    Config a = store_config(scratch);
    a.prefix = "one";
    Config b = store_config(scratch);
    b.prefix = "two";
    Store first(a);
    Store second(b);
    ASSERT_TRUE(first.put("k", "from-one"));
    ASSERT_TRUE(second.put("k", "from-two"));
    EXPECT_EQ(Store(a).load("k").value_or(""), "from-one");
    EXPECT_EQ(Store(b).load("k").value_or(""), "from-two");
}

// ---- archive compaction -----------------------------------------------------

/// One two-point batch, distinct content per batch index.
measure::ExperimentSet batch_set(int index) {
    measure::ExperimentSet set({"p"});
    set.add({static_cast<double>(2 * index + 2)}, {1.0 + index, 1.5 + index});
    set.add({static_cast<double>(2 * index + 3)}, {2.0 + index});
    return set;
}

/// The archive's canonical text materialization, for byte-comparisons.
std::string archive_text(const std::string& path) {
    std::ostringstream out;
    measure::save_archive(measure::load_binary_archive_file(path), out);
    return out.str();
}

TEST(CompactTest, HundredBatchIngestCompactsToOneSectionPerKey) {
    ScratchDir scratch;
    const std::string path = scratch.path("live.arch");
    const std::vector<std::pair<std::string, std::string>> keys = {
        {"kernelA", "time"}, {"kernelB", "time"}, {"kernelA", "flops"}};
    for (int b = 0; b < 100; ++b) {
        measure::append_binary_file(path, keys[b % keys.size()].first,
                                    keys[b % keys.size()].second, batch_set(b));
    }
    const std::string before = archive_text(path);

    const measure::CompactResult result = measure::compact_binary_file(path);
    EXPECT_EQ(result.sections_before, 100u);
    EXPECT_EQ(result.sections_after, 3u);
    EXPECT_EQ(result.measurements, 200u);

    // The compacted image holds exactly one section per (kernel, metric)
    // and materializes byte-identically: compaction reorganizes the
    // section log, never the content.
    const auto reader = xpcore::archive::Reader::open(path, /*verify_content=*/true);
    EXPECT_EQ(reader.section_count(), 3u);
    EXPECT_EQ(reader.content_fingerprint(), result.content_fingerprint);
    EXPECT_EQ(archive_text(path), before);

    // Idempotent: compacting a compacted archive is a no-op rewrite.
    const measure::CompactResult again = measure::compact_binary_file(path);
    EXPECT_EQ(again.sections_before, 3u);
    EXPECT_EQ(again.sections_after, 3u);
    EXPECT_EQ(again.content_fingerprint, result.content_fingerprint);
    EXPECT_EQ(archive_text(path), before);
}

TEST(CompactTest, FirstOccurrenceOrderAndAppendOrderSurvive) {
    ScratchDir scratch;
    const std::string path = scratch.path("order.arch");
    // Interleave keys so first-occurrence order (B, A) differs from
    // alphabetical and batches of each key arrive out of step.
    measure::append_binary_file(path, "B", "time", batch_set(0));
    measure::append_binary_file(path, "A", "time", batch_set(1));
    measure::append_binary_file(path, "B", "time", batch_set(2));
    measure::append_binary_file(path, "A", "time", batch_set(3));
    const std::string before = archive_text(path);

    const auto result = measure::compact_binary_file(path);
    EXPECT_EQ(result.sections_after, 2u);
    const auto reader = xpcore::archive::Reader::open(path, /*verify_content=*/true);
    EXPECT_EQ(std::string(reader.section(0).kernel), "B");
    EXPECT_EQ(std::string(reader.section(1).kernel), "A");
    EXPECT_EQ(archive_text(path), before);
}

TEST(CompactTest, SingleSetArchiveKeepsShapeFlag) {
    ScratchDir scratch;
    const std::string path = scratch.path("set.arch");
    measure::append_binary_set_file(path, batch_set(0));
    measure::append_binary_set_file(path, batch_set(1));
    std::ostringstream before;
    measure::save_text(measure::load_binary_set_file(path), before);

    const auto result = measure::compact_binary_file(path);
    EXPECT_EQ(result.sections_before, 2u);
    EXPECT_EQ(result.sections_after, 1u);
    std::ostringstream after;
    measure::save_text(measure::load_binary_set_file(path), after);
    EXPECT_EQ(after.str(), before.str());
}

TEST(CompactTest, CorruptArchiveThrowsInsteadOfLaunderingDamage) {
    ScratchDir scratch;
    const std::string path = scratch.path("damaged.arch");
    measure::append_binary_file(path, "k", "time", batch_set(0));
    // Flip a payload byte just past the 128-byte header: the content
    // fingerprint no longer matches, so the up-front verify throws.
    flip_byte(path, 130);
    EXPECT_THROW(measure::compact_binary_file(path), xpcore::Error);
}

}  // namespace
