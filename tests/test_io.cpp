// Tests for the experiment-set text format: round trips, strictness rules,
// and the structured diagnostics every rejection must carry.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "measure/io.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace measure;

TEST(Io, RoundTrip) {
    ExperimentSet set({"p", "n"});
    set.add({8.0, 1024.0}, {1.25, 1.5, 1.125});
    set.add({16.0, 1024.0}, {2.5});
    std::stringstream buffer;
    save_text(set, buffer);
    const auto loaded = load_text(buffer);
    ASSERT_EQ(loaded.parameter_names(), set.parameter_names());
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.measurements()[0].point, (Coordinate{8.0, 1024.0}));
    EXPECT_EQ(loaded.measurements()[0].values, (std::vector<double>{1.25, 1.5, 1.125}));
    EXPECT_EQ(loaded.measurements()[1].values, (std::vector<double>{2.5}));
}

TEST(Io, RoundTripPreservesPrecision) {
    ExperimentSet set({"x"});
    set.add({3.0}, {0.1234567890123456789, 1e-17});
    std::stringstream buffer;
    save_text(set, buffer);
    const auto loaded = load_text(buffer);
    EXPECT_DOUBLE_EQ(loaded.measurements()[0].values[0], 0.1234567890123456789);
    EXPECT_DOUBLE_EQ(loaded.measurements()[0].values[1], 1e-17);
}

TEST(Io, IgnoresCommentsAndBlankLines) {
    std::stringstream in("# heading\n\nparams: p\n# a data comment\n2 : 1.5\n\n4 : 2.5\n");
    const auto set = load_text(in);
    EXPECT_EQ(set.size(), 2u);
}

TEST(Io, AcceptsIndentedCommentsAndWhitespaceLines) {
    std::stringstream in("params: p\n   # indented comment\n2 : 1.5\n   \t\n4 : 2.5\n");
    const auto set = load_text(in);
    EXPECT_EQ(set.size(), 2u);
}

TEST(Io, AcceptsLeadingAndTrailingBlanksOnDataRows) {
    std::stringstream in("params: p\n  2 : 1.5   \n\t4 : 2.5\t\n");
    const auto set = load_text(in);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.measurements()[1].point, (Coordinate{4.0}));
}

TEST(Io, AcceptsExplicitPlusSign) {
    std::stringstream in("params: p\n+2 : +1.5 +3e2\n");
    const auto set = load_text(in);
    ASSERT_EQ(set.size(), 1u);
    EXPECT_EQ(set.measurements()[0].point, (Coordinate{2.0}));
    EXPECT_EQ(set.measurements()[0].values, (std::vector<double>{1.5, 300.0}));
}

// ---------------------------------------------------------------------------
// CRLF (Windows-saved) files. The seed parser choked on the '\r' left on
// "blank" lines and treated it as a data row missing its ':' separator.

TEST(Io, CrlfDataLinesLoad) {
    std::stringstream in("params: p\r\n2 : 1.5\r\n4 : 2.5\r\n");
    const auto set = load_text(in);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.measurements()[0].values, (std::vector<double>{1.5}));
}

TEST(Io, CrlfBlankAndCommentLinesIgnored) {
    // A bare "\r\n" line used to throw "missing ':' separator".
    std::stringstream in("# saved on Windows\r\n\r\nparams: p\r\n\r\n2 : 1.5\r\n\r\n4 : 2.5\r\n");
    const auto set = load_text(in);
    EXPECT_EQ(set.size(), 2u);
}

TEST(Io, CrlfRoundTripsBitExact) {
    std::stringstream in("params: p\r\n2 : 0.1234567890123456789\r\n");
    const auto set = load_text(in);
    std::stringstream lf_in("params: p\n2 : 0.1234567890123456789\n");
    const auto lf_set = load_text(lf_in);
    ASSERT_EQ(set.size(), lf_set.size());
    EXPECT_EQ(set.measurements()[0].point, lf_set.measurements()[0].point);
    EXPECT_EQ(set.measurements()[0].values, lf_set.measurements()[0].values);
}

// ---------------------------------------------------------------------------
// Structured diagnostics: every rejection names source, line, and column.

TEST(Io, MissingHeaderIsParseErrorWithLocation) {
    std::stringstream in("2 : 1.5\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ParseError";
    } catch (const xpcore::ParseError& e) {
        EXPECT_EQ(e.source(), "<stream>");
        EXPECT_EQ(e.line(), 1u);
        EXPECT_NE(std::string(e.what()).find("params:"), std::string::npos);
    }
}

TEST(Io, EmptyInputIsParseError) {
    std::stringstream in("");
    EXPECT_THROW(load_text(in), xpcore::ParseError);
}

TEST(Io, HeaderWithoutParametersIsValidationError) {
    std::stringstream in("params:\n2 : 1.5\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ValidationError";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_NE(std::string(e.what()).find("parameters"), std::string::npos);
    }
}

TEST(Io, MissingColonIsParseError) {
    std::stringstream in("params: p\n2 1.5\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ParseError";
    } catch (const xpcore::ParseError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find(":"), std::string::npos);
    }
}

TEST(Io, ArityMismatchIsValidationError) {
    std::stringstream in("params: p n\n2 : 1.5\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ValidationError";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("arity"), std::string::npos);
    }
}

TEST(Io, MalformedNumberIsParseErrorWithColumn) {
    std::stringstream in("params: p\n2 : 1.5 4x7\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ParseError";
    } catch (const xpcore::ParseError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 9u);  // "4x7" starts at column 9
        EXPECT_NE(std::string(e.what()).find("4x7"), std::string::npos);
    }
}

TEST(Io, NoRepetitionsIsValidationError) {
    std::stringstream in("params: p\n2 :\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ValidationError";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_NE(std::string(e.what()).find("repetition"), std::string::npos);
    }
}

TEST(Io, NanValueIsValidationError) {
    std::stringstream in("params: p\n2 : nan\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ValidationError";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 5u);
        EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
    }
}

TEST(Io, InfCoordinateIsValidationError) {
    std::stringstream in("params: p\ninf : 1.5\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ValidationError";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 1u);
    }
}

TEST(Io, OverflowingValueIsValidationError) {
    std::stringstream in("params: p\n2 : 1e999\n");
    try {
        load_text(in);
        FAIL() << "expected xpcore::ValidationError";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 5u);
        EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
    }
}

TEST(Io, ErrorMessageCarriesSourceLineAndColumn) {
    std::stringstream in("params: p\n2 : 1.0\nbroken-line\n");
    try {
        load_text(in, "myfile.txt");
        FAIL() << "expected xpcore::Error";
    } catch (const xpcore::Error& e) {
        EXPECT_EQ(e.source(), "myfile.txt");
        EXPECT_EQ(e.line(), 3u);
        EXPECT_NE(std::string(e.what()).find("myfile.txt:3:"), std::string::npos);
    }
}

// Legacy interface contract: everything still derives from runtime_error.
TEST(Io, StructuredErrorsAreRuntimeErrors) {
    std::stringstream in("params: p\n2 1.5\n");
    EXPECT_THROW(load_text(in), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Non-throwing batch ingestion.

TEST(Io, TryLoadOkOnCleanInput) {
    std::stringstream in("params: p\n2 : 1.5\n4 : 2.5\n");
    const auto result = try_load_text(in);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.diagnostics.empty());
    EXPECT_EQ(result.set->size(), 2u);
}

TEST(Io, TryLoadCollectsAllRowDiagnostics) {
    std::stringstream in("params: p\n2 : 1.5\nbad row\n4 : nan\n8 : 3.5\n16 32 : 1\n");
    const auto result = try_load_text(in, "batch.txt");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.diagnostics.size(), 3u);
    EXPECT_EQ(result.diagnostics[0].line, 3u);
    EXPECT_EQ(result.diagnostics[1].line, 4u);
    EXPECT_EQ(result.diagnostics[2].line, 6u);
    for (const auto& diagnostic : result.diagnostics) {
        EXPECT_EQ(diagnostic.source, "batch.txt");
        EXPECT_FALSE(diagnostic.message.empty());
    }
}

TEST(Io, TryLoadNeverReturnsPartialSets) {
    // All-or-nothing: one bad row poisons the whole set so data cannot be
    // silently dropped.
    std::stringstream in("params: p\n2 : 1.5\nbad row\n");
    const auto result = try_load_text(in);
    EXPECT_FALSE(result.ok());
    EXPECT_FALSE(result.set.has_value());
}

TEST(Io, TryLoadHeaderFailureYieldsSingleDiagnostic) {
    std::stringstream in("not-a-header\n2 : 1.5\n");
    const auto result = try_load_text(in);
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].line, 1u);
}

TEST(Io, TryLoadMissingFileYieldsDiagnostic) {
    const auto result = try_load_text_file("/nonexistent/path/file.txt");
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].source, "/nonexistent/path/file.txt");
    EXPECT_NE(result.diagnostics[0].message.find("cannot open"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden corpus of known-bad (and known-good) files under tests/data/.

struct CorpusCase {
    const char* file;
    std::size_t line;     ///< expected diagnostic line (0 = don't check)
    std::size_t column;   ///< expected diagnostic column (0 = don't check)
    const char* message;  ///< substring the diagnostic must contain
};

class IoBadCorpus : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(IoBadCorpus, RejectsWithStructuredDiagnostic) {
    const auto& c = GetParam();
    const std::string path = std::string(XPDNN_TEST_DATA_DIR) + "/" + c.file;
    const auto result = try_load_text_file(path);
    ASSERT_FALSE(result.ok()) << path << " unexpectedly loaded";
    ASSERT_FALSE(result.diagnostics.empty());
    const auto& diagnostic = result.diagnostics.front();
    EXPECT_EQ(diagnostic.source, path);
    if (c.line > 0) EXPECT_EQ(diagnostic.line, c.line) << diagnostic.format();
    if (c.column > 0) EXPECT_EQ(diagnostic.column, c.column) << diagnostic.format();
    EXPECT_NE(diagnostic.message.find(c.message), std::string::npos) << diagnostic.format();
    // The throwing interface must agree with the collecting one.
    EXPECT_THROW(load_text_file(path), xpcore::Error);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, IoBadCorpus,
    ::testing::Values(CorpusCase{"bad_no_header.txt", 1, 1, "params:"},
                      CorpusCase{"bad_empty_header.txt", 1, 1, "parameters"},
                      CorpusCase{"bad_missing_colon.txt", 2, 1, "':' separator"},
                      CorpusCase{"bad_malformed_number.txt", 2, 1, "malformed numeric"},
                      CorpusCase{"bad_arity.txt", 2, 1, "arity"},
                      CorpusCase{"bad_no_values.txt", 2, 3, "repetition"},
                      CorpusCase{"bad_nan.txt", 2, 5, "non-finite"},
                      CorpusCase{"bad_inf.txt", 3, 5, "non-finite"},
                      CorpusCase{"bad_overflow.txt", 2, 5, "out of range"}),
    [](const auto& info) {
        std::string name = info.param.file;
        name = name.substr(0, name.find('.'));
        return name;
    });

TEST(IoGoodCorpus, CrlfFixtureLoads) {
    const std::string path = std::string(XPDNN_TEST_DATA_DIR) + "/good_crlf.txt";
    const auto set = load_text_file(path);
    EXPECT_EQ(set.size(), 3u);
    EXPECT_EQ(set.parameter_names(), (std::vector<std::string>{"p", "n"}));
}

/// Property: arbitrary generated experiment sets survive a round trip.
class IoRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundTripProperty, RandomSetsAreStable) {
    xpcore::Rng rng(GetParam());
    const std::size_t params = 1 + GetParam() % 3;
    std::vector<std::string> names;
    for (std::size_t l = 0; l < params; ++l) names.push_back("p" + std::to_string(l));
    ExperimentSet set(names);
    const std::size_t points = 1 + static_cast<std::size_t>(rng.uniform_int(1, 20));
    for (std::size_t i = 0; i < points; ++i) {
        Coordinate point(params);
        for (auto& x : point) x = std::round(rng.uniform(1, 1e6));
        std::vector<double> values(1 + static_cast<std::size_t>(rng.uniform_int(0, 4)));
        for (auto& v : values) v = rng.uniform(1e-9, 1e9);
        set.add(std::move(point), std::move(values));
    }

    std::stringstream buffer;
    save_text(set, buffer);
    const auto loaded = load_text(buffer);
    ASSERT_EQ(loaded.size(), set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_EQ(loaded.measurements()[i].point, set.measurements()[i].point);
        EXPECT_EQ(loaded.measurements()[i].values, set.measurements()[i].values);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripProperty, ::testing::Range(1, 11));

TEST(Io, FileRoundTrip) {
    ExperimentSet set({"p"});
    set.add({2.0}, {1.0, 2.0});
    const std::string path = ::testing::TempDir() + "/xpdnn_io_test.txt";
    save_text_file(set, path);
    const auto loaded = load_text_file(path);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.parameter_names(), std::vector<std::string>{"p"});
}

TEST(Io, MissingFileThrows) {
    EXPECT_THROW(load_text_file("/nonexistent/path/file.txt"), std::runtime_error);
}

}  // namespace
