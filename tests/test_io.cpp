// Tests for the experiment-set text format.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "measure/io.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace measure;

TEST(Io, RoundTrip) {
    ExperimentSet set({"p", "n"});
    set.add({8.0, 1024.0}, {1.25, 1.5, 1.125});
    set.add({16.0, 1024.0}, {2.5});
    std::stringstream buffer;
    save_text(set, buffer);
    const auto loaded = load_text(buffer);
    ASSERT_EQ(loaded.parameter_names(), set.parameter_names());
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.measurements()[0].point, (Coordinate{8.0, 1024.0}));
    EXPECT_EQ(loaded.measurements()[0].values, (std::vector<double>{1.25, 1.5, 1.125}));
    EXPECT_EQ(loaded.measurements()[1].values, (std::vector<double>{2.5}));
}

TEST(Io, RoundTripPreservesPrecision) {
    ExperimentSet set({"x"});
    set.add({3.0}, {0.1234567890123456789, 1e-17});
    std::stringstream buffer;
    save_text(set, buffer);
    const auto loaded = load_text(buffer);
    EXPECT_DOUBLE_EQ(loaded.measurements()[0].values[0], 0.1234567890123456789);
    EXPECT_DOUBLE_EQ(loaded.measurements()[0].values[1], 1e-17);
}

TEST(Io, IgnoresCommentsAndBlankLines) {
    std::stringstream in("# heading\n\nparams: p\n# a data comment\n2 : 1.5\n\n4 : 2.5\n");
    const auto set = load_text(in);
    EXPECT_EQ(set.size(), 2u);
}

TEST(Io, MissingHeaderThrows) {
    std::stringstream in("2 : 1.5\n");
    EXPECT_THROW(load_text(in), std::runtime_error);
}

TEST(Io, EmptyInputThrows) {
    std::stringstream in("");
    EXPECT_THROW(load_text(in), std::runtime_error);
}

TEST(Io, MissingColonThrows) {
    std::stringstream in("params: p\n2 1.5\n");
    EXPECT_THROW(load_text(in), std::runtime_error);
}

TEST(Io, ArityMismatchThrows) {
    std::stringstream in("params: p n\n2 : 1.5\n");
    EXPECT_THROW(load_text(in), std::runtime_error);
}

TEST(Io, MalformedNumberThrows) {
    std::stringstream in("params: p\n2x : 1.5\n");
    EXPECT_THROW(load_text(in), std::runtime_error);
}

TEST(Io, NoRepetitionsThrows) {
    std::stringstream in("params: p\n2 :\n");
    EXPECT_THROW(load_text(in), std::runtime_error);
}

TEST(Io, ErrorMessageCarriesLineNumber) {
    std::stringstream in("params: p\n2 : 1.0\nbroken-line\n");
    try {
        load_text(in);
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

/// Property: arbitrary generated experiment sets survive a round trip.
class IoRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(IoRoundTripProperty, RandomSetsAreStable) {
    xpcore::Rng rng(GetParam());
    const std::size_t params = 1 + GetParam() % 3;
    std::vector<std::string> names;
    for (std::size_t l = 0; l < params; ++l) names.push_back("p" + std::to_string(l));
    ExperimentSet set(names);
    const std::size_t points = 1 + static_cast<std::size_t>(rng.uniform_int(1, 20));
    for (std::size_t i = 0; i < points; ++i) {
        Coordinate point(params);
        for (auto& x : point) x = std::round(rng.uniform(1, 1e6));
        std::vector<double> values(1 + static_cast<std::size_t>(rng.uniform_int(0, 4)));
        for (auto& v : values) v = rng.uniform(1e-9, 1e9);
        set.add(std::move(point), std::move(values));
    }

    std::stringstream buffer;
    save_text(set, buffer);
    const auto loaded = load_text(buffer);
    ASSERT_EQ(loaded.size(), set.size());
    for (std::size_t i = 0; i < set.size(); ++i) {
        EXPECT_EQ(loaded.measurements()[i].point, set.measurements()[i].point);
        EXPECT_EQ(loaded.measurements()[i].values, set.measurements()[i].values);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripProperty, ::testing::Range(1, 11));

TEST(Io, FileRoundTrip) {
    ExperimentSet set({"p"});
    set.add({2.0}, {1.0, 2.0});
    const std::string path = ::testing::TempDir() + "/xpdnn_io_test.txt";
    save_text_file(set, path);
    const auto loaded = load_text_file(path);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.parameter_names(), std::vector<std::string>{"p"});
}

TEST(Io, MissingFileThrows) {
    EXPECT_THROW(load_text_file("/nonexistent/path/file.txt"), std::runtime_error);
}

}  // namespace
