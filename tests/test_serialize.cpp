// Tests for PMNF model JSON (de)serialization.

#include <gtest/gtest.h>

#include "pmnf/exponents.hpp"
#include "pmnf/serialize.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace pmnf;

Model sample_model() {
    CompoundTerm t1{0.11,
                    {{0, {Rational(1, 3), 0}}, {1, {Rational(1), 0}}, {2, {Rational(4, 5), 0}}}};
    CompoundTerm t2{-3.5e-4, {{2, {Rational(0), 2}}}};
    return Model(8.51, {t1, t2});
}

TEST(ModelJson, RoundTripPreservesEvaluation) {
    const Model original = sample_model();
    const Model loaded = from_json(to_json(original));
    const std::vector<double> points[] = {{8, 2, 32}, {512, 10, 96}, {32768, 12, 160}};
    for (const auto& p : points) {
        EXPECT_DOUBLE_EQ(loaded.evaluate(p), original.evaluate(p));
    }
}

TEST(ModelJson, RoundTripPreservesStructure) {
    const Model loaded = from_json(to_json(sample_model()));
    ASSERT_EQ(loaded.terms().size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.constant(), 8.51);
    EXPECT_EQ(loaded.terms()[0].factors.size(), 3u);
    EXPECT_EQ(loaded.terms()[0].factors[0].cls.i, Rational(1, 3));
    EXPECT_EQ(loaded.terms()[1].factors[0].cls.j, 2);
    EXPECT_DOUBLE_EQ(loaded.terms()[1].coefficient, -3.5e-4);
}

TEST(ModelJson, ConstantModel) {
    const Model loaded = from_json(to_json(Model::constant_model(42.0)));
    EXPECT_DOUBLE_EQ(loaded.constant(), 42.0);
    EXPECT_TRUE(loaded.terms().empty());
}

TEST(ModelJson, ToJsonIsStable) {
    EXPECT_EQ(to_json(sample_model()), to_json(sample_model()));
}

TEST(ModelJson, ExpectedShape) {
    const std::string json = to_json(Model::constant_model(1.0));
    EXPECT_EQ(json, "{\"constant\": 1, \"terms\": []}");
}

TEST(ModelJson, ParsesWhitespaceTolerantInput) {
    const std::string json = R"({
        "constant" : 2.0 ,
        "terms" : [
            { "coefficient": 3.0,
              "factors": [ { "parameter": 0, "i": [ 1 , 2 ], "j": 1 } ] }
        ]
    })";
    const Model model = from_json(json);
    EXPECT_DOUBLE_EQ(model.constant(), 2.0);
    ASSERT_EQ(model.terms().size(), 1u);
    EXPECT_EQ(model.terms()[0].factors[0].cls.i, Rational(1, 2));
}

TEST(ModelJson, RationalIsNormalizedOnLoad) {
    const std::string json =
        R"({"constant": 0, "terms": [{"coefficient": 1, "factors": [{"parameter": 0, "i": [2, 4], "j": 0}]}]})";
    const Model model = from_json(json);
    EXPECT_EQ(model.terms()[0].factors[0].cls.i, Rational(1, 2));
}

TEST(ModelJson, MalformedInputsThrow) {
    EXPECT_THROW(from_json(""), std::runtime_error);
    EXPECT_THROW(from_json("{}"), std::runtime_error);            // no keys at all
    EXPECT_THROW(from_json("{\"terms\": []}"), std::runtime_error);  // missing constant
    EXPECT_THROW(from_json("{\"constant\": }"), std::runtime_error);
    EXPECT_THROW(from_json("{\"constant\": 1, \"bogus\": 2}"), std::runtime_error);
    EXPECT_THROW(from_json("{\"constant\": 1} trailing"), std::runtime_error);
    EXPECT_THROW(from_json(R"({"constant": 1, "terms": [{"factors": []}]})"),
                 std::runtime_error);  // term without coefficient
    EXPECT_THROW(
        from_json(
            R"({"constant": 0, "terms": [{"coefficient": 1, "factors": [{"parameter": 0, "i": [1, 0], "j": 0}]}]})"),
        std::runtime_error);  // zero denominator
    EXPECT_THROW(
        from_json(
            R"({"constant": 0, "terms": [{"coefficient": 1, "factors": [{"parameter": -1, "i": [1, 1], "j": 0}]}]})"),
        std::runtime_error);  // negative parameter index
}

/// Property: random PMNF models survive a JSON round trip bit-exactly.
class JsonRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTripProperty, RandomModelsAreStable) {
    xpcore::Rng rng(GetParam() * 7919);
    const std::size_t params = 1 + GetParam() % 3;
    const auto classes = pmnf::exponent_set();
    std::vector<CompoundTerm> terms;
    const std::size_t term_count = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    for (std::size_t t = 0; t < term_count; ++t) {
        CompoundTerm term;
        term.coefficient = rng.uniform(-1000.0, 1000.0);
        for (std::size_t l = 0; l < params; ++l) {
            if (rng.chance(0.7)) {
                term.factors.push_back(
                    {l, classes[rng.uniform_int(0, static_cast<std::int64_t>(classes.size()) - 1)]});
            }
        }
        terms.push_back(std::move(term));
    }
    const Model original(rng.uniform(-100.0, 100.0), std::move(terms));
    const Model loaded = from_json(to_json(original));

    for (int trial = 0; trial < 5; ++trial) {
        std::vector<double> point(params);
        for (auto& x : point) x = rng.uniform(2.0, 1e5);
        EXPECT_DOUBLE_EQ(loaded.evaluate(point), original.evaluate(point));
    }
    EXPECT_EQ(loaded.to_string(), original.to_string());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripProperty, ::testing::Range(1, 11));

TEST(ModelJson, ErrorCarriesOffset) {
    try {
        from_json("{\"constant\": oops}");
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
}

}  // namespace
