// Thread-count invariance of the whole modeling pipeline: the parallel
// compute layer (blocked GEMM, parallel data generation, parallel CV
// ranking, sharded-gradient training) must produce bit-identical results at
// 0, 1, and 4 workers — XPDNN_THREADS is a speed knob, never a results knob.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "dnn/modeler.hpp"
#include "dnn/training_data.hpp"
#include "nn/optimizer.hpp"
#include "nn/tensor.hpp"
#include "nn/trainer.hpp"
#include "pmnf/exponents.hpp"
#include "regression/search.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/thread_pool.hpp"

namespace {

/// Runs the body once per global worker count and restores the default
/// global pool afterwards (the data-generation and CV paths use
/// ThreadPool::global(), so the test has to swap the singleton).
class GlobalPoolSweep : public ::testing::Test {
protected:
    void TearDown() override {
        xpcore::ThreadPool::reset_global();
        nn::set_gemm_parallel_threshold(0);
    }
};

dnn::GeneratorConfig tiny_generator() {
    dnn::GeneratorConfig config;
    config.samples_per_class = 12;
    return config;
}

dnn::DnnConfig tiny_config() {
    dnn::DnnConfig config;
    config.hidden = {32, 16};
    config.pretrain_samples_per_class = 40;
    config.pretrain_epochs = 1;
    config.adapt_samples_per_class = 20;
    config.adapt_epochs = 1;
    return config;
}

measure::ExperimentSet linear_kernel_set() {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {5.0 + 2.0 * p});
    return set;
}

TEST_F(GlobalPoolSweep, TrainingDataBitIdenticalAcrossThreadCounts) {
    const dnn::GeneratorConfig config = tiny_generator();

    xpcore::ThreadPool::reset_global(0);
    xpcore::Rng rng_serial(42);
    const nn::Dataset serial = dnn::generate_training_data(config, rng_serial);

    for (std::size_t workers : {1u, 4u}) {
        xpcore::ThreadPool::reset_global(workers);
        xpcore::Rng rng(42);
        const nn::Dataset parallel = dnn::generate_training_data(config, rng);
        ASSERT_EQ(parallel.size(), serial.size());
        EXPECT_EQ(parallel.labels, serial.labels) << workers << " workers";
        ASSERT_EQ(parallel.inputs.size(), serial.inputs.size());
        EXPECT_EQ(std::memcmp(parallel.inputs.data(), serial.inputs.data(),
                              serial.inputs.size() * sizeof(float)),
                  0)
            << workers << " workers";
    }
}

TEST_F(GlobalPoolSweep, TrainingDataRngStateMatchesAfterGeneration) {
    // The caller's Rng must advance identically regardless of the worker
    // count (streams are split off sequentially before the parallel loop).
    const dnn::GeneratorConfig config = tiny_generator();

    xpcore::ThreadPool::reset_global(0);
    xpcore::Rng rng_serial(7);
    (void)dnn::generate_training_data(config, rng_serial);
    const double next_serial = rng_serial.uniform(0, 1);

    xpcore::ThreadPool::reset_global(4);
    xpcore::Rng rng_parallel(7);
    (void)dnn::generate_training_data(config, rng_parallel);
    EXPECT_EQ(rng_parallel.uniform(0, 1), next_serial);
}

TEST_F(GlobalPoolSweep, PretrainAndModelIdenticalAcrossThreadCounts) {
    // End-to-end acceptance: pretrain + model() selects the exact same
    // model (terms and scores) at 0, 1, and 4 workers. The GEMM parallel
    // threshold is forced to 1 so even the tiny test matrices take the
    // parallel dispatch path.
    nn::set_gemm_parallel_threshold(1);
    const measure::ExperimentSet set = linear_kernel_set();

    std::string baseline_model;
    double baseline_cv = 0.0, baseline_fit = 0.0;
    for (std::size_t workers : {0u, 1u, 4u}) {
        xpcore::ThreadPool::reset_global(workers);
        dnn::DnnModeler modeler(tiny_config(), /*seed=*/11);
        modeler.pretrain();
        const regression::ModelResult result = modeler.model(set);
        const std::string description = result.model.to_string();
        if (workers == 0) {
            baseline_model = description;
            baseline_cv = result.cv_smape;
            baseline_fit = result.fit_smape;
            EXPECT_FALSE(baseline_model.empty());
        } else {
            EXPECT_EQ(description, baseline_model) << workers << " workers";
            EXPECT_EQ(result.cv_smape, baseline_cv) << workers << " workers";
            EXPECT_EQ(result.fit_smape, baseline_fit) << workers << " workers";
        }
    }
}

TEST_F(GlobalPoolSweep, ShardedGradientWeightsBitIdenticalAcrossThreadCounts) {
    // The deterministic-reduction contract of Trainer::Config::grad_shards:
    // for a fixed shard count, the trained weight *bytes* depend only on the
    // data and seed — never on the worker count — at every SIMD level this
    // host can run. grad_shards = 8 with batch_size = 128 also drives the
    // final 4-row batch through the empty-trailing-shards path.
    nn::set_gemm_parallel_threshold(1);
    xpcore::ThreadPool::reset_global(0);
    xpcore::Rng data_rng(5);
    const nn::Dataset data = dnn::generate_training_data(tiny_generator(), data_rng);

    std::vector<xpcore::simd::Level> levels = {xpcore::simd::Level::Scalar};
    if (xpcore::simd::max_level() >= xpcore::simd::Level::Avx2) {
        levels.push_back(xpcore::simd::Level::Avx2);
    }
    if (xpcore::simd::max_level() >= xpcore::simd::Level::Avx512) {
        levels.push_back(xpcore::simd::Level::Avx512);
    }

    auto train_weights = [&](std::size_t shards) {
        nn::Network net = [&] {
            xpcore::Rng init_rng(17);
            return nn::Network::mlp({data.inputs.cols(), 32, pmnf::class_count()}, init_rng,
                                    nn::Activation::Tanh);
        }();
        nn::AdaMax optimizer;
        nn::Trainer::Config config;
        config.epochs = 2;
        config.batch_size = 128;
        config.grad_shards = shards;
        nn::Trainer trainer(net, optimizer, config);
        xpcore::Rng train_rng(23);
        trainer.fit(data, train_rng);
        std::vector<float> flat;
        for (const nn::Param& p : net.params()) {
            flat.insert(flat.end(), p.value->data(), p.value->data() + p.value->size());
        }
        return flat;
    };

    for (xpcore::simd::Level level : levels) {
        xpcore::simd::LevelGuard guard(level);
        std::vector<float> baseline;
        for (std::size_t workers : {0u, 1u, 4u}) {
            xpcore::ThreadPool::reset_global(workers);
            const std::vector<float> weights = train_weights(8);
            ASSERT_FALSE(weights.empty());
            if (workers == 0) {
                baseline = weights;
            } else {
                ASSERT_EQ(weights.size(), baseline.size());
                EXPECT_EQ(std::memcmp(weights.data(), baseline.data(),
                                      baseline.size() * sizeof(float)),
                          0)
                    << workers << " workers at " << xpcore::simd::level_name(level);
            }
        }
    }
}

TEST_F(GlobalPoolSweep, SingleShardMatchesLegacySerialTrainer) {
    // grad_shards = 1 must stay on the untouched serial path: identical
    // bytes to a grad_shards-agnostic trainer run (the pre-sharding code).
    xpcore::ThreadPool::reset_global(0);
    xpcore::Rng data_rng(6);
    const nn::Dataset data = dnn::generate_training_data(tiny_generator(), data_rng);

    auto train_weights = [&](std::size_t shards) {
        nn::Network net = [&] {
            xpcore::Rng init_rng(29);
            return nn::Network::mlp({data.inputs.cols(), 24, pmnf::class_count()}, init_rng,
                                    nn::Activation::Tanh);
        }();
        nn::AdaMax optimizer;
        nn::Trainer::Config config;
        config.epochs = 1;
        config.batch_size = 64;
        config.grad_shards = shards;
        nn::Trainer trainer(net, optimizer, config);
        xpcore::Rng train_rng(31);
        trainer.fit(data, train_rng);
        std::vector<float> flat;
        for (const nn::Param& p : net.params()) {
            flat.insert(flat.end(), p.value->data(), p.value->data() + p.value->size());
        }
        return flat;
    };

    const std::vector<float> serial = train_weights(1);
    // A sharded run with R > 1 regroups the FP reduction, so its weights may
    // (and generally do) differ in the last ulp — but loss/accuracy must stay
    // statistically equivalent; here we only pin that R = 1 is bitwise stable
    // across repeated runs (i.e. the legacy path is untouched and pure).
    const std::vector<float> serial_again = train_weights(1);
    ASSERT_EQ(serial.size(), serial_again.size());
    EXPECT_EQ(std::memcmp(serial.data(), serial_again.data(), serial.size() * sizeof(float)),
              0);
}

TEST_F(GlobalPoolSweep, CandidateClassesIdenticalAcrossThreadCounts) {
    nn::set_gemm_parallel_threshold(1);
    measure::ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double n : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({p, n}, {1.0 + 0.5 * p * n});
        }
    }

    std::vector<std::vector<pmnf::TermClass>> baseline;
    for (std::size_t workers : {0u, 4u}) {
        xpcore::ThreadPool::reset_global(workers);
        dnn::DnnModeler modeler(tiny_config(), /*seed=*/3);
        modeler.pretrain();
        const auto candidates = modeler.candidate_classes(set);
        ASSERT_EQ(candidates.size(), 2u);
        if (workers == 0) {
            baseline = candidates;
        } else {
            ASSERT_EQ(candidates.size(), baseline.size());
            for (std::size_t param = 0; param < candidates.size(); ++param) {
                ASSERT_EQ(candidates[param].size(), baseline[param].size()) << param;
                for (std::size_t c = 0; c < candidates[param].size(); ++c) {
                    EXPECT_TRUE(candidates[param][c] == baseline[param][c]) << param << "/" << c;
                }
            }
        }
    }
}

}  // namespace
