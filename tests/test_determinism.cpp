// Thread-count invariance of the whole modeling pipeline: the parallel
// compute layer (blocked GEMM, parallel data generation, parallel CV
// ranking) must produce bit-identical results at 0, 1, and 4 workers —
// XPDNN_THREADS is a speed knob, never a results knob.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "dnn/modeler.hpp"
#include "dnn/training_data.hpp"
#include "nn/tensor.hpp"
#include "regression/search.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/thread_pool.hpp"

namespace {

/// Runs the body once per global worker count and restores the default
/// global pool afterwards (the data-generation and CV paths use
/// ThreadPool::global(), so the test has to swap the singleton).
class GlobalPoolSweep : public ::testing::Test {
protected:
    void TearDown() override {
        xpcore::ThreadPool::reset_global();
        nn::set_gemm_parallel_threshold(0);
    }
};

dnn::GeneratorConfig tiny_generator() {
    dnn::GeneratorConfig config;
    config.samples_per_class = 12;
    return config;
}

dnn::DnnConfig tiny_config() {
    dnn::DnnConfig config;
    config.hidden = {32, 16};
    config.pretrain_samples_per_class = 40;
    config.pretrain_epochs = 1;
    config.adapt_samples_per_class = 20;
    config.adapt_epochs = 1;
    return config;
}

measure::ExperimentSet linear_kernel_set() {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {5.0 + 2.0 * p});
    return set;
}

TEST_F(GlobalPoolSweep, TrainingDataBitIdenticalAcrossThreadCounts) {
    const dnn::GeneratorConfig config = tiny_generator();

    xpcore::ThreadPool::reset_global(0);
    xpcore::Rng rng_serial(42);
    const nn::Dataset serial = dnn::generate_training_data(config, rng_serial);

    for (std::size_t workers : {1u, 4u}) {
        xpcore::ThreadPool::reset_global(workers);
        xpcore::Rng rng(42);
        const nn::Dataset parallel = dnn::generate_training_data(config, rng);
        ASSERT_EQ(parallel.size(), serial.size());
        EXPECT_EQ(parallel.labels, serial.labels) << workers << " workers";
        ASSERT_EQ(parallel.inputs.size(), serial.inputs.size());
        EXPECT_EQ(std::memcmp(parallel.inputs.data(), serial.inputs.data(),
                              serial.inputs.size() * sizeof(float)),
                  0)
            << workers << " workers";
    }
}

TEST_F(GlobalPoolSweep, TrainingDataRngStateMatchesAfterGeneration) {
    // The caller's Rng must advance identically regardless of the worker
    // count (streams are split off sequentially before the parallel loop).
    const dnn::GeneratorConfig config = tiny_generator();

    xpcore::ThreadPool::reset_global(0);
    xpcore::Rng rng_serial(7);
    (void)dnn::generate_training_data(config, rng_serial);
    const double next_serial = rng_serial.uniform(0, 1);

    xpcore::ThreadPool::reset_global(4);
    xpcore::Rng rng_parallel(7);
    (void)dnn::generate_training_data(config, rng_parallel);
    EXPECT_EQ(rng_parallel.uniform(0, 1), next_serial);
}

TEST_F(GlobalPoolSweep, PretrainAndModelIdenticalAcrossThreadCounts) {
    // End-to-end acceptance: pretrain + model() selects the exact same
    // model (terms and scores) at 0, 1, and 4 workers. The GEMM parallel
    // threshold is forced to 1 so even the tiny test matrices take the
    // parallel dispatch path.
    nn::set_gemm_parallel_threshold(1);
    const measure::ExperimentSet set = linear_kernel_set();

    std::string baseline_model;
    double baseline_cv = 0.0, baseline_fit = 0.0;
    for (std::size_t workers : {0u, 1u, 4u}) {
        xpcore::ThreadPool::reset_global(workers);
        dnn::DnnModeler modeler(tiny_config(), /*seed=*/11);
        modeler.pretrain();
        const regression::ModelResult result = modeler.model(set);
        const std::string description = result.model.to_string();
        if (workers == 0) {
            baseline_model = description;
            baseline_cv = result.cv_smape;
            baseline_fit = result.fit_smape;
            EXPECT_FALSE(baseline_model.empty());
        } else {
            EXPECT_EQ(description, baseline_model) << workers << " workers";
            EXPECT_EQ(result.cv_smape, baseline_cv) << workers << " workers";
            EXPECT_EQ(result.fit_smape, baseline_fit) << workers << " workers";
        }
    }
}

TEST_F(GlobalPoolSweep, CandidateClassesIdenticalAcrossThreadCounts) {
    nn::set_gemm_parallel_threshold(1);
    measure::ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double n : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({p, n}, {1.0 + 0.5 * p * n});
        }
    }

    std::vector<std::vector<pmnf::TermClass>> baseline;
    for (std::size_t workers : {0u, 4u}) {
        xpcore::ThreadPool::reset_global(workers);
        dnn::DnnModeler modeler(tiny_config(), /*seed=*/3);
        modeler.pretrain();
        const auto candidates = modeler.candidate_classes(set);
        ASSERT_EQ(candidates.size(), 2u);
        if (workers == 0) {
            baseline = candidates;
        } else {
            ASSERT_EQ(candidates.size(), baseline.size());
            for (std::size_t param = 0; param < candidates.size(); ++param) {
                ASSERT_EQ(candidates[param].size(), baseline[param].size()) << param;
                for (std::size_t c = 0; c < candidates[param].size(); ++c) {
                    EXPECT_TRUE(candidates[param][c] == baseline[param][c]) << param << "/" << c;
                }
            }
        }
    }
}

}  // namespace
