// Tests for SMAPE / MAPE / relative error.

#include <gtest/gtest.h>

#include <vector>

#include "xpcore/metrics.hpp"

namespace {

using namespace xpcore;

TEST(Smape, ZeroForPerfectPrediction) {
    const std::vector<double> a = {1, 2, 3};
    EXPECT_DOUBLE_EQ(smape(a, a), 0.0);
}

TEST(Smape, KnownValue) {
    // |2-1| / ((1+2)/2) = 2/3 -> 100 * 2/3.
    const std::vector<double> pred = {2};
    const std::vector<double> actual = {1};
    EXPECT_NEAR(smape(pred, actual), 100.0 * 2.0 / 3.0, 1e-12);
}

TEST(Smape, SymmetricInArguments) {
    const std::vector<double> a = {1, 5, 9};
    const std::vector<double> b = {2, 4, 10};
    EXPECT_DOUBLE_EQ(smape(a, b), smape(b, a));
}

TEST(Smape, UpperBound200) {
    const std::vector<double> pred = {1, 1};
    const std::vector<double> actual = {-1, -1};
    EXPECT_DOUBLE_EQ(smape(pred, actual), 200.0);
}

TEST(Smape, BothZeroCountsAsPerfect) {
    const std::vector<double> pred = {0, 2};
    const std::vector<double> actual = {0, 2};
    EXPECT_DOUBLE_EQ(smape(pred, actual), 0.0);
}

TEST(Smape, BothZeroPairsExcludedFromDenominator) {
    // Regression: both-zero pairs were skipped from the sum but still
    // divided into it, deflating the score. The (2,1) pair contributes
    // 100*2/3; averaged over the one counted pair, not both.
    const std::vector<double> pred = {0, 2};
    const std::vector<double> actual = {0, 1};
    EXPECT_NEAR(smape(pred, actual), 100.0 * 2.0 / 3.0, 1e-12);
}

TEST(Smape, AllPairsBothZeroIsZero) {
    const std::vector<double> zeros = {0, 0, 0};
    EXPECT_DOUBLE_EQ(smape(zeros, zeros), 0.0);
}

TEST(Smape, MatchesMapeCountingConvention) {
    // smape and mape must agree on which pairs are "uncountable": with one
    // degenerate pair and one 10%-off pair, both average over one pair.
    const std::vector<double> pred = {0, 110};
    const std::vector<double> actual = {0, 100};
    EXPECT_GT(smape(pred, actual), 0.0);
    EXPECT_DOUBLE_EQ(mape(pred, actual), 10.0);
}

TEST(Smape, EmptyIsZero) {
    EXPECT_DOUBLE_EQ(smape({}, {}), 0.0);
}

TEST(SmapeTerm, PerPairContributions) {
    EXPECT_DOUBLE_EQ(smape_term(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(smape_term(2.0, 2.0), 0.0);
    EXPECT_NEAR(smape_term(2.0, 1.0), 100.0 * 2.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(smape_term(1.0, -1.0), 200.0);  // worst case
    EXPECT_DOUBLE_EQ(smape_term(0.0, 5.0), 200.0);   // zero prediction, nonzero actual
}

TEST(Mape, KnownValue) {
    const std::vector<double> pred = {110, 90};
    const std::vector<double> actual = {100, 100};
    EXPECT_DOUBLE_EQ(mape(pred, actual), 10.0);
}

TEST(Mape, SkipsZeroActuals) {
    const std::vector<double> pred = {5, 110};
    const std::vector<double> actual = {0, 100};
    EXPECT_DOUBLE_EQ(mape(pred, actual), 10.0);
}

TEST(Mape, AllZeroActualsIsZero) {
    const std::vector<double> pred = {5};
    const std::vector<double> actual = {0};
    EXPECT_DOUBLE_EQ(mape(pred, actual), 0.0);
}

TEST(RelativeError, Basics) {
    EXPECT_DOUBLE_EQ(relative_error_pct(110, 100), 10.0);
    EXPECT_DOUBLE_EQ(relative_error_pct(90, 100), 10.0);
    EXPECT_DOUBLE_EQ(relative_error_pct(100, 100), 0.0);
}

TEST(RelativeError, NegativeActual) {
    EXPECT_DOUBLE_EQ(relative_error_pct(-90, -100), 10.0);
}

TEST(RelativeError, ZeroActualGraceful) {
    EXPECT_DOUBLE_EQ(relative_error_pct(0.5, 0.0), 50.0);
}

}  // namespace
