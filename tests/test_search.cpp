// Tests for the hypothesis search space: single-parameter ranking, set
// partitions, combination building, and combination selection.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <set>

#include "regression/search.hpp"

namespace {

using namespace regression;
using pmnf::Rational;
using pmnf::TermClass;

TEST(SetPartitions, BellNumbers) {
    EXPECT_EQ(set_partitions(1).size(), 1u);
    EXPECT_EQ(set_partitions(2).size(), 2u);
    EXPECT_EQ(set_partitions(3).size(), 5u);
    EXPECT_EQ(set_partitions(4).size(), 15u);
}

TEST(SetPartitions, EveryElementExactlyOnce) {
    for (const auto& partition : set_partitions(3)) {
        std::set<std::size_t> seen;
        for (const auto& block : partition) {
            for (std::size_t e : block) EXPECT_TRUE(seen.insert(e).second);
        }
        EXPECT_EQ(seen.size(), 3u);
    }
}

TEST(RankSingle, IdentifiesExactClassOnCleanData) {
    const std::vector<double> xs = {2, 4, 8, 16, 32, 64};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(4.0 + 2.5 * x * std::log2(x));
    const auto ranked = rank_single_parameter(xs, ys);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().cls, (TermClass{Rational(1), 1}));
    EXPECT_NEAR(ranked.front().cv_smape, 0.0, 1e-6);
}

TEST(RankSingle, ConstantDataPrefersConstantClass) {
    const std::vector<double> xs = {2, 4, 8, 16, 32};
    const std::vector<double> ys = {7, 7, 7, 7, 7};
    const auto ranked = rank_single_parameter(xs, ys);
    EXPECT_TRUE(ranked.front().cls.is_constant());
}

TEST(RankSingle, ReturnsAll43Ranked) {
    const std::vector<double> xs = {2, 4, 8, 16, 32};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(x);
    const auto ranked = rank_single_parameter(xs, ys);
    EXPECT_EQ(ranked.size(), 43u);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_LE(ranked[i - 1].cv_smape, ranked[i].cv_smape);
    }
}

TEST(RankSingle, TooFewPointsThrows) {
    EXPECT_THROW(rank_single_parameter(std::vector<double>{1.0}, std::vector<double>{1.0}),
                 std::invalid_argument);
}

/// Property sweep: on clean data every one of the 43 classes must be
/// recovered within a quarter of an effective exponent.
class RankRecovery : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RankRecovery, TopCandidateWithinQuarterDistance) {
    const TermClass truth = pmnf::exponent_set()[GetParam()];
    const std::vector<double> xs = {4, 8, 16, 32, 64, 128};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(2.0 + 3.0 * truth.evaluate(x));
    const auto ranked = rank_single_parameter(xs, ys);
    const double distance =
        std::abs(ranked.front().cls.effective_exponent() - truth.effective_exponent());
    EXPECT_LE(distance, 0.25) << "truth " << truth.to_string() << " got "
                              << ranked.front().cls.to_string();
}

INSTANTIATE_TEST_SUITE_P(AllClasses, RankRecovery, ::testing::Range<std::size_t>(0, 43));

TEST(BuildCombinations, SingleParameterShapes) {
    std::vector<std::vector<TermClass>> choices = {{TermClass{Rational(1), 0}}};
    const auto shapes = build_combinations(choices);
    // One partition of {0}: the term itself.
    ASSERT_EQ(shapes.size(), 1u);
    EXPECT_EQ(shapes[0].terms.size(), 1u);
}

TEST(BuildCombinations, ConstantChoiceCollapsesToConstantShape) {
    std::vector<std::vector<TermClass>> choices = {{TermClass{}}};
    const auto shapes = build_combinations(choices);
    ASSERT_EQ(shapes.size(), 1u);
    EXPECT_TRUE(shapes[0].terms.empty());
}

TEST(BuildCombinations, TwoParametersAdditiveAndMultiplicative) {
    std::vector<std::vector<TermClass>> choices = {{TermClass{Rational(1), 0}},
                                                   {TermClass{Rational(2), 0}}};
    const auto shapes = build_combinations(choices);
    // Partitions of {0,1}: {{0,1}} (multiplicative) and {{0},{1}} (additive).
    ASSERT_EQ(shapes.size(), 2u);
    std::set<std::size_t> term_counts;
    for (const auto& shape : shapes) term_counts.insert(shape.terms.size());
    EXPECT_EQ(term_counts, (std::set<std::size_t>{1u, 2u}));
}

TEST(BuildCombinations, DeduplicatesAcrossChoices) {
    // Two identical choices for one parameter must not double the shapes.
    std::vector<std::vector<TermClass>> choices = {
        {TermClass{Rational(1), 0}, TermClass{Rational(1), 0}}};
    EXPECT_EQ(build_combinations(choices).size(), 1u);
}

TEST(BuildCombinations, CrossProductOfChoices) {
    std::vector<std::vector<TermClass>> choices = {
        {TermClass{Rational(1), 0}, TermClass{Rational(2), 0}},
        {TermClass{Rational(0), 1}, TermClass{Rational(1), 0}}};
    // 2x2 choices x 2 partitions = 8 distinct shapes.
    EXPECT_EQ(build_combinations(choices).size(), 8u);
}

measure::ExperimentSet make_set_2d(const std::function<double(double, double)>& f) {
    measure::ExperimentSet set({"x", "y"});
    for (double x : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double y : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({x, y}, {f(x, y)});
        }
    }
    return set;
}

TEST(SelectBest, RecoversAdditiveModel) {
    const auto set = make_set_2d([](double x, double y) { return 5.0 + 2.0 * x + 3.0 * y; });
    std::vector<std::vector<TermClass>> choices = {
        {TermClass{Rational(1), 0}, TermClass{}},
        {TermClass{Rational(1), 0}, TermClass{}}};
    const auto result = select_best_combination(set, choices);
    EXPECT_NEAR(result.cv_smape, 0.0, 1e-6);
    EXPECT_EQ(result.model.terms().size(), 2u);
    EXPECT_NEAR(result.model.evaluate({{64.0, 100.0}}), 5.0 + 128.0 + 300.0, 1e-6);
}

TEST(SelectBest, RecoversMultiplicativeModel) {
    const auto set = make_set_2d([](double x, double y) { return 1.0 + 0.5 * x * y; });
    std::vector<std::vector<TermClass>> choices = {
        {TermClass{Rational(1), 0}, TermClass{}},
        {TermClass{Rational(1), 0}, TermClass{}}};
    const auto result = select_best_combination(set, choices);
    EXPECT_NEAR(result.cv_smape, 0.0, 1e-6);
    ASSERT_EQ(result.model.terms().size(), 1u);
    EXPECT_EQ(result.model.terms()[0].factors.size(), 2u);
}

TEST(SelectBest, DropsIrrelevantParameter) {
    const auto set = make_set_2d([](double x, double) { return 2.0 + 4.0 * x; });
    std::vector<std::vector<TermClass>> choices = {
        {TermClass{Rational(1), 0}, TermClass{}},
        {TermClass{Rational(1), 0}, TermClass{}}};
    const auto result = select_best_combination(set, choices);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(1), 0.0);
    EXPECT_NEAR(result.model.lead_exponent(0), 1.0, 1e-12);
}

TEST(SelectBest, ArityMismatchThrows) {
    const auto set = make_set_2d([](double x, double y) { return x + y; });
    std::vector<std::vector<TermClass>> one_choice = {{TermClass{Rational(1), 0}}};
    EXPECT_THROW(select_best_combination(set, one_choice), std::invalid_argument);
}

TEST(SelectBest, EmptyChoiceSetThrows) {
    const auto set = make_set_2d([](double x, double y) { return x + y; });
    std::vector<std::vector<TermClass>> choices = {{TermClass{Rational(1), 0}}, {}};
    EXPECT_THROW(select_best_combination(set, choices), std::invalid_argument);
}

}  // namespace
