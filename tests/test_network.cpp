// Tests for the Network container: structure, forward/backward plumbing,
// and binary serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "nn/network.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace nn;

TEST(Network, MlpStructure) {
    xpcore::Rng rng(1);
    Network net = Network::mlp({11, 32, 16, 43}, rng);
    // dense-tanh-dense-tanh-dense: 5 layers, linear output.
    EXPECT_EQ(net.layer_count(), 5u);
    EXPECT_EQ(net.input_size(), 11u);
    EXPECT_EQ(net.output_size(), 43u);
}

TEST(Network, MlpTooFewSizesThrows) {
    xpcore::Rng rng(1);
    EXPECT_THROW(Network::mlp({11}, rng), std::invalid_argument);
}

TEST(Network, AddRejectsMismatchedLayers) {
    xpcore::Rng rng(1);
    Network net;
    net.add(std::make_unique<Dense>(4, 8, rng));
    EXPECT_THROW(net.add(std::make_unique<Dense>(9, 2, rng)), std::invalid_argument);
}

TEST(Network, ForwardShape) {
    xpcore::Rng rng(2);
    Network net = Network::mlp({3, 5, 2}, rng);
    Tensor in(7, 3, 0.5f);
    const Tensor& out = net.forward(in);
    EXPECT_EQ(out.rows(), 7u);
    EXPECT_EQ(out.cols(), 2u);
}

TEST(Network, ForwardDeterministic) {
    xpcore::Rng rng(3);
    Network net = Network::mlp({3, 4, 2}, rng);
    Tensor in(1, 3, 0.25f);
    const Tensor out1 = net.forward(in);
    const Tensor out2 = net.forward(in);
    for (std::size_t i = 0; i < out1.size(); ++i) {
        EXPECT_FLOAT_EQ(out1.data()[i], out2.data()[i]);
    }
}

TEST(Network, ParamsCollectsAllLayers) {
    xpcore::Rng rng(4);
    Network net = Network::mlp({3, 4, 2}, rng);
    // Two dense layers x (weights + bias).
    EXPECT_EQ(net.params().size(), 4u);
    EXPECT_EQ(net.parameter_count(), 3u * 4 + 4 + 4u * 2 + 2);
}

TEST(Network, BackwardProducesFiniteParamGrads) {
    xpcore::Rng rng(5);
    Network net = Network::mlp({3, 4, 2}, rng);
    for (auto& p : net.params()) p.grad->fill(0.0f);
    Tensor in(2, 3, 0.5f);
    const Tensor& out = net.forward(in);
    Tensor grad(out.rows(), out.cols(), 1.0f);
    net.backward(grad);
    bool any_nonzero = false;
    for (auto& p : net.params()) {
        for (std::size_t i = 0; i < p.grad->size(); ++i) {
            EXPECT_TRUE(std::isfinite(p.grad->data()[i]));
            if (p.grad->data()[i] != 0.0f) any_nonzero = true;
        }
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(Network, CloneIsDeepAndBitIdentical) {
    xpcore::Rng rng(12);
    Network net = Network::mlp({4, 8, 3}, rng, Activation::Relu);
    Tensor in(2, 4);
    for (std::size_t i = 0; i < in.size(); ++i) in.data()[i] = static_cast<float>(i) * 0.1f;
    const Tensor expected = net.forward(in);

    Network copy = net.clone();
    EXPECT_EQ(copy.layer_count(), net.layer_count());
    EXPECT_EQ(copy.layer(1).kind(), "relu");
    const Tensor cloned_out = copy.forward(in);
    ASSERT_EQ(cloned_out.size(), expected.size());
    for (std::size_t i = 0; i < cloned_out.size(); ++i) {
        EXPECT_FLOAT_EQ(cloned_out.data()[i], expected.data()[i]);
    }

    // Deep copy: mutating the clone's weights leaves the original intact.
    for (auto& p : copy.params()) p.value->fill(0.0f);
    const Tensor& after = net.forward(in);
    for (std::size_t i = 0; i < after.size(); ++i) {
        EXPECT_FLOAT_EQ(after.data()[i], expected.data()[i]);
    }
}

TEST(Network, EmptyForwardThrows) {
    Network net;
    Tensor in(1, 1);
    EXPECT_THROW(net.forward(in), std::logic_error);
}

TEST(Serialization, RoundTripPreservesOutputs) {
    xpcore::Rng rng(6);
    Network net = Network::mlp({4, 8, 3}, rng);
    Tensor in(2, 4);
    for (std::size_t i = 0; i < in.size(); ++i) in.data()[i] = static_cast<float>(i) * 0.1f;
    const Tensor expected = net.forward(in);

    std::stringstream buffer;
    net.save(buffer);
    Network loaded = Network::load(buffer);
    const Tensor& actual = loaded.forward(in);

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_FLOAT_EQ(actual.data()[i], expected.data()[i]);  // bitwise identical weights
    }
}

TEST(Serialization, RoundTripPreservesStructure) {
    xpcore::Rng rng(7);
    Network net = Network::mlp({11, 64, 32, 43}, rng);
    std::stringstream buffer;
    net.save(buffer);
    Network loaded = Network::load(buffer);
    EXPECT_EQ(loaded.layer_count(), net.layer_count());
    EXPECT_EQ(loaded.input_size(), 11u);
    EXPECT_EQ(loaded.output_size(), 43u);
}

TEST(Network, ReluMlpStructure) {
    xpcore::Rng rng(10);
    Network net = Network::mlp({4, 8, 2}, rng, Activation::Relu);
    EXPECT_EQ(net.layer(1).kind(), "relu");
}

TEST(Serialization, ReluNetworkRoundTrip) {
    xpcore::Rng rng(11);
    Network net = Network::mlp({3, 6, 2}, rng, Activation::Relu);
    Tensor in(1, 3, 0.4f);
    const Tensor expected = net.forward(in);
    std::stringstream buffer;
    net.save(buffer);
    Network loaded = Network::load(buffer);
    const Tensor& actual = loaded.forward(in);
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_FLOAT_EQ(actual.data()[i], expected.data()[i]);
    }
}

TEST(Serialization, BadMagicThrows) {
    std::stringstream buffer("not-a-network-file");
    EXPECT_THROW(Network::load(buffer), std::runtime_error);
}

TEST(Serialization, TruncatedFileThrows) {
    xpcore::Rng rng(8);
    Network net = Network::mlp({3, 4, 2}, rng);
    std::stringstream buffer;
    net.save(buffer);
    const std::string full = buffer.str();
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(Network::load(truncated), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
    xpcore::Rng rng(9);
    Network net = Network::mlp({2, 3, 2}, rng);
    const std::string path = ::testing::TempDir() + "/xpdnn_net_test.bin";
    net.save_file(path);
    Network loaded = Network::load_file(path);
    EXPECT_EQ(loaded.input_size(), 2u);
}

TEST(Serialization, MissingFileThrows) {
    EXPECT_THROW(Network::load_file("/nonexistent/net.bin"), std::runtime_error);
}

}  // namespace
