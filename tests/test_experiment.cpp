// Tests for measurement data structures.

#include <gtest/gtest.h>

#include "measure/experiment.hpp"

namespace {

using namespace measure;

ExperimentSet grid_2x3() {
    ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0}) {
        for (double n : {10.0, 20.0, 30.0}) {
            set.add({p, n}, {p * n, p * n + 1.0});
        }
    }
    return set;
}

TEST(Measurement, MedianMeanMin) {
    Measurement m{{1.0}, {3.0, 1.0, 2.0}};
    EXPECT_DOUBLE_EQ(m.median(), 2.0);
    EXPECT_DOUBLE_EQ(m.mean(), 2.0);
    EXPECT_DOUBLE_EQ(m.minimum(), 1.0);
}

TEST(ExperimentSet, AddAndSize) {
    ExperimentSet set({"p"});
    EXPECT_TRUE(set.empty());
    set.add({8.0}, {1.0});
    EXPECT_EQ(set.size(), 1u);
    EXPECT_EQ(set.parameter_count(), 1u);
}

TEST(ExperimentSet, AddRejectsWrongArity) {
    ExperimentSet set({"p", "n"});
    EXPECT_THROW(set.add({1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(set.add({1.0, 2.0, 3.0}, {1.0}), std::invalid_argument);
}

TEST(ExperimentSet, AddRejectsEmptyValues) {
    ExperimentSet set({"p"});
    EXPECT_THROW(set.add({1.0}, {}), std::invalid_argument);
}

TEST(ExperimentSet, FindExactPoint) {
    const auto set = grid_2x3();
    const auto* m = set.find(std::vector<double>{4.0, 20.0});
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->values[0], 80.0);
    EXPECT_EQ(set.find(std::vector<double>{5.0, 20.0}), nullptr);
}

TEST(ExperimentSet, UniqueValuesSorted) {
    const auto set = grid_2x3();
    EXPECT_EQ(set.unique_values(0), (std::vector<double>{2.0, 4.0}));
    EXPECT_EQ(set.unique_values(1), (std::vector<double>{10.0, 20.0, 30.0}));
}

TEST(ExperimentSet, LinesGroupByOtherParameters) {
    const auto set = grid_2x3();
    const auto lines_p = set.lines(0);
    EXPECT_EQ(lines_p.size(), 3u);  // one line per n value
    for (const auto& line : lines_p) EXPECT_EQ(line.points.size(), 2u);
    const auto lines_n = set.lines(1);
    EXPECT_EQ(lines_n.size(), 2u);  // one line per p value
    for (const auto& line : lines_n) EXPECT_EQ(line.points.size(), 3u);
}

TEST(ExperimentSet, LinesSortedByVaryingParameter) {
    ExperimentSet set({"p"});
    set.add({64.0}, {3.0});
    set.add({8.0}, {1.0});
    set.add({32.0}, {2.0});
    const auto lines = set.lines(0);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].xs(), (std::vector<double>{8.0, 32.0, 64.0}));
}

TEST(ExperimentSet, LineAccessors) {
    const auto set = grid_2x3();
    const auto lines = set.lines(1);
    const auto& line = lines[0];  // p = 2 fixed
    EXPECT_EQ(line.parameter, 1u);
    EXPECT_EQ(line.base, (Coordinate{2.0}));
    EXPECT_EQ(line.xs(), (std::vector<double>{10.0, 20.0, 30.0}));
    EXPECT_EQ(line.medians(), (std::vector<double>{20.5, 40.5, 60.5}));
}

TEST(ExperimentSet, BestLinePrefersMostPoints) {
    ExperimentSet set({"p", "n"});
    // Long line along p at n = 10, short line at n = 20.
    for (double p : {1.0, 2.0, 3.0, 4.0}) set.add({p, 10.0}, {p});
    for (double p : {1.0, 2.0}) set.add({p, 20.0}, {p});
    const auto best = set.best_line(0);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->points.size(), 4u);
    EXPECT_EQ(best->base, (Coordinate{10.0}));
}

TEST(ExperimentSet, BestLineTieBreaksTowardSmallBase) {
    ExperimentSet set({"p", "n"});
    for (double p : {1.0, 2.0}) set.add({p, 30.0}, {p});
    for (double p : {1.0, 2.0}) set.add({p, 10.0}, {p});
    const auto best = set.best_line(0);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->base, (Coordinate{10.0}));
}

TEST(ExperimentSet, BestLineNoneWithoutTwoPoints) {
    ExperimentSet set({"p", "n"});
    set.add({1.0, 10.0}, {1.0});
    set.add({2.0, 20.0}, {2.0});  // different n: two 1-point lines
    EXPECT_FALSE(set.best_line(0).has_value());
}

TEST(ExperimentSet, FilteredKeepsMatchingPoints) {
    const auto set = grid_2x3();
    const auto subset = set.filtered([](const Coordinate& p) { return p[1] != 20.0; });
    EXPECT_EQ(subset.size(), 4u);
    EXPECT_EQ(subset.parameter_names(), set.parameter_names());
    for (const auto& m : subset.measurements()) EXPECT_NE(m.point[1], 20.0);
}

TEST(ExperimentSet, FilteredCanBeEmpty) {
    const auto set = grid_2x3();
    EXPECT_TRUE(set.filtered([](const Coordinate&) { return false; }).empty());
}

TEST(ExperimentSet, MergedConcatenates) {
    ExperimentSet a({"p"});
    a.add({1.0}, {1.0});
    ExperimentSet b({"p"});
    b.add({2.0}, {2.0});
    const auto merged = a.merged(b);
    EXPECT_EQ(merged.size(), 2u);
    EXPECT_NE(merged.find(std::vector<double>{2.0}), nullptr);
}

TEST(ExperimentSet, MergedRejectsDifferentParameters) {
    ExperimentSet a({"p"});
    ExperimentSet b({"q"});
    EXPECT_THROW(a.merged(b), std::invalid_argument);
}

TEST(ExperimentSet, AllMediansInInsertionOrder) {
    ExperimentSet set({"p"});
    set.add({1.0}, {5.0, 1.0, 3.0});
    set.add({2.0}, {4.0});
    EXPECT_EQ(set.all_medians(), (std::vector<double>{3.0, 4.0}));
}

}  // namespace
