// Tests for the synthetic training-data generator (Sec. IV-D/E).

#include <gtest/gtest.h>

#include <set>

#include "dnn/preprocess.hpp"
#include "dnn/training_data.hpp"
#include "pmnf/exponents.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace dnn;

TEST(TrainingData, ShapeAndBalance) {
    GeneratorConfig config;
    config.samples_per_class = 5;
    xpcore::Rng rng(1);
    const auto data = generate_training_data(config, rng);
    EXPECT_EQ(data.size(), 43u * 5);
    EXPECT_EQ(data.inputs.rows(), 43u * 5);
    EXPECT_EQ(data.inputs.cols(), kInputNeurons);
    std::vector<int> counts(43, 0);
    for (auto label : data.labels) {
        ASSERT_GE(label, 0);
        ASSERT_LT(label, 43);
        ++counts[label];
    }
    for (int c : counts) EXPECT_EQ(c, 5);
}

TEST(TrainingData, DeterministicGivenSeed) {
    GeneratorConfig config;
    config.samples_per_class = 3;
    xpcore::Rng a(7), b(7);
    const auto d1 = generate_training_data(config, a);
    const auto d2 = generate_training_data(config, b);
    ASSERT_EQ(d1.size(), d2.size());
    for (std::size_t i = 0; i < d1.inputs.size(); ++i) {
        EXPECT_FLOAT_EQ(d1.inputs.data()[i], d2.inputs.data()[i]);
    }
}

TEST(TrainingData, InputsWithinUnitMagnitude) {
    GeneratorConfig config;
    config.samples_per_class = 10;
    xpcore::Rng rng(2);
    const auto data = generate_training_data(config, rng);
    for (std::size_t i = 0; i < data.inputs.size(); ++i) {
        EXPECT_LE(std::abs(data.inputs.data()[i]), 1.0f + 1e-6f);
    }
}

TEST(TrainingData, ZeroNoiseRangeSupported) {
    GeneratorConfig config;
    config.samples_per_class = 2;
    config.noise_min = 0.0;
    config.noise_max = 0.0;
    xpcore::Rng rng(3);
    EXPECT_NO_THROW(generate_training_data(config, rng));
}

TEST(TrainingData, SequencePoolIsRespected) {
    GeneratorConfig config;
    config.samples_per_class = 4;
    config.sequence_pool = {{8, 64, 512, 4096, 32768}};
    config.noise_min = config.noise_max = 0.0;
    xpcore::Rng rng(4);
    const auto data = generate_training_data(config, rng);
    // With a single pooled sequence, the slot pattern of every sample is
    // identical: exactly 5 non-zero-capable slots.
    const auto slots = assign_slots(config.sequence_pool[0]);
    std::set<std::size_t> allowed(slots.begin(), slots.begin() + 5);
    for (std::size_t r = 0; r < data.size(); ++r) {
        for (std::size_t c = 0; c < kInputNeurons; ++c) {
            if (!allowed.count(c)) {
                EXPECT_FLOAT_EQ(data.inputs(r, c), 0.0f)
                    << "unexpected value in masked slot " << c;
            }
        }
    }
}

TEST(TrainingData, FixedRepetitions) {
    GeneratorConfig config;
    config.samples_per_class = 2;
    config.random_repetitions = false;
    config.max_repetitions = 1;
    xpcore::Rng rng(5);
    EXPECT_NO_THROW(generate_training_data(config, rng));
}

TEST(TrainingData, InvalidConfigThrows) {
    xpcore::Rng rng(6);
    GeneratorConfig zero_samples;
    zero_samples.samples_per_class = 0;
    EXPECT_THROW(generate_training_data(zero_samples, rng), std::invalid_argument);

    GeneratorConfig bad_noise;
    bad_noise.noise_min = 0.5;
    bad_noise.noise_max = 0.1;
    EXPECT_THROW(generate_training_data(bad_noise, rng), std::invalid_argument);

    GeneratorConfig negative_noise;
    negative_noise.noise_min = -0.1;
    EXPECT_THROW(generate_training_data(negative_noise, rng), std::invalid_argument);
}

TEST(TrainingData, PointCountsClampedToValidRange) {
    GeneratorConfig config;
    config.samples_per_class = 3;
    config.min_points = 0;   // clamped up to 2
    config.max_points = 99;  // clamped down to 11
    xpcore::Rng rng(8);
    EXPECT_NO_THROW(generate_training_data(config, rng));
}

TEST(TrainingData, CleanSamplesOfDistinctClassesDiffer) {
    // At zero noise with a fixed sequence, a constant and a cubic function
    // must produce visibly different inputs (sanity of label information).
    GeneratorConfig config;
    config.samples_per_class = 1;
    config.noise_min = config.noise_max = 0.0;
    config.sequence_pool = {{4, 8, 16, 32, 64}};
    xpcore::Rng rng(9);
    const auto data = generate_training_data(config, rng);
    const std::size_t constant_row = pmnf::class_index({pmnf::Rational(0), 0});
    const std::size_t cubic_row = pmnf::class_index({pmnf::Rational(3), 0});
    double diff = 0.0;
    for (std::size_t c = 0; c < kInputNeurons; ++c) {
        diff += std::abs(data.inputs(constant_row, c) - data.inputs(cubic_row, c));
    }
    EXPECT_GT(diff, 0.05);
}

}  // namespace
