// Tests for PMNF models: evaluation, lead exponents, printing.

#include <gtest/gtest.h>

#include <cmath>

#include "pmnf/model.hpp"

namespace {

using namespace pmnf;

Model sweep_solver_model() {
    // The paper's Kripke model: 8.51 + 0.11 * p^(1/3) * d * g^(4/5).
    CompoundTerm term;
    term.coefficient = 0.11;
    term.factors = {{0, {Rational(1, 3), 0}}, {1, {Rational(1), 0}}, {2, {Rational(4, 5), 0}}};
    return Model(8.51, {term});
}

TEST(Model, ConstantModel) {
    const Model m = Model::constant_model(5.0);
    EXPECT_DOUBLE_EQ(m.evaluate({{10.0}}), 5.0);
    EXPECT_TRUE(m.terms().empty());
}

TEST(Model, EvaluateSingleParameter) {
    CompoundTerm term{2.0, {{0, {Rational(2), 0}}}};
    const Model m(1.0, {term});
    EXPECT_DOUBLE_EQ(m.evaluate({{3.0}}), 1.0 + 2.0 * 9.0);
}

TEST(Model, EvaluateMultiplicativeTerm) {
    const Model m = sweep_solver_model();
    const std::vector<double> point = {8.0, 4.0, 32.0};
    const double expected = 8.51 + 0.11 * 2.0 * 4.0 * std::pow(32.0, 0.8);
    EXPECT_NEAR(m.evaluate(point), expected, 1e-9);
}

TEST(Model, EvaluateAdditiveTerms) {
    CompoundTerm t1{2.0, {{0, {Rational(1), 0}}}};
    CompoundTerm t2{3.0, {{1, {Rational(0), 1}}}};
    const Model m(1.0, {t1, t2});
    EXPECT_DOUBLE_EQ(m.evaluate({{5.0, 8.0}}), 1.0 + 10.0 + 9.0);
}

TEST(Model, LeadExponentSimple) {
    CompoundTerm term{1.0, {{0, {Rational(3, 2), 0}}}};
    const Model m(0.0, {term});
    EXPECT_DOUBLE_EQ(m.lead_exponent(0), 1.5);
    EXPECT_DOUBLE_EQ(m.lead_exponent(1), 0.0);  // parameter absent
}

TEST(Model, LeadExponentTakesMaxOverTerms) {
    CompoundTerm small{1.0, {{0, {Rational(1), 0}}}};
    CompoundTerm large{1.0, {{0, {Rational(2), 1}}}};
    const Model m(0.0, {small, large});
    EXPECT_DOUBLE_EQ(m.lead_exponent(0), 2.25);
}

TEST(Model, LeadExponentIgnoresNegligibleCoefficients) {
    CompoundTerm ghost{1e-15, {{0, {Rational(3), 0}}}};
    CompoundTerm real{2.0, {{0, {Rational(1), 0}}}};
    const Model m(0.0, {ghost, real});
    EXPECT_DOUBLE_EQ(m.lead_exponent(0), 1.0);
}

TEST(Model, LeadExponentCountsLogAsQuarter) {
    CompoundTerm term{1.0, {{0, {Rational(1), 2}}}};
    const Model m(0.0, {term});
    EXPECT_DOUBLE_EQ(m.lead_exponent(0), 1.5);
}

TEST(Model, DistanceToItselfIsZero) {
    const Model m = sweep_solver_model();
    EXPECT_DOUBLE_EQ(m.lead_exponent_distance(m, 3), 0.0);
}

TEST(Model, DistanceIsMaxOverParameters) {
    CompoundTerm a{1.0, {{0, {Rational(1), 0}}, {1, {Rational(2), 0}}}};
    CompoundTerm b{1.0, {{0, {Rational(1, 2), 0}}, {1, {Rational(7, 4), 0}}}};
    const Model ma(0.0, {a});
    const Model mb(0.0, {b});
    // |1 - 1/2| = 0.5 for x1, |2 - 7/4| = 0.25 for x2 -> max 0.5.
    EXPECT_DOUBLE_EQ(ma.lead_exponent_distance(mb, 2), 0.5);
    EXPECT_DOUBLE_EQ(mb.lead_exponent_distance(ma, 2), 0.5);  // symmetric
}

TEST(Model, DistanceLogMismatch) {
    CompoundTerm linear{1.0, {{0, {Rational(1), 0}}}};
    CompoundTerm linlog{1.0, {{0, {Rational(1), 1}}}};
    const Model ma(0.0, {linear});
    const Model mb(0.0, {linlog});
    EXPECT_DOUBLE_EQ(ma.lead_exponent_distance(mb, 1), 0.25);
}

TEST(Model, ToStringMatchesPaperStyle) {
    const Model m = sweep_solver_model();
    const std::vector<std::string> names = {"p", "d", "g"};
    EXPECT_EQ(m.to_string(names), "8.51 + 0.11 * p^(1/3) * d * g^(4/5)");
}

TEST(Model, ToStringDefaultNames) {
    CompoundTerm term{2.0, {{0, {Rational(1), 0}}, {1, {Rational(0), 1}}}};
    const Model m(1.0, {term});
    EXPECT_EQ(m.to_string(), "1 + 2 * x1 * log2(x2)");
}

TEST(Model, ToStringNegativeCoefficient) {
    CompoundTerm term{-3.5, {{0, {Rational(1), 0}}}};
    const Model m(10.0, {term});
    EXPECT_EQ(m.to_string(), "10 - 3.5 * x1");
}

TEST(Model, ToStringScientificForExtremes) {
    CompoundTerm term{1.234e-6, {{0, {Rational(1), 0}}}};
    const Model m(0.0, {term});
    EXPECT_NE(m.to_string().find("e-06"), std::string::npos);
}

TEST(Model, SimplifiedDropsNegligibleTerms) {
    CompoundTerm big{10.0, {{0, {Rational(1), 0}}}};
    CompoundTerm tiny{1e-9, {{0, {Rational(2), 0}}}};
    const Model m(1.0, {big, tiny});
    const std::vector<double> reference = {100.0};
    const Model simple = m.simplified(reference);
    ASSERT_EQ(simple.terms().size(), 1u);
    EXPECT_DOUBLE_EQ(simple.terms()[0].coefficient, 10.0);
    EXPECT_DOUBLE_EQ(simple.constant(), 1.0);
}

TEST(Model, SimplifiedKeepsEverythingAboveThreshold) {
    CompoundTerm a{5.0, {{0, {Rational(1), 0}}}};
    CompoundTerm b{4.0, {{0, {Rational(0), 1}}}};
    const Model m(1.0, {a, b});
    const std::vector<double> reference = {16.0};
    EXPECT_EQ(m.simplified(reference).terms().size(), 2u);
}

TEST(Model, SimplifiedZeroReferenceIsIdentity) {
    CompoundTerm a{5.0, {{0, {Rational(1), 0}}}};
    const Model m(-5.0, {a});  // evaluates to 0 at x = 1
    const std::vector<double> reference = {1.0};
    EXPECT_EQ(m.simplified(reference).terms().size(), 1u);
}

TEST(CompoundTermStruct, EvaluateProduct) {
    CompoundTerm term{2.0, {{0, {Rational(1), 0}}, {1, {Rational(1), 0}}}};
    EXPECT_DOUBLE_EQ(term.evaluate({{3.0, 4.0}}), 24.0);
}

}  // namespace
