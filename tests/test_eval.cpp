// Tests for the synthetic-evaluation harness (tasks + runner, Sec. V).

#include <gtest/gtest.h>

#include <set>

#include "eval/runner.hpp"
#include "eval/task.hpp"
#include "modeling/session.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace eval;

/// A session over a tiny classifier (no disk cache) for the runner tests.
modeling::Session tiny_session(std::uint64_t seed, std::size_t pretrain_samples,
                               std::size_t pretrain_epochs, std::size_t adapt_samples) {
    modeling::Options options;
    options.seed = seed;
    options.net.hidden = {64, 32};
    options.net.pretrain_samples_per_class = pretrain_samples;
    options.net.pretrain_epochs = pretrain_epochs;
    options.net.adapt_samples_per_class = adapt_samples;
    options.use_cache = false;
    return modeling::Session(options);
}

TEST(MakeTask, OneParameterLayout) {
    TaskConfig config;
    config.parameters = 1;
    xpcore::Rng rng(1);
    const auto task = make_task(config, rng);
    EXPECT_EQ(task.experiments.size(), 5u);
    EXPECT_EQ(task.eval_points.size(), 4u);
    EXPECT_EQ(task.eval_truths.size(), 4u);
    for (const auto& m : task.experiments.measurements()) {
        EXPECT_EQ(m.values.size(), 5u);  // repetitions
    }
}

TEST(MakeTask, GridSizesGrowAsPowers) {
    xpcore::Rng rng(2);
    for (std::size_t m = 1; m <= 3; ++m) {
        TaskConfig config;
        config.parameters = m;
        const auto task = make_task(config, rng);
        std::size_t expected = 1;
        for (std::size_t l = 0; l < m; ++l) expected *= 5;
        EXPECT_EQ(task.experiments.size(), expected);
        EXPECT_EQ(task.experiments.parameter_count(), m);
    }
}

TEST(MakeTask, EvalPointsBeyondMeasuredRange) {
    xpcore::Rng rng(3);
    TaskConfig config;
    config.parameters = 2;
    const auto task = make_task(config, rng);
    std::vector<double> max_measured(2, 0.0);
    for (const auto& m : task.experiments.measurements()) {
        for (std::size_t l = 0; l < 2; ++l) {
            max_measured[l] = std::max(max_measured[l], m.point[l]);
        }
    }
    for (const auto& p : task.eval_points) {
        for (std::size_t l = 0; l < 2; ++l) EXPECT_GT(p[l], max_measured[l]);
    }
    // P+ points scale simultaneously: strictly increasing in every dim.
    for (std::size_t k = 1; k < task.eval_points.size(); ++k) {
        for (std::size_t l = 0; l < 2; ++l) {
            EXPECT_GT(task.eval_points[k][l], task.eval_points[k - 1][l]);
        }
    }
}

TEST(MakeTask, EvalTruthsMatchModel) {
    xpcore::Rng rng(4);
    TaskConfig config;
    const auto task = make_task(config, rng);
    for (std::size_t k = 0; k < task.eval_points.size(); ++k) {
        EXPECT_DOUBLE_EQ(task.eval_truths[k], task.truth.evaluate(task.eval_points[k]));
    }
}

TEST(MakeTask, ZeroNoiseMeansExactMedians) {
    xpcore::Rng rng(5);
    TaskConfig config;
    config.noise = 0.0;
    const auto task = make_task(config, rng);
    for (const auto& m : task.experiments.measurements()) {
        EXPECT_DOUBLE_EQ(m.median(), task.truth.evaluate(m.point));
    }
}

TEST(MakeTask, DeterministicGivenSeed) {
    TaskConfig config;
    config.parameters = 2;
    xpcore::Rng a(6), b(6);
    const auto t1 = make_task(config, a);
    const auto t2 = make_task(config, b);
    EXPECT_EQ(t1.truth.to_string(), t2.truth.to_string());
    EXPECT_EQ(t1.eval_points, t2.eval_points);
}

TEST(MakeTask, ZeroParametersThrows) {
    xpcore::Rng rng(7);
    TaskConfig config;
    config.parameters = 0;
    EXPECT_THROW(make_task(config, rng), std::invalid_argument);
}

TEST(PredictionErrors, PerfectModelIsZero) {
    xpcore::Rng rng(8);
    TaskConfig config;
    config.noise = 0.0;
    const auto task = make_task(config, rng);
    const auto errors = prediction_errors(task, task.truth);
    for (double e : errors) EXPECT_NEAR(e, 0.0, 1e-9);
}

TEST(CellData, AccuracyBuckets) {
    ModelerCellData data;
    data.lead_distances = {0.0, 0.25, 0.3, 0.5, 1.0};
    EXPECT_DOUBLE_EQ(data.accuracy(0.25), 0.4);
    EXPECT_DOUBLE_EQ(data.accuracy(1.0 / 3.0), 0.6);
    EXPECT_DOUBLE_EQ(data.accuracy(0.5), 0.8);
}

TEST(CellData, AccuracyEmptyIsZero) {
    ModelerCellData data;
    EXPECT_DOUBLE_EQ(data.accuracy(0.25), 0.0);
}

TEST(CellData, MedianError) {
    ModelerCellData data;
    data.errors[2] = {1.0, 9.0, 5.0};
    EXPECT_DOUBLE_EQ(data.median_error(2), 5.0);
}

TEST(Runner, SmokeTestTinyConfig) {
    auto session = tiny_session(31, 100, 2, 60);

    EvalConfig config;
    config.parameters = 1;
    config.noise_levels = {0.02, 0.60};
    config.functions_per_cell = 6;
    const auto cells = run_synthetic_evaluation(session, config);

    ASSERT_EQ(cells.size(), 2u);
    for (const auto& cell : cells) {
        EXPECT_EQ(cell.parameters, 1u);
        EXPECT_EQ(cell.regression.lead_distances.size(), 6u);
        EXPECT_EQ(cell.adaptive.lead_distances.size(), 6u);
        for (std::size_t k = 0; k < 4; ++k) {
            EXPECT_EQ(cell.regression.errors[k].size(), 6u);
            EXPECT_EQ(cell.adaptive.errors[k].size(), 6u);
        }
    }
    // At 2% noise the regression baseline must be nearly always right.
    EXPECT_GE(cells[0].regression.accuracy(0.5), 0.8);
    // On calm data the adaptive modeler may not be (much) worse: it can
    // always fall back to the competing regression candidate.
    EXPECT_GE(cells[0].adaptive.accuracy(0.5) + 0.2, cells[0].regression.accuracy(0.5));
}

TEST(Runner, PerTaskAdaptationPathWorks) {
    auto session = tiny_session(41, 60, 1, 40);

    EvalConfig config;
    config.parameters = 1;
    config.noise_levels = {0.40};
    config.functions_per_cell = 3;
    config.amortize_adaptation = false;  // the paper's one-per-task behavior
    const auto cells = run_synthetic_evaluation(session, config);
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].adaptive.lead_distances.size(), 3u);
}

TEST(Runner, AccuracyBucketsAreMonotone) {
    auto session = tiny_session(37, 80, 2, 50);

    EvalConfig config;
    config.parameters = 1;
    config.noise_levels = {0.30};
    config.functions_per_cell = 8;
    const auto cells = run_synthetic_evaluation(session, config);
    for (const auto& cell : cells) {
        for (const auto* data : {&cell.regression, &cell.adaptive}) {
            EXPECT_LE(data->accuracy(0.25), data->accuracy(1.0 / 3.0) + 1e-12);
            EXPECT_LE(data->accuracy(1.0 / 3.0), data->accuracy(0.5) + 1e-12);
        }
    }
}

}  // namespace
