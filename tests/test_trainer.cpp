// Tests for the mini-batch trainer: it must actually learn.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace nn;

/// Two-class toy problem: label = (x0 + x1 > 0), linearly separable.
Dataset linear_toy(std::size_t n, xpcore::Rng& rng) {
    Dataset data;
    data.inputs.resize(n, 2);
    data.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float a = static_cast<float>(rng.uniform(-1, 1));
        const float b = static_cast<float>(rng.uniform(-1, 1));
        data.inputs(i, 0) = a;
        data.inputs(i, 1) = b;
        data.labels[i] = (a + b > 0) ? 1 : 0;
    }
    return data;
}

/// XOR-style problem: label = (x0 > 0) != (x1 > 0); needs the hidden layer.
Dataset xor_toy(std::size_t n, xpcore::Rng& rng) {
    Dataset data;
    data.inputs.resize(n, 2);
    data.labels.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float a = static_cast<float>(rng.uniform(-1, 1));
        const float b = static_cast<float>(rng.uniform(-1, 1));
        data.inputs(i, 0) = a;
        data.inputs(i, 1) = b;
        data.labels[i] = ((a > 0) != (b > 0)) ? 1 : 0;
    }
    return data;
}

TEST(Trainer, LearnsLinearlySeparableData) {
    xpcore::Rng rng(1);
    const Dataset data = linear_toy(500, rng);
    Network net = Network::mlp({2, 8, 2}, rng);
    AdaMax opt(AdaMax::Config{.learning_rate = 0.01f});
    Trainer trainer(net, opt, {20, 32, true});
    trainer.fit(data, rng);
    EXPECT_GT(trainer.evaluate(data).accuracy, 0.95);
}

TEST(Trainer, LearnsXorWithHiddenLayer) {
    xpcore::Rng rng(2);
    const Dataset data = xor_toy(800, rng);
    Network net = Network::mlp({2, 16, 16, 2}, rng);
    AdaMax opt(AdaMax::Config{.learning_rate = 0.01f});
    Trainer trainer(net, opt, {40, 32, true});
    trainer.fit(data, rng);
    EXPECT_GT(trainer.evaluate(data).accuracy, 0.93);
}

TEST(Trainer, LossDecreasesOverEpochs) {
    xpcore::Rng rng(3);
    const Dataset data = linear_toy(400, rng);
    Network net = Network::mlp({2, 8, 2}, rng);
    AdaMax opt;
    Trainer first(net, opt, {1, 32, true});
    const double loss_after_1 = first.fit(data, rng).loss;
    Trainer more(net, opt, {10, 32, true});
    const double loss_after_more = more.fit(data, rng).loss;
    EXPECT_LT(loss_after_more, loss_after_1);
}

TEST(Trainer, GeneralizesToFreshSamples) {
    xpcore::Rng rng(4);
    const Dataset train = linear_toy(600, rng);
    const Dataset test = linear_toy(200, rng);
    Network net = Network::mlp({2, 8, 2}, rng);
    AdaMax opt(AdaMax::Config{.learning_rate = 0.01f});
    Trainer trainer(net, opt, {20, 32, true});
    trainer.fit(train, rng);
    EXPECT_GT(trainer.evaluate(test).accuracy, 0.9);
}

TEST(Trainer, PredictProbaRowsSumToOne) {
    xpcore::Rng rng(5);
    const Dataset data = linear_toy(10, rng);
    Network net = Network::mlp({2, 4, 2}, rng);
    AdaMax opt;
    Trainer trainer(net, opt, {1, 4, true});
    const Tensor probs = trainer.predict_proba(data.inputs);
    ASSERT_EQ(probs.rows(), 10u);
    for (std::size_t r = 0; r < probs.rows(); ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < probs.cols(); ++c) sum += probs(r, c);
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Trainer, BatchLargerThanDatasetWorks) {
    xpcore::Rng rng(6);
    const Dataset data = linear_toy(10, rng);
    Network net = Network::mlp({2, 4, 2}, rng);
    AdaMax opt;
    Trainer trainer(net, opt, {2, 512, true});
    const auto stats = trainer.fit(data, rng);
    EXPECT_GE(stats.accuracy, 0.0);
    EXPECT_TRUE(std::isfinite(stats.loss));
}

TEST(Trainer, EmptyDatasetIsNoop) {
    xpcore::Rng rng(20);
    Network net = Network::mlp({2, 4, 2}, rng);
    AdaMax opt;
    Trainer trainer(net, opt, {3, 8, true});
    Dataset empty;
    empty.inputs.resize(0, 2);
    const auto stats = trainer.fit(empty, rng);
    EXPECT_DOUBLE_EQ(stats.loss, 0.0);
    EXPECT_DOUBLE_EQ(stats.accuracy, 0.0);
}

TEST(SplitDataset, SizesAndContentPreserved) {
    xpcore::Rng rng(7);
    const Dataset data = linear_toy(100, rng);
    const auto [train, holdout] = split_dataset(data, 0.2, rng);
    EXPECT_EQ(train.size(), 80u);
    EXPECT_EQ(holdout.size(), 20u);
    EXPECT_EQ(train.inputs.cols(), 2u);
    // Label multiset is preserved across the split.
    std::size_t ones_before = 0, ones_after = 0;
    for (auto l : data.labels) ones_before += (l == 1);
    for (auto l : train.labels) ones_after += (l == 1);
    for (auto l : holdout.labels) ones_after += (l == 1);
    EXPECT_EQ(ones_before, ones_after);
}

TEST(SplitDataset, ZeroFractionKeepsEverything) {
    xpcore::Rng rng(8);
    const Dataset data = linear_toy(10, rng);
    const auto [train, holdout] = split_dataset(data, 0.0, rng);
    EXPECT_EQ(train.size(), 10u);
    EXPECT_EQ(holdout.size(), 0u);
}

TEST(FitValidated, ReportsHoldoutStats) {
    xpcore::Rng rng(9);
    const Dataset data = linear_toy(500, rng);
    const auto [train, holdout] = split_dataset(data, 0.2, rng);
    Network net = Network::mlp({2, 8, 2}, rng);
    AdaMax opt(AdaMax::Config{.learning_rate = 0.01f});
    Trainer trainer(net, opt, {15, 32, true, 0});
    const auto report = trainer.fit_validated(train, holdout, rng);
    EXPECT_EQ(report.epochs_run, 15u);
    EXPECT_FALSE(report.early_stopped);
    EXPECT_GT(report.validation.accuracy, 0.9);
}

TEST(FitValidated, EarlyStoppingTriggersOnPlateau) {
    xpcore::Rng rng(10);
    // Random labels: no generalizable signal, so holdout loss plateaus
    // (and degrades from overfitting) almost immediately.
    Dataset data = linear_toy(200, rng);
    for (auto& label : data.labels) label = rng.chance(0.5) ? 1 : 0;
    const auto [train, holdout] = split_dataset(data, 0.3, rng);
    Network net = Network::mlp({2, 16, 2}, rng);
    AdaMax opt(AdaMax::Config{.learning_rate = 0.02f});
    Trainer trainer(net, opt, {200, 32, true, 3});
    const auto report = trainer.fit_validated(train, holdout, rng);
    EXPECT_TRUE(report.early_stopped);
    EXPECT_LT(report.epochs_run, 200u);
}

TEST(ReluNetwork, AlsoLearns) {
    xpcore::Rng rng(11);
    const Dataset data = xor_toy(800, rng);
    Network net = Network::mlp({2, 16, 16, 2}, rng, Activation::Relu);
    AdaMax opt(AdaMax::Config{.learning_rate = 0.01f});
    Trainer trainer(net, opt, {40, 32, true});
    trainer.fit(data, rng);
    EXPECT_GT(trainer.evaluate(data).accuracy, 0.9);
}

TEST(TopK, OrdersByProbability) {
    const std::vector<float> probs = {0.1f, 0.5f, 0.2f, 0.15f, 0.05f};
    const auto top = top_k_indices(probs, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0], 1u);
    EXPECT_EQ(top[1], 2u);
    EXPECT_EQ(top[2], 3u);
}

TEST(TopK, ClampsKToSize) {
    const std::vector<float> probs = {0.6f, 0.4f};
    EXPECT_EQ(top_k_indices(probs, 10).size(), 2u);
}

}  // namespace
