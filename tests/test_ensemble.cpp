// Tests for the ensemble DNN modeler extension.

#include <gtest/gtest.h>

#include <set>

#include "dnn/ensemble.hpp"
#include "noise/injector.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace dnn;

DnnConfig tiny_config() {
    DnnConfig config;
    config.hidden = {64, 32};
    config.pretrain_samples_per_class = 150;
    config.pretrain_epochs = 3;
    config.adapt_samples_per_class = 80;
    return config;
}

class EnsembleTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        ensemble_ = new EnsembleModeler(tiny_config(), /*seed=*/51, /*members=*/3);
        for (std::size_t i = 0; i < ensemble_->member_count(); ++i) {
            ensemble_->member(i).pretrain();
        }
    }
    static void TearDownTestSuite() {
        delete ensemble_;
        ensemble_ = nullptr;
    }
    void TearDown() override { ensemble_->reset_adaptation(); }

    static EnsembleModeler* ensemble_;
};

EnsembleModeler* EnsembleTest::ensemble_ = nullptr;

TEST(EnsembleConstruction, ZeroMembersThrows) {
    EXPECT_THROW(EnsembleModeler(tiny_config(), 1, 0), std::invalid_argument);
}

TEST(EnsembleConstruction, MemberCount) {
    EnsembleModeler ensemble(tiny_config(), 1, 4);
    EXPECT_EQ(ensemble.member_count(), 4u);
}

TEST_F(EnsembleTest, MembersAreIndependentlyInitialized) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    std::vector<double> vs;
    for (double x : xs) vs.push_back(1.0 + x * x);
    const auto p0 = ensemble_->member(0).classify_line(xs, vs);
    const auto p1 = ensemble_->member(1).classify_line(xs, vs);
    double diff = 0.0;
    for (std::size_t i = 0; i < p0.size(); ++i) diff += std::abs(p0[i] - p1[i]);
    EXPECT_GT(diff, 1e-6);
}

TEST_F(EnsembleTest, CandidateUnionCoversEveryMember) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {2.0 + 3.0 * p});
    const auto merged = ensemble_->candidate_classes(set);
    ASSERT_EQ(merged.size(), 1u);
    for (std::size_t i = 0; i < ensemble_->member_count(); ++i) {
        const auto member_candidates = ensemble_->member(i).candidate_classes(set);
        for (const auto& cls : member_candidates[0]) {
            EXPECT_NE(std::find(merged[0].begin(), merged[0].end(), cls), merged[0].end());
        }
    }
    // No duplicates.
    std::set<std::size_t> indices;
    for (const auto& cls : merged[0]) {
        EXPECT_TRUE(indices.insert(pmnf::class_index(cls)).second);
    }
}

TEST_F(EnsembleTest, UnionIsAtLeastAsGoodAsAnyMemberOnCv) {
    xpcore::Rng rng(3);
    noise::Injector injector(0.4, rng);
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        set.add({p}, injector.repetitions(2.0 + 3.0 * p, 5));
    }
    const auto ensemble_result = ensemble_->model(set);
    for (std::size_t i = 0; i < ensemble_->member_count(); ++i) {
        const auto member_result = ensemble_->member(i).model(set);
        // The union contains every member's candidates, so the CV winner
        // cannot score worse than any member's winner.
        EXPECT_LE(ensemble_result.cv_smape, member_result.cv_smape + 1e-9);
    }
}

TEST_F(EnsembleTest, AdaptAffectsAllMembers) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    std::vector<double> vs;
    for (double x : xs) vs.push_back(5.0 + x);
    std::vector<std::vector<float>> before;
    for (std::size_t i = 0; i < ensemble_->member_count(); ++i) {
        before.push_back(ensemble_->member(i).classify_line(xs, vs));
    }
    TaskProperties task;
    task.noise_min = 0.1;
    task.noise_max = 0.3;
    ensemble_->adapt(task);
    for (std::size_t i = 0; i < ensemble_->member_count(); ++i) {
        const auto after = ensemble_->member(i).classify_line(xs, vs);
        double diff = 0.0;
        for (std::size_t k = 0; k < after.size(); ++k) diff += std::abs(after[k] - before[i][k]);
        EXPECT_GT(diff, 1e-7) << "member " << i << " unchanged by adapt";
    }
}

TEST_F(EnsembleTest, ModelsCleanLinearKernel) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {5.0 + 2.0 * p});
    const auto result = ensemble_->model(set);
    EXPECT_LE(std::abs(result.model.lead_exponent(0) - 1.0), 0.5);
}

TEST_F(EnsembleTest, EmptySetThrows) {
    measure::ExperimentSet set({"p"});
    EXPECT_THROW(ensemble_->model(set), std::invalid_argument);
}

}  // namespace
