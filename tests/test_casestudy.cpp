// Tests for the simulated application case studies (Sec. VI).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "casestudy/casestudy.hpp"
#include "noise/estimator.hpp"
#include "xpcore/stats.hpp"

namespace {

using namespace casestudy;

TEST(NoiseProfileTest, MeanFormula) {
    const NoiseProfile uniform{0.1, 0.5, 1.0};
    EXPECT_NEAR(uniform.mean(), 0.3, 1e-12);
    const NoiseProfile skewed{0.0366, 0.5367, 2.63};
    EXPECT_NEAR(skewed.mean(), 0.1744, 0.002);  // Kripke's published mean
}

TEST(NoiseProfileTest, SamplesWithinBounds) {
    xpcore::Rng rng(1);
    const NoiseProfile profile{0.05, 0.80, 2.0};
    for (int i = 0; i < 2000; ++i) {
        const double level = profile.sample_level(rng);
        EXPECT_GE(level, 0.05);
        EXPECT_LE(level, 0.80);
    }
}

TEST(NoiseProfileTest, EmpiricalMeanMatchesAnalytic) {
    xpcore::Rng rng(2);
    const NoiseProfile profile{0.0751, 1.6027, 2.63};  // FASTEST
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) samples.push_back(profile.sample_level(rng));
    EXPECT_NEAR(xpcore::mean(samples), profile.mean(), 0.01);
    EXPECT_NEAR(profile.mean(), 0.4956, 0.005);  // the paper's 49.56%
}

TEST(Kripke, Layout) {
    const auto study = kripke();
    EXPECT_EQ(study.parameters.size(), 3u);
    EXPECT_EQ(study.modeling_points.size(), 125u);   // 5x5x5, d != 12
    EXPECT_EQ(study.analysis_points.size(), 150u);   // 5x6x5
    EXPECT_EQ(study.repetitions, 5u);
    EXPECT_EQ(study.evaluation_point, (measure::Coordinate{32768, 12, 160}));
    for (const auto& point : study.modeling_points) EXPECT_NE(point[1], 12.0);
}

TEST(Kripke, SweepSolverTruthMatchesPaperModel) {
    const auto study = kripke();
    const auto& sweep = study.kernels.front();
    EXPECT_EQ(sweep.name, "SweepSolver");
    const double expected = 8.51 + 0.11 * std::cbrt(8.0) * 2.0 * std::pow(32.0, 0.8);
    EXPECT_NEAR(sweep.truth.evaluate({{8, 2, 32}}), expected, 1e-9);
    EXPECT_EQ(sweep.truth.to_string(study.parameters), "8.51 + 0.11 * p^(1/3) * d * g^(4/5)");
}

TEST(Kripke, SixPerformanceRelevantKernels) {
    const auto study = kripke();
    EXPECT_EQ(study.relevant_kernels().size(), 6u);
}

TEST(Fastest, Layout) {
    const auto study = fastest();
    EXPECT_EQ(study.parameters.size(), 2u);
    EXPECT_EQ(study.modeling_points.size(), 9u);  // two overlapping 5-point lines
    EXPECT_EQ(study.analysis_points.size(), 40u);
    EXPECT_EQ(study.evaluation_point, (measure::Coordinate{2048, 8192}));
    // The overlap point (256, 131072) appears exactly once.
    std::set<std::pair<double, double>> unique_points;
    for (const auto& p : study.modeling_points) {
        EXPECT_TRUE(unique_points.emplace(p[0], p[1]).second);
    }
}

TEST(Fastest, TwentyRelevantKernelsPlusIrrelevantOnes) {
    const auto study = fastest();
    EXPECT_EQ(study.relevant_kernels().size(), 20u);  // the paper's 20
    EXPECT_GT(study.kernels.size(), 20u);             // plus sub-1% kernels
}

TEST(Relearn, Layout) {
    const auto study = relearn();
    EXPECT_EQ(study.modeling_points.size(), 9u);
    EXPECT_EQ(study.analysis_points.size(), 25u);
    EXPECT_EQ(study.repetitions, 2u);
    EXPECT_EQ(study.evaluation_point, (measure::Coordinate{512, 9000}));
}

TEST(Relearn, ConnectivityUpdateFollowsLiterature) {
    const auto study = relearn();
    const auto& kernel = study.kernels.front();
    EXPECT_EQ(kernel.name, "connectivity_update");
    // O(n log^2 n + p): lead exponents 1 (p) and 1.5 (n with log^2).
    EXPECT_DOUBLE_EQ(kernel.truth.lead_exponent(0), 1.0);
    EXPECT_DOUBLE_EQ(kernel.truth.lead_exponent(1), 1.5);
}

TEST(Generate, DeterministicGivenSeed) {
    const auto study = relearn();
    xpcore::Rng a(5), b(5);
    const auto s1 = study.generate_modeling(study.kernels[0], a);
    const auto s2 = study.generate_modeling(study.kernels[0], b);
    ASSERT_EQ(s1.size(), s2.size());
    for (std::size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1.measurements()[i].values, s2.measurements()[i].values);
    }
}

TEST(Generate, RepetitionCountAndPositivity) {
    const auto study = kripke();
    xpcore::Rng rng(6);
    const auto set = study.generate_modeling(study.kernels[0], rng);
    EXPECT_EQ(set.size(), 125u);
    for (const auto& m : set.measurements()) {
        EXPECT_EQ(m.values.size(), 5u);
        for (double v : m.values) EXPECT_GT(v, 0.0);
    }
}

TEST(Generate, NoiseMatchesProfileStatistics) {
    const auto study = kripke();
    xpcore::Rng rng(7);
    const auto set = study.generate(study.kernels[0], study.analysis_points, rng);
    const auto stats = noise::analyze_noise(set);
    // Mean per-point noise should land near the published 17.44% (generous
    // tolerance: 150 points, 5 reps).
    EXPECT_NEAR(stats.mean, 0.1744, 0.05);
    EXPECT_GT(stats.max, stats.mean);
}

TEST(Generate, RelearnIsCalm) {
    const auto study = relearn();
    xpcore::Rng rng(8);
    const auto set = study.generate(study.kernels[0], study.analysis_points, rng);
    EXPECT_LT(noise::estimate_noise(set), 0.02);
}

TEST(Generate, ArityMismatchThrows) {
    const auto study = relearn();
    xpcore::Rng rng(9);
    const std::vector<measure::Coordinate> bad_points = {{1.0, 2.0, 3.0}};
    EXPECT_THROW(study.generate(study.kernels[0], bad_points, rng), std::invalid_argument);
}

TEST(AllCaseStudies, ThreeStudiesWithSharesBelowOne) {
    const auto studies = all_case_studies();
    ASSERT_EQ(studies.size(), 3u);
    for (const auto& study : studies) {
        double total_share = 0.0;
        for (const auto& kernel : study.kernels) {
            EXPECT_GT(kernel.runtime_share, 0.0);
            total_share += kernel.runtime_share;
        }
        EXPECT_LE(total_share, 1.0 + 1e-9) << study.application;
    }
}

TEST(AllCaseStudies, TruthsArePositiveOverTheirDomains) {
    for (const auto& study : all_case_studies()) {
        for (const auto& kernel : study.kernels) {
            for (const auto& point : study.analysis_points) {
                EXPECT_GT(kernel.truth.evaluate(point), 0.0)
                    << study.application << "/" << kernel.name;
            }
            EXPECT_GT(kernel.truth.evaluate(study.evaluation_point), 0.0);
        }
    }
}

}  // namespace
