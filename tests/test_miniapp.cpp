// Tests for the executable mini-app kernels and the campaign harness.
// Scaling assertions use the deterministic operation counters so they are
// immune to timing noise; wall-clock paths get smoke coverage only.

#include <gtest/gtest.h>

#include <cmath>

#include "miniapp/campaign.hpp"
#include "miniapp/kernels.hpp"
#include "regression/modeler.hpp"

namespace {

using namespace miniapp;

TEST(SweepKernel, ChecksumDeterministic) {
    SweepKernel a({8, 8, 8, 2, 4});
    SweepKernel b({8, 8, 8, 2, 4});
    EXPECT_DOUBLE_EQ(a.run(), b.run());
}

TEST(SweepKernel, ChecksumChangesWithConfig) {
    SweepKernel a({8, 8, 8, 2, 4});
    SweepKernel b({8, 8, 8, 2, 5});
    EXPECT_NE(a.run(), b.run());
}

TEST(SweepKernel, OperationCountFormula) {
    SweepKernel kernel({16, 8, 4, 3, 5});
    EXPECT_EQ(kernel.operation_count(), 16u * 8 * 4 * 3 * 5);
}

TEST(SweepKernel, WorkLinearInDirectionsAndGroups) {
    const std::uint64_t base = SweepKernel({8, 8, 8, 2, 4}).operation_count();
    EXPECT_EQ(SweepKernel({8, 8, 8, 4, 4}).operation_count(), base * 2);
    EXPECT_EQ(SweepKernel({8, 8, 8, 2, 12}).operation_count(), base * 3);
}

TEST(SweepKernel, RunProducesFiniteValue) {
    SweepKernel kernel({12, 12, 12, 3, 6});
    EXPECT_TRUE(std::isfinite(kernel.run()));
}

TEST(StencilKernel, OperationCountFormula) {
    StencilKernel kernel({10, 3});
    EXPECT_EQ(kernel.operation_count(), 8u * 8 * 8 * 3);
}

TEST(StencilKernel, ChecksumDeterministic) {
    StencilKernel a({12, 2});
    StencilKernel b({12, 2});
    EXPECT_DOUBLE_EQ(a.run(), b.run());
}

TEST(StencilKernel, SmoothingConvergesTowardMean) {
    // Jacobi averaging is a contraction: more iterations, smaller spread of
    // the checksum change between consecutive runs on the same state.
    StencilKernel few({16, 1});
    StencilKernel many({16, 20});
    const double initial = StencilKernel({16, 0}).operation_count() == 0
                               ? 0.0
                               : 0.0;  // silence unused warning path
    (void)initial;
    EXPECT_TRUE(std::isfinite(few.run()));
    EXPECT_TRUE(std::isfinite(many.run()));
}

TEST(ConnectivityKernel, DeterministicGivenSeed) {
    ConnectivityKernel a({1000, 0.6, 7});
    ConnectivityKernel b({1000, 0.6, 7});
    EXPECT_DOUBLE_EQ(a.run(), b.run());
    EXPECT_EQ(a.operation_count(), b.operation_count());
}

TEST(ConnectivityKernel, DifferentSeedDifferentWork) {
    ConnectivityKernel a({1000, 0.6, 7});
    ConnectivityKernel b({1000, 0.6, 8});
    EXPECT_NE(a.run(), b.run());
}

TEST(ConnectivityKernel, WorkSuperlinearInNeurons) {
    // n log n scaling: doubling n should more than double the visits.
    const auto ops_1k = ConnectivityKernel({1000, 0.6, 7}).operation_count();
    const auto ops_2k = ConnectivityKernel({2000, 0.6, 7}).operation_count();
    const auto ops_4k = ConnectivityKernel({4000, 0.6, 7}).operation_count();
    EXPECT_GT(ops_2k, 2 * ops_1k);
    EXPECT_GT(ops_4k, 2 * ops_2k);
    // ... but clearly sub-quadratic.
    EXPECT_LT(ops_4k, 8 * ops_1k);
}

TEST(ConnectivityKernel, SmallerThetaMoreWork) {
    const auto coarse = ConnectivityKernel({2000, 0.9, 7}).operation_count();
    const auto fine = ConnectivityKernel({2000, 0.3, 7}).operation_count();
    EXPECT_GT(fine, coarse);
}

TEST(Campaign, OperationsMetricIsNoiseFree) {
    std::vector<measure::Coordinate> points;
    for (double d : {2.0, 4.0, 6.0}) points.push_back({d, 4.0});
    const auto set = run_campaign({"d", "g"}, points, sweep_factory(8, 8, 8),
                                  {3, Metric::Operations, 0.0});
    ASSERT_EQ(set.size(), 3u);
    for (const auto& m : set.measurements()) {
        ASSERT_EQ(m.values.size(), 3u);
        EXPECT_DOUBLE_EQ(m.values[0], m.values[1]);
        EXPECT_DOUBLE_EQ(m.values[1], m.values[2]);
    }
}

TEST(Campaign, OperationsScaleIsModelable) {
    // The regression modeler must recover the exact d*g law from the
    // operation-count campaign.
    std::vector<measure::Coordinate> points;
    for (double d : {2.0, 4.0, 6.0, 8.0, 10.0}) {
        for (double g : {8.0, 16.0, 24.0, 32.0, 40.0}) points.push_back({d, g});
    }
    const auto set = run_campaign({"d", "g"}, points, sweep_factory(8, 8, 8),
                                  {1, Metric::Operations, 0.0});
    regression::RegressionModeler modeler;
    const auto result = modeler.model(set);
    EXPECT_NEAR(result.fit_smape, 0.0, 0.01);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(0), 1.0);
    EXPECT_DOUBLE_EQ(result.model.lead_exponent(1), 1.0);
}

TEST(Campaign, ConnectivityOperationsNearNLogN) {
    std::vector<measure::Coordinate> points;
    for (double n : {500.0, 1000.0, 2000.0, 4000.0, 8000.0}) points.push_back({n});
    const auto set = run_campaign({"n"}, points, connectivity_factory(),
                                  {1, Metric::Operations, 0.0});
    regression::RegressionModeler modeler;
    const auto result = modeler.model(set);
    // Lead effective exponent close to n log n (1.25); allow one bucket.
    EXPECT_NEAR(result.model.lead_exponent(0), 1.25, 0.34);
}

TEST(Campaign, RuntimeMetricProducesPositiveTimes) {
    std::vector<measure::Coordinate> points = {{2.0, 4.0}, {4.0, 4.0}};
    const auto set =
        run_campaign({"d", "g"}, points, sweep_factory(8, 8, 8), {2, Metric::Runtime, 0.0});
    for (const auto& m : set.measurements()) {
        for (double v : m.values) EXPECT_GT(v, 0.0);
    }
}

TEST(Campaign, MinimumDurationAveragesMultipleRuns) {
    std::vector<measure::Coordinate> points = {{2.0, 2.0}};
    CampaignConfig config{1, Metric::Runtime, 0.01};
    const auto set = run_campaign({"d", "g"}, points, sweep_factory(4, 4, 4), config);
    // A (4,4,4,2,2) sweep takes microseconds; averaging over >= 10ms of
    // runs must report a per-run time far below the total budget.
    EXPECT_LT(set.measurements()[0].values[0], 0.01);
}

TEST(Campaign, InvalidInputsThrow) {
    std::vector<measure::Coordinate> points = {{2.0, 2.0}};
    EXPECT_THROW(run_campaign({"d", "g"}, points, sweep_factory(), {0, Metric::Runtime, 0.0}),
                 std::invalid_argument);
    std::vector<measure::Coordinate> bad_arity = {{2.0}};
    EXPECT_THROW(
        run_campaign({"d", "g"}, bad_arity, sweep_factory(), {1, Metric::Operations, 0.0}),
        std::invalid_argument);
    EXPECT_THROW(sweep_factory()({2.5, 4.0}), std::invalid_argument);      // non-integer
    EXPECT_THROW(connectivity_factory()({0.0}), std::invalid_argument);   // zero neurons
    EXPECT_THROW(stencil_factory()({16.0}), std::invalid_argument);       // wrong arity
}

}  // namespace
