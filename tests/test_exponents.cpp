// Tests for the PMNF exponent set E and term classes (Eq. 2 of the paper).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "pmnf/exponents.hpp"

namespace {

using namespace pmnf;

TEST(Rational, NormalizesToLowestTerms) {
    const Rational r(4, 8);
    EXPECT_EQ(r.num(), 1);
    EXPECT_EQ(r.den(), 2);
}

TEST(Rational, HandlesNegativeDenominator) {
    const Rational r(1, -2);
    EXPECT_EQ(r.num(), -1);
    EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ZeroCanonical) {
    const Rational r(0, 5);
    EXPECT_EQ(r.num(), 0);
    EXPECT_EQ(r.den(), 1);
}

TEST(Rational, ValueAndComparisons) {
    EXPECT_DOUBLE_EQ(Rational(3, 4).value(), 0.75);
    EXPECT_EQ(Rational(1, 2), Rational(2, 4));
    EXPECT_LT(Rational(1, 3), Rational(1, 2));
    EXPECT_GT(Rational(5, 2), Rational(2));
}

TEST(Rational, ToString) {
    EXPECT_EQ(Rational(0).to_string(), "0");
    EXPECT_EQ(Rational(2).to_string(), "2");
    EXPECT_EQ(Rational(4, 5).to_string(), "4/5");
}

TEST(ExponentSet, HasExactly43Classes) {
    EXPECT_EQ(class_count(), 43u);
    EXPECT_EQ(exponent_set().size(), 43u);
}

TEST(ExponentSet, AllClassesDistinct) {
    std::set<std::pair<double, int>> seen;
    for (const auto& cls : exponent_set()) {
        EXPECT_TRUE(seen.emplace(cls.i.value(), cls.j).second)
            << "duplicate class " << cls.to_string();
    }
}

TEST(ExponentSet, MatchesEquationTwoStructure) {
    // Block 1: 10 poly exponents x {0,1,2}; block 2: 3 x {0,1}; block 3: 7 x {0}.
    int with_j2 = 0, with_j1 = 0, with_j0 = 0;
    for (const auto& cls : exponent_set()) {
        if (cls.j == 2) ++with_j2;
        if (cls.j == 1) ++with_j1;
        if (cls.j == 0) ++with_j0;
    }
    EXPECT_EQ(with_j2, 10);
    EXPECT_EQ(with_j1, 13);
    EXPECT_EQ(with_j0, 20);
}

TEST(ExponentSet, ContainsPaperExamples) {
    EXPECT_LT(class_index({Rational(4, 5), 0}), 43u);
    EXPECT_LT(class_index({Rational(1, 3), 2}), 43u);
    EXPECT_LT(class_index({Rational(3), 1}), 43u);
    EXPECT_LT(class_index({Rational(0), 0}), 43u);
}

TEST(ExponentSet, ExcludesOutOfSetCombinations) {
    // x^3 log^2 and x^(4/5) log are not in E.
    EXPECT_EQ(class_index({Rational(3), 2}), 43u);
    EXPECT_EQ(class_index({Rational(4, 5), 1}), 43u);
    EXPECT_EQ(class_index({Rational(8), 0}), 43u);
}

TEST(ExponentSet, ClassIndexRoundTrip) {
    const auto classes = exponent_set();
    for (std::size_t k = 0; k < classes.size(); ++k) {
        EXPECT_EQ(class_index(classes[k]), k);
    }
}

TEST(TermClass, EvaluatePolynomial) {
    const TermClass cls{Rational(2), 0};
    EXPECT_DOUBLE_EQ(cls.evaluate(3.0), 9.0);
}

TEST(TermClass, EvaluateLogarithm) {
    const TermClass cls{Rational(0), 2};
    EXPECT_DOUBLE_EQ(cls.evaluate(8.0), 9.0);  // log2(8)^2
}

TEST(TermClass, EvaluateMixed) {
    const TermClass cls{Rational(1, 2), 1};
    EXPECT_DOUBLE_EQ(cls.evaluate(16.0), 4.0 * 4.0);  // sqrt(16) * log2(16)
}

TEST(TermClass, EvaluateFractionalExponent) {
    const TermClass cls{Rational(4, 5), 0};
    EXPECT_NEAR(cls.evaluate(32.0), std::pow(32.0, 0.8), 1e-12);
}

TEST(TermClass, ConstantClass) {
    const TermClass cls{Rational(0), 0};
    EXPECT_TRUE(cls.is_constant());
    EXPECT_DOUBLE_EQ(cls.evaluate(123.0), 1.0);
    EXPECT_FALSE((TermClass{Rational(1), 0}).is_constant());
    EXPECT_FALSE((TermClass{Rational(0), 1}).is_constant());
}

TEST(TermClass, EffectiveExponent) {
    EXPECT_DOUBLE_EQ((TermClass{Rational(2), 0}).effective_exponent(), 2.0);
    EXPECT_DOUBLE_EQ((TermClass{Rational(1), 1}).effective_exponent(), 1.25);
    EXPECT_DOUBLE_EQ((TermClass{Rational(0), 2}).effective_exponent(), 0.5);
}

TEST(TermClass, ToString) {
    EXPECT_EQ((TermClass{Rational(1), 0}).to_string("p"), "p");
    EXPECT_EQ((TermClass{Rational(2), 0}).to_string(), "x^2");
    EXPECT_EQ((TermClass{Rational(4, 5), 0}).to_string(), "x^(4/5)");
    EXPECT_EQ((TermClass{Rational(0), 1}).to_string(), "log2(x)");
    EXPECT_EQ((TermClass{Rational(1), 2}).to_string("n"), "n * log2(n)^2");
    EXPECT_EQ((TermClass{Rational(0), 0}).to_string(), "1");
}

TEST(NearestClass, ExactMatches) {
    for (const auto& cls : exponent_set()) {
        const auto& nearest = nearest_class(cls.effective_exponent());
        EXPECT_DOUBLE_EQ(nearest.effective_exponent(), cls.effective_exponent());
    }
}

TEST(NearestClass, ClampsAboveRange) {
    const auto& cls = nearest_class(100.0);
    EXPECT_DOUBLE_EQ(cls.effective_exponent(), 3.25);  // x^3 * log2(x)
}

/// Property sweep: every class evaluates positively for x > 1 and is
/// monotonically non-decreasing over doubling steps (all exponents in E are
/// non-negative).
class AllClasses : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllClasses, PositiveAndMonotoneBeyondTwo) {
    const auto& cls = exponent_set()[GetParam()];
    double prev = cls.evaluate(2.0);
    EXPECT_GT(prev, 0.0);
    for (double x = 4.0; x <= 4096.0; x *= 2.0) {
        const double value = cls.evaluate(x);
        EXPECT_GE(value, prev) << cls.to_string() << " at x=" << x;
        prev = value;
    }
}

INSTANTIATE_TEST_SUITE_P(ExponentSweep, AllClasses, ::testing::Range<std::size_t>(0, 43));

}  // namespace
