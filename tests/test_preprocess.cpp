// Tests for the DNN input preprocessing (Sec. IV-C of the paper).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "dnn/preprocess.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace dnn;

TEST(SamplePositions, MatchPaperList) {
    const auto positions = sample_positions();
    ASSERT_EQ(positions.size(), 11u);
    EXPECT_DOUBLE_EQ(positions[0], 1.0 / 64);
    EXPECT_DOUBLE_EQ(positions[1], 1.0 / 32);
    EXPECT_DOUBLE_EQ(positions[2], 1.0 / 16);
    EXPECT_DOUBLE_EQ(positions[3], 1.0 / 8);
    EXPECT_DOUBLE_EQ(positions[4], 2.0 / 8);
    EXPECT_DOUBLE_EQ(positions[10], 1.0);
}

TEST(AssignSlots, EachSlotUsedAtMostOnce) {
    const std::vector<double> xs = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110};
    const auto slots = assign_slots(xs);
    std::set<std::size_t> used;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_TRUE(used.insert(slots[i]).second) << "slot reused";
    }
}

TEST(AssignSlots, ElevenPointsFillAllSlots) {
    const std::vector<double> xs = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110};
    const auto slots = assign_slots(xs);
    std::set<std::size_t> used(slots.begin(), slots.begin() + xs.size());
    EXPECT_EQ(used.size(), 11u);
}

TEST(AssignSlots, LastPointMapsToLastSlot) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    const auto slots = assign_slots(xs);
    EXPECT_EQ(slots[4], 10u);  // normalized position 1.0 -> slot "1"
}

TEST(AssignSlots, LinearSequenceSpreadsAcrossUpperSlots) {
    // 0.2, 0.4, 0.6, 0.8, 1.0 -> nearest positions 0.25, 0.375, 0.625, 0.75, 1.
    const std::vector<double> xs = {20, 40, 60, 80, 100};
    const auto slots = assign_slots(xs);
    EXPECT_EQ(slots[0], 4u);
    EXPECT_EQ(slots[1], 5u);
    EXPECT_EQ(slots[2], 7u);
    EXPECT_EQ(slots[3], 8u);
    EXPECT_EQ(slots[4], 10u);
}

TEST(AssignSlots, ExponentialSequenceUsesLowSlots) {
    // 8/32768 etc.: tiny normalized positions cluster in the low slots.
    const std::vector<double> xs = {8, 64, 512, 4096, 32768};
    const auto slots = assign_slots(xs);
    EXPECT_LE(slots[0], 1u);
    EXPECT_LE(slots[1], 2u);
    EXPECT_EQ(slots[4], 10u);
}

TEST(AssignSlots, ValidationErrors) {
    EXPECT_THROW(assign_slots(std::vector<double>{1.0}), xpcore::ValidationError);
    EXPECT_THROW(assign_slots(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}),
                 xpcore::ValidationError);
    EXPECT_THROW(assign_slots(std::vector<double>{2, 1}), xpcore::ValidationError);  // decreasing
    EXPECT_THROW(assign_slots(std::vector<double>{0, 1}), xpcore::ValidationError);  // non-positive
    EXPECT_THROW(assign_slots(std::vector<double>{1, 1}), xpcore::ValidationError);  // duplicate
    const std::vector<double> with_nan = {1, std::nan(""), 3};
    EXPECT_THROW(assign_slots(with_nan), xpcore::ValidationError);
}

TEST(AssignSlots, ValidationErrorsCarryContext) {
    try {
        assign_slots(std::vector<double>{2, 1});
        FAIL() << "expected xpcore::ValidationError";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.source(), "preprocess_line");
        EXPECT_NE(std::string(e.what()).find("strictly increasing"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("index 1"), std::string::npos);
    }
}

TEST(AssignSlots, ClusteredPointsKeepOrder) {
    // Regression: the greedy nearest-free-neuron pass mapped {60, 62, 64}
    // (normalized 0.9375, 0.96875, 1.0) to slots 9, 10, 8 — the largest x
    // landed on a *lower* slot than its predecessors, scrambling the line
    // shape. The monotone assignment must keep slots strictly increasing.
    const std::vector<double> xs = {60, 62, 64};
    const auto slots = assign_slots(xs);
    EXPECT_LT(slots[0], slots[1]);
    EXPECT_LT(slots[1], slots[2]);
    EXPECT_EQ(slots[2], 10u);  // normalized 1.0 is exactly the last position
}

TEST(AssignSlots, SlotsStrictlyIncreasingForEveryValidInput) {
    // Property over random strictly-increasing positive sequences of every
    // admissible length, including tightly clustered ones.
    xpcore::Rng rng(20240806);
    for (int iter = 0; iter < 500; ++iter) {
        const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 9));
        std::vector<double> xs;
        double x = rng.uniform(0.1, 100.0);
        for (std::size_t i = 0; i < n; ++i) {
            x += rng.chance(0.5) ? rng.uniform(0.01, 2.0) : rng.uniform(2.0, 500.0);
            xs.push_back(x);
        }
        const auto slots = assign_slots(xs);
        for (std::size_t i = 1; i < n; ++i) {
            ASSERT_LT(slots[i - 1], slots[i])
                << "order inverted at i=" << i << " for n=" << n << " iter=" << iter;
        }
        ASSERT_LT(slots[n - 1], kInputNeurons);
    }
}

TEST(AssignSlots, MonotoneAssignmentIsDistanceOptimal) {
    // The DP must not trade order preservation for extra distance when the
    // identity-like assignment is available: exact matches stay exact.
    const std::vector<double> xs = {4, 8, 16, 32, 64};  // 1/16, 1/8, 1/4, 1/2, 1
    const auto slots = assign_slots(xs);
    EXPECT_EQ(slots[0], 2u);
    EXPECT_EQ(slots[1], 3u);
    EXPECT_EQ(slots[2], 4u);
    EXPECT_EQ(slots[3], 6u);
    EXPECT_EQ(slots[4], 10u);
}

TEST(PreprocessLine, EnrichmentDividesByPosition) {
    // Constant v/x: f(x) = x gives enriched values all 1 -> normalized all 1.
    const std::vector<double> xs = {10, 20, 30, 40, 50};
    const std::vector<double> vs = {10, 20, 30, 40, 50};
    const auto input = preprocess_line(xs, vs);
    const auto slots = assign_slots(xs);
    for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_FLOAT_EQ(input[slots[i]], 1.0f);
}

TEST(PreprocessLine, UnusedSlotsAreZeroMasked) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    const std::vector<double> vs = {1, 2, 3, 4, 5};
    const auto input = preprocess_line(xs, vs);
    const auto slots = assign_slots(xs);
    std::set<std::size_t> used(slots.begin(), slots.begin() + xs.size());
    for (std::size_t s = 0; s < kInputNeurons; ++s) {
        if (!used.count(s)) EXPECT_FLOAT_EQ(input[s], 0.0f);
    }
}

TEST(PreprocessLine, ValuesNormalizedToUnitMagnitude) {
    const std::vector<double> xs = {2, 4, 8, 16, 32};
    std::vector<double> vs;
    for (double x : xs) vs.push_back(100.0 * x * x);  // huge values
    const auto input = preprocess_line(xs, vs);
    float max_abs = 0.0f;
    for (float v : input) max_abs = std::max(max_abs, std::abs(v));
    EXPECT_NEAR(max_abs, 1.0f, 1e-6);
}

TEST(PreprocessLine, ScaleInvariant) {
    // Multiplying all measurements by a constant must not change the input.
    const std::vector<double> xs = {2, 4, 8, 16, 32};
    std::vector<double> vs1, vs2;
    for (double x : xs) {
        vs1.push_back(3.0 + x * std::log2(x));
        vs2.push_back(1000.0 * (3.0 + x * std::log2(x)));
    }
    const auto a = preprocess_line(xs, vs1);
    const auto b = preprocess_line(xs, vs2);
    for (std::size_t i = 0; i < kInputNeurons; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(PreprocessLine, PositionScaleInvariant) {
    // The paper's normalization makes the input independent of the range of
    // the sequence: (10,20,40,80,160) and (1,2,4,8,16) with v proportional
    // to x give identical inputs.
    const std::vector<double> xs1 = {10, 20, 40, 80, 160};
    const std::vector<double> xs2 = {1, 2, 4, 8, 16};
    std::vector<double> vs1, vs2;
    for (double x : xs1) vs1.push_back(2.0 * x);
    for (double x : xs2) vs2.push_back(2.0 * x);
    const auto a = preprocess_line(xs1, vs1);
    const auto b = preprocess_line(xs2, vs2);
    for (std::size_t i = 0; i < kInputNeurons; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(PreprocessLine, SizeMismatchThrows) {
    EXPECT_THROW(preprocess_line(std::vector<double>{1, 2, 3}, std::vector<double>{1, 2}),
                 xpcore::ValidationError);
}

TEST(PreprocessLine, NonFiniteValuesRejected) {
    const std::vector<double> xs = {1, 2, 3};
    const std::vector<double> with_nan = {1.0, std::nan(""), 3.0};
    const std::vector<double> with_inf = {1.0, 2.0, INFINITY};
    EXPECT_THROW(preprocess_line(xs, with_nan), xpcore::ValidationError);
    EXPECT_THROW(preprocess_line(xs, with_inf), xpcore::ValidationError);
}

TEST(PreprocessLine, InputsAlwaysFinite) {
    // Hardening property: whatever valid measurements come in, the network
    // never sees a non-finite input.
    xpcore::Rng rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 9));
        std::vector<double> xs, vs;
        double x = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            x += rng.uniform(1e-6, 1e5);
            xs.push_back(x);
            vs.push_back(rng.uniform(-1e12, 1e12));
        }
        const auto input = preprocess_line(xs, vs);
        for (float v : input) {
            ASSERT_TRUE(std::isfinite(v));
            ASSERT_LE(std::abs(v), 1.0f + 1e-6f);
        }
    }
}

TEST(PreprocessLine, DifferentClassesGiveDifferentInputs) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    std::vector<double> constant_v, quadratic_v;
    for (double x : xs) {
        constant_v.push_back(5.0);
        quadratic_v.push_back(5.0 * x * x);
    }
    const auto a = preprocess_line(xs, constant_v);
    const auto b = preprocess_line(xs, quadratic_v);
    double diff = 0.0;
    for (std::size_t i = 0; i < kInputNeurons; ++i) diff += std::abs(a[i] - b[i]);
    EXPECT_GT(diff, 0.1);
}

}  // namespace
