// Zero-allocation guarantees of the workspace-backed hot paths: after a
// warm-up pass has sized every buffer, (a) further training epochs — serial
// and gradient-sharded — and (b) further batched classify_lines_into calls
// must not touch the heap. Enforced with a counting global operator new —
// the same mechanism tools/bench_record.cpp uses to *measure* allocs/step.
// Tensor buffers allocate through the over-aligned operator new
// (xpcore/aligned.hpp), so the aligned forms are interposed too: without
// them, Tensor growth would be invisible to the counter.
//
// The guarantee holds on the serial execution path (SerialGuard): the thread
// pool's task dispatch allocates by design, so pool-parallel runs are out of
// scope here.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "dnn/modeler.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "xpcore/aligned.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/thread_pool.hpp"

namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

// Over-aligned forms (Tensor data goes through these with a 64-byte
// alignment request — see xpcore::AlignedAllocator).
void* operator new(std::size_t size, std::align_val_t align) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    const std::size_t alignment =
        std::max(static_cast<std::size_t>(align), sizeof(void*));
    if (posix_memalign(&p, alignment, size ? size : alignment) == 0) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

void fill_random(nn::Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

TEST(ZeroAlloc, TensorBuffersAre64ByteAligned) {
    // The SIMD kernels and the packed GEMM assume cache-line-aligned tensor
    // storage (xpcore::kBufferAlignment); pin it across construction,
    // resize-growth, and copies.
    static_assert(xpcore::kBufferAlignment == 64);
    auto aligned = [](const float* p) {
        return reinterpret_cast<std::uintptr_t>(p) % xpcore::kBufferAlignment == 0;
    };
    nn::Tensor t(3, 5);
    EXPECT_TRUE(aligned(t.data()));
    t.resize(129, 77);  // forces a reallocation
    EXPECT_TRUE(aligned(t.data()));
    const nn::Tensor copy = t;
    EXPECT_TRUE(aligned(copy.data()));
    nn::Tensor grown;
    grown.resize(1, 1);
    EXPECT_TRUE(aligned(grown.data()));
}

TEST(ZeroAlloc, SteadyStateTrainingEpochsAllocateNothing) {
    xpcore::SerialGuard serial;
    xpcore::Rng rng(1);
    nn::Network net = nn::Network::mlp({11, 64, 32, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 32, true});
    nn::Dataset data;
    const std::size_t samples = 128;
    data.inputs.resize(samples, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);

    xpcore::Rng train_rng(2);
    trainer.fit(data, train_rng);  // warm-up epoch sizes the workspace

    const long long before = g_allocs.load();
    trainer.fit(data, train_rng);
    trainer.fit(data, train_rng);
    const long long allocations = g_allocs.load() - before;
    EXPECT_EQ(allocations, 0) << "steady-state training epochs must not allocate";
}

TEST(ZeroAlloc, SteadyStateShardedTrainingEpochsAllocateNothing) {
    // The gradient-sharded step reuses per-shard workspaces and gradient
    // sinks (nn::GradShard) exactly like the serial path reuses the main
    // workspace: after a warm-up epoch has sized them, further sharded
    // epochs are allocation-free on the serial execution path.
    xpcore::SerialGuard serial;
    xpcore::Rng rng(5);
    nn::Network net = nn::Network::mlp({11, 64, 32, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer::Config config;
    config.epochs = 1;
    config.batch_size = 32;
    config.grad_shards = 4;
    nn::Trainer trainer(net, opt, config);
    nn::Dataset data;
    const std::size_t samples = 128;
    data.inputs.resize(samples, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);

    xpcore::Rng train_rng(6);
    trainer.fit(data, train_rng);  // warm-up epoch sizes every shard

    const long long before = g_allocs.load();
    trainer.fit(data, train_rng);
    trainer.fit(data, train_rng);
    EXPECT_EQ(g_allocs.load() - before, 0)
        << "steady-state sharded training epochs must not allocate";
}

TEST(ZeroAlloc, SteadyStateBatchedInferenceAllocatesNothing) {
    xpcore::SerialGuard serial;
    dnn::DnnConfig config;
    config.hidden = {32, 16};
    config.pretrain_samples_per_class = 10;
    config.pretrain_epochs = 1;
    dnn::DnnModeler modeler(config, /*seed=*/3);
    modeler.pretrain();

    std::vector<dnn::LineSample> lines(10);
    for (auto& line : lines) {
        line.xs = {8, 16, 32, 64, 128};
        line.values = {1.0, 2.1, 4.4, 9.0, 18.5};
    }
    nn::Tensor probs;
    modeler.classify_lines_into(lines, probs);  // warm-up sizes the buffers

    const long long before = g_allocs.load();
    for (int i = 0; i < 5; ++i) modeler.classify_lines_into(lines, probs);
    const long long allocations = g_allocs.load() - before;
    EXPECT_EQ(allocations, 0) << "steady-state batched inference must not allocate";

    // A smaller batch reuses the larger buffers (resize keeps capacity).
    const long long before_small = g_allocs.load();
    modeler.classify_lines_into({lines.data(), 3}, probs);
    EXPECT_EQ(g_allocs.load() - before_small, 0)
        << "shrinking the batch must not allocate either";
}

TEST(ZeroAlloc, EvaluateAndPredictReuseTrainerWorkspace) {
    xpcore::SerialGuard serial;
    xpcore::Rng rng(4);
    nn::Network net = nn::Network::mlp({11, 32, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 32, false});
    nn::Dataset data;
    data.inputs.resize(64, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(64);
    for (std::size_t i = 0; i < 64; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);

    trainer.evaluate(data);  // warm-up
    const long long before = g_allocs.load();
    trainer.evaluate(data);
    trainer.evaluate(data);
    EXPECT_EQ(g_allocs.load() - before, 0) << "repeated evaluate() must not allocate";
}

}  // namespace
