// Zero-allocation guarantees of the workspace-backed hot paths: after a
// warm-up pass has sized every buffer, (a) further training epochs and
// (b) further batched classify_lines_into calls must not touch the heap.
// Enforced with a counting global operator new — the same mechanism
// tools/bench_record.cpp uses to *measure* allocs/step.
//
// The guarantee holds on the serial execution path (SerialGuard): the thread
// pool's task dispatch allocates by design, so pool-parallel runs are out of
// scope here.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "dnn/modeler.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/thread_pool.hpp"

namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

void fill_random(nn::Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

TEST(ZeroAlloc, SteadyStateTrainingEpochsAllocateNothing) {
    xpcore::SerialGuard serial;
    xpcore::Rng rng(1);
    nn::Network net = nn::Network::mlp({11, 64, 32, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 32, true});
    nn::Dataset data;
    const std::size_t samples = 128;
    data.inputs.resize(samples, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);

    xpcore::Rng train_rng(2);
    trainer.fit(data, train_rng);  // warm-up epoch sizes the workspace

    const long long before = g_allocs.load();
    trainer.fit(data, train_rng);
    trainer.fit(data, train_rng);
    const long long allocations = g_allocs.load() - before;
    EXPECT_EQ(allocations, 0) << "steady-state training epochs must not allocate";
}

TEST(ZeroAlloc, SteadyStateBatchedInferenceAllocatesNothing) {
    xpcore::SerialGuard serial;
    dnn::DnnConfig config;
    config.hidden = {32, 16};
    config.pretrain_samples_per_class = 10;
    config.pretrain_epochs = 1;
    dnn::DnnModeler modeler(config, /*seed=*/3);
    modeler.pretrain();

    std::vector<dnn::LineSample> lines(10);
    for (auto& line : lines) {
        line.xs = {8, 16, 32, 64, 128};
        line.values = {1.0, 2.1, 4.4, 9.0, 18.5};
    }
    nn::Tensor probs;
    modeler.classify_lines_into(lines, probs);  // warm-up sizes the buffers

    const long long before = g_allocs.load();
    for (int i = 0; i < 5; ++i) modeler.classify_lines_into(lines, probs);
    const long long allocations = g_allocs.load() - before;
    EXPECT_EQ(allocations, 0) << "steady-state batched inference must not allocate";

    // A smaller batch reuses the larger buffers (resize keeps capacity).
    const long long before_small = g_allocs.load();
    modeler.classify_lines_into({lines.data(), 3}, probs);
    EXPECT_EQ(g_allocs.load() - before_small, 0)
        << "shrinking the batch must not allocate either";
}

TEST(ZeroAlloc, EvaluateAndPredictReuseTrainerWorkspace) {
    xpcore::SerialGuard serial;
    xpcore::Rng rng(4);
    nn::Network net = nn::Network::mlp({11, 32, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 32, false});
    nn::Dataset data;
    data.inputs.resize(64, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(64);
    for (std::size_t i = 0; i < 64; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);

    trainer.evaluate(data);  // warm-up
    const long long before = g_allocs.load();
    trainer.evaluate(data);
    trainer.evaluate(data);
    EXPECT_EQ(g_allocs.load() - before, 0) << "repeated evaluate() must not allocate";
}

}  // namespace
