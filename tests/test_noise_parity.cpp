// Byte-identity parity suite for the uniform noise path (label: parity).
//
// The noise-family registry rebuilt the injection and estimation pipeline on
// top of polymorphic NoiseModels. These goldens were captured from the
// pre-registry implementation on the 17-kernel case-study snapshot (fixed
// seeds 1000..1016): the rrd noise estimates and the regression modeler's
// selections must stay bit-for-bit identical, pinning the refactor's "the
// default uniform path is the paper's path" contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "measure/experiment.hpp"
#include "noise/estimator.hpp"
#include "pmnf/serialize.hpp"
#include "regression/modeler.hpp"
#include "xpcore/rng.hpp"

namespace {

struct Golden {
    const char* task;
    double noise;     // estimate_noise, exact
    double cv_smape;  // regression selection CV score, exact
    const char* model_json;
};

// Captured from the pre-refactor binary; see file comment.
const std::vector<Golden> kGoldens = {
    {"Kripke/SweepSolver", 0.41651641029827546, 19.627378030793057,
     "{\"constant\": 34.860876068088466, \"terms\": [{\"coefficient\": 0.052761783878186502, \"factors\": [{\"parameter\": 0, \"i\": [1, 3], \"j\": 0}, {\"parameter\": 1, \"i\": [4, 3], \"j\": 0}, {\"parameter\": 2, \"i\": [4, 5], \"j\": 0}]}]}"},
    {"Kripke/LTimes", 0.37771849193684931, 11.025198329767129,
     "{\"constant\": 0.95038467519868453, \"terms\": [{\"coefficient\": 0.0056704251309204565, \"factors\": [{\"parameter\": 1, \"i\": [1, 1], \"j\": 0}, {\"parameter\": 2, \"i\": [0, 1], \"j\": 2}]}]}"},
    {"Kripke/LPlusTimes", 0.37885775154331541, 8.0155935357801962,
     "{\"constant\": 1.0984288376875357, \"terms\": [{\"coefficient\": 9.2029637112295439e-05, \"factors\": [{\"parameter\": 1, \"i\": [1, 2], \"j\": 2}, {\"parameter\": 2, \"i\": [1, 2], \"j\": 2}]}]}"},
    {"Kripke/Scattering", 0.41345699608648767, 3.026688547758289,
     "{\"constant\": 1.918045597433981, \"terms\": [{\"coefficient\": 0.0061768519179611885, \"factors\": [{\"parameter\": 2, \"i\": [5, 4], \"j\": 0}]}]}"},
    {"Kripke/Source", 0.39184230340607651, 2.7286885011936568,
     "{\"constant\": 0.60878024983753876, \"terms\": [{\"coefficient\": -0.0024185808789713133, \"factors\": [{\"parameter\": 0, \"i\": [0, 1], \"j\": 1}]}, {\"coefficient\": 0.00094941742351281968, \"factors\": [{\"parameter\": 2, \"i\": [2, 3], \"j\": 2}]}]}"},
    {"Kripke/Population", 0.42370833689212556, 3.7596024971265782,
     "{\"constant\": 0.36914806595199495, \"terms\": [{\"coefficient\": 0.0081041508528782689, \"factors\": [{\"parameter\": 2, \"i\": [5, 4], \"j\": 0}]}]}"},
    {"FASTEST/pressure_solver", 0.89406865771574262, 8.1614714616281923,
     "{\"constant\": 10.771604829988039, \"terms\": [{\"coefficient\": -0.11811994115211398, \"factors\": [{\"parameter\": 0, \"i\": [0, 1], \"j\": 2}]}, {\"coefficient\": 2.973732065327423e-05, \"factors\": [{\"parameter\": 1, \"i\": [1, 1], \"j\": 1}]}]}"},
    {"FASTEST/momentum_x", 0.81261299108784912, 7.9301305475935226,
     "{\"constant\": 1.8030908829745309, \"terms\": [{\"coefficient\": 4.4954458119110386e-06, \"factors\": [{\"parameter\": 1, \"i\": [5, 4], \"j\": 0}]}]}"},
    {"FASTEST/momentum_y", 1.0010894130732007, 16.79304990332292,
     "{\"constant\": 11.00161649606879, \"terms\": [{\"coefficient\": -1.2557243925606771, \"factors\": [{\"parameter\": 0, \"i\": [0, 1], \"j\": 1}]}, {\"coefficient\": 1.3988979875443976e-05, \"factors\": [{\"parameter\": 1, \"i\": [2, 3], \"j\": 2}]}]}"},
    {"FASTEST/momentum_z", 1.0455752257342428, 3.8888103771539853,
     "{\"constant\": -4.5124899188002452, \"terms\": [{\"coefficient\": 0.023001758966202449, \"factors\": [{\"parameter\": 0, \"i\": [1, 1], \"j\": 0}]}, {\"coefficient\": 1.280971992896104e-07, \"factors\": [{\"parameter\": 1, \"i\": [4, 3], \"j\": 1}]}]}"},
    {"FASTEST/turbulence_model", 1.1106724260712033, 13.46952381995566,
     "{\"constant\": 0.90863861450956174, \"terms\": [{\"coefficient\": 1.2418131471166115e-06, \"factors\": [{\"parameter\": 1, \"i\": [4, 3], \"j\": 0}]}]}"},
    {"FASTEST/flux_assembly", 1.1797155691711323, 10.548378142861587,
     "{\"constant\": 0.56466477765603929, \"terms\": [{\"coefficient\": 2.9577501474431397e-06, \"factors\": [{\"parameter\": 1, \"i\": [1, 1], \"j\": 1}]}]}"},
    {"FASTEST/gradient_reconstruction", 0.38224027072969602, 4.2227515235665871,
     "{\"constant\": 0.40231535326496493, \"terms\": [{\"coefficient\": 3.0556794678480032e-06, \"factors\": [{\"parameter\": 1, \"i\": [3, 4], \"j\": 2}]}]}"},
    {"FASTEST/halo_exchange", 0.96799962977211051, 15.624712102181823,
     "{\"constant\": -1.4762932765281946, \"terms\": [{\"coefficient\": 0.13893265008172792, \"factors\": [{\"parameter\": 1, \"i\": [0, 1], \"j\": 1}]}]}"},
    {"FASTEST/residual_norm", 0.95049135338604152, 7.6481561363858965,
     "{\"constant\": 2.2589514557055952, \"terms\": [{\"coefficient\": 0.043662149430934487, \"factors\": [{\"parameter\": 0, \"i\": [0, 1], \"j\": 2}]}]}"},
    {"FASTEST/coarse_grid_solve", 0.72335974962397032, 11.878281861408347,
     "{\"constant\": 0.53195469305473442, \"terms\": [{\"coefficient\": 0.36165770888163423, \"factors\": [{\"parameter\": 0, \"i\": [1, 3], \"j\": 0}]}, {\"coefficient\": -7.10067992851687e-07, \"factors\": [{\"parameter\": 1, \"i\": [2, 3], \"j\": 2}]}]}"},
    {"FASTEST/prolongation", 1.0259834869716526, 12.502898071511524,
     "{\"constant\": 0.52457463526949855, \"terms\": [{\"coefficient\": 8.0975652717439849e-08, \"factors\": [{\"parameter\": 1, \"i\": [1, 1], \"j\": 2}]}]}"},
};

TEST(NoiseParity, UniformPathIsByteIdenticalOnCaseStudySnapshot) {
    std::uint64_t seed = 1000;
    std::size_t index = 0;
    for (const auto& study : {casestudy::kripke(), casestudy::fastest()}) {
        std::size_t taken = 0;
        for (const auto* kernel : study.relevant_kernels()) {
            if (study.application == "FASTEST" && taken == 11) break;
            ASSERT_LT(index, kGoldens.size());
            const Golden& golden = kGoldens[index];
            xpcore::Rng rng(seed++);
            const auto set = study.generate_modeling(*kernel, rng);
            const std::string task = study.application + "/" + kernel->name;
            EXPECT_EQ(task, golden.task);
            // Bitwise equality, not EXPECT_NEAR: the refactor promises the
            // identical floating-point computation, not a close one.
            EXPECT_EQ(noise::estimate_noise(set), golden.noise) << task;
            const auto result = regression::RegressionModeler().model(set);
            EXPECT_EQ(result.cv_smape, golden.cv_smape) << task;
            EXPECT_EQ(pmnf::to_json(result.model), golden.model_json) << task;
            ++taken;
            ++index;
        }
    }
    EXPECT_EQ(index, kGoldens.size());
}

}  // namespace
