// Tests for AdaMax and SGD.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.hpp"

namespace {

using namespace nn;

/// Minimal quadratic "model": loss = 0.5 * sum w_i^2, gradient = w.
struct Quadratic {
    Tensor w{1, 4};
    Tensor g{1, 4};

    Quadratic() {
        for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = 1.0f + static_cast<float>(i);
    }
    double loss() const {
        double l = 0.0;
        for (std::size_t i = 0; i < w.size(); ++i) l += 0.5 * w.data()[i] * w.data()[i];
        return l;
    }
    void compute_grad() {
        for (std::size_t i = 0; i < w.size(); ++i) g.data()[i] = w.data()[i];
    }
    std::vector<Param> params() { return {{&w, &g}}; }
};

TEST(Sgd, SingleStepMatchesFormula) {
    Quadratic q;
    Sgd opt(0.1f);
    opt.attach(q.params());
    q.compute_grad();
    opt.step();
    for (std::size_t i = 0; i < q.w.size(); ++i) {
        EXPECT_FLOAT_EQ(q.w.data()[i], (1.0f + static_cast<float>(i)) * 0.9f);
    }
}

TEST(Sgd, ClearsGradientsAfterStep) {
    Quadratic q;
    Sgd opt(0.1f);
    opt.attach(q.params());
    q.compute_grad();
    opt.step();
    for (std::size_t i = 0; i < q.g.size(); ++i) EXPECT_FLOAT_EQ(q.g.data()[i], 0.0f);
}

TEST(Sgd, ConvergesOnQuadratic) {
    Quadratic q;
    Sgd opt(0.2f);
    opt.attach(q.params());
    const double initial = q.loss();
    for (int i = 0; i < 50; ++i) {
        q.compute_grad();
        opt.step();
    }
    EXPECT_LT(q.loss(), initial * 1e-4);
}

TEST(AdaMax, ConvergesOnQuadratic) {
    Quadratic q;
    AdaMax opt(AdaMax::Config{.learning_rate = 0.05f});
    opt.attach(q.params());
    const double initial = q.loss();
    for (int i = 0; i < 300; ++i) {
        q.compute_grad();
        opt.step();
    }
    EXPECT_LT(q.loss(), initial * 1e-3);
}

TEST(AdaMax, FirstStepSizeIsLearningRate) {
    // With m = g, u = |g|, bias correction (1 - b1): first update is
    // exactly lr * sign(g) (up to epsilon).
    Quadratic q;
    const float lr = 0.01f;
    AdaMax opt(AdaMax::Config{.learning_rate = lr});
    opt.attach(q.params());
    q.compute_grad();
    const float before = q.w.data()[0];
    opt.step();
    EXPECT_NEAR(q.w.data()[0], before - lr, 1e-5);
}

TEST(AdaMax, StepIsBoundedByLearningRate) {
    // AdaMax's update magnitude is bounded by lr / (1 - b1^t) * |m|/u <= ~lr,
    // regardless of gradient scale — a key stability property.
    Quadratic q;
    for (std::size_t i = 0; i < q.w.size(); ++i) q.w.data()[i] = 1000.0f;
    AdaMax opt(AdaMax::Config{.learning_rate = 0.002f});
    opt.attach(q.params());
    q.compute_grad();  // gradient = 1000
    const float before = q.w.data()[0];
    opt.step();
    // Tolerance covers float quantization at w = 1000 (ulp ~6e-5).
    EXPECT_NEAR(std::abs(q.w.data()[0] - before), 0.002f, 1e-4);
}

TEST(AdaMax, AttachResetsState) {
    Quadratic q;
    AdaMax opt;
    opt.attach(q.params());
    q.compute_grad();
    opt.step();
    const float after_first = q.w.data()[0];
    // Re-attach: state (t, m, u) resets, so the next step behaves like a
    // first step again.
    opt.attach(q.params());
    q.compute_grad();
    opt.step();
    EXPECT_NEAR(after_first - q.w.data()[0], 0.002f, 1e-4);
}

TEST(Optimizer, ZeroGradClears) {
    Quadratic q;
    Sgd opt(0.1f);
    opt.attach(q.params());
    q.compute_grad();
    opt.zero_grad();
    for (std::size_t i = 0; i < q.g.size(); ++i) EXPECT_FLOAT_EQ(q.g.data()[i], 0.0f);
}

// step() is the single owner of gradient clearing (fused into the update
// loop — see the Optimizer class comment); callers never pair step() with
// zero_grad(). Pin the postcondition for both implementations.
TEST(Optimizer, StepOwnsGradientClearing) {
    {
        Quadratic q;
        Sgd opt(0.1f);
        opt.attach(q.params());
        q.compute_grad();
        opt.step();
        for (std::size_t i = 0; i < q.g.size(); ++i) EXPECT_FLOAT_EQ(q.g.data()[i], 0.0f);
    }
    {
        Quadratic q;
        AdaMax opt;
        opt.attach(q.params());
        q.compute_grad();
        opt.step();
        for (std::size_t i = 0; i < q.g.size(); ++i) EXPECT_FLOAT_EQ(q.g.data()[i], 0.0f);
    }
}

}  // namespace
