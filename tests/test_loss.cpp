// Tests for the fused softmax + cross-entropy loss.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace nn;

TEST(Softmax, RowsSumToOne) {
    xpcore::Rng rng(1);
    Tensor logits(4, 6);
    for (std::size_t i = 0; i < logits.size(); ++i) {
        logits.data()[i] = static_cast<float>(rng.uniform(-5, 5));
    }
    Tensor probs;
    SoftmaxCrossEntropy::softmax(logits, probs);
    for (std::size_t r = 0; r < probs.rows(); ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < probs.cols(); ++c) {
            EXPECT_GE(probs(r, c), 0.0f);
            sum += probs(r, c);
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
    }
}

TEST(Softmax, StableForLargeLogits) {
    Tensor logits(1, 3);
    logits(0, 0) = 1000.0f;
    logits(0, 1) = 1001.0f;
    logits(0, 2) = 999.0f;
    Tensor probs;
    SoftmaxCrossEntropy::softmax(logits, probs);
    EXPECT_TRUE(std::isfinite(probs(0, 0)));
    EXPECT_GT(probs(0, 1), probs(0, 0));
    EXPECT_GT(probs(0, 0), probs(0, 2));
}

TEST(Softmax, UniformLogitsUniformProbs) {
    Tensor logits(1, 4, 2.5f);
    Tensor probs;
    SoftmaxCrossEntropy::softmax(logits, probs);
    for (std::size_t c = 0; c < 4; ++c) EXPECT_NEAR(probs(0, c), 0.25f, 1e-6);
}

TEST(Loss, PerfectPredictionNearZero) {
    Tensor probs(1, 3);
    probs(0, 0) = 1.0f - 2e-7f;
    probs(0, 1) = 1e-7f;
    probs(0, 2) = 1e-7f;
    const std::vector<std::int32_t> labels = {0};
    EXPECT_NEAR(SoftmaxCrossEntropy::loss(probs, labels), 0.0, 1e-5);
}

TEST(Loss, UniformPredictionIsLogC) {
    Tensor probs(2, 4, 0.25f);
    const std::vector<std::int32_t> labels = {1, 3};
    EXPECT_NEAR(SoftmaxCrossEntropy::loss(probs, labels), std::log(4.0), 1e-6);
}

TEST(Loss, ClampsZeroProbability) {
    Tensor probs(1, 2);
    probs(0, 0) = 0.0f;
    probs(0, 1) = 1.0f;
    const std::vector<std::int32_t> labels = {0};
    EXPECT_TRUE(std::isfinite(SoftmaxCrossEntropy::loss(probs, labels)));
}

TEST(Backward, GradientIsProbsMinusOnehotOverBatch) {
    Tensor probs(2, 3);
    probs(0, 0) = 0.5f;
    probs(0, 1) = 0.3f;
    probs(0, 2) = 0.2f;
    probs(1, 0) = 0.1f;
    probs(1, 1) = 0.1f;
    probs(1, 2) = 0.8f;
    const std::vector<std::int32_t> labels = {1, 2};
    Tensor grad;
    SoftmaxCrossEntropy::backward(probs, labels, grad);
    EXPECT_NEAR(grad(0, 0), 0.25f, 1e-6);
    EXPECT_NEAR(grad(0, 1), (0.3f - 1.0f) / 2.0f, 1e-6);
    EXPECT_NEAR(grad(1, 2), (0.8f - 1.0f) / 2.0f, 1e-6);
}

TEST(Backward, GradientRowsSumToZero) {
    xpcore::Rng rng(3);
    Tensor logits(3, 5);
    for (std::size_t i = 0; i < logits.size(); ++i) {
        logits.data()[i] = static_cast<float>(rng.uniform(-2, 2));
    }
    Tensor probs, grad;
    SoftmaxCrossEntropy::softmax(logits, probs);
    const std::vector<std::int32_t> labels = {0, 2, 4};
    SoftmaxCrossEntropy::backward(probs, labels, grad);
    for (std::size_t r = 0; r < grad.rows(); ++r) {
        float sum = 0.0f;
        for (std::size_t c = 0; c < grad.cols(); ++c) sum += grad(r, c);
        EXPECT_NEAR(sum, 0.0f, 1e-6);
    }
}

TEST(Backward, NumericGradientOfLogits) {
    // End-to-end finite-difference check through softmax + CE.
    xpcore::Rng rng(4);
    Tensor logits(2, 4);
    for (std::size_t i = 0; i < logits.size(); ++i) {
        logits.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    const std::vector<std::int32_t> labels = {2, 0};

    Tensor probs, grad;
    SoftmaxCrossEntropy::softmax(logits, probs);
    SoftmaxCrossEntropy::backward(probs, labels, grad);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        const float saved = logits.data()[i];
        Tensor p;
        logits.data()[i] = saved + eps;
        SoftmaxCrossEntropy::softmax(logits, p);
        const double up = SoftmaxCrossEntropy::loss(p, labels);
        logits.data()[i] = saved - eps;
        SoftmaxCrossEntropy::softmax(logits, p);
        const double down = SoftmaxCrossEntropy::loss(p, labels);
        logits.data()[i] = saved;
        EXPECT_NEAR(grad.data()[i], (up - down) / (2 * eps), 2e-3);
    }
}

}  // namespace
