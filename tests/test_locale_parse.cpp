// Locale-independence of numeric parsing (src/xpcore/parse.hpp).
//
// std::stod routes through strtod, whose decimal-point character comes from
// the global LC_NUMERIC locale: under de_DE a report's "0.25" stops parsing
// at the '.', silently truncating the value to 0. Every parser in the tree
// (report/pmnf JSON, CLI options, measurement files) now goes through the
// std::from_chars-based helpers, which this suite pins — first the helper
// semantics in the default locale, then the regression with a
// comma-decimal locale installed (skipped when the container ships none).

#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "modeling/report.hpp"
#include "pmnf/serialize.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/parse.hpp"

namespace {

TEST(ParseDouble, PrefixSemantics) {
    double value = 0.0;
    EXPECT_EQ(xpcore::parse_double_prefix("1.5abc", value), 3u);
    EXPECT_DOUBLE_EQ(value, 1.5);
    EXPECT_EQ(xpcore::parse_double_prefix("-2.25e2,", value), 7u);
    EXPECT_DOUBLE_EQ(value, -225.0);
    EXPECT_EQ(xpcore::parse_double_prefix("+3", value), 2u);
    EXPECT_DOUBLE_EQ(value, 3.0);
    EXPECT_EQ(xpcore::parse_double_prefix("abc", value), 0u);
    EXPECT_EQ(xpcore::parse_double_prefix("", value), 0u);
    // Strictness: non-finite and out-of-range inputs are rejected outright.
    EXPECT_EQ(xpcore::parse_double_prefix("inf", value), 0u);
    EXPECT_EQ(xpcore::parse_double_prefix("nan", value), 0u);
    EXPECT_EQ(xpcore::parse_double_prefix("-inf", value), 0u);
    EXPECT_EQ(xpcore::parse_double_prefix("1e999", value), 0u);
}

TEST(ParseDouble, FullStringRejectsTrailingGarbage) {
    double value = 0.0;
    EXPECT_TRUE(xpcore::parse_double("42.5", value));
    EXPECT_DOUBLE_EQ(value, 42.5);
    EXPECT_FALSE(xpcore::parse_double("1.5abc", value));
    EXPECT_FALSE(xpcore::parse_double("", value));
    EXPECT_FALSE(xpcore::parse_double("1.5 ", value));
}

/// Installs a locale whose decimal point is ',' for the lifetime of a test.
/// Containers often ship only C/POSIX locales; then the pinned regression
/// is skipped (the helper-semantics tests above still ran).
class CommaLocale {
public:
    CommaLocale() {
        previous_ = std::setlocale(LC_NUMERIC, nullptr);
        for (const char* name :
             {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                const lconv* conv = std::localeconv();
                if (conv != nullptr && conv->decimal_point != nullptr &&
                    conv->decimal_point[0] == ',') {
                    installed_ = true;
                    return;
                }
            }
        }
        std::setlocale(LC_NUMERIC, previous_.c_str());
    }

    ~CommaLocale() {
        if (installed_) std::setlocale(LC_NUMERIC, previous_.c_str());
    }

    bool installed() const { return installed_; }

private:
    std::string previous_;
    bool installed_ = false;
};

TEST(LocaleRegression, ParsersAreLocaleIndependent) {
    CommaLocale locale;
    if (!locale.installed()) {
        GTEST_SKIP() << "no comma-decimal locale available in this environment";
    }

    // The raw helper is unaffected by LC_NUMERIC.
    double value = 0.0;
    ASSERT_TRUE(xpcore::parse_double("0.25", value));
    EXPECT_DOUBLE_EQ(value, 0.25);

    // CliArgs::get_double used to go through std::stod and would have
    // truncated "2.5" to 2 under this locale.
    const char* argv[] = {"prog", "--threshold=2.5"};
    const xpcore::CliArgs args(2, argv);
    EXPECT_DOUBLE_EQ(args.get_double("threshold", 0.0), 2.5);

    // pmnf model JSON round trip: a fractional coefficient must survive.
    const pmnf::Model model = pmnf::Model::constant_model(0.25);
    const pmnf::Model reparsed = pmnf::from_json(pmnf::to_json(model));
    EXPECT_DOUBLE_EQ(reparsed.constant(), 0.25);

    // Report documents too (their parser shares the same discipline).
    modeling::Report report;
    report.modeler = "regression";
    report.noise.estimate = 0.125;
    report.has_model = false;
    const modeling::Report round = modeling::report_from_json(modeling::to_json(report));
    EXPECT_DOUBLE_EQ(round.noise.estimate, 0.125);
    EXPECT_EQ(modeling::to_json(round), modeling::to_json(report));
}

}  // namespace
