// Property tests for the text-input pipeline (the in-process counterpart of
// tools/fuzz_inputs.cpp): serializer output must load back bit-exactly, and
// every rejection must carry a structured diagnostic.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "measure/archive.hpp"
#include "measure/io.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace measure;

ExperimentSet random_set(xpcore::Rng& rng) {
    const std::size_t arity = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<std::string> names;
    for (std::size_t i = 0; i < arity; ++i) names.push_back("p" + std::to_string(i));
    ExperimentSet set(names);
    const int rows = static_cast<int>(rng.uniform_int(1, 10));
    for (int r = 0; r < rows; ++r) {
        Coordinate point;
        for (std::size_t i = 0; i < arity; ++i) point.push_back(rng.uniform(1.0, 1e6));
        std::vector<double> values;
        const int reps = static_cast<int>(rng.uniform_int(1, 4));
        for (int v = 0; v < reps; ++v) {
            // Mix magnitudes, signs, zeros, and subnormal-ish values.
            switch (rng.uniform_int(0, 3)) {
                case 0: values.push_back(rng.uniform(-1e9, 1e9)); break;
                case 1: values.push_back(rng.uniform(-1e-9, 1e-9)); break;
                case 2: values.push_back(0.0); break;
                default: values.push_back(rng.normal(0.0, 1.0)); break;
            }
        }
        set.add(point, values);
    }
    return set;
}

std::string to_text(const ExperimentSet& set) {
    std::ostringstream out;
    save_text(set, out);
    return out.str();
}

TEST(PropertyRoundTrip, SetValuesSurviveBitExactly) {
    xpcore::Rng rng(42);
    for (int iter = 0; iter < 100; ++iter) {
        const ExperimentSet original = random_set(rng);
        std::istringstream in(to_text(original));
        const ExperimentSet loaded = load_text(in);
        ASSERT_EQ(loaded.parameter_names(), original.parameter_names());
        ASSERT_EQ(loaded.size(), original.size());
        for (std::size_t i = 0; i < original.size(); ++i) {
            // Bit-exact: precision-17 text representation is lossless for
            // IEEE doubles, so == (not NEAR) is the contract.
            EXPECT_EQ(loaded.measurements()[i].point, original.measurements()[i].point)
                << "iter " << iter << " row " << i;
            EXPECT_EQ(loaded.measurements()[i].values, original.measurements()[i].values)
                << "iter " << iter << " row " << i;
        }
    }
}

TEST(PropertyRoundTrip, SerializedFormIsAFixedPoint) {
    // save(load(save(x))) == save(x): the text form is stable after one trip.
    xpcore::Rng rng(7);
    for (int iter = 0; iter < 100; ++iter) {
        const std::string first = to_text(random_set(rng));
        std::istringstream in(first);
        const std::string second = to_text(load_text(in));
        EXPECT_EQ(first, second) << "iter " << iter;
    }
}

TEST(PropertyRoundTrip, CrlfVariantLoadsIdentically) {
    xpcore::Rng rng(11);
    for (int iter = 0; iter < 50; ++iter) {
        const std::string lf = to_text(random_set(rng));
        std::string crlf;
        for (char c : lf) {
            if (c == '\n') crlf += '\r';
            crlf += c;
        }
        std::istringstream in_lf(lf), in_crlf(crlf);
        const ExperimentSet a = load_text(in_lf);
        const ExperimentSet b = load_text(in_crlf);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a.measurements()[i].point, b.measurements()[i].point);
            EXPECT_EQ(a.measurements()[i].values, b.measurements()[i].values);
        }
    }
}

TEST(PropertyRoundTrip, ArchiveSurvivesBitExactly) {
    xpcore::Rng rng(3);
    for (int iter = 0; iter < 40; ++iter) {
        Archive archive({"p", "n"});
        const int entries = static_cast<int>(rng.uniform_int(1, 4));
        for (int e = 0; e < entries; ++e) {
            ExperimentSet set({"p", "n"});
            const int rows = static_cast<int>(rng.uniform_int(1, 5));
            for (int r = 0; r < rows; ++r) {
                set.add({rng.uniform(1.0, 64.0), rng.uniform(16.0, 65536.0)},
                        {rng.normal(1.0, 0.3), rng.normal(1.0, 0.3)});
            }
            archive.add("k" + std::to_string(e), "time", std::move(set));
        }
        std::ostringstream out1;
        save_archive(archive, out1);
        std::istringstream in(out1.str());
        const Archive loaded = load_archive(in);
        std::ostringstream out2;
        save_archive(loaded, out2);
        EXPECT_EQ(out1.str(), out2.str()) << "iter " << iter;
    }
}

TEST(PropertyRoundTrip, PoisonedRowsAlwaysYieldStructuredDiagnostics) {
    // Injecting any poison token into a value field must produce a rejection
    // whose diagnostic points at the exact row, never a partial set.
    const std::vector<std::string> poison = {"nan",  "-nan", "inf",  "-inf",
                                             "1e999", "4x7",  "--3",  "1.2.3"};
    xpcore::Rng rng(99);
    for (int iter = 0; iter < 100; ++iter) {
        const ExperimentSet set = random_set(rng);
        std::vector<std::string> lines;
        {
            std::istringstream in(to_text(set));
            std::string line;
            while (std::getline(in, line)) lines.push_back(line);
        }
        // Rows are everything after the params: header (line index 0).
        const auto row = 1 + static_cast<std::size_t>(
                                 rng.uniform_int(0, static_cast<std::int64_t>(lines.size()) - 2));
        lines[row] += " " + rng.pick(poison);
        std::string text;
        for (const auto& l : lines) text += l + "\n";
        std::istringstream in(text);
        const auto result = try_load_text(in, "poisoned.txt");
        ASSERT_FALSE(result.ok()) << "iter " << iter << ": accepted " << lines[row];
        ASSERT_FALSE(result.diagnostics.empty());
        EXPECT_EQ(result.diagnostics[0].source, "poisoned.txt");
        EXPECT_EQ(result.diagnostics[0].line, row + 1);
        EXPECT_GT(result.diagnostics[0].column, 0u);
        EXPECT_FALSE(result.diagnostics[0].message.empty());
    }
}

TEST(PropertyRoundTrip, ThrowingAndCollectingLoadersAgree) {
    // load_text throws iff try_load_text rejects, and the thrown diagnostic
    // equals the first collected one.
    const std::vector<std::string> cases = {
        "params: p\n2 : 1.0\n",
        "params: p\n2 : nan\n",
        "params: p\n2 2 : 1.0\n",
        "params: p\nno colon here\n",
        "params:\n",
        "",
        "params: p\n2 : 1e999\n",
    };
    for (const auto& text : cases) {
        std::istringstream in1(text), in2(text);
        const auto result = try_load_text(in1, "agree.txt");
        if (result.ok()) {
            EXPECT_NO_THROW(load_text(in2, "agree.txt"));
            continue;
        }
        try {
            load_text(in2, "agree.txt");
            FAIL() << "try_load rejected but load_text accepted: " << text;
        } catch (const xpcore::Error& e) {
            ASSERT_FALSE(result.diagnostics.empty());
            EXPECT_EQ(e.diagnostic().format(), result.diagnostics[0].format());
        }
    }
}

}  // namespace
