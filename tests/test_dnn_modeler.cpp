// Tests for the DNN modeler: pretraining, classification, domain
// adaptation, caching, and end-to-end modeling. A reduced network is
// pretrained once per test binary (shared fixture) to keep the suite fast.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "dnn/cache.hpp"
#include "dnn/modeler.hpp"
#include "noise/injector.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace dnn;

DnnConfig tiny_config() {
    DnnConfig config;
    config.hidden = {96, 48};
    config.pretrain_samples_per_class = 250;
    config.pretrain_epochs = 4;
    config.adapt_samples_per_class = 120;
    config.adapt_epochs = 1;
    return config;
}

class DnnModelerTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        modeler_ = new DnnModeler(tiny_config(), /*seed=*/11);
        modeler_->pretrain();
    }
    static void TearDownTestSuite() {
        delete modeler_;
        modeler_ = nullptr;
    }
    void TearDown() override { modeler_->reset_adaptation(); }

    static DnnModeler* modeler_;
};

DnnModeler* DnnModelerTest::modeler_ = nullptr;

TEST_F(DnnModelerTest, PretrainedFlagSet) { EXPECT_TRUE(modeler_->is_pretrained()); }

TEST_F(DnnModelerTest, ClassifierBeatsChanceByWideMargin) {
    GeneratorConfig gen;
    gen.samples_per_class = 20;
    gen.noise_min = gen.noise_max = 0.0;
    gen.random_repetitions = false;
    xpcore::Rng rng(100);
    const auto test_data = generate_training_data(gen, rng);
    const double top1 = modeler_->top_k_accuracy(test_data, 1);
    const double top3 = modeler_->top_k_accuracy(test_data, 3);
    // Chance levels: 1/43 = 2.3% and 3/43 = 7%. Even the tiny network must
    // be far above that.
    EXPECT_GT(top1, 0.10);
    EXPECT_GT(top3, 0.25);
    EXPECT_GE(top3, top1);
}

TEST_F(DnnModelerTest, ClassifyLineReturnsDistribution) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    std::vector<double> vs;
    for (double x : xs) vs.push_back(2.0 + 3.0 * x);
    const auto probs = modeler_->classify_line(xs, vs);
    ASSERT_EQ(probs.size(), 43u);
    float sum = 0.0f;
    for (float p : probs) {
        EXPECT_GE(p, 0.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4);
}

TEST_F(DnnModelerTest, CandidateClassesIncludeConstantFallback) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {1.0 + p});
    const auto candidates = modeler_->candidate_classes(set);
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_GE(candidates[0].size(), 3u);
    bool has_constant = false;
    for (const auto& cls : candidates[0]) {
        if (cls.is_constant()) has_constant = true;
    }
    EXPECT_TRUE(has_constant);
}

TEST_F(DnnModelerTest, ModelsCleanLinearKernelAccurately) {
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) set.add({p}, {5.0 + 2.0 * p});
    const auto result = modeler_->model(set);
    // CV selection among top-3 + constant must land within half an order.
    EXPECT_LE(std::abs(result.model.lead_exponent(0) - 1.0), 0.5);
    EXPECT_LT(result.fit_smape, 20.0);
}

TEST_F(DnnModelerTest, ModelsTwoParameterSet) {
    measure::ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double n : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({p, n}, {1.0 + 0.5 * p * n});
        }
    }
    const auto result = modeler_->model(set);
    EXPECT_LE(std::abs(result.model.lead_exponent(0) - 1.0), 0.5);
    EXPECT_LE(std::abs(result.model.lead_exponent(1) - 1.0), 0.5);
}

TEST_F(DnnModelerTest, AdaptationKeepsPretrainedNetworkIntact) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    std::vector<double> vs;
    for (double x : xs) vs.push_back(1.0 + x * x);
    const auto before = modeler_->classify_line(xs, vs);

    TaskProperties task;
    task.noise_min = 0.3;
    task.noise_max = 0.5;
    task.repetitions = 5;
    modeler_->adapt(task);
    modeler_->reset_adaptation();

    const auto after = modeler_->classify_line(xs, vs);
    for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_FLOAT_EQ(before[i], after[i]);  // pretrained weights untouched
    }
}

TEST_F(DnnModelerTest, AdaptationChangesActiveNetwork) {
    const std::vector<double> xs = {4, 8, 16, 32, 64};
    std::vector<double> vs;
    for (double x : xs) vs.push_back(1.0 + x * x);
    const auto before = modeler_->classify_line(xs, vs);
    TaskProperties task;
    task.noise_min = 0.0;
    task.noise_max = 0.2;
    modeler_->adapt(task);
    const auto after = modeler_->classify_line(xs, vs);
    double diff = 0.0;
    for (std::size_t i = 0; i < before.size(); ++i) diff += std::abs(before[i] - after[i]);
    EXPECT_GT(diff, 1e-6);
}

TEST_F(DnnModelerTest, SaveLoadPreservesPredictions) {
    const std::string path = ::testing::TempDir() + "/xpdnn_pretrained_test.bin";
    modeler_->save_pretrained(path);
    DnnModeler loaded(tiny_config(), /*seed=*/999);
    loaded.load_pretrained(path);
    EXPECT_TRUE(loaded.is_pretrained());

    const std::vector<double> xs = {4, 8, 16, 32, 64};
    std::vector<double> vs;
    for (double x : xs) vs.push_back(3.0 + std::sqrt(x));
    const auto a = modeler_->classify_line(xs, vs);
    const auto b = loaded.classify_line(xs, vs);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
    std::filesystem::remove(path);
}

TEST_F(DnnModelerTest, EmptySetThrows) {
    measure::ExperimentSet set({"p"});
    EXPECT_THROW(modeler_->model(set), std::invalid_argument);
}

TEST(DnnModelerStandalone, UnpretrainedUseThrows) {
    DnnModeler modeler(tiny_config(), 1);
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> vs = {1, 2, 3, 4, 5};
    EXPECT_THROW(modeler.classify_line(xs, vs), std::logic_error);
    EXPECT_THROW(modeler.adapt(TaskProperties{}), std::logic_error);
    EXPECT_THROW(modeler.save_pretrained("/tmp/x.bin"), std::logic_error);
}

TEST(TaskPropertiesTest, FromExperimentExtractsEverything) {
    xpcore::Rng rng(5);
    noise::Injector injector(0.3, rng);
    measure::ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0, 8.0}) {
        for (double n : {10.0, 20.0}) {
            set.add({p, n}, injector.repetitions(p * n, 3));
        }
    }
    const auto task = TaskProperties::from_experiment(set);
    ASSERT_EQ(task.sequences.size(), 2u);
    EXPECT_EQ(task.sequences[0], (std::vector<double>{2, 4, 8}));
    EXPECT_EQ(task.sequences[1], (std::vector<double>{10, 20}));
    EXPECT_EQ(task.repetitions, 3u);
    EXPECT_GT(task.noise_max, 0.0);
    EXPECT_LE(task.noise_min, task.noise_max);
}

TEST(CacheTest, HashIsStableAndConfigSensitive) {
    const DnnConfig a = tiny_config();
    DnnConfig b = tiny_config();
    EXPECT_EQ(pretrain_config_hash(a, 1), pretrain_config_hash(b, 1));
    EXPECT_NE(pretrain_config_hash(a, 1), pretrain_config_hash(a, 2));
    b.hidden = {128, 64};
    EXPECT_NE(pretrain_config_hash(a, 1), pretrain_config_hash(b, 1));
    b = tiny_config();
    b.pretrain_epochs += 1;
    EXPECT_NE(pretrain_config_hash(a, 1), pretrain_config_hash(b, 1));
}

TEST(CacheTest, HashCoversActivationAndAdaptation) {
    const DnnConfig a = tiny_config();
    DnnConfig b = tiny_config();
    b.activation = nn::Activation::Relu;
    EXPECT_NE(pretrain_config_hash(a, 1), pretrain_config_hash(b, 1));
    b = tiny_config();
    b.pretrain_samples_per_class += 1;
    EXPECT_NE(pretrain_config_hash(a, 1), pretrain_config_hash(b, 1));
}

TEST(CacheTest, CorruptOrTruncatedFileIsAMiss) {
    const std::string dir =
        ::testing::TempDir() + "/xpdnn_cache_corrupt_" + std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    ::setenv("XPDNN_CACHE_DIR", dir.c_str(), 1);

    DnnConfig config = tiny_config();
    config.pretrain_samples_per_class = 40;
    config.pretrain_epochs = 1;
    const std::string path = pretrained_cache_path(config, 99);

    {
        DnnModeler seedling(config, 99);
        EXPECT_FALSE(ensure_pretrained(seedling, 99));  // cold: pretrains + stores
    }
    // Garbage contents: the load fails, which must count as a miss — the
    // network is re-pretrained and the bad file silently overwritten.
    std::ofstream(path, std::ios::trunc) << "this is not a serialized network";
    {
        DnnModeler repaired(config, 99);
        EXPECT_FALSE(ensure_pretrained(repaired, 99));
        EXPECT_TRUE(repaired.is_pretrained());
    }
    {
        DnnModeler reader(config, 99);
        EXPECT_TRUE(ensure_pretrained(reader, 99));  // repaired file hits again
    }
    // Truncation (e.g. a crashed writer): also a miss, also repaired.
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string bytes = buffer.str();
        ASSERT_GT(bytes.size(), 2u);
        std::ofstream(path, std::ios::trunc | std::ios::binary)
            << bytes.substr(0, bytes.size() / 2);
    }
    {
        DnnModeler repaired(config, 99);
        EXPECT_FALSE(ensure_pretrained(repaired, 99));
        EXPECT_TRUE(repaired.is_pretrained());
    }

    ::unsetenv("XPDNN_CACHE_DIR");
    std::filesystem::remove_all(dir);
}

TEST(CacheTest, StoreIsAtomicNoTempLeftoversAndSafeUnderConcurrency) {
    // Regression for the torn-write bug: ensure_pretrained used to stream
    // the network straight into the final cache path, so a concurrent
    // reader could open a half-written file. The store now goes through a
    // pid-suffixed temp file plus rename (the gemm_tune cache discipline):
    // the final path either does not exist or holds a complete network.
    const std::string dir =
        ::testing::TempDir() + "/xpdnn_cache_atomic_" + std::to_string(::getpid());
    std::filesystem::create_directories(dir);
    ::setenv("XPDNN_CACHE_DIR", dir.c_str(), 1);

    DnnConfig config = tiny_config();
    config.pretrain_samples_per_class = 40;
    config.pretrain_epochs = 1;
    const std::string path = pretrained_cache_path(config, 55);

    // Two sessions race the cold cache. Whatever the interleaving, both
    // must come out pretrained, and any reader that finds the file must
    // either load it completely or re-pretrain — never crash or load junk.
    auto warm_up = [&config] {
        DnnModeler modeler(config, 55);
        ensure_pretrained(modeler, 55);
        EXPECT_TRUE(modeler.is_pretrained());
    };
    std::thread racer(warm_up);
    warm_up();
    racer.join();

    // The rename either installed a complete file or failed cleanly; no
    // temp files may survive, and the final file must be a clean hit. (The
    // GEMM autotuner shares the cache dir and may drop a gemm_tune_*.blob —
    // only *.tmp leftovers indicate a torn store.)
    ASSERT_TRUE(std::filesystem::exists(path));
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        EXPECT_NE(entry.path().extension(), ".tmp")
            << "leftover cache artifact: " << entry.path();
    }
    DnnModeler reader(config, 55);
    EXPECT_TRUE(ensure_pretrained(reader, 55));

    ::unsetenv("XPDNN_CACHE_DIR");
    std::filesystem::remove_all(dir);
}

TEST(CacheTest, WriteFailureWarnsInsteadOfSilentSwallow) {
    // Regression: a failed cache publish (here: the cache "directory" is a
    // regular file) used to vanish without a trace — the session just
    // re-pretrained forever. The durable-store layer now surfaces one
    // structured "xpdnn: warning:" line per failed publish, and the modeler
    // still comes out pretrained.
    const std::string blocked =
        ::testing::TempDir() + "/xpdnn_cache_blocked_" + std::to_string(::getpid());
    std::ofstream(blocked) << "not a directory";
    ::setenv("XPDNN_CACHE_DIR", blocked.c_str(), 1);

    DnnConfig config = tiny_config();
    config.pretrain_samples_per_class = 40;
    config.pretrain_epochs = 1;

    ::testing::internal::CaptureStderr();
    DnnModeler modeler(config, 77);
    EXPECT_FALSE(ensure_pretrained(modeler, 77));  // miss, and the put fails
    const std::string captured = ::testing::internal::GetCapturedStderr();
    EXPECT_TRUE(modeler.is_pretrained());
    EXPECT_NE(captured.find("xpdnn: warning:"), std::string::npos) << captured;

    ::unsetenv("XPDNN_CACHE_DIR");
    std::filesystem::remove(blocked);
}

TEST(CacheTest, EnsurePretrainedCreatesAndReusesCache) {
    const std::string dir = ::testing::TempDir() + "/xpdnn_cache_test";
    std::filesystem::create_directories(dir);
    ::setenv("XPDNN_CACHE_DIR", dir.c_str(), 1);

    DnnConfig config = tiny_config();
    config.pretrain_samples_per_class = 40;  // keep the miss cheap
    config.pretrain_epochs = 1;
    DnnModeler first(config, 77);
    EXPECT_FALSE(ensure_pretrained(first, 77));  // miss: pretrains + stores
    EXPECT_TRUE(std::filesystem::exists(pretrained_cache_path(config, 77)));

    DnnModeler second(config, 77);
    EXPECT_TRUE(ensure_pretrained(second, 77));  // hit: loads

    ::unsetenv("XPDNN_CACHE_DIR");
    std::filesystem::remove_all(dir);
}

}  // namespace
