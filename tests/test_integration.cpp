// Integration tests across the full pipeline: measurement I/O -> noise
// estimation -> modeling -> extrapolation, plus small-scale versions of the
// paper's experiments as regression anchors.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "adaptive/modeler.hpp"
#include "casestudy/casestudy.hpp"
#include "dnn/modeler.hpp"
#include "measure/io.hpp"
#include "noise/estimator.hpp"
#include "noise/injector.hpp"
#include "regression/modeler.hpp"
#include "xpcore/metrics.hpp"
#include "xpcore/rng.hpp"

namespace {

dnn::DnnConfig tiny_config() {
    dnn::DnnConfig config;
    config.hidden = {96, 48};
    config.pretrain_samples_per_class = 250;
    config.pretrain_epochs = 4;
    config.adapt_samples_per_class = 150;
    return config;
}

class IntegrationTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        dnn_ = new dnn::DnnModeler(tiny_config(), /*seed=*/41);
        dnn_->pretrain();
    }
    static void TearDownTestSuite() {
        delete dnn_;
        dnn_ = nullptr;
    }
    static dnn::DnnModeler* dnn_;
};

dnn::DnnModeler* IntegrationTest::dnn_ = nullptr;

TEST_F(IntegrationTest, IoRoundTripThroughModelingPipeline) {
    // Serialize noisy measurements, load them back, model the result.
    xpcore::Rng rng(1);
    noise::Injector injector(0.10, rng);
    measure::ExperimentSet original({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        original.add({p}, injector.repetitions(2.0 + 3.0 * p, 5));
    }
    std::stringstream buffer;
    measure::save_text(original, buffer);
    const auto loaded = measure::load_text(buffer);

    regression::RegressionModeler baseline;
    const auto from_original = baseline.model(original);
    const auto from_loaded = baseline.model(loaded);
    EXPECT_EQ(from_original.model.to_string(), from_loaded.model.to_string());
}

TEST_F(IntegrationTest, CalmPipelineRecoversTruthAndExtrapolates) {
    xpcore::Rng rng(2);
    noise::Injector injector(0.02, rng);
    measure::ExperimentSet set({"p"});
    auto truth = [](double p) { return 10.0 + 0.5 * p * std::log2(p); };
    for (double p : {8.0, 16.0, 32.0, 64.0, 128.0}) {
        set.add({p}, injector.repetitions(truth(p), 5));
    }

    adaptive::AdaptiveModeler modeler(*dnn_, {});
    const auto outcome = modeler.model(set);
    EXPECT_LT(outcome.estimated_noise, 0.05);
    const double predicted = outcome.result.model.evaluate({{1024.0}});
    EXPECT_LT(xpcore::relative_error_pct(predicted, truth(1024.0)), 25.0);
}

TEST_F(IntegrationTest, NoisyPipelineStillProducesUsableModel) {
    xpcore::Rng rng(3);
    noise::Injector injector(0.60, rng);
    measure::ExperimentSet set({"p"});
    auto truth = [](double p) { return 5.0 + 2.0 * p; };
    for (double p : {8.0, 16.0, 32.0, 64.0, 128.0}) {
        set.add({p}, injector.repetitions(truth(p), 5));
    }
    adaptive::AdaptiveModeler modeler(*dnn_, {});
    const auto outcome = modeler.model(set);
    EXPECT_EQ(outcome.winner, "dnn");
    // Extrapolate 4x beyond the range: must stay within ~2x of truth even
    // at 60% noise.
    const double predicted = outcome.result.model.evaluate({{512.0}});
    EXPECT_GT(predicted, truth(512.0) * 0.4);
    EXPECT_LT(predicted, truth(512.0) * 2.5);
}

TEST_F(IntegrationTest, RelearnCaseStudyEndToEnd) {
    // The calm case study: both modelers must land close to the truth at
    // the paper's evaluation point, like the paper's identical 7.12%.
    const auto study = casestudy::relearn();
    xpcore::Rng rng(4);
    const auto& kernel = study.kernels[1];  // update_electrical_activity: O(n)
    const auto set = study.generate_modeling(kernel, rng);

    regression::RegressionModeler baseline;
    const auto regression_result = baseline.model(set);
    adaptive::AdaptiveModeler adaptive_modeler(*dnn_, {});
    const auto adaptive_result = adaptive_modeler.model(set);

    const double truth = kernel.truth.evaluate(study.evaluation_point);
    EXPECT_LT(xpcore::relative_error_pct(
                  regression_result.model.evaluate(study.evaluation_point), truth),
              15.0);
    EXPECT_LT(xpcore::relative_error_pct(
                  adaptive_result.result.model.evaluate(study.evaluation_point), truth),
              25.0);
}

TEST_F(IntegrationTest, KripkeNoiseEstimateMatchesProfile) {
    const auto study = casestudy::kripke();
    xpcore::Rng rng(5);
    const auto set = study.generate_modeling(study.kernels[0], rng);
    const auto stats = noise::analyze_noise(set);
    EXPECT_GT(stats.mean, 0.08);
    EXPECT_LT(stats.mean, 0.30);
}

TEST_F(IntegrationTest, AdaptiveNeverFarWorseThanRegressionOnCalmData) {
    // Property over several calm tasks: adaptive's CV-selected model should
    // track the regression baseline (it sees the same candidate).
    xpcore::Rng rng(6);
    for (int trial = 0; trial < 5; ++trial) {
        noise::Injector injector(0.03, rng);
        measure::ExperimentSet set({"p"});
        const double a = rng.uniform(1.0, 10.0);
        const double b = rng.uniform(0.1, 2.0);
        for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
            set.add({p}, injector.repetitions(a + b * p, 5));
        }
        regression::RegressionModeler baseline;
        const auto reg = baseline.model(set);
        adaptive::AdaptiveModeler modeler(*dnn_, {});
        const auto ada = modeler.model(set);
        EXPECT_LE(ada.result.cv_smape, reg.cv_smape + 1.0);
    }
}

TEST_F(IntegrationTest, ModelStringsAreParseableShapes) {
    // The printed model of a fitted pipeline contains the parameter names.
    xpcore::Rng rng(7);
    noise::Injector injector(0.05, rng);
    measure::ExperimentSet set({"procs", "size"});
    for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double s : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({p, s}, injector.repetitions(1.0 + 0.3 * p * s, 3));
        }
    }
    regression::RegressionModeler baseline;
    const auto result = baseline.model(set);
    const std::string text = result.model.to_string(set.parameter_names());
    EXPECT_NE(text.find("procs"), std::string::npos);
    EXPECT_NE(text.find("size"), std::string::npos);
}

}  // namespace
