// Tests for the dense linear solver and least squares.

#include <gtest/gtest.h>

#include <cmath>

#include "xpcore/linalg.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace xpcore;

TEST(SolveLinear, Identity) {
    MatrixD a(2, 2);
    a(0, 0) = 1;
    a(1, 1) = 1;
    const auto x = solve_linear(a, {3, -4});
    ASSERT_TRUE(x.has_value());
    EXPECT_DOUBLE_EQ((*x)[0], 3.0);
    EXPECT_DOUBLE_EQ((*x)[1], -4.0);
}

TEST(SolveLinear, Known3x3) {
    MatrixD a(3, 3);
    const double rows[3][3] = {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c) a(r, c) = rows[r][c];
    const auto x = solve_linear(a, {8, -11, -3});
    ASSERT_TRUE(x.has_value());
    EXPECT_NEAR((*x)[0], 2.0, 1e-10);
    EXPECT_NEAR((*x)[1], 3.0, 1e-10);
    EXPECT_NEAR((*x)[2], -1.0, 1e-10);
}

TEST(SolveLinear, RequiresPivoting) {
    // Zero on the initial diagonal: only solvable with row exchange.
    MatrixD a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    const auto x = solve_linear(a, {5, 7});
    ASSERT_TRUE(x.has_value());
    EXPECT_DOUBLE_EQ((*x)[0], 7.0);
    EXPECT_DOUBLE_EQ((*x)[1], 5.0);
}

TEST(SolveLinear, SingularReturnsNullopt) {
    MatrixD a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_FALSE(solve_linear(a, {1, 2}).has_value());
}

TEST(SolveLinear, DimensionMismatchReturnsNullopt) {
    MatrixD a(2, 3);
    EXPECT_FALSE(solve_linear(a, {1, 2}).has_value());
    MatrixD square(2, 2);
    EXPECT_FALSE(solve_linear(square, {1, 2, 3}).has_value());
}

TEST(SolveLinear, EmptyReturnsNullopt) {
    EXPECT_FALSE(solve_linear(MatrixD{}, {}).has_value());
}

/// Property: random well-conditioned systems are solved to high accuracy.
class SolveLinearRandom : public ::testing::TestWithParam<int> {};

TEST_P(SolveLinearRandom, RoundTrip) {
    xpcore::Rng rng(GetParam());
    const std::size_t n = 1 + static_cast<std::size_t>(GetParam()) % 6;
    MatrixD a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.uniform(-1, 1);
        a(r, r) += static_cast<double>(n);  // diagonally dominant
    }
    std::vector<double> truth(n);
    for (auto& v : truth) v = rng.uniform(-10, 10);
    std::vector<double> b(n, 0.0);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) b[r] += a(r, c) * truth[c];
    const auto x = solve_linear(a, b);
    ASSERT_TRUE(x.has_value());
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], truth[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveLinearRandom, ::testing::Range(1, 21));

TEST(LeastSquares, ExactFitLine) {
    // y = 2 + 3x on 4 points.
    MatrixD a(4, 2);
    std::vector<double> b(4);
    for (std::size_t i = 0; i < 4; ++i) {
        const double x = static_cast<double>(i);
        a(i, 0) = 1.0;
        a(i, 1) = x;
        b[i] = 2.0 + 3.0 * x;
    }
    const auto coeffs = least_squares(a, b);
    ASSERT_TRUE(coeffs.has_value());
    EXPECT_NEAR((*coeffs)[0], 2.0, 1e-10);
    EXPECT_NEAR((*coeffs)[1], 3.0, 1e-10);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
    // Points not on a line: solution must be the classic OLS fit.
    MatrixD a(3, 2);
    const double xs[3] = {0, 1, 2};
    const double ys[3] = {0, 2, 3};
    for (std::size_t i = 0; i < 3; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = xs[i];
    }
    const auto coeffs = least_squares(a, {ys, 3});
    ASSERT_TRUE(coeffs.has_value());
    EXPECT_NEAR((*coeffs)[0], 1.0 / 6.0, 1e-10);
    EXPECT_NEAR((*coeffs)[1], 1.5, 1e-10);
}

TEST(LeastSquares, CollinearColumnsHandledByRidge) {
    // Two identical columns: plain normal equations are singular, the ridge
    // fallback must still return finite coefficients reproducing the data.
    MatrixD a(4, 2);
    std::vector<double> b(4);
    for (std::size_t i = 0; i < 4; ++i) {
        const double x = static_cast<double>(i + 1);
        a(i, 0) = x;
        a(i, 1) = x;
        b[i] = 10.0 * x;
    }
    const auto coeffs = least_squares(a, b);
    ASSERT_TRUE(coeffs.has_value());
    EXPECT_NEAR((*coeffs)[0] + (*coeffs)[1], 10.0, 1e-4);
}

TEST(LeastSquares, SizeMismatchReturnsNullopt) {
    MatrixD a(3, 2);
    EXPECT_FALSE(least_squares(a, std::vector<double>{1, 2}).has_value());
}

}  // namespace
