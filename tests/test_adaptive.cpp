// Tests for the adaptive modeler: threshold policy, modeler arbitration,
// and diagnostics.

#include <gtest/gtest.h>

#include "adaptive/modeler.hpp"
#include "noise/injector.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace adaptive;
using Config = adaptive::AdaptiveModeler::Config;

dnn::DnnConfig tiny_config() {
    dnn::DnnConfig config;
    config.hidden = {96, 48};
    config.pretrain_samples_per_class = 250;
    config.pretrain_epochs = 4;
    config.adapt_samples_per_class = 120;
    config.adapt_epochs = 1;
    return config;
}

class AdaptiveTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        dnn_ = new dnn::DnnModeler(tiny_config(), /*seed=*/23);
        dnn_->pretrain();
    }
    static void TearDownTestSuite() {
        delete dnn_;
        dnn_ = nullptr;
    }

    static measure::ExperimentSet linear_set(double noise_level, std::uint64_t seed) {
        xpcore::Rng rng(seed);
        noise::Injector injector(noise_level, rng);
        measure::ExperimentSet set({"p"});
        for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
            set.add({p}, injector.repetitions(5.0 + 2.0 * p, 5));
        }
        return set;
    }

    static dnn::DnnModeler* dnn_;
};

dnn::DnnModeler* AdaptiveTest::dnn_ = nullptr;

TEST(ThresholdPolicy, PerParameterDefaults) {
    const ThresholdPolicy policy;
    EXPECT_DOUBLE_EQ(policy.threshold_for(1), 0.50);
    EXPECT_DOUBLE_EQ(policy.threshold_for(2), 0.80);
    EXPECT_DOUBLE_EQ(policy.threshold_for(3), 0.50);
    EXPECT_DOUBLE_EQ(policy.threshold_for(7), 0.50);
    EXPECT_DOUBLE_EQ(policy.threshold_for(0), 0.50);
}

TEST_F(AdaptiveTest, CalmDataRunsBothModelers) {
    AdaptiveModeler modeler(*dnn_, {});
    const auto outcome = modeler.model(linear_set(0.02, 1));
    EXPECT_TRUE(outcome.used_dnn);
    EXPECT_TRUE(outcome.used_regression);
    EXPECT_LT(outcome.estimated_noise, 0.20);
    EXPECT_GT(outcome.regression_seconds, 0.0);
    EXPECT_TRUE(outcome.winner == "regression" || outcome.winner == "dnn");
}

TEST_F(AdaptiveTest, NoisyDataSwitchesRegressionOff) {
    AdaptiveModeler modeler(*dnn_, {});
    const auto outcome = modeler.model(linear_set(0.90, 2));
    EXPECT_TRUE(outcome.used_dnn);
    EXPECT_FALSE(outcome.used_regression);
    EXPECT_EQ(outcome.winner, "dnn");
    EXPECT_GT(outcome.estimated_noise, 0.50);
    EXPECT_DOUBLE_EQ(outcome.regression_seconds, 0.0);
}

TEST_F(AdaptiveTest, CalmDataModelIsAccurate) {
    AdaptiveModeler modeler(*dnn_, {});
    const auto outcome = modeler.model(linear_set(0.01, 3));
    EXPECT_LE(std::abs(outcome.result.model.lead_exponent(0) - 1.0), 0.25 + 1e-9);
    EXPECT_NEAR(outcome.result.model.evaluate({{128.0}}), 5.0 + 256.0, 30.0);
}

TEST_F(AdaptiveTest, SelectionPicksCrossValidationWinner) {
    AdaptiveModeler modeler(*dnn_, {});
    const auto set = linear_set(0.02, 4);
    const auto outcome = modeler.model(set);
    // On practically clean linear data, whichever candidate was selected
    // must have a near-zero cross-validated SMAPE.
    EXPECT_LT(outcome.result.cv_smape, 5.0);
}

TEST_F(AdaptiveTest, TimingsRecorded) {
    AdaptiveModeler modeler(*dnn_, {});
    const auto outcome = modeler.model(linear_set(0.02, 5));
    EXPECT_GT(outcome.dnn_seconds, 0.0);
    EXPECT_GT(outcome.regression_seconds, 0.0);
    // Domain adaptation dominates the cost (Fig. 6's claim).
    EXPECT_GT(outcome.dnn_seconds, outcome.regression_seconds);
}

TEST_F(AdaptiveTest, CustomThresholdForcesDnnOnly) {
    Config config;
    config.thresholds.one_parameter = 0.0;  // always above threshold
    AdaptiveModeler modeler(*dnn_, config);
    const auto outcome = modeler.model(linear_set(0.01, 6));
    EXPECT_FALSE(outcome.used_regression);
    EXPECT_EQ(outcome.winner, "dnn");
}

TEST_F(AdaptiveTest, DisablingAdaptationStillModels) {
    Config config;
    config.domain_adaptation = false;
    AdaptiveModeler modeler(*dnn_, config);
    const auto outcome = modeler.model(linear_set(0.05, 7));
    EXPECT_TRUE(outcome.used_dnn);
    EXPECT_LT(outcome.result.cv_smape, 50.0);
}

TEST_F(AdaptiveTest, TwoParameterThresholdIsMoreLenient) {
    // ~60% noise: above the 50% one-parameter threshold but below the 80%
    // two-parameter threshold, so regression still competes for m = 2.
    xpcore::Rng rng(8);
    noise::Injector injector(0.60, rng);
    measure::ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double n : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({p, n}, injector.repetitions(1.0 + p * n, 5));
        }
    }
    AdaptiveModeler modeler(*dnn_, {});
    const auto outcome = modeler.model(set);
    EXPECT_TRUE(outcome.used_regression);
    EXPECT_GT(outcome.estimated_noise, 0.50);
    EXPECT_LT(outcome.estimated_noise, 0.80);
}

}  // namespace
