// Tests for xpcore statistics and bootstrap confidence intervals.

#include <gtest/gtest.h>

#include <vector>

#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"

namespace {

using namespace xpcore;

TEST(Stats, MeanBasic) {
    const std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, MedianOddCount) {
    const std::vector<double> xs = {5, 1, 3};
    EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, MedianEvenCount) {
    const std::vector<double> xs = {4, 1, 3, 2};
    EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, MedianSingleElement) {
    const std::vector<double> xs = {7.5};
    EXPECT_DOUBLE_EQ(median(xs), 7.5);
}

TEST(Stats, MedianDoesNotModifyInput) {
    const std::vector<double> xs = {3, 1, 2};
    const auto copy = xs;
    median(xs);
    EXPECT_EQ(xs, copy);
}

TEST(Stats, MedianRobustToOutlier) {
    const std::vector<double> xs = {1, 2, 3, 4, 1e9};
    EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, VarianceAndStddev) {
    const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(variance(xs), 4.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, VarianceFewSamplesIsZero) {
    const std::vector<double> one = {3.0};
    EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Stats, QuantileEndpoints) {
    const std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
}

TEST(Stats, QuantileInterpolates) {
    const std::vector<double> xs = {0, 10};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Stats, QuantileClampsOutOfRange) {
    const std::vector<double> xs = {1, 2, 3};
    EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 3.0);
}

TEST(Stats, MinMax) {
    const std::vector<double> xs = {3, -1, 4, 1, 5};
    EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
    EXPECT_DOUBLE_EQ(max_value(xs), 5.0);
}

TEST(Stats, BootstrapMedianCiContainsPoint) {
    xpcore::Rng rng(1);
    std::vector<double> xs;
    for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(0, 10));
    const auto ci = bootstrap_median_ci(xs, 0.99, 500, rng);
    EXPECT_LE(ci.lower, ci.point);
    EXPECT_GE(ci.upper, ci.point);
    EXPECT_DOUBLE_EQ(ci.point, median(xs));
}

TEST(Stats, BootstrapMedianCiNarrowsWithSamples) {
    xpcore::Rng rng(2);
    std::vector<double> small_set, large_set;
    for (int i = 0; i < 20; ++i) small_set.push_back(rng.uniform(0, 10));
    for (int i = 0; i < 2000; ++i) large_set.push_back(rng.uniform(0, 10));
    const auto ci_small = bootstrap_median_ci(small_set, 0.95, 400, rng);
    const auto ci_large = bootstrap_median_ci(large_set, 0.95, 400, rng);
    EXPECT_LT(ci_large.upper - ci_large.lower, ci_small.upper - ci_small.lower);
}

TEST(Stats, BootstrapMeanCiCoversTrueMean) {
    // Property: over repeated draws, the 95% CI should usually contain the
    // true mean (5.0 for U(0, 10)). Allow generous slack for 30 trials.
    xpcore::Rng rng(3);
    int covered = 0;
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<double> xs;
        for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform(0, 10));
        const auto ci = bootstrap_mean_ci(xs, 0.95, 300, rng);
        if (ci.lower <= 5.0 && 5.0 <= ci.upper) ++covered;
    }
    EXPECT_GE(covered, 24);
}

TEST(Stats, BootstrapDegenerateInputs) {
    xpcore::Rng rng(4);
    const std::vector<double> one = {2.0};
    const auto ci = bootstrap_median_ci(one, 0.99, 100, rng);
    EXPECT_DOUBLE_EQ(ci.lower, 2.0);
    EXPECT_DOUBLE_EQ(ci.upper, 2.0);
}

TEST(Stats, ProportionCiBasics) {
    xpcore::Rng rng(5);
    const auto ci = bootstrap_proportion_ci(80, 100, 0.99, 400, rng);
    EXPECT_DOUBLE_EQ(ci.point, 0.8);
    EXPECT_LE(ci.lower, 0.8);
    EXPECT_GE(ci.upper, 0.8);
    EXPECT_GT(ci.lower, 0.6);
    EXPECT_LT(ci.upper, 0.95);
}

TEST(Stats, ProportionCiZeroTotal) {
    xpcore::Rng rng(6);
    const auto ci = bootstrap_proportion_ci(0, 0, 0.99, 100, rng);
    EXPECT_DOUBLE_EQ(ci.point, 0.0);
}

}  // namespace
