// Scalar-vs-SIMD parity for the AVX2 compute backend (xpcore/simd_kernels.hpp):
//  * GEMM nn/nt/tn over odd shapes and tail sizes — SIMD results within a
//    tight relative tolerance of the scalar blocked kernels (FMA and the
//    summation tree are the only differences);
//  * tanh/exp approximations bounded against std::tanh/std::exp over
//    [-20, 20] (documented max error < 5e-7);
//  * AdaMax — the scalar fallback is bit-identical to a hand-written
//    reference loop, the fused SIMD step is tolerance-checked;
//  * a full train-then-classify oracle over the case-study kernel snapshot:
//    the scalar- and SIMD-trained classifiers must select identical top-3
//    hypothesis class sets for every kernel.
//
// On hosts without AVX2+FMA the SIMD cases skip (the scalar cases still run).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "dnn/modeler.hpp"
#include "nn/optimizer.hpp"
#include "nn/tensor.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"

namespace {

using nn::Tensor;
using xpcore::simd::Level;
using xpcore::simd::LevelGuard;

bool have_avx2() { return xpcore::simd::max_level() >= Level::Avx2; }

#define SKIP_WITHOUT_AVX2() \
    if (!have_avx2()) GTEST_SKIP() << "AVX2+FMA not available on this host"

Tensor random_tensor(std::size_t rows, std::size_t cols, xpcore::Rng& rng) {
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

/// Max |a - b| relative to max |a| over the whole tensor.
double max_rel_diff(const Tensor& a, const Tensor& b) {
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double max_abs = 1e-30, max_err = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        max_abs = std::max(max_abs, std::abs(static_cast<double>(a.data()[i])));
        max_err = std::max(max_err, std::abs(static_cast<double>(a.data()[i]) -
                                             static_cast<double>(b.data()[i])));
    }
    return max_err / max_abs;
}

// ---- GEMM ------------------------------------------------------------------

// Shapes chosen to hit every microkernel edge: full 6x16 tiles, row tails
// (m % 6), column tails (n % 16), k tails (k % kKC), the inference shape
// (1 x 11 x 43), and sizes crossing the KC=256 panel boundary.
struct Shape {
    std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 11, 43}, {6, 16, 16},  {7, 17, 33},   {13, 5, 9},    {12, 256, 32},
    {5, 300, 7}, {97, 131, 61}, {128, 11, 43}, {64, 257, 48},
};

template <typename Gemm>
void check_gemm_parity(const Gemm& gemm, bool accumulate, double tol) {
    SKIP_WITHOUT_AVX2();
    for (const auto& s : kShapes) {
        xpcore::Rng rng(s.m * 1000003 + s.k * 101 + s.n);
        Tensor scalar_c(s.m, s.n), simd_c(s.m, s.n);
        for (std::size_t i = 0; i < scalar_c.size(); ++i) {
            scalar_c.data()[i] = simd_c.data()[i] = static_cast<float>(rng.uniform(-1, 1));
        }
        {
            LevelGuard guard(Level::Scalar);
            gemm(s, rng, scalar_c, accumulate);
        }
        {
            LevelGuard guard(Level::Avx2);
            gemm(s, rng, simd_c, accumulate);
        }
        EXPECT_LT(max_rel_diff(scalar_c, simd_c), tol)
            << s.m << "x" << s.k << "x" << s.n << " accumulate=" << accumulate;
    }
}

TEST(SimdGemmParity, NnOddShapesAndTails) {
    for (bool accumulate : {false, true}) {
        check_gemm_parity(
            [](const Shape& s, xpcore::Rng&, Tensor& c, bool acc) {
                xpcore::Rng data_rng(1);
                const Tensor a = random_tensor(s.m, s.k, data_rng);
                const Tensor b = random_tensor(s.k, s.n, data_rng);
                nn::gemm_nn(a, b, c, acc);
            },
            accumulate, 1e-5);
    }
}

TEST(SimdGemmParity, NtOddShapesAndTails) {
    for (bool accumulate : {false, true}) {
        check_gemm_parity(
            [](const Shape& s, xpcore::Rng&, Tensor& c, bool acc) {
                xpcore::Rng data_rng(2);
                const Tensor a = random_tensor(s.m, s.k, data_rng);
                const Tensor b = random_tensor(s.n, s.k, data_rng);
                nn::gemm_nt(a, b, c, acc);
            },
            accumulate, 1e-5);
    }
}

TEST(SimdGemmParity, TnOddShapesAndTails) {
    for (bool accumulate : {false, true}) {
        check_gemm_parity(
            [](const Shape& s, xpcore::Rng&, Tensor& c, bool acc) {
                xpcore::Rng data_rng(3);
                const Tensor a = random_tensor(s.k, s.m, data_rng);
                const Tensor b = random_tensor(s.k, s.n, data_rng);
                nn::gemm_tn(a, b, c, acc);
            },
            accumulate, 1e-5);
    }
}

// ---- tanh / exp approximations --------------------------------------------

// The documented bounds from xpcore/simd_kernels.hpp, pinned so a coefficient
// regression fails loudly. Scanned densely over [-20, 20], which covers the
// clamp regions of both approximations.
constexpr float kTanhMaxAbsErr = 5e-7f;
constexpr float kExpMaxRelErr = 5e-7f;
constexpr int kScanSteps = 200001;

TEST(SimdMathParity, TanhScalarApproxBounded) {
    float max_err = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        const float x = -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
        max_err = std::max(max_err, std::abs(xpcore::simd::tanh_approx(x) - std::tanh(x)));
    }
    EXPECT_LT(max_err, kTanhMaxAbsErr);
}

TEST(SimdMathParity, TanhVectorMatchesReference) {
    SKIP_WITHOUT_AVX2();
    std::vector<float> xs(kScanSteps), ys(kScanSteps);
    for (int i = 0; i < kScanSteps; ++i) {
        xs[static_cast<std::size_t>(i)] =
            -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
    }
    xpcore::simd::tanh_f32_avx2(xs.data(), ys.data(), xs.size());
    float max_err = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        max_err = std::max(max_err, std::abs(ys[static_cast<std::size_t>(i)] -
                                             std::tanh(xs[static_cast<std::size_t>(i)])));
    }
    EXPECT_LT(max_err, kTanhMaxAbsErr);
}

TEST(SimdMathParity, ExpScalarApproxBounded) {
    float max_rel = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        const float x = -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
        const float exact = std::exp(x);
        max_rel = std::max(max_rel, std::abs(xpcore::simd::exp_approx(x) - exact) / exact);
    }
    EXPECT_LT(max_rel, kExpMaxRelErr);
}

TEST(SimdMathParity, ExpVectorMatchesReference) {
    SKIP_WITHOUT_AVX2();
    std::vector<float> xs(kScanSteps), ys(kScanSteps);
    for (int i = 0; i < kScanSteps; ++i) {
        xs[static_cast<std::size_t>(i)] =
            -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
    }
    xpcore::simd::exp_f32_avx2(xs.data(), ys.data(), xs.size());
    float max_rel = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        const float exact = std::exp(xs[static_cast<std::size_t>(i)]);
        max_rel = std::max(max_rel,
                           std::abs(ys[static_cast<std::size_t>(i)] - exact) / exact);
    }
    EXPECT_LT(max_rel, kExpMaxRelErr);
}

TEST(SimdMathParity, SoftmaxRowsMatchScalarPath) {
    SKIP_WITHOUT_AVX2();
    xpcore::Rng rng(9);
    // Odd row width (43 = the PMNF class count) exercises the tail handling.
    const Tensor logits = random_tensor(37, 43, rng);
    Tensor scalar_probs, simd_probs;
    {
        LevelGuard guard(Level::Scalar);
        nn::SoftmaxCrossEntropy::softmax(logits, scalar_probs);
    }
    {
        LevelGuard guard(Level::Avx2);
        nn::SoftmaxCrossEntropy::softmax(logits, simd_probs);
    }
    EXPECT_LT(max_rel_diff(scalar_probs, simd_probs), 1e-5);
    for (std::size_t r = 0; r < simd_probs.rows(); ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < simd_probs.cols(); ++c) sum += simd_probs(r, c);
        EXPECT_NEAR(sum, 1.0, 1e-5) << "row " << r;
    }
}

// ---- AdaMax ----------------------------------------------------------------

struct AdaMaxProblem {
    Tensor w, g;
    std::vector<std::int32_t> dummy;
};

/// Hand-written reference of the scalar update in optimizer.cpp — kept
/// separate so a change to either copy is caught.
void reference_adamax(std::vector<float>& w, std::vector<float>& g, std::vector<float>& m,
                      std::vector<float>& u, float rate, float beta1, float beta2,
                      float epsilon) {
    for (std::size_t i = 0; i < w.size(); ++i) {
        m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
        u[i] = std::max(beta2 * u[i], std::abs(g[i]));
        w[i] -= rate * m[i] / (u[i] + epsilon);
        g[i] = 0.0f;
    }
}

TEST(SimdAdaMaxParity, ScalarFallbackBitIdenticalToReference) {
    LevelGuard guard(Level::Scalar);
    const std::size_t n = 1013;  // odd: exercises whatever loop shape
    xpcore::Rng rng(21);
    Tensor w(1, n), g(1, n);
    std::vector<float> ref_w(n), ref_g(n), ref_m(n, 0.0f), ref_u(n, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
        w.data()[i] = ref_w[i] = static_cast<float>(rng.uniform(-1, 1));
        g.data()[i] = ref_g[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    nn::AdaMax::Config config;
    nn::AdaMax opt(config);
    opt.attach({{&w, &g}});
    opt.step();
    const float rate = config.learning_rate / (1.0f - config.beta1);
    reference_adamax(ref_w, ref_g, ref_m, ref_u, rate, config.beta1, config.beta2,
                     config.epsilon);
    EXPECT_EQ(std::memcmp(w.data(), ref_w.data(), n * sizeof(float)), 0);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(g.data()[i], 0.0f) << i;
}

TEST(SimdAdaMaxParity, FusedSimdStepWithinTolerance) {
    SKIP_WITHOUT_AVX2();
    const std::size_t n = 1013;
    xpcore::Rng rng(22);
    Tensor scalar_w(1, n), scalar_g(1, n), simd_w(1, n), simd_g(1, n);
    for (std::size_t i = 0; i < n; ++i) {
        scalar_w.data()[i] = simd_w.data()[i] = static_cast<float>(rng.uniform(-1, 1));
        scalar_g.data()[i] = simd_g.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    {
        LevelGuard guard(Level::Scalar);
        nn::AdaMax opt;
        opt.attach({{&scalar_w, &scalar_g}});
        opt.step();
    }
    {
        LevelGuard guard(Level::Avx2);
        nn::AdaMax opt;
        opt.attach({{&simd_w, &simd_g}});
        opt.step();
    }
    EXPECT_LT(max_rel_diff(scalar_w, simd_w), 1e-6);
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(simd_g.data()[i], 0.0f) << "grad not cleared at " << i;
    }
}

// ---- train-then-classify oracle -------------------------------------------

dnn::DnnConfig tiny_config() {
    dnn::DnnConfig config;
    config.hidden = {32, 16};
    config.pretrain_samples_per_class = 40;
    config.pretrain_epochs = 1;
    return config;
}

TEST(SimdClassifierOracle, Top3HypothesesMatchScalarPathOnKernelSnapshot) {
    SKIP_WITHOUT_AVX2();
    // Train one classifier per level from the same seed, then classify the
    // case-study kernel snapshot (xpdnn simulate ... --seed=1 convention):
    // the selected top-3 hypothesis class sets must agree kernel for kernel.
    // SIMD changes float rounding, so trained weights differ slightly — the
    // assertion is that those differences never flip a classification
    // decision on the snapshot.
    std::vector<std::vector<std::vector<pmnf::TermClass>>> per_level;
    for (Level level : {Level::Scalar, Level::Avx2}) {
        LevelGuard guard(level);
        dnn::DnnModeler modeler(tiny_config(), /*seed=*/11);
        modeler.pretrain();
        std::vector<std::vector<pmnf::TermClass>> all_candidates;
        std::size_t kernels_seen = 0;
        for (const auto& study : casestudy::all_case_studies()) {
            for (const auto* kernel : study.relevant_kernels()) {
                if (kernels_seen >= 17) break;  // the snapshot's 17 kernels
                ++kernels_seen;
                xpcore::Rng rng(1);
                const auto set = study.generate_modeling(*kernel, rng);
                for (auto& params : modeler.candidate_classes(set)) {
                    all_candidates.push_back(std::move(params));
                }
            }
        }
        EXPECT_EQ(kernels_seen, 17u);
        per_level.push_back(std::move(all_candidates));
    }
    ASSERT_EQ(per_level[0].size(), per_level[1].size());
    for (std::size_t i = 0; i < per_level[0].size(); ++i) {
        ASSERT_EQ(per_level[0][i].size(), per_level[1][i].size()) << "entry " << i;
        for (std::size_t c = 0; c < per_level[0][i].size(); ++c) {
            EXPECT_TRUE(per_level[0][i][c] == per_level[1][i][c])
                << "candidate " << c << " of entry " << i << " differs between levels";
        }
    }
}

}  // namespace
