// Scalar-vs-SIMD parity for the vector compute backends — AVX2 and AVX-512
// (xpcore/simd_kernels.hpp):
//  * GEMM nn/nt/tn over odd shapes and tail sizes — every available vector
//    level's results within a tight relative tolerance of the scalar blocked
//    kernels (FMA and the summation tree are the only differences);
//  * tanh/exp approximations bounded against std::tanh/std::exp over
//    [-20, 20] (documented max error < 5e-7) at every vector width;
//  * AdaMax — the scalar fallback is bit-identical to a hand-written
//    reference loop, the fused SIMD steps are tolerance-checked;
//  * LevelGuard behavior for the AVX-512 level (pin, nest, clamp, restore);
//  * a full train-then-classify oracle over the case-study kernel snapshot:
//    the classifiers trained at every dispatch level must select identical
//    top-3 hypothesis class sets for every kernel.
//
// Each vector level's cases are CPUID-gated: on hosts without AVX2+FMA all
// SIMD cases skip; on AVX2-only hosts the AVX-512 cases skip cleanly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "dnn/modeler.hpp"
#include "nn/optimizer.hpp"
#include "nn/tensor.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"

namespace {

using nn::Tensor;
using xpcore::simd::Level;
using xpcore::simd::LevelGuard;

bool have_avx2() { return xpcore::simd::max_level() >= Level::Avx2; }
bool have_avx512() { return xpcore::simd::max_level() >= Level::Avx512; }

#define SKIP_WITHOUT_AVX2() \
    if (!have_avx2()) GTEST_SKIP() << "AVX2+FMA not available on this host"
#define SKIP_WITHOUT_AVX512() \
    if (!have_avx512()) GTEST_SKIP() << "AVX-512 not available on this host"

/// The vector dispatch levels this host can run (empty on scalar-only hosts).
std::vector<Level> vector_levels() {
    std::vector<Level> levels;
    if (have_avx2()) levels.push_back(Level::Avx2);
    if (have_avx512()) levels.push_back(Level::Avx512);
    return levels;
}

Tensor random_tensor(std::size_t rows, std::size_t cols, xpcore::Rng& rng) {
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

/// Max |a - b| relative to max |a| over the whole tensor.
double max_rel_diff(const Tensor& a, const Tensor& b) {
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double max_abs = 1e-30, max_err = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        max_abs = std::max(max_abs, std::abs(static_cast<double>(a.data()[i])));
        max_err = std::max(max_err, std::abs(static_cast<double>(a.data()[i]) -
                                             static_cast<double>(b.data()[i])));
    }
    return max_err / max_abs;
}

// ---- GEMM ------------------------------------------------------------------

// Shapes chosen to hit every microkernel edge at both vector widths: full
// 6x16 (AVX2) and 14x32 (AVX-512) tiles, row tails (m % 6, m % 14), column
// tails (n % 16, n % 32), k tails, the inference shape (1 x 11 x 43), and
// sizes crossing the KC=256 panel boundary.
struct Shape {
    std::size_t m, k, n;
};
const Shape kShapes[] = {
    {1, 11, 43}, {6, 16, 16},  {7, 17, 33},   {13, 5, 9},    {12, 256, 32},
    {5, 300, 7}, {97, 131, 61}, {128, 11, 43}, {64, 257, 48},
};

template <typename Gemm>
void check_gemm_parity(const Gemm& gemm, bool accumulate, double tol) {
    SKIP_WITHOUT_AVX2();
    for (const auto& s : kShapes) {
        xpcore::Rng rng(s.m * 1000003 + s.k * 101 + s.n);
        Tensor init_c(s.m, s.n);
        for (std::size_t i = 0; i < init_c.size(); ++i) {
            init_c.data()[i] = static_cast<float>(rng.uniform(-1, 1));
        }
        Tensor scalar_c = init_c;
        {
            LevelGuard guard(Level::Scalar);
            gemm(s, rng, scalar_c, accumulate);
        }
        for (Level level : vector_levels()) {
            Tensor simd_c = init_c;
            LevelGuard guard(level);
            gemm(s, rng, simd_c, accumulate);
            EXPECT_LT(max_rel_diff(scalar_c, simd_c), tol)
                << s.m << "x" << s.k << "x" << s.n << " accumulate=" << accumulate
                << " level=" << xpcore::simd::level_name(level);
        }
    }
}

TEST(SimdGemmParity, NnOddShapesAndTails) {
    for (bool accumulate : {false, true}) {
        check_gemm_parity(
            [](const Shape& s, xpcore::Rng&, Tensor& c, bool acc) {
                xpcore::Rng data_rng(1);
                const Tensor a = random_tensor(s.m, s.k, data_rng);
                const Tensor b = random_tensor(s.k, s.n, data_rng);
                nn::gemm_nn(a, b, c, acc);
            },
            accumulate, 1e-5);
    }
}

TEST(SimdGemmParity, NtOddShapesAndTails) {
    for (bool accumulate : {false, true}) {
        check_gemm_parity(
            [](const Shape& s, xpcore::Rng&, Tensor& c, bool acc) {
                xpcore::Rng data_rng(2);
                const Tensor a = random_tensor(s.m, s.k, data_rng);
                const Tensor b = random_tensor(s.n, s.k, data_rng);
                nn::gemm_nt(a, b, c, acc);
            },
            accumulate, 1e-5);
    }
}

TEST(SimdGemmParity, TnOddShapesAndTails) {
    for (bool accumulate : {false, true}) {
        check_gemm_parity(
            [](const Shape& s, xpcore::Rng&, Tensor& c, bool acc) {
                xpcore::Rng data_rng(3);
                const Tensor a = random_tensor(s.k, s.m, data_rng);
                const Tensor b = random_tensor(s.k, s.n, data_rng);
                nn::gemm_tn(a, b, c, acc);
            },
            accumulate, 1e-5);
    }
}

// ---- tanh / exp approximations --------------------------------------------

// The documented bounds from xpcore/simd_kernels.hpp, pinned so a coefficient
// regression fails loudly. Scanned densely over [-20, 20], which covers the
// clamp regions of both approximations.
constexpr float kTanhMaxAbsErr = 5e-7f;
constexpr float kExpMaxRelErr = 5e-7f;
constexpr int kScanSteps = 200001;

TEST(SimdMathParity, TanhScalarApproxBounded) {
    float max_err = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        const float x = -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
        max_err = std::max(max_err, std::abs(xpcore::simd::tanh_approx(x) - std::tanh(x)));
    }
    EXPECT_LT(max_err, kTanhMaxAbsErr);
}

/// Bounds a vector tanh kernel against std::tanh over the dense scan.
void check_vector_tanh(void (*tanh_fn)(const float*, float*, std::size_t)) {
    std::vector<float> xs(kScanSteps), ys(kScanSteps);
    for (int i = 0; i < kScanSteps; ++i) {
        xs[static_cast<std::size_t>(i)] =
            -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
    }
    tanh_fn(xs.data(), ys.data(), xs.size());
    float max_err = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        max_err = std::max(max_err, std::abs(ys[static_cast<std::size_t>(i)] -
                                             std::tanh(xs[static_cast<std::size_t>(i)])));
    }
    EXPECT_LT(max_err, kTanhMaxAbsErr);
}

TEST(SimdMathParity, TanhVectorMatchesReference) {
    SKIP_WITHOUT_AVX2();
    check_vector_tanh(xpcore::simd::tanh_f32_avx2);
}

TEST(SimdMathParity, TanhVectorAvx512MatchesReference) {
    SKIP_WITHOUT_AVX512();
    check_vector_tanh(xpcore::simd::tanh_f32_avx512);
}

TEST(SimdMathParity, ExpScalarApproxBounded) {
    float max_rel = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        const float x = -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
        const float exact = std::exp(x);
        max_rel = std::max(max_rel, std::abs(xpcore::simd::exp_approx(x) - exact) / exact);
    }
    EXPECT_LT(max_rel, kExpMaxRelErr);
}

/// Bounds a vector exp kernel against std::exp over the dense scan.
void check_vector_exp(void (*exp_fn)(const float*, float*, std::size_t)) {
    std::vector<float> xs(kScanSteps), ys(kScanSteps);
    for (int i = 0; i < kScanSteps; ++i) {
        xs[static_cast<std::size_t>(i)] =
            -20.0f + 40.0f * static_cast<float>(i) / (kScanSteps - 1);
    }
    exp_fn(xs.data(), ys.data(), xs.size());
    float max_rel = 0.0f;
    for (int i = 0; i < kScanSteps; ++i) {
        const float exact = std::exp(xs[static_cast<std::size_t>(i)]);
        max_rel = std::max(max_rel,
                           std::abs(ys[static_cast<std::size_t>(i)] - exact) / exact);
    }
    EXPECT_LT(max_rel, kExpMaxRelErr);
}

TEST(SimdMathParity, ExpVectorMatchesReference) {
    SKIP_WITHOUT_AVX2();
    check_vector_exp(xpcore::simd::exp_f32_avx2);
}

TEST(SimdMathParity, ExpVectorAvx512MatchesReference) {
    SKIP_WITHOUT_AVX512();
    check_vector_exp(xpcore::simd::exp_f32_avx512);
}

TEST(SimdMathParity, SoftmaxRowsMatchScalarPath) {
    SKIP_WITHOUT_AVX2();
    xpcore::Rng rng(9);
    // Odd row width (43 = the PMNF class count) exercises the tail handling
    // of both vector widths (43 % 8 and 43 % 16 are nonzero).
    const Tensor logits = random_tensor(37, 43, rng);
    Tensor scalar_probs;
    {
        LevelGuard guard(Level::Scalar);
        nn::SoftmaxCrossEntropy::softmax(logits, scalar_probs);
    }
    for (Level level : vector_levels()) {
        Tensor simd_probs;
        LevelGuard guard(level);
        nn::SoftmaxCrossEntropy::softmax(logits, simd_probs);
        EXPECT_LT(max_rel_diff(scalar_probs, simd_probs), 1e-5)
            << xpcore::simd::level_name(level);
        for (std::size_t r = 0; r < simd_probs.rows(); ++r) {
            double sum = 0.0;
            for (std::size_t c = 0; c < simd_probs.cols(); ++c) sum += simd_probs(r, c);
            EXPECT_NEAR(sum, 1.0, 1e-5)
                << "row " << r << " at " << xpcore::simd::level_name(level);
        }
    }
}

// ---- AdaMax ----------------------------------------------------------------

struct AdaMaxProblem {
    Tensor w, g;
    std::vector<std::int32_t> dummy;
};

/// Hand-written reference of the scalar update in optimizer.cpp — kept
/// separate so a change to either copy is caught.
void reference_adamax(std::vector<float>& w, std::vector<float>& g, std::vector<float>& m,
                      std::vector<float>& u, float rate, float beta1, float beta2,
                      float epsilon) {
    for (std::size_t i = 0; i < w.size(); ++i) {
        m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
        u[i] = std::max(beta2 * u[i], std::abs(g[i]));
        w[i] -= rate * m[i] / (u[i] + epsilon);
        g[i] = 0.0f;
    }
}

TEST(SimdAdaMaxParity, ScalarFallbackBitIdenticalToReference) {
    LevelGuard guard(Level::Scalar);
    const std::size_t n = 1013;  // odd: exercises whatever loop shape
    xpcore::Rng rng(21);
    Tensor w(1, n), g(1, n);
    std::vector<float> ref_w(n), ref_g(n), ref_m(n, 0.0f), ref_u(n, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
        w.data()[i] = ref_w[i] = static_cast<float>(rng.uniform(-1, 1));
        g.data()[i] = ref_g[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    nn::AdaMax::Config config;
    nn::AdaMax opt(config);
    opt.attach({{&w, &g}});
    opt.step();
    const float rate = config.learning_rate / (1.0f - config.beta1);
    reference_adamax(ref_w, ref_g, ref_m, ref_u, rate, config.beta1, config.beta2,
                     config.epsilon);
    EXPECT_EQ(std::memcmp(w.data(), ref_w.data(), n * sizeof(float)), 0);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(g.data()[i], 0.0f) << i;
}

TEST(SimdAdaMaxParity, FusedSimdStepWithinTolerance) {
    SKIP_WITHOUT_AVX2();
    const std::size_t n = 1013;
    xpcore::Rng rng(22);
    Tensor init_w(1, n), init_g(1, n);
    for (std::size_t i = 0; i < n; ++i) {
        init_w.data()[i] = static_cast<float>(rng.uniform(-1, 1));
        init_g.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    Tensor scalar_w = init_w, scalar_g = init_g;
    {
        LevelGuard guard(Level::Scalar);
        nn::AdaMax opt;
        opt.attach({{&scalar_w, &scalar_g}});
        opt.step();
    }
    for (Level level : vector_levels()) {
        Tensor simd_w = init_w, simd_g = init_g;
        LevelGuard guard(level);
        nn::AdaMax opt;
        opt.attach({{&simd_w, &simd_g}});
        opt.step();
        EXPECT_LT(max_rel_diff(scalar_w, simd_w), 1e-6) << xpcore::simd::level_name(level);
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(simd_g.data()[i], 0.0f)
                << "grad not cleared at " << i << " (" << xpcore::simd::level_name(level)
                << ")";
        }
    }
}

// ---- dispatch levels / LevelGuard ------------------------------------------

TEST(SimdDispatch, LevelGuardPinsAndRestoresAvx512) {
    const Level before = xpcore::simd::active_level();
    {
        LevelGuard guard(Level::Avx512);
        if (have_avx512()) {
            EXPECT_EQ(xpcore::simd::active_level(), Level::Avx512);
            EXPECT_TRUE(xpcore::simd::avx512_active());
            // avx2_active() is ">= AVX2": the AVX-512 level satisfies every
            // AVX2-gated call site.
            EXPECT_TRUE(xpcore::simd::avx2_active());
        } else {
            // Requesting a level the CPU lacks clamps instead of crashing.
            EXPECT_EQ(xpcore::simd::active_level(), xpcore::simd::max_level());
            EXPECT_FALSE(xpcore::simd::avx512_active());
        }
        {
            LevelGuard inner(Level::Scalar);
            EXPECT_EQ(xpcore::simd::active_level(), Level::Scalar);
            EXPECT_FALSE(xpcore::simd::avx512_active());
            EXPECT_FALSE(xpcore::simd::avx2_active());
        }
        if (have_avx512()) EXPECT_EQ(xpcore::simd::active_level(), Level::Avx512);
    }
    EXPECT_EQ(xpcore::simd::active_level(), before);
}

TEST(SimdDispatch, LevelNamesAndParseSemantics) {
    using xpcore::simd::level_name;
    using xpcore::simd::parse_level;
    EXPECT_STREQ(level_name(Level::Scalar), "scalar");
    EXPECT_STREQ(level_name(Level::Avx2), "avx2");
    EXPECT_STREQ(level_name(Level::Avx512), "avx512");

    const Level best = xpcore::simd::max_level();
    EXPECT_EQ(parse_level("0"), Level::Scalar);
    EXPECT_EQ(parse_level("scalar"), Level::Scalar);
    EXPECT_EQ(parse_level("off"), Level::Scalar);
    // "avx2" caps at AVX2 (clamped to what the host can run); "avx512",
    // "auto", and "1" all mean "best available".
    EXPECT_EQ(parse_level("avx2"), best < Level::Avx2 ? best : Level::Avx2);
    EXPECT_EQ(parse_level("avx512"), best);
    EXPECT_EQ(parse_level("auto"), best);
    EXPECT_EQ(parse_level("1"), best);
}

// ---- train-then-classify oracle -------------------------------------------

dnn::DnnConfig tiny_config() {
    dnn::DnnConfig config;
    config.hidden = {32, 16};
    config.pretrain_samples_per_class = 40;
    config.pretrain_epochs = 1;
    return config;
}

TEST(SimdClassifierOracle, Top3HypothesesMatchScalarPathOnKernelSnapshot) {
    SKIP_WITHOUT_AVX2();
    // Train one classifier per level from the same seed, then classify the
    // case-study kernel snapshot (xpdnn simulate ... --seed=1 convention):
    // the selected top-3 hypothesis class sets must agree kernel for kernel.
    // SIMD changes float rounding, so trained weights differ slightly — the
    // assertion is that those differences never flip a classification
    // decision on the snapshot.
    std::vector<Level> levels = {Level::Scalar};
    for (Level level : vector_levels()) levels.push_back(level);
    std::vector<std::vector<std::vector<pmnf::TermClass>>> per_level;
    for (Level level : levels) {
        LevelGuard guard(level);
        dnn::DnnModeler modeler(tiny_config(), /*seed=*/11);
        modeler.pretrain();
        std::vector<std::vector<pmnf::TermClass>> all_candidates;
        std::size_t kernels_seen = 0;
        for (const auto& study : casestudy::all_case_studies()) {
            for (const auto* kernel : study.relevant_kernels()) {
                if (kernels_seen >= 17) break;  // the snapshot's 17 kernels
                ++kernels_seen;
                xpcore::Rng rng(1);
                const auto set = study.generate_modeling(*kernel, rng);
                for (auto& params : modeler.candidate_classes(set)) {
                    all_candidates.push_back(std::move(params));
                }
            }
        }
        EXPECT_EQ(kernels_seen, 17u);
        per_level.push_back(std::move(all_candidates));
    }
    // Every vector level's selections must match the scalar baseline (and so,
    // transitively, each other's).
    for (std::size_t v = 1; v < per_level.size(); ++v) {
        ASSERT_EQ(per_level[0].size(), per_level[v].size());
        for (std::size_t i = 0; i < per_level[0].size(); ++i) {
            ASSERT_EQ(per_level[0][i].size(), per_level[v][i].size())
                << "entry " << i << " vs " << xpcore::simd::level_name(levels[v]);
            for (std::size_t c = 0; c < per_level[0][i].size(); ++c) {
                EXPECT_TRUE(per_level[0][i][c] == per_level[v][i][c])
                    << "candidate " << c << " of entry " << i
                    << " differs between scalar and " << xpcore::simd::level_name(levels[v]);
            }
        }
    }
}

}  // namespace
