// Tests for network layers, including finite-difference gradient checks —
// the canonical correctness test for hand-written backprop.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace nn;

TEST(Dense, ForwardKnownValues) {
    Dense layer(2, 2);
    layer.weights()(0, 0) = 1;
    layer.weights()(0, 1) = 2;
    layer.weights()(1, 0) = 3;
    layer.weights()(1, 1) = 4;
    layer.bias()(0, 0) = 10;
    layer.bias()(0, 1) = 20;
    Tensor in(1, 2);
    in(0, 0) = 1;
    in(0, 1) = 1;
    Tensor out;
    layer.forward(in, out);
    EXPECT_FLOAT_EQ(out(0, 0), 14);  // 1*1 + 1*3 + 10
    EXPECT_FLOAT_EQ(out(0, 1), 26);  // 1*2 + 1*4 + 20
}

TEST(Dense, ShapesAndParams) {
    xpcore::Rng rng(1);
    Dense layer(5, 3, rng);
    EXPECT_EQ(layer.input_size(), 5u);
    EXPECT_EQ(layer.output_size(), 3u);
    const auto params = layer.params();
    ASSERT_EQ(params.size(), 2u);
    EXPECT_EQ(params[0].value->size(), 15u);
    EXPECT_EQ(params[1].value->size(), 3u);
}

TEST(Tanh, ForwardValues) {
    Tanh layer(3);
    Tensor in(1, 3);
    in(0, 0) = 0.0f;
    in(0, 1) = 1.0f;
    in(0, 2) = -20.0f;
    Tensor out;
    layer.forward(in, out);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
    EXPECT_NEAR(out(0, 1), std::tanh(1.0f), 1e-6);
    EXPECT_NEAR(out(0, 2), -1.0f, 1e-6);
}

/// Finite-difference gradient check helper: perturbs each input (and
/// parameter) and compares the numeric gradient of a scalar loss
/// L = sum(out * seed) against the analytic backward pass.
void check_gradients(Layer& layer, Tensor in, float tolerance = 2e-2f) {
    Tensor out;
    layer.forward(in, out);

    // Seed gradient: dL/dout with distinct entries.
    Tensor grad_out(out.rows(), out.cols());
    for (std::size_t i = 0; i < grad_out.size(); ++i) {
        grad_out.data()[i] = 0.1f + 0.05f * static_cast<float>(i % 7);
    }

    for (auto& p : layer.params()) p.grad->fill(0.0f);
    Tensor grad_in;
    layer.backward(in, out, grad_out, grad_in);

    auto loss = [&](const Tensor& input) {
        Tensor o;
        layer.forward(input, o);
        double l = 0.0;
        for (std::size_t i = 0; i < o.size(); ++i) l += o.data()[i] * grad_out.data()[i];
        return l;
    };

    // Input gradients.
    const float eps = 1e-2f;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const float saved = in.data()[i];
        in.data()[i] = saved + eps;
        const double up = loss(in);
        in.data()[i] = saved - eps;
        const double down = loss(in);
        in.data()[i] = saved;
        const double numeric = (up - down) / (2.0 * eps);
        EXPECT_NEAR(grad_in.data()[i], numeric, tolerance) << "input grad " << i;
    }

    // Parameter gradients.
    for (auto& p : layer.params()) {
        for (std::size_t i = 0; i < p.value->size(); ++i) {
            const float saved = p.value->data()[i];
            p.value->data()[i] = saved + eps;
            const double up = loss(in);
            p.value->data()[i] = saved - eps;
            const double down = loss(in);
            p.value->data()[i] = saved;
            const double numeric = (up - down) / (2.0 * eps);
            EXPECT_NEAR(p.grad->data()[i], numeric, tolerance) << "param grad " << i;
        }
    }
}

TEST(GradientCheck, DenseLayer) {
    xpcore::Rng rng(7);
    Dense layer(4, 3, rng);
    Tensor in(2, 4);
    for (std::size_t i = 0; i < in.size(); ++i) in.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    check_gradients(layer, in);
}

TEST(GradientCheck, TanhLayer) {
    xpcore::Rng rng(8);
    Tanh layer(5);
    Tensor in(3, 5);
    for (std::size_t i = 0; i < in.size(); ++i) in.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    check_gradients(layer, in);
}

TEST(Dense, BackwardAccumulatesAcrossCalls) {
    xpcore::Rng rng(9);
    Dense layer(2, 2, rng);
    Tensor in(1, 2, 1.0f);
    Tensor out, grad_in;
    layer.forward(in, out);
    Tensor grad_out(1, 2, 1.0f);
    for (auto& p : layer.params()) p.grad->fill(0.0f);
    layer.backward(in, out, grad_out, grad_in);
    const float first = layer.params()[0].grad->data()[0];
    layer.backward(in, out, grad_out, grad_in);
    EXPECT_FLOAT_EQ(layer.params()[0].grad->data()[0], 2.0f * first);
}

TEST(Layers, KindTags) {
    xpcore::Rng rng(1);
    Dense dense(2, 2, rng);
    Tanh tanh_layer(2);
    Relu relu_layer(2);
    EXPECT_EQ(dense.kind(), "dense");
    EXPECT_EQ(tanh_layer.kind(), "tanh");
    EXPECT_EQ(relu_layer.kind(), "relu");
}

TEST(Relu, ForwardClampsNegatives) {
    Relu layer(4);
    Tensor in(1, 4);
    in(0, 0) = -2.0f;
    in(0, 1) = 0.0f;
    in(0, 2) = 3.0f;
    in(0, 3) = -0.5f;
    Tensor out;
    layer.forward(in, out);
    EXPECT_FLOAT_EQ(out(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(out(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(out(0, 2), 3.0f);
    EXPECT_FLOAT_EQ(out(0, 3), 0.0f);
}

TEST(Relu, BackwardGatesGradient) {
    Relu layer(2);
    Tensor in(1, 2);
    in(0, 0) = -1.0f;
    in(0, 1) = 2.0f;
    Tensor out, grad_in;
    layer.forward(in, out);
    Tensor grad_out(1, 2, 5.0f);
    layer.backward(in, out, grad_out, grad_in);
    EXPECT_FLOAT_EQ(grad_in(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(grad_in(0, 1), 5.0f);
}

TEST(GradientCheck, ReluLayerAwayFromKink) {
    xpcore::Rng rng(10);
    Relu layer(5);
    Tensor in(3, 5);
    for (std::size_t i = 0; i < in.size(); ++i) {
        // Keep inputs away from 0 where the derivative is undefined.
        const double v = rng.uniform(0.2, 1.0);
        in.data()[i] = static_cast<float>(rng.chance(0.5) ? v : -v);
    }
    check_gradients(layer, in);
}

}  // namespace
