// Binary-vs-text modeling parity: feeding the same measurements through the
// memory-mapped "xpdnn.arch" loaders must leave every modeling decision
// byte-identical to the text path. The workload is the repo's 17-kernel
// case-study snapshot (Kripke's 6 + FASTEST's first 11), the same selection
// the equivalence suite pins — here each kernel is written to disk twice
// (text and binary), loaded back through the format-agnostic loaders, and
// modeled by the same Session configuration.
//
// Reports are compared as serialized JSON with the wall-clock timings
// zeroed (the only fields allowed to differ between two runs).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "dnn/cache.hpp"
#include "dnn/modeler.hpp"
#include "measure/archive.hpp"
#include "measure/binary.hpp"
#include "measure/io.hpp"
#include "modeling/report.hpp"
#include "modeling/session.hpp"
#include "xpcore/rng.hpp"

namespace {

/// Points XPDNN_CACHE_DIR at a test-private directory for the lifetime of
/// one test (discovered tests run in separate processes, so tests never
/// race on a shared cache file).
struct CacheDirGuard {
    std::string dir;

    explicit CacheDirGuard(const std::string& tag) {
        dir = ::testing::TempDir() + "/xpdnn_mmap_" + tag + "_" +
              std::to_string(::getpid());
        std::filesystem::create_directories(dir);
        ::setenv("XPDNN_CACHE_DIR", dir.c_str(), 1);
    }
    ~CacheDirGuard() {
        ::unsetenv("XPDNN_CACHE_DIR");
        std::filesystem::remove_all(dir);
    }
};

/// Scratch directory for the on-disk text/binary file pairs.
struct ScratchDirGuard {
    std::string dir;

    ScratchDirGuard() {
        dir = ::testing::TempDir() + "/xpdnn_mmap_files_" + std::to_string(::getpid());
        std::filesystem::create_directories(dir);
    }
    ~ScratchDirGuard() { std::filesystem::remove_all(dir); }

    std::string path(const std::string& name) const { return dir + "/" + name; }
};

modeling::Options parity_options() {
    modeling::Options options;
    options.seed = 7;
    options.net_profile = "equiv-tiny";
    options.net.hidden = {32, 16};
    options.net.pretrain_samples_per_class = 60;
    options.net.pretrain_epochs = 1;
    options.net.adapt_samples_per_class = 40;
    return options;
}

/// The repo's 17-kernel selection snapshot (EXPERIMENTS.md): Kripke's 6
/// and FASTEST's first 11 performance-relevant kernels, one deterministic
/// experiment set each.
std::vector<modeling::Session::Task> case_study_tasks() {
    std::vector<modeling::Session::Task> tasks;
    std::uint64_t seed = 1000;
    for (const auto& study : {casestudy::kripke(), casestudy::fastest()}) {
        std::size_t taken = 0;
        for (const auto* kernel : study.relevant_kernels()) {
            if (study.application == "FASTEST" && taken == 11) break;
            xpcore::Rng rng(seed++);
            tasks.push_back({study.application + "/" + kernel->name,
                             study.generate_modeling(*kernel, rng)});
            ++taken;
        }
    }
    return tasks;
}

/// The full report document minus the only fields that may legitimately
/// differ between two identical runs: wall-clock timings.
std::string report_json_without_timings(modeling::Report report) {
    report.timings = {};
    return modeling::to_json(report);
}

TEST(MmapParity, SnapshotHasSeventeenKernels) {
    EXPECT_EQ(case_study_tasks().size(), 17u);
}

/// Round-trip sanity for the workload itself: every kernel's binary file
/// materializes to the text-identical experiment set.
TEST(MmapParity, BinaryFilesMaterializeTextIdenticalSets) {
    ScratchDirGuard files;
    std::size_t index = 0;
    for (const auto& task : case_study_tasks()) {
        const std::string text_path = files.path("k" + std::to_string(index) + ".txt");
        const std::string binary_path = files.path("k" + std::to_string(index) + ".arch");
        ++index;
        measure::save_text_file(task.experiments, text_path);
        measure::save_binary_file(task.experiments, binary_path);
        ASSERT_FALSE(measure::is_binary_file(text_path));
        ASSERT_TRUE(measure::is_binary_file(binary_path));

        const auto from_text = measure::load_set_file_any(text_path);
        const auto from_binary = measure::load_set_file_any(binary_path);
        std::ostringstream text_doc, binary_doc;
        measure::save_text(from_text, text_doc);
        measure::save_text(from_binary, binary_doc);
        EXPECT_EQ(text_doc.str(), binary_doc.str()) << task.name;
    }
}

/// Per-kernel modeling parity on the deterministic regression path: the
/// report from a binary input is byte-identical to the text input's.
TEST(MmapParity, RegressionReportsMatchTextPerKernel) {
    ScratchDirGuard files;
    const auto options = parity_options();
    modeling::Session session(options);
    std::size_t index = 0;
    for (const auto& task : case_study_tasks()) {
        const std::string text_path = files.path("r" + std::to_string(index) + ".txt");
        const std::string binary_path = files.path("r" + std::to_string(index) + ".arch");
        ++index;
        measure::save_text_file(task.experiments, text_path);
        measure::save_binary_file(task.experiments, binary_path);

        const auto text_report = session.run(
            "regression", measure::load_set_file_any(text_path), {0, task.name});
        const auto binary_report = session.run(
            "regression", measure::load_set_file_any(binary_path), {0, task.name});
        EXPECT_EQ(report_json_without_timings(binary_report),
                  report_json_without_timings(text_report))
            << task.name;
    }
}

/// Multi-kernel batch parity through the full adaptive pipeline: a binary
/// archive of one application's kernels batch-models to byte-identical
/// reports (selection, winner, clustering, noise block) as the text archive.
/// The pretrain cache is warmed first so both batch runs take the same
/// cache-hit load path.
TEST(MmapParity, BatchReportsMatchTextOnKripkeArchive) {
    CacheDirGuard cache("batch");
    ScratchDirGuard files;
    const auto options = parity_options();
    {
        // Warm the pretrain cache (a miss on this first call is expected);
        // both batch runs below then take the identical cache-hit path.
        dnn::DnnModeler modeler(options.net, options.seed);
        (void)dnn::ensure_pretrained(modeler, options.seed);
    }

    measure::Archive archive{std::vector<std::string>{}};
    bool first = true;
    for (const auto& task : case_study_tasks()) {
        if (task.name.rfind("Kripke/", 0) != 0) continue;
        if (first) {
            archive = measure::Archive(task.experiments.parameter_names());
            first = false;
        }
        archive.add(task.name, "time", task.experiments);
    }
    ASSERT_EQ(archive.entries().size(), 6u);

    const std::string text_path = files.path("kripke.txt");
    const std::string binary_path = files.path("kripke.arch");
    measure::save_archive_file(archive, text_path);
    measure::save_binary_file(archive, binary_path);

    const auto tasks_of = [](const measure::Archive& loaded) {
        std::vector<modeling::Session::Task> tasks;
        for (const auto& entry : loaded.entries()) {
            tasks.push_back({entry.kernel + "/" + entry.metric, entry.experiments});
        }
        return tasks;
    };

    modeling::Session session(options);
    const auto text_batch =
        session.run_batch(tasks_of(measure::load_archive_file_any(text_path)));
    const auto binary_batch =
        session.run_batch(tasks_of(measure::load_archive_file_any(binary_path)));

    ASSERT_EQ(binary_batch.reports.size(), text_batch.reports.size());
    EXPECT_EQ(binary_batch.adaptations, text_batch.adaptations);
    for (std::size_t i = 0; i < text_batch.reports.size(); ++i) {
        EXPECT_EQ(report_json_without_timings(binary_batch.reports[i]),
                  report_json_without_timings(text_batch.reports[i]))
            << text_batch.reports[i].task;
    }
}

}  // namespace
