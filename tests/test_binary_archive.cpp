// The "xpdnn.arch" binary archive: format round trips (text -> binary ->
// text byte-identical), streaming-append semantics, the miss+repair open
// discipline, and the typed-error contract on the golden bad files under
// tests/data/.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "measure/archive.hpp"
#include "measure/binary.hpp"
#include "measure/io.hpp"
#include "xpcore/archive.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace measure;
namespace xarch = xpcore::archive;
namespace fs = std::filesystem;

std::string data_path(const std::string& name) {
    return std::string(XPDNN_TEST_DATA_DIR) + "/" + name;
}

// Per-test scratch directory so parallel ctest processes never collide.
class ScratchDir {
public:
    ScratchDir() {
        dir_ = fs::temp_directory_path() /
               ("xpdnn_arch_test_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter_++));
        fs::create_directories(dir_);
    }
    ~ScratchDir() {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }
    std::string path(const std::string& name) const { return (dir_ / name).string(); }

private:
    static inline int counter_ = 0;
    fs::path dir_;
};

ExperimentSet small_set() {
    ExperimentSet set({"p", "n"});
    set.add({8, 1024}, {1.23, 1.25, 1.22});
    set.add({16, 1024}, {2.41, 2.39});
    set.add({32, 2048}, {4.8});
    return set;
}

Archive small_archive() {
    Archive archive({"p"});
    ExperimentSet a({"p"});
    a.add({2}, {0.5, 0.52});
    a.add({4}, {1.0});
    ExperimentSet b({"p"});
    b.add({2}, {10.0});
    archive.add("SweepSolver", "time", std::move(a));
    archive.add("LTimes", "time", std::move(b));
    return archive;
}

std::string set_text(const ExperimentSet& set) {
    std::ostringstream out;
    save_text(set, out);
    return out.str();
}

std::string archive_text(const Archive& archive) {
    std::ostringstream out;
    save_archive(archive, out);
    return out.str();
}

std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ExperimentSet random_set(xpcore::Rng& rng) {
    const std::size_t arity = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<std::string> names;
    for (std::size_t i = 0; i < arity; ++i) names.push_back("p" + std::to_string(i));
    ExperimentSet set(names);
    const int rows = static_cast<int>(rng.uniform_int(1, 12));
    for (int r = 0; r < rows; ++r) {
        Coordinate point;
        for (std::size_t i = 0; i < arity; ++i) point.push_back(rng.uniform(1.0, 1e6));
        std::vector<double> values;
        const int reps = static_cast<int>(rng.uniform_int(1, 5));
        for (int v = 0; v < reps; ++v) {
            switch (rng.uniform_int(0, 3)) {
                case 0: values.push_back(rng.uniform(-1e9, 1e9)); break;
                case 1: values.push_back(rng.uniform(-1e-9, 1e-9)); break;
                case 2: values.push_back(0.0); break;
                default: values.push_back(rng.normal(0.0, 1.0)); break;
            }
        }
        set.add(point, values);
    }
    return set;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(BinaryArchive, SetRoundTripIsByteIdenticalText) {
    ScratchDir scratch;
    xpcore::Rng rng(7);
    for (int iter = 0; iter < 50; ++iter) {
        const ExperimentSet original = random_set(rng);
        const std::string path = scratch.path("set.arch");
        save_binary_file(original, path);
        const ExperimentSet loaded = load_binary_set_file(path);
        EXPECT_EQ(set_text(loaded), set_text(original));
    }
}

TEST(BinaryArchive, ArchiveRoundTripIsByteIdenticalText) {
    ScratchDir scratch;
    const Archive original = small_archive();
    const std::string path = scratch.path("multi.arch");
    save_binary_file(original, path);
    const Archive loaded = load_binary_archive_file(path);
    EXPECT_EQ(archive_text(loaded), archive_text(original));
}

TEST(BinaryArchive, EmptySetRoundTrips) {
    ScratchDir scratch;
    const ExperimentSet empty({"x", "y", "z"});
    const std::string path = scratch.path("empty.arch");
    save_binary_file(empty, path);
    const ExperimentSet loaded = load_binary_set_file(path);
    EXPECT_EQ(loaded.parameter_names(), empty.parameter_names());
    EXPECT_TRUE(loaded.empty());
}

TEST(BinaryArchive, SaveAtomicallyReplacesExistingFile) {
    ScratchDir scratch;
    const std::string path = scratch.path("replace.arch");
    save_binary_file(small_set(), path);
    ExperimentSet other({"a"});
    other.add({1}, {2.0});
    save_binary_file(other, path);  // different parameter space entirely
    const ExperimentSet loaded = load_binary_set_file(path);
    EXPECT_EQ(loaded.parameter_names(), other.parameter_names());
    EXPECT_EQ(loaded.size(), 1u);
}

TEST(BinaryArchive, ShapeFlagIsEnforcedBothWays) {
    ScratchDir scratch;
    const std::string set_path = scratch.path("set.arch");
    const std::string arch_path = scratch.path("multi.arch");
    save_binary_file(small_set(), set_path);
    save_binary_file(small_archive(), arch_path);
    EXPECT_THROW(load_binary_archive_file(set_path), xpcore::ValidationError);
    EXPECT_THROW(load_binary_set_file(arch_path), xpcore::ValidationError);
}

// ---------------------------------------------------------------------------
// Zero-copy reader properties

TEST(BinaryArchive, ReaderViewsAre64ByteAligned) {
    ScratchDir scratch;
    const std::string path = scratch.path("aligned.arch");
    save_binary_file(small_archive(), path);
    auto reader = xarch::Reader::open(path);
    ASSERT_EQ(reader.section_count(), 2u);
    for (std::size_t s = 0; s < reader.section_count(); ++s) {
        const auto view = reader.section(s);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.value_offsets.data()) % 64, 0u);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.points.data()) % 64, 0u);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.values.data()) % 64, 0u);
    }
}

TEST(BinaryArchive, ReaderSurvivesConcurrentCommitReplacingThePath) {
    ScratchDir scratch;
    const std::string path = scratch.path("live.arch");
    ExperimentSet batch({"p"});
    batch.add({1}, {1.0});
    append_binary_set_file(path, batch);
    auto reader = xarch::Reader::open(path);
    const auto before = reader.section(0).values[0];
    // A concurrent append renames a new image over the path; the old
    // mapping must stay valid and unchanged.
    ExperimentSet more({"p"});
    more.add({2}, {99.0});
    append_binary_set_file(path, more);
    EXPECT_EQ(reader.section_count(), 1u);
    EXPECT_EQ(reader.section(0).values[0], before);
    auto reopened = xarch::Reader::open(path);
    EXPECT_EQ(reopened.total_measurements(), 2u);
}

// ---------------------------------------------------------------------------
// Streaming append

TEST(BinaryArchive, AppendAccumulatesAcrossWriterLifetimes) {
    ScratchDir scratch;
    const std::string path = scratch.path("stream.arch");
    ExperimentSet first({"p", "n"});
    first.add({1, 10}, {0.1, 0.11});
    ExperimentSet second({"p", "n"});
    second.add({2, 10}, {0.2});
    second.add({3, 10}, {0.3, 0.31, 0.32});

    auto r1 = append_binary_file(path, "K", "time", first);
    EXPECT_EQ(r1.status, xarch::Writer::OpenStatus::Created);
    EXPECT_EQ(r1.total, 1u);
    auto r2 = append_binary_file(path, "K", "time", second);
    EXPECT_EQ(r2.status, xarch::Writer::OpenStatus::Appending);
    EXPECT_EQ(r2.appended, 2u);
    EXPECT_EQ(r2.total, 3u);

    // Materialization concatenates the two append batches in order.
    const Archive merged = load_binary_archive_file(path);
    ASSERT_EQ(merged.size(), 1u);
    const auto& entry = merged.entries().front();
    ASSERT_EQ(entry.experiments.size(), 3u);
    EXPECT_EQ(entry.experiments.measurements()[0].values, first.measurements()[0].values);
    EXPECT_EQ(entry.experiments.measurements()[2].values, second.measurements()[1].values);
}

TEST(BinaryArchive, AppendInterleavesKernelsByFirstOccurrence) {
    ScratchDir scratch;
    const std::string path = scratch.path("interleave.arch");
    ExperimentSet a({"p"});
    a.add({1}, {1.0});
    ExperimentSet b({"p"});
    b.add({1}, {2.0});
    ExperimentSet a2({"p"});
    a2.add({2}, {3.0});
    append_binary_file(path, "A", "time", a);
    append_binary_file(path, "B", "time", b);
    append_binary_file(path, "A", "time", a2);
    const Archive merged = load_binary_archive_file(path);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.entries()[0].kernel, "A");
    EXPECT_EQ(merged.entries()[0].experiments.size(), 2u);
    EXPECT_EQ(merged.entries()[1].kernel, "B");
}

TEST(BinaryArchive, AppendRejectsParameterMismatchWithoutDestroyingData) {
    ScratchDir scratch;
    const std::string path = scratch.path("mismatch.arch");
    ExperimentSet good({"p", "n"});
    good.add({1, 2}, {1.0});
    append_binary_file(path, "K", "time", good);
    ExperimentSet wrong({"q"});
    wrong.add({1}, {1.0});
    EXPECT_THROW(append_binary_file(path, "K", "time", wrong), xpcore::ValidationError);
    // The healthy archive is untouched — no repair, no .corrupt file.
    EXPECT_FALSE(fs::exists(path + ".corrupt"));
    EXPECT_EQ(load_binary_archive_file(path).entries().front().experiments.size(), 1u);
}

TEST(BinaryArchive, WriterRejectsMalformedStagedSections) {
    ScratchDir scratch;
    xarch::Writer writer(scratch.path("w.arch"), {"p"});
    xarch::PendingSection empty_reps;
    empty_reps.kernel = "K";
    empty_reps.metric = "time";
    empty_reps.value_offsets = {0, 0};  // a measurement with no repetitions
    empty_reps.points = {1.0};
    EXPECT_THROW(writer.stage(empty_reps), xpcore::ValidationError);

    xarch::PendingSection bad_points;
    bad_points.kernel = "K";
    bad_points.metric = "time";
    bad_points.value_offsets = {0, 1};
    bad_points.points = {1.0, 2.0};  // arity 1 but two coordinates
    bad_points.values = {1.0};
    EXPECT_THROW(writer.stage(bad_points), xpcore::ValidationError);

    xarch::PendingSection non_finite;
    non_finite.kernel = "K";
    non_finite.metric = "time";
    non_finite.value_offsets = {0, 1};
    non_finite.points = {1.0};
    non_finite.values = {std::numeric_limits<double>::infinity()};
    EXPECT_THROW(writer.stage(non_finite), xpcore::ValidationError);
}

// ---------------------------------------------------------------------------
// Miss + repair and the typed-error contract

TEST(BinaryArchive, GoldenBadFilesRaiseTypedErrors) {
    EXPECT_THROW(xarch::Reader::open(data_path("arch_bad_magic.arch")), xpcore::ParseError);
    EXPECT_THROW(xarch::Reader::open(data_path("arch_truncated_header.arch")),
                 xpcore::ParseError);
    EXPECT_THROW(xarch::Reader::open(data_path("arch_truncated_payload.arch")),
                 xpcore::ParseError);
    EXPECT_THROW(xarch::Reader::open(data_path("arch_version_skew.arch")),
                 xpcore::ValidationError);
    EXPECT_THROW(xarch::Reader::open(data_path("arch_corrupt_payload.arch")),
                 xpcore::ValidationError);
}

TEST(BinaryArchive, GoldenBadFileDiagnosticsCarryTheSource) {
    try {
        xarch::Reader::open(data_path("arch_version_skew.arch"));
        FAIL() << "version skew must not load";
    } catch (const xpcore::ValidationError& e) {
        EXPECT_EQ(e.source(), data_path("arch_version_skew.arch"));
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST(BinaryArchive, WriterRepairsEveryGoldenBadFile) {
    for (const std::string name :
         {"arch_bad_magic.arch", "arch_truncated_header.arch",
          "arch_truncated_payload.arch", "arch_version_skew.arch",
          "arch_corrupt_payload.arch"}) {
        ScratchDir scratch;
        const std::string path = scratch.path("damaged.arch");
        spit(path, slurp(data_path(name)));
        xarch::Writer writer(path, {"p", "n"});
        EXPECT_EQ(writer.status(), xarch::Writer::OpenStatus::Repaired) << name;
        EXPECT_TRUE(fs::exists(path + ".corrupt")) << name;
        // The repaired writer starts a fresh, loadable archive.
        ExperimentSet batch({"p", "n"});
        batch.add({1, 2}, {1.0});
        writer.stage(to_section("K", "time", batch));
        writer.commit();
        EXPECT_EQ(load_binary_archive_file(path).size(), 1u) << name;
    }
}

TEST(BinaryArchive, TruncationAnywhereIsATypedError) {
    ScratchDir scratch;
    const std::string path = scratch.path("full.arch");
    save_binary_file(small_archive(), path);
    const auto bytes = slurp(path);
    for (std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{127},
                            std::size_t{128}, bytes.size() / 2, bytes.size() - 1}) {
        const std::string cut_path = scratch.path("cut.arch");
        spit(cut_path, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)});
        EXPECT_THROW(xarch::Reader::open(cut_path), xpcore::ParseError) << "cut=" << cut;
    }
}

TEST(BinaryArchive, TryLoadersReturnDiagnosticsInsteadOfThrowing) {
    const auto result = try_load_binary_archive_file(data_path("arch_corrupt_payload.arch"));
    EXPECT_FALSE(result.ok());
    ASSERT_EQ(result.diagnostics.size(), 1u);
    EXPECT_EQ(result.diagnostics[0].source, data_path("arch_corrupt_payload.arch"));
}

// ---------------------------------------------------------------------------
// Sniffing and format-agnostic loads

TEST(BinaryArchive, SniffRoutesBothFormats) {
    ScratchDir scratch;
    const std::string bin_path = scratch.path("set.arch");
    const std::string text_path = scratch.path("set.txt");
    save_binary_file(small_set(), bin_path);
    save_text_file(small_set(), text_path);
    EXPECT_TRUE(is_binary_file(bin_path));
    EXPECT_FALSE(is_binary_file(text_path));
    EXPECT_FALSE(is_binary_file(scratch.path("missing.arch")));

    const auto from_binary = try_load_set_file_any(bin_path);
    const auto from_text = try_load_set_file_any(text_path);
    ASSERT_TRUE(from_binary.ok());
    ASSERT_TRUE(from_text.ok());
    EXPECT_EQ(set_text(*from_binary.set), set_text(*from_text.set));
}

TEST(BinaryArchive, GoldenGoodFileLoadsAndMatchesItsTextTwin) {
    const auto binary = try_load_archive_file_any(data_path("arch_good.arch"));
    ASSERT_TRUE(binary.ok());
    const auto text = try_load_archive_file_any(data_path("arch_good.txt"));
    ASSERT_TRUE(text.ok());
    EXPECT_EQ(archive_text(*binary.archive), archive_text(*text.archive));
}

}  // namespace
