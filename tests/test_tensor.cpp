// Tests for the f32 tensor and GEMM kernels, validated against a naive
// reference implementation over random shapes.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nn/tensor.hpp"
#include "xpcore/rng.hpp"

namespace {

using nn::Tensor;

Tensor random_tensor(std::size_t rows, std::size_t cols, xpcore::Rng& rng) {
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

Tensor naive_nn(const Tensor& a, const Tensor& b) {
    Tensor c(a.rows(), b.cols(), 0.0f);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            for (std::size_t k = 0; k < a.cols(); ++k) c(i, j) += a(i, k) * b(k, j);
    return c;
}

void expect_near(const Tensor& actual, const Tensor& expected, float tol = 1e-4f) {
    ASSERT_EQ(actual.rows(), expected.rows());
    ASSERT_EQ(actual.cols(), expected.cols());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_NEAR(actual.data()[i], expected.data()[i], tol);
    }
}

TEST(Tensor, ConstructAndIndex) {
    Tensor t(2, 3, 1.5f);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.size(), 6u);
    t(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t(1, 2), 7.0f);
    EXPECT_FLOAT_EQ(t(0, 0), 1.5f);
}

TEST(Tensor, RowSpan) {
    Tensor t(2, 3);
    for (std::size_t c = 0; c < 3; ++c) t(1, c) = static_cast<float>(c);
    const auto row = t.row(1);
    EXPECT_EQ(row.size(), 3u);
    EXPECT_FLOAT_EQ(row[2], 2.0f);
}

TEST(Tensor, FillAndResize) {
    Tensor t(2, 2);
    t.fill(3.0f);
    EXPECT_FLOAT_EQ(t(1, 1), 3.0f);
    t.resize(4, 5);
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.size(), 20u);
}

TEST(Tensor, GlorotUniformBounds) {
    xpcore::Rng rng(1);
    Tensor t(100, 100);
    t.glorot_uniform(100, 100, rng);
    const float bound = std::sqrt(6.0f / 200.0f);
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < t.size(); ++i) max_abs = std::max(max_abs, std::abs(t.data()[i]));
    EXPECT_LE(max_abs, bound);
    EXPECT_GT(max_abs, bound * 0.9f);  // actually fills the range
}

TEST(Gemm, KnownSmallProduct) {
    Tensor a(2, 2), b(2, 2), c(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    gemm_nn(a, b, c);
    EXPECT_FLOAT_EQ(c(0, 0), 19);
    EXPECT_FLOAT_EQ(c(0, 1), 22);
    EXPECT_FLOAT_EQ(c(1, 0), 43);
    EXPECT_FLOAT_EQ(c(1, 1), 50);
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, NnMatchesNaive) {
    const auto [m, k, n] = GetParam();
    xpcore::Rng rng(m * 100 + k * 10 + n);
    const Tensor a = random_tensor(m, k, rng);
    const Tensor b = random_tensor(k, n, rng);
    Tensor c(m, n);
    gemm_nn(a, b, c);
    expect_near(c, naive_nn(a, b));
}

TEST_P(GemmShapes, NtMatchesNaive) {
    const auto [m, k, n] = GetParam();
    xpcore::Rng rng(m * 100 + k * 10 + n + 1);
    const Tensor a = random_tensor(m, k, rng);
    const Tensor bt = random_tensor(n, k, rng);  // b^T stored
    Tensor c(m, n);
    gemm_nt(a, bt, c);
    // reference: transpose bt then multiply
    Tensor b(k, n);
    for (std::size_t i = 0; i < static_cast<std::size_t>(k); ++i)
        for (std::size_t j = 0; j < static_cast<std::size_t>(n); ++j) b(i, j) = bt(j, i);
    expect_near(c, naive_nn(a, b));
}

TEST_P(GemmShapes, TnMatchesNaive) {
    const auto [m, k, n] = GetParam();
    xpcore::Rng rng(m * 100 + k * 10 + n + 2);
    const Tensor at = random_tensor(k, m, rng);  // a^T stored
    const Tensor b = random_tensor(k, n, rng);
    Tensor c(m, n);
    gemm_tn(at, b, c);
    Tensor a(m, k);
    for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i)
        for (std::size_t j = 0; j < static_cast<std::size_t>(k); ++j) a(i, j) = at(j, i);
    expect_near(c, naive_nn(a, b));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                           std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                                           std::make_tuple(1, 32, 8), std::make_tuple(33, 17, 9)));

TEST(Gemm, AccumulateAddsToExisting) {
    xpcore::Rng rng(9);
    const Tensor a = random_tensor(3, 4, rng);
    const Tensor b = random_tensor(4, 2, rng);
    Tensor c(3, 2, 1.0f);
    gemm_nn(a, b, c, /*accumulate=*/true);
    Tensor expected = naive_nn(a, b);
    for (std::size_t i = 0; i < expected.size(); ++i) expected.data()[i] += 1.0f;
    expect_near(c, expected);
}

TEST(Axpy, AddsScaled) {
    Tensor x(2, 2, 2.0f);
    Tensor y(2, 2, 1.0f);
    axpy(0.5f, x, y);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 2.0f);
}

}  // namespace
