// Tests for the f32 tensor and GEMM kernels, validated against a naive
// triple-loop reference oracle over random shapes — including degenerate
// inference shapes (m=1, k=11), sizes straddling the parallel-dispatch
// threshold, and accumulate on/off for all three variants — and pinned to
// be bit-identical between a serial pool and a 4-worker pool.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>

#include "nn/tensor.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/thread_pool.hpp"

namespace {

using nn::Tensor;

Tensor random_tensor(std::size_t rows, std::size_t cols, xpcore::Rng& rng) {
    Tensor t(rows, cols);
    for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    return t;
}

// Reference oracle: naive i-j-k triple loop in double precision accumulation
// order-independent enough for the 1e-4 tolerance below.
Tensor naive_nn(const Tensor& a, const Tensor& b) {
    Tensor c(a.rows(), b.cols(), 0.0f);
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j)
            for (std::size_t k = 0; k < a.cols(); ++k) c(i, j) += a(i, k) * b(k, j);
    return c;
}

Tensor transpose(const Tensor& t) {
    Tensor out(t.cols(), t.rows());
    for (std::size_t i = 0; i < t.rows(); ++i)
        for (std::size_t j = 0; j < t.cols(); ++j) out(j, i) = t(i, j);
    return out;
}

void expect_near(const Tensor& actual, const Tensor& expected, float tol = 1e-4f) {
    ASSERT_EQ(actual.rows(), expected.rows());
    ASSERT_EQ(actual.cols(), expected.cols());
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_NEAR(actual.data()[i], expected.data()[i], tol);
    }
}

void expect_identical(const Tensor& actual, const Tensor& expected) {
    ASSERT_EQ(actual.rows(), expected.rows());
    ASSERT_EQ(actual.cols(), expected.cols());
    EXPECT_EQ(std::memcmp(actual.data(), expected.data(), actual.size() * sizeof(float)), 0);
}

/// Forces the parallel dispatch path for the guarded scope (and restores
/// the default threshold on exit).
struct ThresholdOverride {
    explicit ThresholdOverride(std::size_t flops) { nn::set_gemm_parallel_threshold(flops); }
    ~ThresholdOverride() { nn::set_gemm_parallel_threshold(0); }
};

TEST(Tensor, ConstructAndIndex) {
    Tensor t(2, 3, 1.5f);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.size(), 6u);
    t(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(t(1, 2), 7.0f);
    EXPECT_FLOAT_EQ(t(0, 0), 1.5f);
}

TEST(Tensor, RowSpan) {
    Tensor t(2, 3);
    for (std::size_t c = 0; c < 3; ++c) t(1, c) = static_cast<float>(c);
    const auto row = t.row(1);
    EXPECT_EQ(row.size(), 3u);
    EXPECT_FLOAT_EQ(row[2], 2.0f);
}

TEST(Tensor, FillAndResize) {
    Tensor t(2, 2);
    t.fill(3.0f);
    EXPECT_FLOAT_EQ(t(1, 1), 3.0f);
    t.resize(4, 5);
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.size(), 20u);
}

TEST(Tensor, ResizeKeepsCapacityWhenShrinking) {
    Tensor t(8, 16);
    const std::size_t cap = t.capacity();
    EXPECT_GE(cap, 128u);

    // Shrink: the buffer must be kept so growing back within the old
    // capacity cannot reallocate (the workspace-reuse contract).
    t.resize(2, 3);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.size(), 6u);
    EXPECT_EQ(t.capacity(), cap);

    const float* buffer = t.data();
    t.resize(8, 16);  // grow back within capacity: same buffer
    EXPECT_EQ(t.capacity(), cap);
    EXPECT_EQ(t.data(), buffer);

    t.resize(32, 32);  // grow beyond capacity: must actually grow
    EXPECT_GE(t.capacity(), 1024u);
    EXPECT_EQ(t.size(), 1024u);
}

TEST(Tensor, GlorotUniformBounds) {
    xpcore::Rng rng(1);
    Tensor t(100, 100);
    t.glorot_uniform(100, 100, rng);
    const float bound = std::sqrt(6.0f / 200.0f);
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < t.size(); ++i) max_abs = std::max(max_abs, std::abs(t.data()[i]));
    EXPECT_LE(max_abs, bound);
    EXPECT_GT(max_abs, bound * 0.9f);  // actually fills the range
}

TEST(Gemm, KnownSmallProduct) {
    Tensor a(2, 2), b(2, 2), c(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b(0, 0) = 5;
    b(0, 1) = 6;
    b(1, 0) = 7;
    b(1, 1) = 8;
    gemm_nn(a, b, c);
    EXPECT_FLOAT_EQ(c(0, 0), 19);
    EXPECT_FLOAT_EQ(c(0, 1), 22);
    EXPECT_FLOAT_EQ(c(1, 0), 43);
    EXPECT_FLOAT_EQ(c(1, 1), 50);
}

// (m, k, n) shapes: degenerate vectors, the 1 x 11 inference line, odd
// primes that break tile boundaries, and sizes straddling the parallel
// threshold (forced low in the threaded suite below).
class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, NnMatchesNaive) {
    const auto [m, k, n] = GetParam();
    for (const bool accumulate : {false, true}) {
        xpcore::Rng rng(m * 100 + k * 10 + n + (accumulate ? 7 : 0));
        const Tensor a = random_tensor(m, k, rng);
        const Tensor b = random_tensor(k, n, rng);
        Tensor c = random_tensor(m, n, rng);
        Tensor expected = naive_nn(a, b);
        if (accumulate) {
            for (std::size_t i = 0; i < expected.size(); ++i) expected.data()[i] += c.data()[i];
        }
        gemm_nn(a, b, c, accumulate);
        expect_near(c, expected);
    }
}

TEST_P(GemmShapes, NtMatchesNaive) {
    const auto [m, k, n] = GetParam();
    for (const bool accumulate : {false, true}) {
        xpcore::Rng rng(m * 100 + k * 10 + n + (accumulate ? 8 : 1));
        const Tensor a = random_tensor(m, k, rng);
        const Tensor bt = random_tensor(n, k, rng);  // b^T stored
        Tensor c = random_tensor(m, n, rng);
        Tensor expected = naive_nn(a, transpose(bt));
        if (accumulate) {
            for (std::size_t i = 0; i < expected.size(); ++i) expected.data()[i] += c.data()[i];
        }
        gemm_nt(a, bt, c, accumulate);
        expect_near(c, expected);
    }
}

TEST_P(GemmShapes, TnMatchesNaive) {
    const auto [m, k, n] = GetParam();
    for (const bool accumulate : {false, true}) {
        xpcore::Rng rng(m * 100 + k * 10 + n + (accumulate ? 9 : 2));
        const Tensor at = random_tensor(k, m, rng);  // a^T stored
        const Tensor b = random_tensor(k, n, rng);
        Tensor c = random_tensor(m, n, rng);
        Tensor expected = naive_nn(transpose(at), b);
        if (accumulate) {
            for (std::size_t i = 0; i < expected.size(); ++i) expected.data()[i] += c.data()[i];
        }
        gemm_tn(at, b, c, accumulate);
        expect_near(c, expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                           std::make_tuple(7, 5, 3), std::make_tuple(16, 16, 16),
                                           std::make_tuple(1, 32, 8), std::make_tuple(33, 17, 9),
                                           std::make_tuple(1, 11, 43),   // one inference line
                                           std::make_tuple(48, 48, 48),  // below 2^17 threshold
                                           std::make_tuple(64, 65, 66),  // above 2^17 threshold
                                           std::make_tuple(5, 300, 37)   // K-panel straddle
                                           ));

// Bit-exact determinism across worker counts: the kernels partition output
// rows only, so a 4-worker pool must reproduce the serial pool exactly —
// this is what makes XPDNN_THREADS=0/1/4 model selection identical.
class GemmThreaded : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmThreaded, SerialAndParallelPoolsBitIdentical) {
    const auto [m, k, n] = GetParam();
    ThresholdOverride force_parallel(1);  // everything above 1 madd parallelizes
    xpcore::ThreadPool serial_pool(0);
    xpcore::ThreadPool parallel_pool(4);

    for (const bool accumulate : {false, true}) {
        xpcore::Rng rng(m * 1000 + k * 100 + n + (accumulate ? 3 : 0));
        const Tensor a = random_tensor(m, k, rng);
        const Tensor b = random_tensor(k, n, rng);
        const Tensor bt = transpose(b);
        const Tensor at = transpose(a);
        const Tensor init = random_tensor(m, n, rng);

        Tensor c_serial = init, c_parallel = init;
        gemm_nn(a, b, c_serial, accumulate, serial_pool);
        gemm_nn(a, b, c_parallel, accumulate, parallel_pool);
        expect_identical(c_parallel, c_serial);
        expect_near(c_serial, c_parallel);  // shape check side effect

        c_serial = init;
        c_parallel = init;
        gemm_nt(a, bt, c_serial, accumulate, serial_pool);
        gemm_nt(a, bt, c_parallel, accumulate, parallel_pool);
        expect_identical(c_parallel, c_serial);

        c_serial = init;
        c_parallel = init;
        gemm_tn(at, b, c_serial, accumulate, serial_pool);
        gemm_tn(at, b, c_parallel, accumulate, parallel_pool);
        expect_identical(c_parallel, c_serial);
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmThreaded,
                         ::testing::Values(std::make_tuple(2, 3, 4), std::make_tuple(16, 16, 16),
                                           std::make_tuple(48, 48, 48),
                                           std::make_tuple(64, 65, 66),
                                           std::make_tuple(128, 11, 43),  // training batch
                                           std::make_tuple(97, 300, 31)));

TEST(Gemm, ParallelThresholdKnob) {
    EXPECT_GT(nn::gemm_parallel_threshold(), 0u);
    const std::size_t before = nn::gemm_parallel_threshold();
    nn::set_gemm_parallel_threshold(12345);
    EXPECT_EQ(nn::gemm_parallel_threshold(), 12345u);
    nn::set_gemm_parallel_threshold(0);  // restore default
    EXPECT_EQ(nn::gemm_parallel_threshold(), before);
}

TEST(Gemm, AccumulateAddsToExisting) {
    xpcore::Rng rng(9);
    const Tensor a = random_tensor(3, 4, rng);
    const Tensor b = random_tensor(4, 2, rng);
    Tensor c(3, 2, 1.0f);
    gemm_nn(a, b, c, /*accumulate=*/true);
    Tensor expected = naive_nn(a, b);
    for (std::size_t i = 0; i < expected.size(); ++i) expected.data()[i] += 1.0f;
    expect_near(c, expected);
}

TEST(Axpy, AddsScaled) {
    Tensor x(2, 2, 2.0f);
    Tensor y(2, 2, 1.0f);
    axpy(0.5f, x, y);
    for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y.data()[i], 2.0f);
}

}  // namespace
