// Tests for the xpdnnd modeling daemon (src/serve): protocol decoding,
// verb round trips, byte-identity of daemon reports with the CLI's
// --report=json output, queue backpressure, per-request deadlines,
// graceful drain under load, and cross-worker determinism.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.hpp"
#include "measure/binary.hpp"
#include "measure/io.hpp"
#include "noise/injector.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"

namespace {

/// The linear test problem f(p) = 2 + 3p, exact repetitions — regression
/// models it instantly and reproducibly.
std::string linear_measurements_text() {
    std::string text = "params: p\n";
    for (const int p : {4, 8, 16, 32, 64}) {
        const std::string v = std::to_string(2 + 3 * p);
        text += std::to_string(p) + " : " + v + " " + v + " " + v + "\n";
    }
    return text;
}

/// The same text with '\n' escaped for embedding in a JSON string literal.
std::string escaped(const std::string& text) {
    std::string out;
    for (const char c : text) {
        if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

std::string model_request(const std::string& task, const std::string& modeler,
                          const std::string& id = "") {
    std::string request = "{\"verb\": \"model\"";
    if (!id.empty()) request += ", \"id\": " + id;
    request += ", \"modeler\": \"" + modeler + "\", \"task\": \"" + task +
               "\", \"timings\": false, \"measurements\": \"" +
               escaped(linear_measurements_text()) + "\"}";
    return request;
}

bool is_ok(const std::string& response) {
    return response.rfind("{\"ok\": true", 0) == 0;
}

/// The "code" of a failure envelope, or "" for a success response.
std::string error_code(const std::string& response) {
    const serve::JsonValue document = serve::parse_json(response);
    const serve::JsonValue* error = document.find("error");
    if (error == nullptr) return "";
    const serve::JsonValue* code = error->find("code");
    return code != nullptr ? code->string_value : "";
}

serve::ServerConfig fast_config() {
    serve::ServerConfig config;
    config.workers = 2;
    config.options.use_cache = false;  // hermetic: no cache files
    return config;
}

// ---- protocol decoding ------------------------------------------------------

TEST(ServeProtocol, ParsesFieldsAndDefaults) {
    const serve::Request request = serve::parse_request(
        "{\"verb\": \"model\", \"id\": 7, \"modeler\": \"dnn\", \"task\": \"k\", "
        "\"measurements\": \"m\", \"alternatives\": 2, \"timings\": false, "
        "\"deadline_ms\": 250}");
    EXPECT_EQ(request.verb, "model");
    EXPECT_EQ(request.id_json, "7");
    EXPECT_EQ(request.modeler, "dnn");
    EXPECT_EQ(request.task, "k");
    EXPECT_EQ(request.measurements, "m");
    EXPECT_EQ(request.alternatives, 2u);
    EXPECT_FALSE(request.include_timings);
    EXPECT_EQ(request.deadline_ms, 250);

    const serve::Request defaults = serve::parse_request("{\"verb\": \"ping\"}");
    EXPECT_EQ(defaults.modeler, "adaptive");
    EXPECT_TRUE(defaults.include_timings);
    EXPECT_EQ(defaults.deadline_ms, -1);
    EXPECT_EQ(defaults.id_json, "");
}

TEST(ServeProtocol, IdScalarIsEchoedVerbatim) {
    EXPECT_EQ(serve::parse_request("{\"verb\": \"ping\", \"id\": \"a b\"}").id_json,
              "\"a b\"");
    EXPECT_EQ(serve::parse_request("{\"verb\": \"ping\", \"id\": 1.5}").id_json, "1.5");
    EXPECT_EQ(serve::parse_request("{\"verb\": \"ping\", \"id\": true}").id_json, "true");
    EXPECT_THROW(serve::parse_request("{\"verb\": \"ping\", \"id\": [1]}"),
                 xpcore::ValidationError);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
    EXPECT_THROW(serve::parse_request("not json"), xpcore::ParseError);
    EXPECT_THROW(serve::parse_request("[1, 2]"), xpcore::ValidationError);
    EXPECT_THROW(serve::parse_request("{}"), xpcore::ValidationError);        // no verb
    EXPECT_THROW(serve::parse_request("{\"verb\": \"x\", \"bogus\": 1}"),
                 xpcore::ValidationError);                                    // unknown field
    EXPECT_THROW(serve::parse_request("{\"verb\": 1}"), xpcore::ValidationError);
    EXPECT_THROW(serve::parse_request("{\"verb\": \"predict\", \"point\": [\"a\"]}"),
                 xpcore::ValidationError);
    EXPECT_THROW(serve::parse_request("{\"verb\": \"sleep\", \"ms\": -1}"),
                 xpcore::ValidationError);
}

TEST(ServeProtocol, ErrorEnvelopeShape) {
    const std::string response =
        serve::error_response(serve::ErrorCode::Overloaded, "queue full", "42");
    EXPECT_EQ(response,
              "{\"ok\": false, \"id\": 42, \"error\": {\"code\": \"overloaded\", "
              "\"message\": \"queue full\"}}");
    const std::string anonymous =
        serve::error_response(serve::ErrorCode::ParseError, "bad", "");
    EXPECT_EQ(anonymous.find("\"id\""), std::string::npos);
}

// ---- verb round trips -------------------------------------------------------

TEST(Serve, PingAndModelersRoundTrip) {
    serve::Server server(fast_config());
    serve::Client client(server.bound_port());

    const std::string pong = client.request("{\"verb\": \"ping\", \"id\": 1}", 10'000);
    EXPECT_TRUE(is_ok(pong)) << pong;
    EXPECT_NE(pong.find("\"id\": 1"), std::string::npos);
    EXPECT_NE(pong.find("\"protocol\": 1"), std::string::npos);

    const std::string modelers = client.request("{\"verb\": \"modelers\"}", 10'000);
    EXPECT_TRUE(is_ok(modelers)) << modelers;
    for (const char* name : {"adaptive", "regression", "dnn", "ensemble", "batch", "noise"}) {
        EXPECT_NE(modelers.find("\"name\": \"" + std::string(name) + "\""),
                  std::string::npos)
            << modelers;
    }
}

TEST(Serve, ModelThenPredictFromCachedReport) {
    serve::Server server(fast_config());
    serve::Client client(server.bound_port());

    const std::string modeled =
        client.request(model_request("kernelA", "regression", "\"m1\""), 30'000);
    ASSERT_TRUE(is_ok(modeled)) << modeled;
    EXPECT_NE(modeled.find("\"id\": \"m1\""), std::string::npos);
    EXPECT_NE(modeled.find("\"schema\": \"xpdnn.report\""), std::string::npos);

    const std::string predicted = client.request(
        "{\"verb\": \"predict\", \"task\": \"kernelA\", \"point\": [128]}", 10'000);
    ASSERT_TRUE(is_ok(predicted)) << predicted;
    // f(128) = 2 + 3 * 128 = 386, recovered exactly by the regression path.
    EXPECT_NE(predicted.find("\"prediction\": 386"), std::string::npos) << predicted;
}

TEST(Serve, ErrorEnvelopes) {
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    EXPECT_EQ(error_code(client.request("{\"verb\": \"frobnicate\"}", 10'000)),
              "unknown_verb");
    EXPECT_EQ(error_code(client.request("this is not json", 10'000)), "parse_error");
    EXPECT_EQ(error_code(client.request("{\"verb\": \"ping\", \"bogus\": 1}", 10'000)),
              "bad_request");
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"model\", \"measurements\": \"m\", \"modeler\": \"nope\"}",
                  10'000)),
              "unknown_modeler");
    EXPECT_EQ(error_code(client.request("{\"verb\": \"model\"}", 10'000)),
              "validation_error");
    // Undecodable measurement text: the diagnostic's line:column locates
    // the bad token inside the submitted document.
    const std::string bad_measurements = client.request(
        "{\"verb\": \"model\", \"modeler\": \"regression\", "
        "\"measurements\": \"params: p\\n4 : oops\\n\"}",
        10'000);
    EXPECT_EQ(error_code(bad_measurements), "parse_error");
    EXPECT_NE(bad_measurements.find("<measurements>:2"), std::string::npos)
        << bad_measurements;
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"predict\", \"task\": \"never\", \"point\": [1]}", 10'000)),
              "unknown_task");

    // Arity mismatch against a cached 1-parameter model.
    ASSERT_TRUE(is_ok(client.request(model_request("t", "regression"), 30'000)));
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"predict\", \"task\": \"t\", \"point\": [1, 2]}", 10'000)),
              "validation_error");
}

// ---- byte-identity with the CLI ---------------------------------------------

TEST(Serve, ReportIsByteIdenticalToCliReportJson) {
    // Same measurements through both front ends. Timings are wall-clock and
    // can never agree, so both sides zero them: --no-timings on the CLI,
    // "timings": false on the wire. Everything else — schema, config hash,
    // noise, model, formatting — must agree to the byte.
    const std::string path = ::testing::TempDir() + "/xpdnn_serve_identity_" +
                             std::to_string(::getpid()) + ".txt";
    std::ofstream(path) << linear_measurements_text();

    std::vector<std::string> argv_strings = {"xpdnn",           "model",
                                             path,              "--modeler=regression",
                                             "--report=json",   "--no-timings"};
    std::vector<const char*> argv;
    for (const auto& s : argv_strings) argv.push_back(s.c_str());
    std::ostringstream cli_out, cli_err;
    ASSERT_EQ(cli::run(static_cast<int>(argv.size()), argv.data(), cli_out, cli_err), 0)
        << cli_err.str();
    std::string cli_report = cli_out.str();
    ASSERT_FALSE(cli_report.empty());
    ASSERT_EQ(cli_report.back(), '\n');
    cli_report.pop_back();

    serve::ServerConfig config;
    config.workers = 1;
    config.options = modeling::Options{};  // == Options::from_args with no flags
    serve::Server server(config);
    serve::Client client(server.bound_port());
    const std::string response =
        client.request("{\"verb\": \"model\", \"modeler\": \"regression\", "
                       "\"timings\": false, \"measurements\": \"" +
                           escaped(linear_measurements_text()) + "\"}",
                       30'000);
    ASSERT_TRUE(is_ok(response)) << response;

    // "report" is the response's final key; strip the envelope around it.
    const std::string marker = "\"report\": ";
    const std::size_t at = response.find(marker);
    ASSERT_NE(at, std::string::npos);
    ASSERT_EQ(response.back(), '}');
    const std::string daemon_report =
        response.substr(at + marker.size(), response.size() - at - marker.size() - 1);

    EXPECT_EQ(daemon_report, cli_report);
    std::filesystem::remove(path);
}

// ---- archive-backed modeling and streaming ingestion ------------------------

/// Extract the byte-exact report document from a model/ingest response
/// ("report" is always the final key).
std::string report_of(const std::string& response) {
    const std::string marker = "\"report\": ";
    const std::size_t at = response.find(marker);
    if (at == std::string::npos || response.empty() || response.back() != '}') return "";
    return response.substr(at + marker.size(), response.size() - at - marker.size() - 1);
}

/// A fresh per-test scratch directory (removed on destruction).
struct ServeScratchDir {
    std::filesystem::path path;
    ServeScratchDir() {
        static int counter = 0;
        path = std::filesystem::path(::testing::TempDir()) /
               ("xpdnn_serve_arch_" + std::to_string(::getpid()) + "_" +
                std::to_string(counter++));
        std::filesystem::create_directories(path);
    }
    ~ServeScratchDir() {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

TEST(Serve, ModelFromArchivePathMatchesInlineText) {
    ServeScratchDir scratch;
    const std::string arch = (scratch.path / "linear.arch").string();
    {
        std::istringstream stream(linear_measurements_text());
        measure::ExperimentSet set = measure::load_text(stream, "<linear>");
        measure::save_binary_file(set, arch);
    }

    serve::ServerConfig config = fast_config();
    config.workers = 1;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    const std::string inline_response =
        client.request(model_request("", "regression"), 30'000);
    ASSERT_TRUE(is_ok(inline_response)) << inline_response;
    const std::string archive_response = client.request(
        "{\"verb\": \"model\", \"modeler\": \"regression\", \"timings\": false, "
        "\"archive\": " + serve::json_quote(arch) + "}",
        30'000);
    ASSERT_TRUE(is_ok(archive_response)) << archive_response;

    // The mmap-backed load must feed the modeler the same bytes the inline
    // text path does: the reports agree exactly.
    EXPECT_EQ(report_of(archive_response), report_of(inline_response));

    // A multi-kernel archive requires kernel/metric to select the entry.
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"model\", \"archive\": " + serve::json_quote(arch) +
                      ", \"kernel\": \"nope\", \"metric\": \"time\"}",
                  30'000)),
              "validation_error");  // single-set file opened as multi-kernel
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"model\", \"archive\": " +
                      serve::json_quote((scratch.path / "missing.arch").string()) + "}",
                  10'000)),
              "validation_error");
}

TEST(Serve, IngestCreatesAppendsRepairsAndRemodels) {
    ServeScratchDir scratch;
    const std::string arch = (scratch.path / "live.arch").string();
    const std::string batch = escaped(linear_measurements_text());

    serve::ServerConfig config = fast_config();
    config.workers = 1;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    // First batch creates the archive; no remodel requested.
    const std::string created = client.request(
        "{\"verb\": \"ingest\", \"archive\": " + serve::json_quote(arch) +
            ", \"kernel\": \"lin\", \"metric\": \"time\", \"remodel\": false, "
            "\"measurements\": \"" + batch + "\"}",
        30'000);
    ASSERT_TRUE(is_ok(created)) << created;
    EXPECT_NE(created.find("\"status\": \"created\""), std::string::npos) << created;
    EXPECT_NE(created.find("\"appended\": 5"), std::string::npos) << created;
    EXPECT_NE(created.find("\"total\": 5"), std::string::npos) << created;
    EXPECT_EQ(report_of(created), "");

    // Second batch appends and re-models the touched entry; the report
    // covers both batches (10 coordinate rows), is cached under the task,
    // and "predict" serves from it.
    const std::string appended = client.request(
        "{\"verb\": \"ingest\", \"archive\": " + serve::json_quote(arch) +
            ", \"kernel\": \"lin\", \"metric\": \"time\", \"task\": \"lin\", "
            "\"modeler\": \"regression\", \"timings\": false, "
            "\"measurements\": \"" + batch + "\"}",
        30'000);
    ASSERT_TRUE(is_ok(appended)) << appended;
    EXPECT_NE(appended.find("\"status\": \"appended\""), std::string::npos) << appended;
    EXPECT_NE(appended.find("\"total\": 10"), std::string::npos) << appended;
    EXPECT_NE(report_of(appended).find("\"schema\": \"xpdnn.report\""), std::string::npos)
        << appended;
    const std::string predicted = client.request(
        "{\"verb\": \"predict\", \"task\": \"lin\", \"point\": [128]}", 10'000);
    ASSERT_TRUE(is_ok(predicted)) << predicted;
    EXPECT_NE(predicted.find("\"prediction\": 386"), std::string::npos) << predicted;

    // Clobber the archive: the next ingest moves the corrupt file aside
    // and starts fresh instead of failing.
    std::ofstream(arch, std::ios::trunc) << "garbage";
    const std::string repaired = client.request(
        "{\"verb\": \"ingest\", \"archive\": " + serve::json_quote(arch) +
            ", \"kernel\": \"lin\", \"metric\": \"time\", \"remodel\": false, "
            "\"measurements\": \"" + batch + "\"}",
        30'000);
    ASSERT_TRUE(is_ok(repaired)) << repaired;
    EXPECT_NE(repaired.find("\"status\": \"repaired\""), std::string::npos) << repaired;
    EXPECT_NE(repaired.find("\"total\": 5"), std::string::npos) << repaired;
    EXPECT_TRUE(std::filesystem::exists(arch + ".corrupt"));
}

TEST(Serve, IngestAndArchiveValidationErrors) {
    ServeScratchDir scratch;
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    EXPECT_EQ(error_code(client.request("{\"verb\": \"ingest\"}", 10'000)),
              "validation_error");  // no archive
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"ingest\", \"archive\": \"/tmp/x.arch\"}", 10'000)),
              "validation_error");  // no measurements
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"ingest\", \"archive\": \"/tmp/x.arch\", "
                  "\"kernel\": \"k\", \"measurements\": \"params: p\\n1 : 2\\n\"}",
                  10'000)),
              "validation_error");  // kernel without metric
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"model\", \"measurements\": \"m\", "
                  "\"archive\": \"/tmp/x.arch\"}",
                  10'000)),
              "validation_error");  // mutually exclusive sources
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"model\", \"pretrain_noise\": \"made_up\", "
                  "\"modeler\": \"regression\", \"measurements\": \"" +
                      escaped(linear_measurements_text()) + "\"}",
                  10'000)),
              "validation_error");  // unknown noise family
}

TEST(Serve, PretrainNoiseSelectsSessionVariant) {
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    // The server default mix ("uniform") routes to the base session; any
    // other registered mix materializes a worker-local variant. Both must
    // serve the request, and for a regression-modeled task the report is
    // identical either way up to the config hash (the mix joins the
    // fingerprint by design, but only steers the classifier).
    const auto redact_hash = [](std::string report) {
        const std::string key = "\"config_hash\": \"";
        const std::size_t at = report.find(key);
        if (at == std::string::npos) return report;
        const std::size_t end = report.find('"', at + key.size());
        return report.replace(at + key.size(), end - (at + key.size()), "X");
    };
    const std::string base = client.request(
        "{\"verb\": \"model\", \"modeler\": \"regression\", \"timings\": false, "
        "\"pretrain_noise\": \"uniform\", \"measurements\": \"" +
            escaped(linear_measurements_text()) + "\"}",
        30'000);
    ASSERT_TRUE(is_ok(base)) << base;
    const std::string variant = client.request(
        "{\"verb\": \"model\", \"modeler\": \"regression\", \"timings\": false, "
        "\"pretrain_noise\": \"gaussian,lognormal\", \"measurements\": \"" +
            escaped(linear_measurements_text()) + "\"}",
        30'000);
    ASSERT_TRUE(is_ok(variant)) << variant;
    EXPECT_NE(report_of(base), report_of(variant));  // fingerprints differ
    EXPECT_EQ(redact_hash(report_of(base)), redact_hash(report_of(variant)));
}

// ---- backpressure, deadlines, drain ----------------------------------------

TEST(Serve, QueueFullYieldsOverloaded) {
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    config.queue_capacity = 1;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    // Pipeline four requests. The worker grabs one sleep, the 1-slot queue
    // holds one more, the rest must be refused immediately with
    // "overloaded" — correlated by id, since responses interleave.
    for (int id = 1; id <= 3; ++id) {
        client.send("{\"verb\": \"sleep\", \"ms\": 300, \"id\": " + std::to_string(id) + "}");
    }
    client.send("{\"verb\": \"ping\", \"id\": 4}");

    int ok = 0;
    int overloaded = 0;
    for (int i = 0; i < 4; ++i) {
        const std::string response = client.read_response(30'000);
        if (is_ok(response)) {
            ++ok;
        } else {
            EXPECT_EQ(error_code(response), "overloaded") << response;
            ++overloaded;
        }
    }
    // How many sleeps the worker manages to pop before the queue check is
    // scheduling-dependent, but at least one request must be refused and at
    // least the in-flight one must complete.
    EXPECT_GE(overloaded, 1);
    EXPECT_GE(ok, 1);
    EXPECT_EQ(ok + overloaded, 4);
    EXPECT_EQ(server.stats().rejected_overload, static_cast<std::uint64_t>(overloaded));
}

TEST(Serve, QueueWaitPastDeadlineIsRejected) {
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    config.default_deadline_ms = 100;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    // The sleep overrides its own deadline upward, so only the queued ping
    // — stuck behind 400 ms of work with a 100 ms default — expires.
    client.send("{\"verb\": \"sleep\", \"ms\": 400, \"id\": \"work\", \"deadline_ms\": 10000}");
    client.send("{\"verb\": \"ping\", \"id\": \"late\"}");

    int expired = 0;
    for (int i = 0; i < 2; ++i) {
        const std::string response = client.read_response(30'000);
        if (!is_ok(response)) {
            EXPECT_EQ(error_code(response), "deadline_exceeded") << response;
            EXPECT_NE(response.find("\"id\": \"late\""), std::string::npos) << response;
            ++expired;
        }
    }
    EXPECT_EQ(expired, 1);
    EXPECT_EQ(server.stats().rejected_deadline, 1u);
}

TEST(Serve, GracefulDrainFinishesInFlightWork) {
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    serve::Server server(config);
    const std::uint16_t port = server.bound_port();
    serve::Client client(port);

    client.send("{\"verb\": \"sleep\", \"ms\": 300, \"id\": \"inflight\"}");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.request_stop();  // what the SIGTERM handler calls

    // The in-flight request still completes and its response is flushed.
    const std::string response = client.read_response(30'000);
    EXPECT_TRUE(is_ok(response)) << response;
    EXPECT_NE(response.find("\"id\": \"inflight\""), std::string::npos);

    server.wait();
    EXPECT_TRUE(server.stopping());
    // The listener is gone: new connections are refused.
    EXPECT_THROW(serve::Client{port}, std::runtime_error);
}

TEST(Serve, ShutdownVerbDrains) {
    serve::Server server(fast_config());
    serve::Client client(server.bound_port());
    const std::string response = client.request("{\"verb\": \"shutdown\"}", 10'000);
    EXPECT_TRUE(is_ok(response)) << response;
    server.wait();  // must return: the verb triggered the drain
    EXPECT_TRUE(server.stopping());
}

// ---- determinism across workers and request order ---------------------------

TEST(Serve, ConcurrentClientsGetIdenticalReports) {
    // Noisy data + the DNN path, served by two workers with their own
    // sessions: the post-pretrain snapshot/restore must make every response
    // byte-identical no matter which worker answers or in what order, and
    // the two sessions warming the same cache dir concurrently exercises
    // the atomic pretrain store.
    const std::string cache_dir = ::testing::TempDir() + "/xpdnn_serve_cache_" +
                                  std::to_string(::getpid());
    std::filesystem::create_directories(cache_dir);
    ::setenv("XPDNN_CACHE_DIR", cache_dir.c_str(), 1);

    xpcore::Rng rng(3);
    noise::Injector injector(0.10, rng);
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        set.add({p}, injector.repetitions(2.0 + 3.0 * p, 5));
    }
    std::ostringstream text;
    measure::save_text(set, text);

    serve::ServerConfig config;
    config.workers = 2;
    config.options.net_profile = "test-tiny";
    config.options.net.hidden = {32, 16};
    config.options.net.pretrain_samples_per_class = 40;
    config.options.net.pretrain_epochs = 1;
    config.options.net.adapt_samples_per_class = 40;
    serve::Server server(config);

    const std::string request = "{\"verb\": \"model\", \"modeler\": \"dnn\", "
                                "\"timings\": false, \"measurements\": \"" +
                                escaped(text.str()) + "\"}";
    std::vector<std::string> responses(4);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < responses.size(); ++i) {
        clients.emplace_back([&, i] {
            serve::Client client(server.bound_port());
            responses[i] = client.request(request, 120'000);
        });
    }
    for (auto& thread : clients) thread.join();

    for (const std::string& response : responses) {
        ASSERT_TRUE(is_ok(response)) << response;
        EXPECT_EQ(response, responses.front());
    }

    ::unsetenv("XPDNN_CACHE_DIR");
    std::filesystem::remove_all(cache_dir);
}

// ---- CLI front ends ---------------------------------------------------------

TEST(Serve, CliRequestVerbTalksToDaemon) {
    serve::Server server(fast_config());
    std::vector<std::string> argv_strings = {
        "xpdnn", "request", "--port=" + std::to_string(server.bound_port()),
        "{\"verb\": \"ping\"}"};
    std::vector<const char*> argv;
    for (const auto& s : argv_strings) argv.push_back(s.c_str());
    std::ostringstream out, err;
    ASSERT_EQ(cli::run(static_cast<int>(argv.size()), argv.data(), out, err), 0)
        << err.str();
    EXPECT_NE(out.str().find("\"server\": \"xpdnnd\""), std::string::npos) << out.str();
}

TEST(Serve, CliServeVerbRunsAndDrains) {
    // --drain-after-ms exercises the daemon entry point (flag parsing,
    // listening banner, drain, stats line) without process signalling.
    std::vector<std::string> argv_strings = {"xpdnn",     "serve",
                                             "--port=0",  "--workers=1",
                                             "--no-warm", "--drain-after-ms=200"};
    std::vector<const char*> argv;
    for (const auto& s : argv_strings) argv.push_back(s.c_str());
    std::ostringstream out, err;
    ASSERT_EQ(cli::run(static_cast<int>(argv.size()), argv.data(), out, err), 0)
        << err.str();
    EXPECT_NE(out.str().find("xpdnnd listening on 127.0.0.1:"), std::string::npos);
    EXPECT_NE(out.str().find("xpdnnd drained:"), std::string::npos);
}

// ---- persistent report store ------------------------------------------------

serve::ServerConfig stored_config(const ServeScratchDir& scratch) {
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    config.store_dir = (scratch.path / "reports").string();
    return config;
}

/// The one blob file of a single-task store directory.
std::string only_blob(const std::string& dir) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("xpdnn_report_", 0) == 0 &&
            name.size() > 5 && name.substr(name.size() - 5) == ".blob") {
            return entry.path().string();
        }
    }
    return "";
}

TEST(Serve, PredictSurvivesRestartByteIdentically) {
    ServeScratchDir scratch;
    const std::vector<std::string> tasks = {"t1", "t2", "t3"};
    std::vector<std::string> reports, predictions;
    {
        serve::Server server(stored_config(scratch));
        serve::Client client(server.bound_port());
        for (const auto& task : tasks) {
            const std::string modeled =
                client.request(model_request(task, "regression"), 30'000);
            ASSERT_TRUE(is_ok(modeled)) << modeled;
            reports.push_back(report_of(modeled));
            const std::string predicted = client.request(
                "{\"verb\": \"predict\", \"task\": \"" + task + "\", \"point\": [128]}",
                10'000);
            ASSERT_TRUE(is_ok(predicted)) << predicted;
            predictions.push_back(predicted);
        }
        // The same drain SIGTERM takes (request_stop is the signal hook).
        server.stop();
    }

    // A fresh daemon over the same --store serves predict from the
    // write-through blobs, byte-identically — memory cache starts empty,
    // the re-parsed model evaluates to the same %.17g text.
    serve::Server restarted(stored_config(scratch));
    serve::Client client(restarted.bound_port());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const std::string predicted = client.request(
            "{\"verb\": \"predict\", \"task\": \"" + tasks[i] + "\", \"point\": [128]}",
            10'000);
        EXPECT_EQ(predicted, predictions[i]);
        // The store verb hands back the stored report bytes unchanged.
        const std::string fetched = client.request(
            "{\"verb\": \"store\", \"task\": \"" + tasks[i] + "\"}", 10'000);
        ASSERT_TRUE(is_ok(fetched)) << fetched;
        EXPECT_EQ(report_of(fetched), reports[i]);
    }
}

TEST(Serve, StoreVerbStatsEvictAndErrors) {
    ServeScratchDir scratch;
    serve::Server server(stored_config(scratch));
    serve::Client client(server.bound_port());

    ASSERT_TRUE(is_ok(client.request(model_request("lin", "regression"), 30'000)));
    const std::string stats = client.request("{\"verb\": \"store\"}", 10'000);
    ASSERT_TRUE(is_ok(stats)) << stats;
    EXPECT_NE(stats.find("\"entries\": 1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"puts\": 1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"put_failures\": 0"), std::string::npos) << stats;

    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"store\", \"task\": \"never-modeled\"}", 10'000)),
              "unknown_task");

    // Evicting to zero drops the blobs AND the memory cache: predict
    // misses afterwards instead of serving a zombie entry.
    const std::string evicted =
        client.request("{\"verb\": \"store\", \"evict\": 0}", 10'000);
    ASSERT_TRUE(is_ok(evicted)) << evicted;
    EXPECT_NE(evicted.find("\"evicted\": 1"), std::string::npos) << evicted;
    EXPECT_NE(evicted.find("\"entries\": 0"), std::string::npos) << evicted;
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"predict\", \"task\": \"lin\", \"point\": [128]}", 10'000)),
              "unknown_task");
}

TEST(Serve, StoreVerbWithoutStoreIsValidationError) {
    serve::Server server(fast_config());
    serve::Client client(server.bound_port());
    const std::string response = client.request("{\"verb\": \"store\"}", 10'000);
    EXPECT_EQ(error_code(response), "validation_error");
    EXPECT_NE(response.find("--store"), std::string::npos) << response;
}

TEST(Serve, CorruptStoreBlobIsRepairedNotFatal) {
    ServeScratchDir scratch;
    const serve::ServerConfig config = stored_config(scratch);
    {
        serve::Server server(config);
        serve::Client client(server.bound_port());
        ASSERT_TRUE(is_ok(client.request(model_request("lin", "regression"), 30'000)));
        server.stop();
    }
    const std::string blob = only_blob(config.store_dir);
    ASSERT_FALSE(blob.empty());
    {
        // Damage a payload byte; the header still decodes.
        std::fstream file(blob, std::ios::in | std::ios::out | std::ios::binary);
        file.seekp(80);
        file.put('\xff');
    }

    serve::Server restarted(config);
    serve::Client client(restarted.bound_port());
    // The corrupt blob is a quarantined miss, not a crash or a wrong answer.
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"predict\", \"task\": \"lin\", \"point\": [128]}", 10'000)),
              "unknown_task");
    EXPECT_TRUE(std::filesystem::exists(blob + ".corrupt"));
    // Re-modeling repairs the slot; predict works again.
    ASSERT_TRUE(is_ok(client.request(model_request("lin", "regression"), 30'000)));
    const std::string predicted = client.request(
        "{\"verb\": \"predict\", \"task\": \"lin\", \"point\": [128]}", 10'000);
    ASSERT_TRUE(is_ok(predicted)) << predicted;
    EXPECT_NE(predicted.find("\"prediction\": 386"), std::string::npos) << predicted;
}

TEST(Serve, StoreCapacityEvictsOldestAcrossRestart) {
    ServeScratchDir scratch;
    serve::ServerConfig config = stored_config(scratch);
    config.store_capacity = 1;
    {
        serve::Server server(config);
        serve::Client client(server.bound_port());
        ASSERT_TRUE(is_ok(client.request(model_request("old", "regression"), 30'000)));
        ASSERT_TRUE(is_ok(client.request(model_request("new", "regression"), 30'000)));
        server.stop();
    }
    serve::Server restarted(config);
    serve::Client client(restarted.bound_port());
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"predict\", \"task\": \"old\", \"point\": [128]}", 10'000)),
              "unknown_task");
    EXPECT_TRUE(is_ok(client.request(
        "{\"verb\": \"predict\", \"task\": \"new\", \"point\": [128]}", 10'000)));
}

TEST(Serve, CompactVerbMergesIngestSections) {
    ServeScratchDir scratch;
    const std::string arch = (scratch.path / "live.arch").string();
    const std::string batch = escaped(linear_measurements_text());
    serve::ServerConfig config = fast_config();
    config.workers = 1;
    serve::Server server(config);
    serve::Client client(server.bound_port());

    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(is_ok(client.request(
            "{\"verb\": \"ingest\", \"archive\": " + serve::json_quote(arch) +
                ", \"kernel\": \"lin\", \"metric\": \"time\", \"remodel\": false, "
                "\"measurements\": \"" + batch + "\"}",
            30'000)));
    }
    const std::string compacted = client.request(
        "{\"verb\": \"compact\", \"archive\": " + serve::json_quote(arch) + "}", 30'000);
    ASSERT_TRUE(is_ok(compacted)) << compacted;
    EXPECT_NE(compacted.find("\"sections_before\": 3"), std::string::npos) << compacted;
    EXPECT_NE(compacted.find("\"sections_after\": 1"), std::string::npos) << compacted;
    EXPECT_NE(compacted.find("\"measurements\": 15"), std::string::npos) << compacted;

    // The compacted archive still models (content untouched).
    ASSERT_TRUE(is_ok(client.request(
        "{\"verb\": \"model\", \"modeler\": \"regression\", \"timings\": false, "
        "\"archive\": " + serve::json_quote(arch) +
        ", \"kernel\": \"lin\", \"metric\": \"time\"}",
        30'000)));

    EXPECT_EQ(error_code(client.request("{\"verb\": \"compact\"}", 10'000)),
              "validation_error");
    EXPECT_EQ(error_code(client.request(
                  "{\"verb\": \"compact\", \"archive\": " +
                      serve::json_quote((scratch.path / "missing.arch").string()) + "}",
                  10'000)),
              "validation_error");
}

}  // namespace
