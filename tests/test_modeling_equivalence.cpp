// Equivalence suite for the unified modeling engine: running every path
// through modeling::Session must select byte-identical models to calling
// the concrete modelers directly, the way consumers did before the
// refactor (a fresh modeler per task, as in one CLI invocation per file).
//
// The 17-kernel case-study snapshot (Kripke + FASTEST + RELeARN) is the
// shared workload. The DNN-backed tests pre-warm the pretrain disk cache in
// a private XPDNN_CACHE_DIR so the session and every fresh direct modeler
// take the exact same load path (a cache hit draws nothing from the RNG).

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "adaptive/batch.hpp"
#include "adaptive/modeler.hpp"
#include "casestudy/casestudy.hpp"
#include "cli/commands.hpp"
#include "dnn/cache.hpp"
#include "dnn/modeler.hpp"
#include "measure/io.hpp"
#include "modeling/session.hpp"
#include "pmnf/serialize.hpp"
#include "regression/modeler.hpp"
#include "xpcore/rng.hpp"

namespace {

/// Points XPDNN_CACHE_DIR at a test-private directory for the lifetime of
/// one test (discovered tests run in separate processes, so tests never
/// race on a shared cache file).
struct CacheDirGuard {
    std::string dir;

    explicit CacheDirGuard(const std::string& tag) {
        dir = ::testing::TempDir() + "/xpdnn_equiv_" + tag + "_" +
              std::to_string(::getpid());
        std::filesystem::create_directories(dir);
        ::setenv("XPDNN_CACHE_DIR", dir.c_str(), 1);
    }
    ~CacheDirGuard() {
        ::unsetenv("XPDNN_CACHE_DIR");
        std::filesystem::remove_all(dir);
    }
};

modeling::Options equivalence_options() {
    modeling::Options options;
    options.seed = 7;
    options.net_profile = "equiv-tiny";
    options.net.hidden = {32, 16};
    options.net.pretrain_samples_per_class = 60;
    options.net.pretrain_epochs = 1;
    options.net.adapt_samples_per_class = 40;
    return options;  // use_cache stays on: both paths load the warmed cache
}

/// The repo's 17-kernel selection snapshot (EXPERIMENTS.md): Kripke's 6
/// and FASTEST's first 11 performance-relevant kernels, one deterministic
/// experiment set each.
std::vector<modeling::Session::Task> case_study_tasks() {
    std::vector<modeling::Session::Task> tasks;
    std::uint64_t seed = 1000;
    for (const auto& study : {casestudy::kripke(), casestudy::fastest()}) {
        std::size_t taken = 0;
        for (const auto* kernel : study.relevant_kernels()) {
            if (study.application == "FASTEST" && taken == 11) break;
            xpcore::Rng rng(seed++);
            tasks.push_back({study.application + "/" + kernel->name,
                             study.generate_modeling(*kernel, rng)});
            ++taken;
        }
    }
    return tasks;
}

void warm_cache(const modeling::Options& options) {
    dnn::DnnModeler modeler(options.net, options.seed);
    dnn::ensure_pretrained(modeler, options.seed);
}

TEST(Equivalence, CaseStudySnapshotHasSeventeenKernels) {
    EXPECT_EQ(case_study_tasks().size(), 17u);
}

TEST(Equivalence, RegressionMatchesDirectModeler) {
    const auto options = equivalence_options();
    modeling::Session session(options);
    const regression::RegressionModeler direct(options.regression);
    for (const auto& task : case_study_tasks()) {
        const auto expected = direct.model(task.experiments);
        const auto report = session.run("regression", task.experiments);
        EXPECT_EQ(pmnf::to_json(report.selected.model), pmnf::to_json(expected.model))
            << task.name;
        EXPECT_EQ(report.selected.cv_smape, expected.cv_smape) << task.name;
        EXPECT_EQ(report.selected.fit_smape, expected.fit_smape) << task.name;
    }
}

TEST(Equivalence, DnnMatchesFreshModelerPerKernel) {
    CacheDirGuard cache("dnn");
    const auto options = equivalence_options();
    warm_cache(options);
    modeling::Session session(options);
    for (const auto& task : case_study_tasks()) {
        dnn::DnnModeler direct(options.net, options.seed);
        ASSERT_TRUE(dnn::ensure_pretrained(direct, options.seed)) << task.name;
        direct.adapt(dnn::TaskProperties::from_experiment(task.experiments));
        const auto expected = direct.model(task.experiments);

        const auto report = session.run("dnn", task.experiments);
        EXPECT_EQ(pmnf::to_json(report.selected.model), pmnf::to_json(expected.model))
            << task.name;
        EXPECT_EQ(report.selected.cv_smape, expected.cv_smape) << task.name;
    }
}

TEST(Equivalence, AdaptiveMatchesFreshModelerPerKernel) {
    CacheDirGuard cache("adaptive");
    const auto options = equivalence_options();
    warm_cache(options);
    modeling::Session session(options);
    adaptive::AdaptiveModeler::Config config;
    config.thresholds = options.thresholds;
    config.domain_adaptation = options.domain_adaptation;
    config.noise_aware = options.noise_aware;
    config.regression = options.regression;
    for (const auto& task : case_study_tasks()) {
        dnn::DnnModeler classifier(options.net, options.seed);
        ASSERT_TRUE(dnn::ensure_pretrained(classifier, options.seed)) << task.name;
        adaptive::AdaptiveModeler direct(classifier, config);
        const auto expected = direct.model(task.experiments);

        const auto report = session.run("adaptive", task.experiments);
        EXPECT_EQ(pmnf::to_json(report.selected.model),
                  pmnf::to_json(expected.result.model))
            << task.name;
        EXPECT_EQ(report.selected.cv_smape, expected.result.cv_smape) << task.name;
        EXPECT_EQ(report.winner, expected.winner) << task.name;
        EXPECT_EQ(report.used_regression, expected.used_regression) << task.name;
        EXPECT_EQ(report.used_dnn, expected.used_dnn) << task.name;
        EXPECT_EQ(report.noise.estimate, expected.estimated_noise) << task.name;
    }
}

TEST(Equivalence, BatchMatchesDirectBatchModeler) {
    CacheDirGuard cache("batch");
    const auto options = equivalence_options();
    warm_cache(options);
    const auto tasks = case_study_tasks();

    modeling::Session session(options);
    const auto batch = session.run_batch(tasks);

    dnn::DnnModeler classifier(options.net, options.seed);
    ASSERT_TRUE(dnn::ensure_pretrained(classifier, options.seed));
    adaptive::AdaptiveModeler::Config adaptive_config;
    adaptive_config.thresholds = options.thresholds;
    adaptive_config.domain_adaptation = options.domain_adaptation;
    adaptive_config.noise_aware = options.noise_aware;
    adaptive_config.regression = options.regression;
    adaptive::BatchModeler direct(classifier, {adaptive_config, options.group_tolerance});
    const auto expected = direct.model(tasks);

    ASSERT_EQ(batch.reports.size(), expected.size());
    EXPECT_EQ(batch.adaptations, direct.adaptations_performed());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(batch.reports[i].task, expected[i].name);
        EXPECT_EQ(batch.reports[i].cluster, expected[i].cluster);
        EXPECT_EQ(pmnf::to_json(batch.reports[i].selected.model),
                  pmnf::to_json(expected[i].outcome.result.model))
            << expected[i].name;
        EXPECT_EQ(batch.reports[i].winner, expected[i].outcome.winner) << expected[i].name;
    }
}

// ---- CLI-level equivalence -------------------------------------------------
// The acceptance bar: a `xpdnn model` invocation selects the same model as
// the concrete modelers called directly on the same file.

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult run_cli(std::vector<std::string> argv_strings) {
    argv_strings.insert(argv_strings.begin(), "xpdnn");
    std::vector<const char*> argv;
    for (const auto& s : argv_strings) argv.push_back(s.c_str());
    std::ostringstream out, err;
    const int code = cli::run(static_cast<int>(argv.size()), argv.data(), out, err);
    return {code, out.str(), err.str()};
}

std::string first_line(const std::string& text) {
    return text.substr(0, text.find('\n'));
}

std::string write_kernel_measurements(const std::string& tag) {
    const auto study = casestudy::relearn();
    xpcore::Rng rng(4242);
    const auto set = study.generate_modeling(study.kernels.front(), rng);
    const std::string path = ::testing::TempDir() + "/xpdnn_equiv_cli_" + tag + "_" +
                             std::to_string(::getpid()) + ".txt";
    measure::save_text_file(set, path);
    return path;
}

TEST(Equivalence, CliRegressionMatchesDirectModeler) {
    const std::string path = write_kernel_measurements("reg");
    const auto result = run_cli({"model", path, "--modeler=regression", "--json"});
    ASSERT_EQ(result.code, 0) << result.err;

    const auto set = measure::load_text_file(path);
    const auto expected = regression::RegressionModeler().model(set);
    EXPECT_EQ(first_line(result.out), pmnf::to_json(expected.model));
}

TEST(Equivalence, CliAdaptiveMatchesDirectPipeline) {
    CacheDirGuard cache("cli");
    const std::string path = write_kernel_measurements("ada");
    const dnn::DnnConfig net = modeling::Options::profile("tiny");
    warm_cache([&] {
        modeling::Options options;
        options.net = net;
        return options;
    }());

    const auto result = run_cli({"model", path, "--modeler=adaptive", "--net=tiny", "--json"});
    ASSERT_EQ(result.code, 0) << result.err;

    const auto set = measure::load_text_file(path);
    dnn::DnnModeler classifier(net, 7);
    ASSERT_TRUE(dnn::ensure_pretrained(classifier, 7));
    adaptive::AdaptiveModeler direct(classifier, {{}, true, {}});
    EXPECT_EQ(first_line(result.out), pmnf::to_json(direct.model(set).result.model));
}

}  // namespace
