// Tests for the batch modeler with amortized domain adaptation.

#include <gtest/gtest.h>

#include "adaptive/batch.hpp"
#include "casestudy/casestudy.hpp"
#include "noise/injector.hpp"
#include "xpcore/rng.hpp"

namespace {

using namespace adaptive;

dnn::DnnConfig tiny_config() {
    dnn::DnnConfig config;
    config.hidden = {96, 48};
    config.pretrain_samples_per_class = 250;
    config.pretrain_epochs = 4;
    config.adapt_samples_per_class = 100;
    return config;
}

class BatchTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        dnn_ = new dnn::DnnModeler(tiny_config(), /*seed=*/61);
        dnn_->pretrain();
    }
    static void TearDownTestSuite() {
        delete dnn_;
        dnn_ = nullptr;
    }

    static BatchTask make_task(const std::string& name, double slope, double noise_level,
                               std::uint64_t seed) {
        xpcore::Rng rng(seed);
        noise::Injector injector(noise_level, rng);
        measure::ExperimentSet set({"p"});
        for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
            set.add({p}, injector.repetitions(2.0 + slope * p, 5));
        }
        return {name, std::move(set)};
    }

    static dnn::DnnModeler* dnn_;
};

dnn::DnnModeler* BatchTest::dnn_ = nullptr;

TEST_F(BatchTest, EmptyBatchIsEmpty) {
    BatchModeler modeler(*dnn_, {});
    EXPECT_TRUE(modeler.model({}).empty());
    EXPECT_EQ(modeler.adaptations_performed(), 0u);
}

TEST_F(BatchTest, ResultsComeBackInInputOrder) {
    std::vector<BatchTask> tasks;
    tasks.push_back(make_task("noisy", 2.0, 0.8, 1));   // high noise first
    tasks.push_back(make_task("calm", 3.0, 0.02, 2));   // calm second
    BatchModeler modeler(*dnn_, {});
    const auto results = modeler.model(tasks);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].name, "noisy");
    EXPECT_EQ(results[1].name, "calm");
}

TEST_F(BatchTest, SimilarNoiseSharesOneAdaptation) {
    std::vector<BatchTask> tasks;
    for (int i = 0; i < 4; ++i) {
        tasks.push_back(make_task("k" + std::to_string(i), 1.0 + i, 0.30, 10 + i));
    }
    BatchModeler::Config config;
    config.group_tolerance = 0.15;
    BatchModeler modeler(*dnn_, config);
    const auto results = modeler.model(tasks);
    EXPECT_EQ(modeler.adaptations_performed(), 1u);
    for (const auto& r : results) EXPECT_EQ(r.cluster, results[0].cluster);
}

TEST_F(BatchTest, DistinctNoiseLevelsSplitClusters) {
    std::vector<BatchTask> tasks;
    tasks.push_back(make_task("calm", 2.0, 0.02, 1));
    tasks.push_back(make_task("noisy", 2.0, 0.90, 2));
    BatchModeler::Config config;
    config.group_tolerance = 0.10;
    BatchModeler modeler(*dnn_, config);
    const auto results = modeler.model(tasks);
    EXPECT_EQ(modeler.adaptations_performed(), 2u);
    EXPECT_NE(results[0].cluster, results[1].cluster);
}

TEST_F(BatchTest, ZeroToleranceMatchesPaperBehavior) {
    std::vector<BatchTask> tasks;
    tasks.push_back(make_task("a", 1.0, 0.30, 1));
    tasks.push_back(make_task("b", 2.0, 0.35, 2));
    tasks.push_back(make_task("c", 3.0, 0.50, 3));
    BatchModeler::Config config;
    config.group_tolerance = 0.0;
    BatchModeler modeler(*dnn_, config);
    modeler.model(tasks);
    EXPECT_EQ(modeler.adaptations_performed(), 3u);
}

TEST_F(BatchTest, AdaptationOffSkipsRetraining) {
    std::vector<BatchTask> tasks;
    tasks.push_back(make_task("a", 1.0, 0.30, 1));
    BatchModeler::Config config;
    config.adaptive.domain_adaptation = false;
    BatchModeler modeler(*dnn_, config);
    modeler.model(tasks);
    EXPECT_EQ(modeler.adaptations_performed(), 0u);
}

TEST_F(BatchTest, ModelsAreAsGoodAsIndividualAdaptiveRuns) {
    // On calm data both paths reduce to the regression candidate, so the
    // batch result must match the plain adaptive modeler's model.
    std::vector<BatchTask> tasks;
    tasks.push_back(make_task("calm", 3.0, 0.02, 7));
    BatchModeler modeler(*dnn_, {});
    const auto batch_results = modeler.model(tasks);

    AdaptiveModeler reference(*dnn_, {});
    const auto direct = reference.model(tasks[0].experiments);
    EXPECT_EQ(batch_results[0].outcome.result.model.to_string(),
              direct.result.model.to_string());
}

TEST_F(BatchTest, KripkeKernelsClusterEfficiently) {
    // All Kripke kernels share one noise profile: far fewer adaptations
    // than kernels.
    const auto study = casestudy::kripke();
    xpcore::Rng rng(5);
    std::vector<BatchTask> tasks;
    for (const auto* kernel : study.relevant_kernels()) {
        tasks.push_back({kernel->name, study.generate_modeling(*kernel, rng)});
    }
    BatchModeler modeler(*dnn_, {});
    const auto results = modeler.model(tasks);
    EXPECT_EQ(results.size(), 6u);
    EXPECT_LT(modeler.adaptations_performed(), results.size());
}

}  // namespace
