// Tests for the versioned report JSON schema (modeling/report.hpp): byte
// round trips, structured parse diagnostics, the model extractor used by
// `xpdnn predict`, and the CLI golden path for `xpdnn model --report=json`.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli/commands.hpp"
#include "measure/io.hpp"
#include "modeling/report.hpp"
#include "noise/injector.hpp"
#include "pmnf/serialize.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"

namespace {

pmnf::Model linear_model() {
    pmnf::CompoundTerm term{3.0, {{0, {pmnf::Rational(1), 0}}}};
    return pmnf::Model(2.0, {term});
}

modeling::Report sample_report() {
    modeling::Report report;
    report.modeler = "adaptive";
    report.task = "kernel \"a\"\n";  // exercises string escaping
    report.config_hash = 0x9f2c0000000000ffull;
    report.noise = {0.07, 0.01, 0.55, 0.12, 0.09};
    report.winner = "dnn";
    report.used_regression = true;
    report.used_dnn = true;
    report.cluster = 2;
    report.has_model = true;
    report.selected = {linear_model(), 3.25, 1.5};
    report.alternatives.push_back({pmnf::Model::constant_model(4.5), 7.125, 6.0});
    report.timings = {0.25, 12.5, 13.0};
    return report;
}

TEST(ReportJson, RoundTripsByteExactly) {
    const auto report = sample_report();
    const std::string text = modeling::to_json(report);
    const auto parsed = modeling::report_from_json(text);
    EXPECT_EQ(modeling::to_json(parsed), text);

    EXPECT_EQ(parsed.version, modeling::kReportSchemaVersion);
    EXPECT_EQ(parsed.modeler, "adaptive");
    EXPECT_EQ(parsed.task, "kernel \"a\"\n");
    EXPECT_EQ(parsed.config_hash, 0x9f2c0000000000ffull);
    EXPECT_EQ(parsed.winner, "dnn");
    EXPECT_TRUE(parsed.used_regression);
    EXPECT_TRUE(parsed.used_dnn);
    EXPECT_EQ(parsed.cluster, 2u);
    EXPECT_TRUE(parsed.has_model);
    EXPECT_EQ(parsed.alternatives.size(), 1u);
    EXPECT_DOUBLE_EQ(parsed.noise.estimate, 0.07);
    EXPECT_DOUBLE_EQ(parsed.selected.cv_smape, 3.25);
    EXPECT_DOUBLE_EQ(parsed.timings.dnn_seconds, 12.5);
    EXPECT_EQ(pmnf::to_json(parsed.selected.model), pmnf::to_json(linear_model()));
}

TEST(ReportJson, DiagnosticReportRoundTrips) {
    modeling::Report report;
    report.modeler = "noise";
    report.noise = {0.3, 0.1, 0.5, 0.3, 0.3};
    const std::string text = modeling::to_json(report);
    const auto parsed = modeling::report_from_json(text);
    EXPECT_EQ(modeling::to_json(parsed), text);
    EXPECT_FALSE(parsed.has_model);
    EXPECT_TRUE(parsed.task.empty());  // empty task is omitted from the JSON
    EXPECT_EQ(text.find("\"task\""), std::string::npos);
}

TEST(ReportJson, SchemaKeyComesFirst) {
    const std::string text = modeling::to_json(sample_report());
    EXPECT_EQ(text.rfind("{\"schema\": \"xpdnn.report\"", 0), 0u);
}

TEST(ReportJson, ParseErrorsCarryLineAndColumn) {
    const std::string text =
        "{\"schema\": \"xpdnn.report\",\n \"version\": 1,\n \"bogus\": 3}";
    try {
        (void)modeling::report_from_json(text, "in-memory");
        FAIL() << "unknown key accepted";
    } catch (const xpcore::ParseError& e) {
        EXPECT_EQ(e.source(), "in-memory");
        EXPECT_EQ(e.line(), 3u);
        EXPECT_GT(e.column(), 0u);
        EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
    }
}

TEST(ReportJson, UnsupportedVersionIsRejected) {
    const std::string text = "{\"schema\": \"xpdnn.report\", \"version\": 3}";
    EXPECT_THROW((void)modeling::report_from_json(text), xpcore::ParseError);
}

TEST(ReportJson, Version1DocumentsStillParse) {
    // A v1 document has no family keys in the noise block; parsing fills
    // the uniform-family defaults, and re-serializing stays v1 (no family
    // block), so the byte round trip holds per version.
    const std::string text =
        "{\"schema\": \"xpdnn.report\", \"version\": 1, \"modeler\": \"noise\", "
        "\"config_hash\": \"0000000000000000\", "
        "\"noise\": {\"estimate\": 0.125, \"min\": 0.0625, \"max\": 0.5, \"mean\": 0.25, "
        "\"median\": 0.125}, "
        "\"selection\": {\"winner\": \"\", \"used_regression\": false, "
        "\"used_dnn\": false, \"cluster\": 0}, "
        "\"timings\": {\"regression_seconds\": 0, \"dnn_seconds\": 0, "
        "\"total_seconds\": 0}, \"alternatives\": []}";
    const auto parsed = modeling::report_from_json(text);
    EXPECT_EQ(parsed.version, 1);
    EXPECT_DOUBLE_EQ(parsed.noise.estimate, 0.125);
    EXPECT_EQ(parsed.noise.family, "uniform");
    EXPECT_DOUBLE_EQ(parsed.noise.family_level, 0.0);
    EXPECT_DOUBLE_EQ(parsed.noise.detection_score, 0.0);
    EXPECT_EQ(modeling::to_json(parsed), text);
}

TEST(ReportJson, Version2EmitsNoiseFamilyBlock) {
    auto report = sample_report();
    report.noise.family = "lognormal";
    report.noise.family_level = 0.11;
    report.noise.detection_score = 4.5;
    const std::string text = modeling::to_json(report);
    EXPECT_NE(text.find("\"family\": \"lognormal\""), std::string::npos);
    EXPECT_NE(text.find("\"level\": 0.11"), std::string::npos);
    EXPECT_NE(text.find("\"score\": 4.5"), std::string::npos);
    const auto parsed = modeling::report_from_json(text);
    EXPECT_EQ(parsed.noise.family, "lognormal");
    EXPECT_DOUBLE_EQ(parsed.noise.family_level, 0.11);
    EXPECT_DOUBLE_EQ(parsed.noise.detection_score, 4.5);
    EXPECT_EQ(modeling::to_json(parsed), text);
}

TEST(ReportJson, TruncatedDocumentIsRejected) {
    const std::string text = modeling::to_json(sample_report());
    for (std::size_t cut : {std::size_t{1}, text.size() / 2, text.size() - 1}) {
        EXPECT_THROW((void)modeling::report_from_json(text.substr(0, cut)),
                     xpcore::ParseError)
            << "cut at " << cut;
    }
}

TEST(ModelExtractor, AcceptsBareModelDocuments) {
    const auto model = modeling::model_from_json_document(pmnf::to_json(linear_model()));
    EXPECT_DOUBLE_EQ(model.evaluate({{10.0}}), 32.0);
}

TEST(ModelExtractor, AcceptsReportDocuments) {
    const auto model =
        modeling::model_from_json_document(modeling::to_json(sample_report()));
    EXPECT_DOUBLE_EQ(model.evaluate({{10.0}}), 32.0);
}

TEST(ModelExtractor, RejectsDiagnosticReports) {
    modeling::Report report;
    report.modeler = "noise";
    EXPECT_THROW((void)modeling::model_from_json_document(modeling::to_json(report)),
                 xpcore::ValidationError);
}

TEST(ModelExtractor, WrapsEmbeddedModelErrors) {
    // Structurally valid JSON (so the report parser extracts it) that the
    // pmnf reader rejects: the error must surface wrapped, with location.
    const std::string text =
        "{\"schema\": \"xpdnn.report\", \"version\": 1, "
        "\"model\": {\"cv_smape\": 1.0, \"fit_smape\": 1.0, \"pmnf\": {\"constant\": \"x\"}}}";
    try {
        (void)modeling::report_from_json(text);
        FAIL() << "corrupt embedded model accepted";
    } catch (const xpcore::ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("embedded model"), std::string::npos);
    }
}

TEST(ModelExtractor, GarbageIsAParseError) {
    EXPECT_THROW((void)modeling::model_from_json_document("not json at all"),
                 xpcore::ParseError);
    EXPECT_THROW((void)modeling::model_from_json_document(""), xpcore::ParseError);
}

// ---- CLI golden path -------------------------------------------------------

struct CliResult {
    int code;
    std::string out;
    std::string err;
};

CliResult run_cli(std::vector<std::string> argv_strings) {
    argv_strings.insert(argv_strings.begin(), "xpdnn");
    std::vector<const char*> argv;
    for (const auto& s : argv_strings) argv.push_back(s.c_str());
    std::ostringstream out, err;
    const int code = cli::run(static_cast<int>(argv.size()), argv.data(), out, err);
    return {code, out.str(), err.str()};
}

std::string write_linear_measurements() {
    const std::string path = ::testing::TempDir() + "/xpdnn_report_linear_" +
                             std::to_string(::getpid()) + ".txt";
    xpcore::Rng rng(1);
    noise::Injector injector(0.05, rng);
    measure::ExperimentSet set({"p"});
    for (double p : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        set.add({p}, injector.repetitions(2.0 + 3.0 * p, 5));
    }
    measure::save_text_file(set, path);
    return path;
}

std::string first_line(const std::string& text) {
    return text.substr(0, text.find('\n'));
}

TEST(ReportCli, ModelReportJsonIsGoldenRoundTrip) {
    const std::string path = write_linear_measurements();
    const auto result = run_cli({"model", path, "--modeler=regression", "--report=json"});
    ASSERT_EQ(result.code, 0) << result.err;
    const std::string line = first_line(result.out);

    const auto report = modeling::report_from_json(line, "<cli>");
    EXPECT_EQ(modeling::to_json(report), line);  // parse -> serialize is the identity
    EXPECT_EQ(report.modeler, "regression");
    EXPECT_EQ(report.winner, "regression");
    EXPECT_TRUE(report.has_model);
    EXPECT_NE(report.config_hash, 0u);
    EXPECT_GT(report.timings.total_seconds, 0.0);

    // The report's embedded model is byte-identical to the --json output.
    const auto json_result = run_cli({"model", path, "--modeler=regression", "--json"});
    ASSERT_EQ(json_result.code, 0) << json_result.err;
    EXPECT_EQ(pmnf::to_json(report.selected.model), first_line(json_result.out));
}

TEST(ReportCli, NoiseReportJsonIsDiagnosticOnly) {
    const auto result = run_cli({"noise", write_linear_measurements(), "--report=json"});
    ASSERT_EQ(result.code, 0) << result.err;
    const auto report = modeling::report_from_json(first_line(result.out), "<cli>");
    EXPECT_EQ(report.modeler, "noise");
    EXPECT_FALSE(report.has_model);
    EXPECT_GT(report.noise.estimate, 0.0);
    EXPECT_THROW((void)modeling::model_from_json_document(first_line(result.out)),
                 xpcore::ValidationError);
}

TEST(ReportCli, PredictAcceptsReportDocuments) {
    const std::string data = write_linear_measurements();
    const auto modeled = run_cli({"model", data, "--modeler=regression", "--report=json"});
    ASSERT_EQ(modeled.code, 0) << modeled.err;
    const std::string report_path = ::testing::TempDir() + "/xpdnn_report_doc_" +
                                    std::to_string(::getpid()) + ".json";
    std::ofstream(report_path) << first_line(modeled.out);

    const auto predicted = run_cli({"predict", report_path, "10"});
    ASSERT_EQ(predicted.code, 0) << predicted.err;
    EXPECT_NEAR(std::stod(predicted.out), 32.0, 5.0);

    // Bare model document and report document predict identically.
    const auto json = run_cli({"model", data, "--modeler=regression", "--json"});
    ASSERT_EQ(json.code, 0) << json.err;
    const std::string model_path = ::testing::TempDir() + "/xpdnn_report_model_" +
                                   std::to_string(::getpid()) + ".json";
    std::ofstream(model_path) << first_line(json.out);
    const auto predicted_bare = run_cli({"predict", model_path, "10"});
    ASSERT_EQ(predicted_bare.code, 0) << predicted_bare.err;
    EXPECT_EQ(predicted.out, predicted_bare.out);
}

}  // namespace
