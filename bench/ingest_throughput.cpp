/// \file ingest_throughput.cpp
/// Million-measurement ingestion benchmark: generates a synthetic
/// measurement campaign, writes it as a text archive and — through the
/// streaming append path — as an "xpdnn.arch" binary, and pins the
/// text-vs-binary load rates plus the append throughput into
/// BENCH_ingest.json (same machine-provenance block as BENCH_nn.json).
///
/// Gate (exit 1 on failure): the verified zero-copy open of the binary
/// (all measurements addressable, integrity checked) must be >= 10x faster
/// than parsing the text, and the binary round trip must re-serialize
/// byte-identically.
///
/// Options:
///   --smoke        small workload for CI (~60k values; gate still checked)
///   --json=FILE    output path (default BENCH_ingest.json)
///   --kernels=N --points=N --reps=N --params=N --repeats=R --seed=S
///   --min-speedup=X   override the 10x gate

#include <cstdio>
#include <string>

#include "measure/ingest_bench.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/error.hpp"

int main(int argc, char** argv) try {
    const xpcore::CliArgs args(argc, argv);
    const bool smoke = args.get_bool("smoke", false);

    measure::IngestBenchConfig config;
    if (smoke) {
        // ~60k values: the same code path at CI scale.
        config.kernels = 20;
        config.points_per_kernel = 150;
        config.repetitions = 20;
    }
    config.kernels = static_cast<std::size_t>(
        args.get_int("kernels", static_cast<long>(config.kernels)));
    config.points_per_kernel = static_cast<std::size_t>(
        args.get_int("points", static_cast<long>(config.points_per_kernel)));
    config.repetitions = static_cast<std::size_t>(
        args.get_int("reps", static_cast<long>(config.repetitions)));
    config.parameters = static_cast<std::size_t>(
        args.get_int("params", static_cast<long>(config.parameters)));
    config.repeats =
        static_cast<std::size_t>(args.get_int("repeats", static_cast<long>(config.repeats)));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
    config.min_speedup = args.get_double("min-speedup", config.min_speedup);

    std::printf("== ingest_throughput ==\n");
    std::printf("workload: %zu kernels x %zu points x %zu reps = %zu values\n",
                config.kernels, config.points_per_kernel, config.repetitions,
                config.kernels * config.points_per_kernel * config.repetitions);

    const measure::IngestBenchResult result = measure::run_ingest_bench(config);

    std::printf("bytes: text %.1f MiB, binary %.1f MiB\n",
                static_cast<double>(result.text_bytes) / (1024.0 * 1024.0),
                static_cast<double>(result.binary_bytes) / (1024.0 * 1024.0));
    std::printf("append: %zu commits, %.3fs (%.0f values/s streaming)\n", config.kernels,
                result.append_seconds, result.append_values_per_second);
    std::printf("load: text %.4fs, binary open+verify %.4fs (materialize %.4fs, raw mmap "
                "%.6fs) -> %.1fx (gate >= %.1fx)\n",
                result.text_load_seconds, result.binary_load_seconds,
                result.materialize_seconds, result.mmap_open_seconds, result.speedup(),
                result.min_speedup);
    std::printf("parity: %s\n", result.parity ? "byte-identical" : "MISMATCH");

    const std::string json_path = args.get("json", "BENCH_ingest.json");
    measure::write_ingest_bench_json(config, result, json_path);
    std::printf("wrote %s\n", json_path.c_str());

    if (!result.ok()) {
        std::fprintf(stderr, "ingest_throughput: acceptance gate FAILED\n");
        return 1;
    }
    return 0;
} catch (const xpcore::Error& error) {
    std::fprintf(stderr, "ingest_throughput: %s\n", error.what());
    return 2;
}
