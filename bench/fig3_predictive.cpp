/// \file fig3_predictive.cpp
/// Regenerates Fig. 3(d-f) of the paper: predictive power — the median
/// relative prediction error (%) at the four extrapolation points P+_1..4
/// that lie beyond the measured range — for the regression and adaptive
/// modelers over m = 1, 2, 3 and noise levels 2-100%.
///
/// Options: --functions=N, --params=M, --seed=S, --paper-scale,
/// --noise-family=F (family injected into every cell's tasks),
/// --pretrain-noise=F1,F2,... (family mix the network pretrains on).

#include <cstdio>
#include <fstream>
#include <string>

#include <filesystem>

#include "dnn/cache.hpp"
#include "eval/runner.hpp"
#include "modeling/session.hpp"
#include "noise/model.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"
#include "xpcore/timer.hpp"

namespace {

/// Optional machine-readable output next to the console table.
void append_csv(const std::string& path, std::size_t parameters,
                const std::vector<eval::CellOutcome>& cells) {
    if (path.empty()) return;
    std::ofstream csv(path, std::ios::app);
    if (!csv) {
        std::fprintf(stderr, "fig3_predictive: cannot open %s\n", path.c_str());
        return;
    }
    if (csv.tellp() == 0) csv << "parameters,noise,modeler,eval_point,median_error_pct\n";
    for (const auto& cell : cells) {
        for (std::size_t k = 0; k < 4; ++k) {
            csv << parameters << ',' << cell.noise << ",regression,P" << (k + 1) << "+,"
                << cell.regression.median_error(k) << '\n';
            csv << parameters << ',' << cell.noise << ",adaptive,P" << (k + 1) << "+,"
                << cell.adaptive.median_error(k) << '\n';
        }
    }
}

void run_for_parameters(modeling::Session& session, std::size_t parameters,
                        std::size_t functions, std::uint64_t seed,
                        const std::string& noise_family, const std::string& csv_path) {
    eval::EvalConfig config;
    config.parameters = parameters;
    config.functions_per_cell = functions;
    config.seed = seed + parameters;
    config.noise_family = noise_family;

    xpcore::WallTimer timer;
    const auto cells = eval::run_synthetic_evaluation(session, config);

    std::printf("\nFig. 3(%c): median relative error %% at P+_1..P+_4, %zu parameter%s "
                "(%zu functions/cell, %.1fs)\n",
                static_cast<char>('d' + parameters - 1), parameters, parameters > 1 ? "s" : "",
                functions, timer.seconds());
    xpcore::Table table({"noise %", "reg P1+", "reg P2+", "reg P3+", "reg P4+", "ada P1+",
                         "ada P2+", "ada P3+", "ada P4+", "P4+ ci(+-%)"});
    xpcore::Rng ci_rng(seed);
    for (const auto& cell : cells) {
        const auto ci = xpcore::bootstrap_median_ci(cell.adaptive.errors[3], 0.99, 300, ci_rng);
        std::vector<std::string> row = {xpcore::Table::num(cell.noise * 100, 0)};
        for (std::size_t k = 0; k < 4; ++k) {
            row.push_back(xpcore::Table::num(cell.regression.median_error(k), 2));
        }
        for (std::size_t k = 0; k < 4; ++k) {
            row.push_back(xpcore::Table::num(cell.adaptive.median_error(k), 2));
        }
        row.push_back(xpcore::Table::num((ci.upper - ci.lower) / 2.0, 2));
        table.add_row(std::move(row));
    }
    table.print();
    append_csv(csv_path, parameters, cells);
}

}  // namespace

int main(int argc, char** argv) try {
    const xpcore::CliArgs args(argc, argv);
    const bool paper_scale = args.get_bool("paper-scale", false);
    const auto functions =
        static_cast<std::size_t>(args.get_int("functions", paper_scale ? 100000 : 30));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    const std::string noise_family = args.get("noise-family", "uniform");
    noise::parse_family_list(noise_family, "--noise-family");  // fail fast on typos

    std::printf("== Fig. 3(d-f): predictive power, regression vs. adaptive ==\n");
    std::printf("paper expectation: errors < 2%% at low noise; the adaptive modeler roughly\n");
    std::printf("halves the P4+ error at high noise (e.g. m=2, n=100%%: 54.6%% -> 28.1%%).\n");

    modeling::Options options;
    options.net_profile = paper_scale ? "paper" : "fast";
    options.net = modeling::Options::profile(options.net_profile);
    if (args.has("pretrain-noise")) {
        options.net.pretrain_noise_families =
            noise::parse_family_list(args.get("pretrain-noise", ""), "--pretrain-noise");
    }
    if (noise_family != "uniform" || args.has("pretrain-noise")) {
        std::string mix;
        for (const auto& family : options.net.pretrain_noise_families) {
            if (!mix.empty()) mix += ",";
            mix += family;
        }
        std::printf("noise: injecting '%s', pretraining on '%s'\n", noise_family.c_str(),
                    mix.c_str());
    }
    modeling::Session session(options);
    const bool cached = std::filesystem::exists(
        dnn::pretrained_cache_path(options.net, options.seed));
    session.classifier();
    std::printf("pretrained network: %s\n", cached ? "loaded from cache" : "trained");

    const std::string csv_path = args.get("csv", "");
    if (args.has("params")) {
        run_for_parameters(session, static_cast<std::size_t>(args.get_int("params", 1)),
                           functions, seed, noise_family, csv_path);
    } else {
        for (std::size_t m = 1; m <= 3; ++m) {
            const std::size_t cell_functions = (m == 3 && !args.has("functions") && !paper_scale)
                                                   ? functions / 2
                                                   : functions;
            run_for_parameters(session, m, cell_functions, seed, noise_family, csv_path);
        }
    }
    return 0;
} catch (const xpcore::Error& error) {
    std::fprintf(stderr, "fig3_predictive: %s\n", error.what());
    return 2;
}
