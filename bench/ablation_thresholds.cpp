/// \file ablation_thresholds.cpp
/// Ablation for the adaptive modeler's switching threshold (Sec. IV-A):
/// reruns the synthetic evaluation with a sweep of thresholds and reports
/// accuracy/error per threshold, exposing the intersection of the two
/// accuracy curves that the default ThresholdPolicy is calibrated from
/// (DESIGN.md). Also ablates domain adaptation itself (on/off).
///
/// Options: --functions=N, --params=M, --seed=S.

#include <cstdio>

#include "eval/runner.hpp"
#include "modeling/session.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/table.hpp"

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto functions = static_cast<std::size_t>(args.get_int("functions", 25));
    const auto parameters = static_cast<std::size_t>(args.get_int("params", 2));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    std::printf("== Ablation: adaptive switching threshold (m = %zu) ==\n\n", parameters);

    modeling::Session session(modeling::Options{});
    session.classifier();  // materialize once; each sweep restores this state

    xpcore::Table table({"threshold", "noise %", "acc<=1/2 reg", "acc<=1/2 ada", "P4+ reg %",
                         "P4+ ada %"});
    for (double threshold : {0.0, 0.25, 0.50, 0.80, 2.00}) {
        eval::EvalConfig config;
        config.parameters = parameters;
        config.functions_per_cell = functions;
        config.noise_levels = {0.10, 0.50, 1.00};
        config.seed = seed;  // identical tasks across thresholds
        config.thresholds.one_parameter = threshold;
        config.thresholds.two_parameters = threshold;
        config.thresholds.three_or_more = threshold;

        const auto cells = eval::run_synthetic_evaluation(session, config);
        for (const auto& cell : cells) {
            table.add_row({xpcore::Table::num(threshold, 2),
                           xpcore::Table::num(cell.noise * 100, 0),
                           xpcore::Table::num(cell.regression.accuracy(0.5) * 100, 1),
                           xpcore::Table::num(cell.adaptive.accuracy(0.5) * 100, 1),
                           xpcore::Table::num(cell.regression.median_error(3), 1),
                           xpcore::Table::num(cell.adaptive.median_error(3), 1)});
        }
    }
    table.print();
    std::printf("\nreading guide: threshold 0 = DNN only, threshold 2 = regression always\n"
                "competes. The default policy picks the crossover of the two curves.\n");
    return 0;
}
