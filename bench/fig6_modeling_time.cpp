/// \file fig6_modeling_time.cpp
/// Regenerates Fig. 6 of the paper: the wall-clock time both modelers need
/// to model the main kernels of each case study. Absolute seconds are
/// hardware-dependent; the paper's claim is the overhead *ratio* — the
/// adaptive modeler is ~54-65x slower because it retrains the DNN per
/// modeling task (domain adaptation), and that dominates all other costs.
///
/// All timings are read from the modeling Reports the session produces,
/// not re-measured around the calls.
///
/// Options: --seed=S, --paper-scale.

#include <cstdio>

#include "casestudy/casestudy.hpp"
#include "modeling/session.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/table.hpp"
#include "xpcore/thread_pool.hpp"

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
    const bool paper_scale = args.get_bool("paper-scale", false);

    std::printf("== Fig. 6: modeling time, regression vs. adaptive ==\n\n");

    modeling::Options options;
    options.net_profile = paper_scale ? "paper" : "fast";
    options.net = modeling::Options::profile(options.net_profile);
    modeling::Session session(options);
    session.classifier();  // materialize up front so timings exclude pretraining

    xpcore::Table table({"application", "kernels", "regression s", "adaptive s", "ratio",
                         "paper ratio"});
    const char* paper_ratio[] = {"~65x", "~54x", "~64x"};
    std::size_t index = 0;
    xpcore::Rng rng(seed);
    for (const auto& study : casestudy::all_case_studies()) {
        double regression_seconds = 0.0;
        double adaptive_seconds = 0.0;
        const auto kernels = study.relevant_kernels();
        for (const auto* kernel : kernels) {
            const auto experiments = study.generate_modeling(*kernel, rng);

            regression_seconds +=
                session.run("regression", experiments).timings.total_seconds;

            // The adaptive path re-runs domain adaptation per kernel, just
            // like the paper's per-kernel modeling workflow.
            adaptive_seconds += session.run("adaptive", experiments).timings.total_seconds;
        }
        const double ratio = regression_seconds > 0 ? adaptive_seconds / regression_seconds : 0;
        table.add_row({study.application, std::to_string(kernels.size()),
                       xpcore::Table::num(regression_seconds, 3),
                       xpcore::Table::num(adaptive_seconds, 2),
                       xpcore::Table::num(ratio, 1) + "x", paper_ratio[index]});
        ++index;
    }
    table.print();
    std::printf("\nexpected shape: the adaptive modeler is one to two orders of magnitude\n"
                "slower; retraining dominates, so the number of kernels matters little.\n"
                "(paper: Kripke 61.99s total, RELeARN 85.66s on their hardware)\n");

    // Extension: batch modeling clusters kernels by noise level and adapts
    // once per cluster instead of once per kernel (Session::run_batch).
    std::printf("\n-- extension: amortized adaptation via Session::run_batch --\n\n");
    xpcore::Table batch_table(
        {"application", "kernels", "adaptations", "batch s", "per-kernel s", "saving"});
    xpcore::Rng batch_rng(seed);
    for (const auto& study : casestudy::all_case_studies()) {
        std::vector<modeling::Session::Task> tasks;
        for (const auto* kernel : study.relevant_kernels()) {
            tasks.push_back({kernel->name, study.generate_modeling(*kernel, batch_rng)});
        }
        const auto batch = session.run_batch(tasks);
        // 0 tolerance = the paper's one-adaptation-per-kernel behavior.
        const auto per_kernel = session.run_batch(tasks, 0.0);

        batch_table.add_row(
            {study.application, std::to_string(tasks.size()),
             std::to_string(batch.adaptations), xpcore::Table::num(batch.total_seconds, 2),
             xpcore::Table::num(per_kernel.total_seconds, 2),
             xpcore::Table::num((1.0 - batch.total_seconds / per_kernel.total_seconds) * 100,
                                0) +
                 "%"});
    }
    batch_table.print();

    // Before/after: the same end-to-end adaptive modeling runs with the
    // parallel compute layer disabled (the seed's serial behavior) and
    // enabled, so the threading speedup is measured, not asserted.
    std::printf("\n-- threading before/after: serial vs %zu pool workers --\n\n",
                xpcore::ThreadPool::global().size());
    xpcore::Table thread_table({"application", "serial s", "parallel s", "speedup"});
    xpcore::Rng serial_rng(seed), parallel_rng(seed);
    for (const auto& study : casestudy::all_case_studies()) {
        double serial_seconds = 0.0;
        {
            xpcore::SerialGuard guard;
            for (const auto* kernel : study.relevant_kernels()) {
                const auto experiments = study.generate_modeling(*kernel, serial_rng);
                serial_seconds += session.run("adaptive", experiments).timings.total_seconds;
            }
        }
        double parallel_seconds = 0.0;
        for (const auto* kernel : study.relevant_kernels()) {
            const auto experiments = study.generate_modeling(*kernel, parallel_rng);
            parallel_seconds += session.run("adaptive", experiments).timings.total_seconds;
        }
        thread_table.add_row(
            {study.application, xpcore::Table::num(serial_seconds, 2),
             xpcore::Table::num(parallel_seconds, 2),
             xpcore::Table::num(parallel_seconds > 0 ? serial_seconds / parallel_seconds : 0, 2) +
                 "x"});
    }
    thread_table.print();
    std::printf("\n(identical models either way: the parallel kernels partition rows only\n"
                "and keep every accumulation order; see tests/test_determinism.cpp)\n");
    return 0;
}
