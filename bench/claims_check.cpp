/// \file claims_check.cpp
/// Automated verification of the paper's qualitative claims.
///
/// EXPERIMENTS.md lists, per figure, the *shape* this reproduction must
/// show (who wins, roughly by how much, where). This harness re-runs
/// reduced versions of those experiments and prints PASS/FAIL per claim,
/// exiting non-zero if any hard claim fails — a regression gate for the
/// whole reproduction.
///
/// Options: --functions=N (default 30), --seed=S.

#include <cmath>
#include <cstdio>

#include "casestudy/casestudy.hpp"
#include "eval/runner.hpp"
#include "measure/sequences.hpp"
#include "modeling/session.hpp"
#include "noise/estimator.hpp"
#include "noise/injector.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/metrics.hpp"
#include "xpcore/stats.hpp"

namespace {

int failures = 0;

void check(bool passed, const char* claim, const std::string& detail) {
    std::printf("[%s] %s (%s)\n", passed ? "PASS" : "FAIL", claim, detail.c_str());
    if (!passed) ++failures;
}

std::string pct2(double a, double b) {
    char buf[80];
    std::snprintf(buf, sizeof(buf), "%.1f%% vs %.1f%%", a, b);
    return buf;
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto functions = static_cast<std::size_t>(args.get_int("functions", 30));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    std::printf("== claims check: qualitative reproduction targets ==\n\n");

    modeling::Session session(modeling::Options{});
    session.classifier();

    // ---- Fig. 3, m = 1 ----
    {
        eval::EvalConfig config;
        config.parameters = 1;
        config.noise_levels = {0.02, 0.10, 0.75, 1.00};
        config.functions_per_cell = functions;
        config.seed = seed + 1;
        auto cells = eval::run_synthetic_evaluation(session, config);

        // Pool the two high-noise cells: single-seed 30-task cells are too
        // small to pin down the gain margin, the pooled direction is stable.
        eval::CellOutcome high = std::move(cells[2]);
        for (std::size_t k = 0; k < 4; ++k) {
            high.regression.errors[k].insert(high.regression.errors[k].end(),
                                             cells[3].regression.errors[k].begin(),
                                             cells[3].regression.errors[k].end());
            high.adaptive.errors[k].insert(high.adaptive.errors[k].end(),
                                           cells[3].adaptive.errors[k].begin(),
                                           cells[3].adaptive.errors[k].end());
        }
        high.regression.lead_distances.insert(high.regression.lead_distances.end(),
                                              cells[3].regression.lead_distances.begin(),
                                              cells[3].regression.lead_distances.end());
        high.adaptive.lead_distances.insert(high.adaptive.lead_distances.end(),
                                            cells[3].adaptive.lead_distances.begin(),
                                            cells[3].adaptive.lead_distances.end());
        cells[2] = std::move(high);

        check(cells[0].regression.accuracy(0.25) >= 0.90 &&
                  cells[0].adaptive.accuracy(0.25) >= 0.90,
              "fig3a: both modelers >=90% (d<=1/4) at n=2%",
              pct2(cells[0].regression.accuracy(0.25) * 100,
                   cells[0].adaptive.accuracy(0.25) * 100));
        check(cells[1].regression.accuracy(0.5) >= 0.85 &&
                  cells[1].adaptive.accuracy(0.5) >= 0.85,
              "fig3a: both modelers >=85% (d<=1/2) at n=10%",
              pct2(cells[1].regression.accuracy(0.5) * 100,
                   cells[1].adaptive.accuracy(0.5) * 100));
        check(cells[2].adaptive.accuracy(0.25) >= cells[2].regression.accuracy(0.25) - 0.02,
              "fig3a: adaptive >= regression (d<=1/4) at n in {75,100}%",
              pct2(cells[2].adaptive.accuracy(0.25) * 100,
                   cells[2].regression.accuracy(0.25) * 100));
        check(cells[2].adaptive.accuracy(0.5) >= cells[2].regression.accuracy(0.5),
              "fig3a: adaptive >= regression (d<=1/2) at n in {75,100}%",
              pct2(cells[2].adaptive.accuracy(0.5) * 100,
                   cells[2].regression.accuracy(0.5) * 100));
        check(cells[0].adaptive.median_error(3) <= 3.0,
              "fig3d: adaptive P4+ error <= 3% at n=2%",
              std::to_string(cells[0].adaptive.median_error(3)) + "%");
        check(cells[2].adaptive.median_error(3) <= cells[2].regression.median_error(3) * 1.10,
              "fig3d: adaptive P4+ error not worse than regression*1.1 at high noise",
              pct2(cells[2].adaptive.median_error(3), cells[2].regression.median_error(3)));
        // Error grows with extrapolation distance.
        check(cells[2].regression.median_error(0) <= cells[2].regression.median_error(3),
              "fig3d: P1+ error <= P4+ error (regression, high noise)",
              pct2(cells[2].regression.median_error(0), cells[2].regression.median_error(3)));
    }

    // ---- Sec. IV-B: rrd estimator ----
    {
        xpcore::Rng rng(seed + 2);
        std::vector<double> errors;
        for (double level : {0.05, 0.20, 0.50, 1.00}) {
            for (int trial = 0; trial < 10; ++trial) {
                measure::ExperimentSet set({"p"});
                noise::Injector injector(level, rng);
                for (int p = 1; p <= 25; ++p) {
                    set.add({static_cast<double>(p)}, injector.repetitions(4.0 + p, 5));
                }
                errors.push_back(std::abs(noise::estimate_noise(set) - level) / level * 100.0);
            }
        }
        const double mean_error = xpcore::mean(errors);
        check(mean_error <= 10.0, "sec4b: rrd mean estimation error <= 10% (paper: 4.93%)",
              std::to_string(mean_error) + "%");
    }

    // ---- Fig. 4 / Fig. 5: case studies ----
    {
        xpcore::Rng rng(seed + 3);

        double gains[3] = {0, 0, 0};
        std::size_t index = 0;
        for (const auto& study : casestudy::all_case_studies()) {
            std::vector<double> reg_errors, ada_errors;
            for (const auto* kernel : study.relevant_kernels()) {
                const auto set = study.generate_modeling(*kernel, rng);
                const double truth = kernel->truth.evaluate(study.evaluation_point);
                reg_errors.push_back(xpcore::relative_error_pct(
                    session.run("regression", set).selected.model.evaluate(
                        study.evaluation_point),
                    truth));
                ada_errors.push_back(xpcore::relative_error_pct(
                    session.run("adaptive", set).selected.model.evaluate(
                        study.evaluation_point),
                    truth));
            }
            gains[index] = xpcore::median(reg_errors) - xpcore::median(ada_errors);
            ++index;
        }
        check(gains[1] > gains[2] + 1.0,
              "fig4: FASTEST (noisiest) gains more than RELeARN (calm)",
              std::to_string(gains[1]) + "pp vs " + std::to_string(gains[2]) + "pp");
        check(std::abs(gains[2]) < 1.0, "fig4: RELeARN shows (almost) no difference",
              std::to_string(gains[2]) + "pp");

        // Fig. 5 noise statistics match the published campaign profiles.
        xpcore::Rng noise_rng(seed + 4);
        const auto kripke_set = casestudy::kripke().generate(
            casestudy::kripke().kernels.front(), casestudy::kripke().analysis_points, noise_rng);
        const double kripke_mean = noise::analyze_noise(kripke_set).mean;
        check(kripke_mean > 0.10 && kripke_mean < 0.25,
              "fig5: Kripke mean per-point noise near 17.44%",
              std::to_string(kripke_mean * 100) + "%");
        const auto relearn_set = casestudy::relearn().generate(
            casestudy::relearn().kernels.front(), casestudy::relearn().analysis_points,
            noise_rng);
        check(noise::estimate_noise(relearn_set) < 0.02, "fig5: RELeARN practically noise-free",
              std::to_string(noise::estimate_noise(relearn_set) * 100) + "%");
    }

    // ---- Fig. 6: overhead dominated by retraining ----
    {
        xpcore::Rng rng(seed + 5);
        const auto study = casestudy::relearn();
        const auto set = study.generate_modeling(study.kernels.front(), rng);

        // Timings read straight from the Reports, not re-measured.
        const double reg_seconds =
            session.run("regression", set).timings.regression_seconds;
        const double dnn_seconds = session.run("adaptive", set).timings.dnn_seconds;
        check(dnn_seconds > reg_seconds * 5.0,
              "fig6: adaptive path >= 5x slower than regression (retraining dominates)",
              std::to_string(dnn_seconds) + "s vs " + std::to_string(reg_seconds) + "s");
    }

    std::printf("\n%s (%d failing claim%s)\n", failures == 0 ? "ALL CLAIMS PASS" : "CLAIMS FAILED",
                failures, failures == 1 ? "" : "s");
    return failures == 0 ? 0 : 1;
}
