/// \file analysis_sequences.cpp
/// Supplementary analysis (no paper figure): which parameter-value scaling
/// families are hardest to model? Sweeps the five sequence kinds of
/// Sec. IV-D at a calm and a noisy level and reports accuracy and P4+
/// error per kind for both modelers. Exponential sequences compress most
/// of the normalized positions toward zero, which stresses the DNN's
/// 11-slot input sampling — this bench quantifies that effect.
///
/// Options: --functions=N, --seed=S.

#include <cstdio>

#include "dnn/cache.hpp"
#include "eval/task.hpp"
#include "measure/sequences.hpp"
#include "noise/injector.hpp"
#include "pmnf/exponents.hpp"
#include "regression/modeler.hpp"
#include "regression/search.hpp"
#include "xpcore/metrics.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"

namespace {

/// A single-parameter task on a fixed sequence kind.
struct KindTask {
    pmnf::Model truth;
    measure::ExperimentSet experiments;
    std::vector<double> eval_xs;
    std::vector<double> eval_truths;
};

KindTask make_kind_task(measure::SequenceKind kind, double noise_level, xpcore::Rng& rng) {
    KindTask task;
    const auto classes = pmnf::exponent_set();
    const auto& cls = classes[rng.uniform_int(0, static_cast<std::int64_t>(classes.size()) - 1)];
    pmnf::CompoundTerm term{rng.uniform(0.001, 1000.0), {{0, cls}}};
    task.truth = pmnf::Model(rng.uniform(0.001, 1000.0), cls.is_constant()
                                                             ? std::vector<pmnf::CompoundTerm>{}
                                                             : std::vector<pmnf::CompoundTerm>{term});

    const auto xs = measure::generate_sequence(kind, 5, rng);
    noise::Injector injector(noise_level, rng);
    task.experiments = measure::ExperimentSet({"x"});
    for (double x : xs) {
        task.experiments.add({x}, injector.repetitions(task.truth.evaluate({{x}}), 5));
    }
    task.eval_xs = measure::continue_sequence(xs, 4);
    for (double x : task.eval_xs) task.eval_truths.push_back(task.truth.evaluate({{x}}));
    return task;
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto functions = static_cast<std::size_t>(args.get_int("functions", 30));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

    std::printf("== analysis: modeling difficulty per parameter-scaling family ==\n\n");

    dnn::DnnModeler classifier(dnn::DnnConfig::fast(), 7);
    dnn::ensure_pretrained(classifier, 7);
    const regression::RegressionModeler baseline;

    xpcore::Table table({"sequence kind", "noise %", "acc<=1/2 reg %", "acc<=1/2 dnn %",
                         "P4+ reg %", "P4+ dnn %"});
    for (double noise_level : {0.05, 0.75}) {
        dnn::TaskProperties cell;
        cell.noise_min = noise_level * 0.8;
        cell.noise_max = noise_level * 1.2;
        cell.repetitions = 5;
        classifier.adapt(cell);

        for (const auto kind : measure::all_sequence_kinds()) {
            xpcore::Rng rng(seed + static_cast<std::uint64_t>(kind) * 31 +
                            static_cast<std::uint64_t>(noise_level * 1000));
            std::size_t reg_correct = 0, dnn_correct = 0;
            std::vector<double> reg_errors, dnn_errors;
            for (std::size_t t = 0; t < functions; ++t) {
                const auto task = make_kind_task(kind, noise_level, rng);
                const auto reg = baseline.model(task.experiments);
                const auto dnn_result = classifier.model(task.experiments);
                if (reg.model.lead_exponent_distance(task.truth, 1) <= 0.5) ++reg_correct;
                if (dnn_result.model.lead_exponent_distance(task.truth, 1) <= 0.5) ++dnn_correct;
                const double x4 = task.eval_xs.back();
                reg_errors.push_back(xpcore::relative_error_pct(reg.model.evaluate({{x4}}),
                                                                task.eval_truths.back()));
                dnn_errors.push_back(xpcore::relative_error_pct(
                    dnn_result.model.evaluate({{x4}}), task.eval_truths.back()));
            }
            table.add_row({measure::to_string(kind), xpcore::Table::num(noise_level * 100, 0),
                           xpcore::Table::num(100.0 * reg_correct / functions, 1),
                           xpcore::Table::num(100.0 * dnn_correct / functions, 1),
                           xpcore::Table::num(xpcore::median(reg_errors), 1),
                           xpcore::Table::num(xpcore::median(dnn_errors), 1)});
        }
    }
    table.print();
    return 0;
}
