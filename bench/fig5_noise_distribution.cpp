/// \file fig5_noise_distribution.cpp
/// Regenerates Fig. 5 of the paper: the distribution of per-measurement
/// noise levels for each case-study campaign — min, max, mean, median plus
/// an ASCII histogram, estimated with the rrd heuristic exactly as the
/// paper does. On top of the paper's figure, each campaign is run through
/// the noise-family arbiter (detect_family), and a synthetic per-family
/// sweep exercises every registered family's estimator and the arbiter at
/// known injected levels.
///
/// Paper reference: Kripke mean 17.44% in [3.66, 53.66]%; FASTEST mean
/// 49.56% in [7.51, 160.27]%; RELeARN in [0.64, 0.67]%.
///
/// Options:
///   --seed=S          base seed (default 2021)
///   --bins=N          histogram bins (default 8)
///   --json=FILE       machine-readable results (BENCH_noise.json convention)
///   --smoke           1 sweep trial per family/level instead of 3 (CI gate)
///
/// Exit status: 0 when the synthetic-sweep detection accuracy meets the
/// gate (>= 75%), 1 otherwise — the sweep is fixed-seed, so the gate is
/// deterministic and cannot flake.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "noise/estimator.hpp"
#include "noise/injector.hpp"
#include "noise/model.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"

namespace {

void print_histogram(const std::vector<double>& levels, std::size_t bins) {
    const double lo = xpcore::min_value(levels);
    const double hi = xpcore::max_value(levels);
    const double width = (hi - lo) > 1e-12 ? (hi - lo) / static_cast<double>(bins) : 1.0;
    std::vector<std::size_t> counts(bins, 0);
    for (double level : levels) {
        auto bin = static_cast<std::size_t>((level - lo) / width);
        if (bin >= bins) bin = bins - 1;
        ++counts[bin];
    }
    std::size_t max_count = 1;
    for (std::size_t c : counts) max_count = std::max(max_count, c);
    for (std::size_t b = 0; b < bins; ++b) {
        const double from = (lo + width * static_cast<double>(b)) * 100;
        const double to = from + width * 100;
        const auto bar = static_cast<std::size_t>(40.0 * counts[b] / max_count);
        std::printf("  %6.1f-%6.1f%% | %-40s %zu\n", from, to, std::string(bar, '#').c_str(),
                    counts[b]);
    }
}

struct CampaignRow {
    std::string application;
    std::size_t points = 0;
    noise::NoiseStats stats;
    std::string family;
    double score = 0.0;
};

struct SweepRow {
    std::string family;
    double level = 0.0;
    double estimate = 0.0;
    std::string detected;
    double score = 0.0;
    bool correct = false;
};

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
    const auto bins = static_cast<std::size_t>(args.get_int("bins", 8));
    const bool smoke = args.get_bool("smoke", false);
    const std::string json_path = args.get("json", "");

    std::printf("== Fig. 5: noise-level distributions of the case-study measurements ==\n\n");

    xpcore::Table table({"application", "points", "min %", "max %", "mean %", "median %",
                         "paper mean %", "family", "score"});
    const char* paper_mean[] = {"17.44", "49.56", "~0.65"};
    std::vector<CampaignRow> campaigns;
    std::vector<std::vector<double>> all_levels;
    std::size_t index = 0;
    xpcore::Rng rng(seed);
    for (const auto& study : casestudy::all_case_studies()) {
        // The paper analyzes the noise of the whole campaign; we estimate
        // per-point levels over the dominant kernel's full grid.
        const auto set = study.generate(study.kernels.front(), study.analysis_points, rng);
        const auto levels = noise::per_point_noise(set);
        const auto stats = noise::analyze_noise(set);
        const auto detection = noise::detect_family(set);
        table.add_row({study.application, std::to_string(set.size()),
                       xpcore::Table::num(stats.min * 100), xpcore::Table::num(stats.max * 100),
                       xpcore::Table::num(stats.mean * 100),
                       xpcore::Table::num(stats.median * 100), paper_mean[index],
                       detection.family, xpcore::Table::num(detection.score)});
        campaigns.push_back({study.application, set.size(), stats, detection.family,
                             detection.score});
        all_levels.push_back(levels);
        ++index;
    }
    table.print();

    index = 0;
    for (const auto& study : casestudy::all_case_studies()) {
        std::printf("\n%s noise-level histogram (rrd per measurement point):\n",
                    study.application.c_str());
        print_histogram(all_levels[index], bins);
        ++index;
    }
    std::printf("\nexpected shape: RELeARN is practically noise-free, Kripke moderate with a\n"
                "rare-high-noise tail, FASTEST the noisiest with the widest spread.\n");

    // Synthetic per-family sweep: inject each registered family at known
    // levels into a fig5-style grid, then recover the level with that
    // family's estimator and arbitrate the family blind. Fixed seeds per
    // cell keep the sweep (and the accuracy gate below) deterministic.
    const std::vector<double> sweep_levels = {0.05, 0.15, 0.30};
    const std::size_t trials = smoke ? 1 : 3;
    const std::size_t sweep_points = 150;
    const std::size_t sweep_reps = 5;
    std::vector<SweepRow> sweep;
    std::size_t correct = 0;
    std::uint64_t cell_seed = seed + 5000;
    xpcore::Table sweep_table(
        {"family", "level %", "estimate %", "detected", "score", "correct"});
    for (const auto& family : noise::registered_families()) {
        for (double level : sweep_levels) {
            for (std::size_t t = 0; t < trials; ++t) {
                xpcore::Rng cell_rng(cell_seed++);
                measure::ExperimentSet set({"p"});
                noise::Injector injector(family, level, cell_rng);
                for (std::size_t i = 0; i < sweep_points; ++i) {
                    const double x = static_cast<double>(i + 1);
                    set.add({x}, injector.repetitions(5.0 + 0.3 * x * x, sweep_reps));
                }
                SweepRow row;
                row.family = family;
                row.level = level;
                row.estimate = noise::noise_model(family).estimate_level(set);
                const auto detection = noise::detect_family(set);
                row.detected = detection.family;
                row.score = detection.score;
                row.correct = detection.family == family;
                if (row.correct) ++correct;
                sweep_table.add_row({row.family, xpcore::Table::num(row.level * 100),
                                     xpcore::Table::num(row.estimate * 100), row.detected,
                                     xpcore::Table::num(row.score),
                                     row.correct ? "yes" : "NO"});
                sweep.push_back(std::move(row));
            }
        }
    }
    const double accuracy = static_cast<double>(correct) / static_cast<double>(sweep.size());
    std::printf("\n== per-family synthetic sweep (%zu points x %zu reps, %zu trials/cell) ==\n\n",
                sweep_points, sweep_reps, trials);
    sweep_table.print();
    std::printf("\ndetection accuracy: %zu/%zu (%.1f%%), gate >= 75%%\n", correct, sweep.size(),
                accuracy * 100);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << "{\n  \"campaigns\": [\n";
        for (std::size_t i = 0; i < campaigns.size(); ++i) {
            const auto& c = campaigns[i];
            char line[256];
            std::snprintf(line, sizeof(line),
                          "    {\"application\": \"%s\", \"points\": %zu, \"min\": %.6g, "
                          "\"max\": %.6g, \"mean\": %.6g, \"median\": %.6g, "
                          "\"family\": \"%s\", \"score\": %.6g}%s\n",
                          c.application.c_str(), c.points, c.stats.min, c.stats.max, c.stats.mean,
                          c.stats.median, c.family.c_str(), c.score,
                          i + 1 < campaigns.size() ? "," : "");
            out << line;
        }
        out << "  ],\n  \"family_sweep\": [\n";
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const auto& s = sweep[i];
            char line[256];
            std::snprintf(line, sizeof(line),
                          "    {\"family\": \"%s\", \"level\": %.6g, \"estimate\": %.6g, "
                          "\"detected\": \"%s\", \"score\": %.6g, \"correct\": %s}%s\n",
                          s.family.c_str(), s.level, s.estimate, s.detected.c_str(), s.score,
                          s.correct ? "true" : "false", i + 1 < sweep.size() ? "," : "");
            out << line;
        }
        char tail[128];
        std::snprintf(tail, sizeof(tail), "  ],\n  \"detection_accuracy\": %.6g\n}\n", accuracy);
        out << tail;
        std::printf("wrote %s\n", json_path.c_str());
    }

    return accuracy >= 0.75 ? 0 : 1;
}
