/// \file fig5_noise_distribution.cpp
/// Regenerates Fig. 5 of the paper: the distribution of per-measurement
/// noise levels for each case-study campaign — min, max, mean, median plus
/// an ASCII histogram, estimated with the rrd heuristic exactly as the
/// paper does.
///
/// Paper reference: Kripke mean 17.44% in [3.66, 53.66]%; FASTEST mean
/// 49.56% in [7.51, 160.27]%; RELeARN in [0.64, 0.67]%.
///
/// Options: --seed=S, --bins=N.

#include <cstdio>
#include <string>

#include "casestudy/casestudy.hpp"
#include "noise/estimator.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"

namespace {

void print_histogram(const std::vector<double>& levels, std::size_t bins) {
    const double lo = xpcore::min_value(levels);
    const double hi = xpcore::max_value(levels);
    const double width = (hi - lo) > 1e-12 ? (hi - lo) / static_cast<double>(bins) : 1.0;
    std::vector<std::size_t> counts(bins, 0);
    for (double level : levels) {
        auto bin = static_cast<std::size_t>((level - lo) / width);
        if (bin >= bins) bin = bins - 1;
        ++counts[bin];
    }
    std::size_t max_count = 1;
    for (std::size_t c : counts) max_count = std::max(max_count, c);
    for (std::size_t b = 0; b < bins; ++b) {
        const double from = (lo + width * static_cast<double>(b)) * 100;
        const double to = from + width * 100;
        const auto bar = static_cast<std::size_t>(40.0 * counts[b] / max_count);
        std::printf("  %6.1f-%6.1f%% | %-40s %zu\n", from, to, std::string(bar, '#').c_str(),
                    counts[b]);
    }
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
    const auto bins = static_cast<std::size_t>(args.get_int("bins", 8));

    std::printf("== Fig. 5: noise-level distributions of the case-study measurements ==\n\n");

    xpcore::Table table({"application", "points", "min %", "max %", "mean %", "median %",
                         "paper mean %"});
    const char* paper_mean[] = {"17.44", "49.56", "~0.65"};
    std::vector<std::vector<double>> all_levels;
    std::size_t index = 0;
    xpcore::Rng rng(seed);
    for (const auto& study : casestudy::all_case_studies()) {
        // The paper analyzes the noise of the whole campaign; we estimate
        // per-point levels over the dominant kernel's full grid.
        const auto set = study.generate(study.kernels.front(), study.analysis_points, rng);
        const auto levels = noise::per_point_noise(set);
        const auto stats = noise::analyze_noise(set);
        table.add_row({study.application, std::to_string(set.size()),
                       xpcore::Table::num(stats.min * 100), xpcore::Table::num(stats.max * 100),
                       xpcore::Table::num(stats.mean * 100),
                       xpcore::Table::num(stats.median * 100), paper_mean[index]});
        all_levels.push_back(levels);
        ++index;
    }
    table.print();

    index = 0;
    for (const auto& study : casestudy::all_case_studies()) {
        std::printf("\n%s noise-level histogram (rrd per measurement point):\n",
                    study.application.c_str());
        print_histogram(all_levels[index], bins);
        ++index;
    }
    std::printf("\nexpected shape: RELeARN is practically noise-free, Kripke moderate with a\n"
                "rare-high-noise tail, FASTEST the noisiest with the widest spread.\n");
    return 0;
}
