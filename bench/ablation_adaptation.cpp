/// \file ablation_adaptation.cpp
/// Ablations of the DNN modeler's design choices called out in DESIGN.md:
///   1. domain adaptation on/off (Sec. IV-E: does per-task retraining pay?)
///   2. ensemble size 1 vs 3 (extension beyond the paper)
///   3. repetition aggregation: median vs mean vs minimum (Sec. II/III)
/// Each variant models the same synthetic single-parameter tasks at two
/// noise levels; reported are the d <= 1/2 accuracy and the median P4+
/// error.
///
/// Options: --functions=N, --seed=S.

#include <cstdio>

#include "dnn/ensemble.hpp"
#include "eval/task.hpp"
#include "regression/modeler.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"

namespace {

struct VariantStats {
    std::size_t correct_half = 0;
    std::vector<double> p4_errors;
};

void record(VariantStats& stats, const eval::SyntheticTask& task, const pmnf::Model& model) {
    if (model.lead_exponent_distance(task.truth, 1) <= 0.5 + 1e-12) ++stats.correct_half;
    const auto errors = eval::prediction_errors(task, model);
    stats.p4_errors.push_back(errors.back());
}

std::vector<std::string> row(const char* variant, double noise, const VariantStats& stats,
                             std::size_t functions) {
    return {variant, xpcore::Table::num(noise * 100, 0),
            xpcore::Table::num(100.0 * stats.correct_half / functions, 1),
            xpcore::Table::num(xpcore::median(stats.p4_errors), 1)};
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto functions = static_cast<std::size_t>(args.get_int("functions", 25));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    std::printf("== Ablations: domain adaptation / ensemble size / aggregation (m = 1) ==\n\n");

    dnn::EnsembleModeler ensemble(dnn::DnnConfig::fast(), 7, 3);
    ensemble.ensure_pretrained();
    dnn::DnnModeler& single = ensemble.member(0);

    xpcore::Table table({"variant", "noise %", "acc <=1/2 %", "P4+ median err %"});
    for (double noise_level : {0.30, 1.00}) {
        // Pre-generate identical tasks for all variants.
        std::vector<eval::SyntheticTask> tasks;
        xpcore::Rng rng(seed + static_cast<std::uint64_t>(noise_level * 1000));
        for (std::size_t t = 0; t < functions; ++t) {
            eval::TaskConfig config;
            config.noise = noise_level;
            tasks.push_back(eval::make_task(config, rng));
        }

        dnn::TaskProperties cell;
        cell.noise_min = noise_level * 0.8;
        cell.noise_max = noise_level * 1.2;
        cell.repetitions = 5;

        // 1. single network, no adaptation
        ensemble.reset_adaptation();
        VariantStats no_adapt;
        for (const auto& task : tasks) record(no_adapt, task, single.model(task.experiments).model);
        table.add_row(row("dnn, no adaptation", noise_level, no_adapt, functions));

        // 2. single network, adapted
        single.adapt(cell);
        VariantStats adapted;
        for (const auto& task : tasks) record(adapted, task, single.model(task.experiments).model);
        table.add_row(row("dnn, adapted", noise_level, adapted, functions));

        // 3. 3-member ensemble, adapted
        ensemble.adapt(cell);
        VariantStats ensembled;
        for (const auto& task : tasks) {
            record(ensembled, task, ensemble.model(task.experiments).model);
        }
        table.add_row(row("dnn ensemble(3), adapted", noise_level, ensembled, functions));

        // 4-6. regression baseline under the three aggregation policies
        for (auto aggregation : {measure::Aggregation::Median, measure::Aggregation::Mean,
                                 measure::Aggregation::Minimum}) {
            regression::RegressionModeler::Config config;
            config.aggregation = aggregation;
            const regression::RegressionModeler modeler(config);
            VariantStats stats;
            for (const auto& task : tasks) record(stats, task, modeler.model(task.experiments).model);
            const std::string name = "regression, " + measure::to_string(aggregation);
            table.add_row(row(name.c_str(), noise_level, stats, functions));
        }
    }
    table.print();
    std::printf("\nreading guide: adaptation should pay at both levels; the ensemble should\n"
                "never score a worse CV pick than its members; median aggregation is the\n"
                "robust default for symmetric noise.\n");
    return 0;
}
