/// \file noise_heuristic.cpp
/// Validates the Sec. IV-B claim: the range-of-relative-deviation heuristic
/// estimates the noise level "with an average prediction error of only
/// 4.93%". Sweeps injected noise levels and measurement layouts, reporting
/// the mean relative estimation error per level and overall.
///
/// Options: --trials=N (per level/layout), --seed=S.

#include <cmath>
#include <cstdio>

#include "measure/sequences.hpp"
#include "noise/estimator.hpp"
#include "noise/injector.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"

namespace {

struct Layout {
    const char* name;
    std::size_t points;
    std::size_t repetitions;
};

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto trials = static_cast<std::size_t>(args.get_int("trials", 40));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 17));

    std::printf("== Sec. IV-B: accuracy of the rrd noise-level heuristic ==\n");
    std::printf("paper claim: average prediction error 4.93%%\n\n");

    const Layout layouts[] = {
        {"5 points x 5 reps (1 param line)", 5, 5},
        {"25 points x 5 reps (2 param grid)", 25, 5},
        {"125 points x 5 reps (3 param grid)", 125, 5},
        {"25 points x 2 reps (RELeARN style)", 25, 2},
    };
    const double levels[] = {0.02, 0.05, 0.10, 0.20, 0.50, 0.75, 1.00};

    xpcore::Rng rng(seed);
    xpcore::Table table({"layout", "noise %", "mean est %", "mean |err| %"});
    std::vector<double> all_errors;
    for (const auto& layout : layouts) {
        for (double level : levels) {
            std::vector<double> estimates;
            std::vector<double> errors;
            for (std::size_t t = 0; t < trials; ++t) {
                measure::ExperimentSet set({"p"});
                noise::Injector injector(level, rng);
                for (std::size_t p = 1; p <= layout.points; ++p) {
                    const double truth = 5.0 + 2.0 * static_cast<double>(p);
                    set.add({static_cast<double>(p)},
                            injector.repetitions(truth, layout.repetitions));
                }
                const double estimated = noise::estimate_noise(set);
                estimates.push_back(estimated);
                errors.push_back(std::abs(estimated - level) / level * 100.0);
            }
            all_errors.insert(all_errors.end(), errors.begin(), errors.end());
            table.add_row({layout.name, xpcore::Table::num(level * 100, 0),
                           xpcore::Table::num(xpcore::mean(estimates) * 100, 2),
                           xpcore::Table::num(xpcore::mean(errors), 2)});
        }
    }
    table.print();
    std::printf("\noverall average prediction error: %.2f%% (paper: 4.93%%)\n",
                xpcore::mean(all_errors));
    return 0;
}
