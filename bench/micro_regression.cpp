/// \file micro_regression.cpp
/// google-benchmark micro benchmarks for the regression substrate: the
/// 43-hypothesis single-parameter search, coefficient fits, and the
/// multi-parameter combination search.

#include <benchmark/benchmark.h>

#include <cmath>

#include "measure/experiment.hpp"
#include "regression/modeler.hpp"
#include "xpcore/rng.hpp"

namespace {

void BM_FitShape(benchmark::State& state) {
    regression::CandidateShape shape;
    shape.terms.push_back({{0, {pmnf::Rational(1), 1}}});
    std::vector<measure::Coordinate> points;
    std::vector<double> values;
    for (double x : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        points.push_back({x});
        values.push_back(2.0 + 0.5 * x * std::log2(x));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(regression::fit_shape(shape, points, values));
    }
}
BENCHMARK(BM_FitShape);

void BM_CrossValidatedSmape(benchmark::State& state) {
    regression::CandidateShape shape;
    shape.terms.push_back({{0, {pmnf::Rational(2), 0}}});
    std::vector<measure::Coordinate> points;
    std::vector<double> values;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 1; i <= n; ++i) {
        const double x = static_cast<double>(i * 4);
        points.push_back({x});
        values.push_back(1.0 + 0.1 * x * x);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(regression::cross_validated_smape(shape, points, values));
    }
}
BENCHMARK(BM_CrossValidatedSmape)->Arg(5)->Arg(25)->Arg(125);

void BM_RankSingleParameter(benchmark::State& state) {
    std::vector<double> xs, ys;
    for (double x : {4.0, 8.0, 16.0, 32.0, 64.0}) {
        xs.push_back(x);
        ys.push_back(3.0 + 2.0 * std::sqrt(x));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(regression::rank_single_parameter(xs, ys));
    }
    state.SetLabel("43 hypotheses, LOO-CV");
}
BENCHMARK(BM_RankSingleParameter);

void BM_RegressionModelerTwoParams(benchmark::State& state) {
    measure::ExperimentSet set({"p", "n"});
    for (double p : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        for (double n : {10.0, 20.0, 30.0, 40.0, 50.0}) {
            set.add({p, n}, {1.0 + 0.2 * p * n});
        }
    }
    const regression::RegressionModeler modeler;
    for (auto _ : state) {
        benchmark::DoNotOptimize(modeler.model(set));
    }
}
BENCHMARK(BM_RegressionModelerTwoParams);

void BM_BuildCombinationsThreeParams(benchmark::State& state) {
    const pmnf::TermClass linear{pmnf::Rational(1), 0};
    const pmnf::TermClass loglinear{pmnf::Rational(1), 1};
    const pmnf::TermClass constant{};
    const std::vector<std::vector<pmnf::TermClass>> choices = {
        {linear, loglinear, constant},
        {linear, loglinear, constant},
        {linear, loglinear, constant}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(regression::build_combinations(choices));
    }
}
BENCHMARK(BM_BuildCombinationsThreeParams);

}  // namespace
