/// \file fig3_accuracy.cpp
/// Regenerates Fig. 3(a-c) of the paper: model accuracy (percentage of
/// models whose lead-exponent distance to the synthetic baseline is
/// <= 1/4, 1/3, 1/2) for the regression and adaptive modelers over
/// parameter counts m = 1, 2, 3 and noise levels 2-100%.
///
/// Options: --functions=N (tasks per cell), --params=M (only one m),
/// --seed=S, --paper-scale (100000 functions, full-size network),
/// --noise-family=F (family injected into every cell's tasks),
/// --pretrain-noise=F1,F2,... (family mix the network pretrains on).

#include <cstdio>
#include <fstream>
#include <string>

#include <filesystem>

#include "dnn/cache.hpp"
#include "eval/runner.hpp"
#include "modeling/session.hpp"
#include "noise/model.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"
#include "xpcore/timer.hpp"

namespace {

/// Optional machine-readable output next to the console table, for
/// regenerating the figure with external plotting tools.
void append_csv(const std::string& path, std::size_t parameters,
                const std::vector<eval::CellOutcome>& cells) {
    if (path.empty()) return;
    std::ofstream csv(path, std::ios::app);
    if (!csv) {
        std::fprintf(stderr, "fig3_accuracy: cannot open %s\n", path.c_str());
        return;
    }
    if (csv.tellp() == 0) csv << "parameters,noise,modeler,bucket,accuracy\n";
    for (const auto& cell : cells) {
        for (double bucket : eval::kAccuracyBuckets) {
            csv << parameters << ',' << cell.noise << ",regression," << bucket << ','
                << cell.regression.accuracy(bucket) << '\n';
            csv << parameters << ',' << cell.noise << ",adaptive," << bucket << ','
                << cell.adaptive.accuracy(bucket) << '\n';
        }
    }
}

void run_for_parameters(modeling::Session& session, std::size_t parameters,
                        std::size_t functions, std::uint64_t seed,
                        const std::string& noise_family, const std::string& csv_path) {
    eval::EvalConfig config;
    config.parameters = parameters;
    config.functions_per_cell = functions;
    config.seed = seed + parameters;
    config.noise_family = noise_family;

    xpcore::WallTimer timer;
    const auto cells = eval::run_synthetic_evaluation(session, config);

    std::printf("\nFig. 3(%c): model accuracy, %zu parameter%s (%zu functions/cell, %.1fs)\n",
                static_cast<char>('a' + parameters - 1), parameters, parameters > 1 ? "s" : "",
                functions, timer.seconds());
    xpcore::Table table({"noise %", "reg <=1/4", "reg <=1/3", "reg <=1/2", "ada <=1/4",
                         "ada <=1/3", "ada <=1/2", "ci(+-pp)"});
    xpcore::Rng ci_rng(seed);
    for (const auto& cell : cells) {
        // 99% bootstrap CI half-width of the d<=1/2 adaptive proportion, in
        // percentage points (the paper reports <= 2pp at 100k functions).
        const auto successes = static_cast<std::size_t>(
            cell.adaptive.accuracy(0.5) * static_cast<double>(functions) + 0.5);
        const auto ci = xpcore::bootstrap_proportion_ci(successes, functions, 0.99, 300, ci_rng);
        table.add_row({xpcore::Table::num(cell.noise * 100, 0),
                       xpcore::Table::num(cell.regression.accuracy(0.25) * 100, 1),
                       xpcore::Table::num(cell.regression.accuracy(1.0 / 3.0) * 100, 1),
                       xpcore::Table::num(cell.regression.accuracy(0.5) * 100, 1),
                       xpcore::Table::num(cell.adaptive.accuracy(0.25) * 100, 1),
                       xpcore::Table::num(cell.adaptive.accuracy(1.0 / 3.0) * 100, 1),
                       xpcore::Table::num(cell.adaptive.accuracy(0.5) * 100, 1),
                       xpcore::Table::num((ci.upper - ci.lower) * 50, 1)});
    }
    table.print();
    append_csv(csv_path, parameters, cells);
}

}  // namespace

int main(int argc, char** argv) try {
    const xpcore::CliArgs args(argc, argv);
    const bool paper_scale = args.get_bool("paper-scale", false);
    const auto functions =
        static_cast<std::size_t>(args.get_int("functions", paper_scale ? 100000 : 30));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    const std::string noise_family = args.get("noise-family", "uniform");
    noise::parse_family_list(noise_family, "--noise-family");  // fail fast on typos

    std::printf("== Fig. 3(a-c): model accuracy, regression vs. adaptive ==\n");
    std::printf("paper expectation: both >90%% correct for n <= 10%%; adaptive wins for\n");
    std::printf("n >= 20%%, up to +22pp (m=1), +25pp (m=2) at n = 100%% for d <= 1/4.\n");

    modeling::Options options;
    options.net_profile = paper_scale ? "paper" : "fast";
    options.net = modeling::Options::profile(options.net_profile);
    if (args.has("pretrain-noise")) {
        options.net.pretrain_noise_families =
            noise::parse_family_list(args.get("pretrain-noise", ""), "--pretrain-noise");
    }
    if (noise_family != "uniform" || args.has("pretrain-noise")) {
        std::string mix;
        for (const auto& family : options.net.pretrain_noise_families) {
            if (!mix.empty()) mix += ",";
            mix += family;
        }
        std::printf("noise: injecting '%s', pretraining on '%s'\n", noise_family.c_str(),
                    mix.c_str());
    }
    modeling::Session session(options);
    xpcore::WallTimer pretrain_timer;
    const bool cached = std::filesystem::exists(
        dnn::pretrained_cache_path(options.net, options.seed));
    session.classifier();
    std::printf("pretrained network: %s (%.1fs)\n", cached ? "loaded from cache" : "trained",
                pretrain_timer.seconds());

    const std::string csv_path = args.get("csv", "");
    if (args.has("params")) {
        run_for_parameters(session, static_cast<std::size_t>(args.get_int("params", 1)),
                           functions, seed, noise_family, csv_path);
    } else {
        for (std::size_t m = 1; m <= 3; ++m) {
            // Keep the m = 3 default affordable: its grids are 125 points.
            const std::size_t cell_functions = (m == 3 && !args.has("functions") && !paper_scale)
                                                   ? functions / 2
                                                   : functions;
            run_for_parameters(session, m, cell_functions, seed, noise_family, csv_path);
        }
    }
    return 0;
} catch (const xpcore::Error& error) {
    std::fprintf(stderr, "fig3_accuracy: %s\n", error.what());
    return 2;
}
