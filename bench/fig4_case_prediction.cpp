/// \file fig4_case_prediction.cpp
/// Regenerates Fig. 4 of the paper: the median relative prediction error at
/// each case study's evaluation point P+, over all performance-relevant
/// kernels, for the regression and the adaptive modeler — plus the
/// recovered models for the kernels Sec. VI-B discusses (Kripke SweepSolver,
/// RELeARN connectivity update).
///
/// Paper reference points: Kripke 22.28% -> 13.45%, FASTEST 69.79% ->
/// 16.23%, RELeARN 7.12% == 7.12%.
///
/// Options: --seed=S, --app=kripke|fastest|relearn, --paper-scale.

#include <cstdio>

#include "adaptive/modeler.hpp"
#include "casestudy/casestudy.hpp"
#include "dnn/cache.hpp"
#include "regression/modeler.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/metrics.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"
#include "xpcore/table.hpp"

namespace {

struct AppOutcome {
    double regression_median = 0.0;
    double adaptive_median = 0.0;
    xpcore::ConfidenceInterval regression_ci;
    xpcore::ConfidenceInterval adaptive_ci;
};

AppOutcome run_case_study(const casestudy::CaseStudy& study, dnn::DnnModeler& classifier,
                          xpcore::Rng& rng, bool verbose_models) {
    regression::RegressionModeler baseline;
    adaptive::AdaptiveModeler adaptive_modeler(classifier, {});

    std::vector<double> regression_errors;
    std::vector<double> adaptive_errors;
    for (const auto* kernel : study.relevant_kernels()) {
        const auto experiments = study.generate_modeling(*kernel, rng);
        const double truth = kernel->truth.evaluate(study.evaluation_point);

        const auto regression_result = baseline.model(experiments);
        const auto adaptive_result = adaptive_modeler.model(experiments);

        regression_errors.push_back(xpcore::relative_error_pct(
            regression_result.model.evaluate(study.evaluation_point), truth));
        adaptive_errors.push_back(xpcore::relative_error_pct(
            adaptive_result.result.model.evaluate(study.evaluation_point), truth));

        if (verbose_models && kernel == study.relevant_kernels().front()) {
            std::printf("  %s / %s (Sec. VI-B):\n", study.application.c_str(),
                        kernel->name.c_str());
            std::printf("    truth:      %s\n", kernel->truth.to_string(study.parameters).c_str());
            std::printf("    regression: %s\n",
                        regression_result.model.to_string(study.parameters).c_str());
            std::printf("    adaptive:   %s (path: %s, est. noise %.1f%%)\n",
                        adaptive_result.result.model.to_string(study.parameters).c_str(),
                        adaptive_result.winner.c_str(), adaptive_result.estimated_noise * 100);
        }
    }

    AppOutcome outcome;
    outcome.regression_median = xpcore::median(regression_errors);
    outcome.adaptive_median = xpcore::median(adaptive_errors);
    xpcore::Rng ci_rng(rng.split());
    outcome.regression_ci = xpcore::bootstrap_median_ci(regression_errors, 0.99, 400, ci_rng);
    outcome.adaptive_ci = xpcore::bootstrap_median_ci(adaptive_errors, 0.99, 400, ci_rng);
    return outcome;
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2021));
    const std::string only_app = args.get(std::string("app"), "");
    const bool paper_scale = args.get_bool("paper-scale", false);

    std::printf("== Fig. 4: case-study prediction error at P+ (median over relevant kernels) ==\n\n");

    dnn::DnnConfig net_config = paper_scale ? dnn::DnnConfig::paper() : dnn::DnnConfig::fast();
    dnn::DnnModeler classifier(net_config, 7);
    dnn::ensure_pretrained(classifier, 7);

    xpcore::Table table({"application", "kernels", "regression err %", "adaptive err %",
                         "99% ci (ada)", "paper reg %", "paper ada %"});
    const char* paper_reg[] = {"22.28", "69.79", "7.12"};
    const char* paper_ada[] = {"13.45", "16.23", "7.12"};
    std::size_t index = 0;
    xpcore::Rng rng(seed);
    for (const auto& study : casestudy::all_case_studies()) {
        if (!only_app.empty() && study.application != only_app) {
            ++index;
            continue;
        }
        const auto outcome = run_case_study(study, classifier, rng, /*verbose_models=*/true);
        table.add_row({study.application, std::to_string(study.relevant_kernels().size()),
                       xpcore::Table::num(outcome.regression_median),
                       xpcore::Table::num(outcome.adaptive_median),
                       "[" + xpcore::Table::num(outcome.adaptive_ci.lower) + ", " +
                           xpcore::Table::num(outcome.adaptive_ci.upper) + "]",
                       paper_reg[index], paper_ada[index]});
        ++index;
    }
    std::printf("\n");
    table.print();
    std::printf("\nexpected shape: FASTEST (noisiest) shows the largest adaptive gain,\n"
                "Kripke a moderate one, RELeARN (calm) no difference.\n");
    return 0;
}
