/// \file micro_gemm.cpp
/// Before/after micro-benchmark of the GEMM kernels: the seed's unblocked
/// single-threaded loops (reimplemented locally as the "before" baseline)
/// vs. the cache-blocked kernels, serial and pool-parallel. Every variant
/// is also checked for bit-identical results against the baseline — the
/// kernels only re-block and re-partition, they never reorder the per-
/// element accumulation.
///
/// Options:
///   --sizes=N1,N2,..  square problem sizes (default 256,512,1024,1500)
///   --batch=B         also run the training shapes B x N x N / N x B x N
///   --iters=K         fixed iteration count (default: sized to ~1 GFLOP)
///   --json=FILE       machine-readable results (BENCH_gemm.json convention)
///   --smoke           tiny sizes + 1 iteration (CI bit-rot gate)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/table.hpp"
#include "xpcore/thread_pool.hpp"
#include "xpcore/timer.hpp"

namespace {

using nn::Tensor;

void fill_random(Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

// ---- the seed kernels (unblocked, single-threaded), kept as the "before"
// ---- measurement baseline.

void seed_gemm_nn(const Tensor& a, const Tensor& b, Tensor& c) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    c.fill(0.0f);
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.data() + i * k;
        float* crow = c.data() + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f) continue;
            const float* brow = b.data() + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
    }
}

void seed_gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.data() + i * k;
        float* crow = c.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b.data() + j * k;
            float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
            std::size_t kk = 0;
            for (; kk + 4 <= k; kk += 4) {
                s0 += arow[kk] * brow[kk];
                s1 += arow[kk + 1] * brow[kk + 1];
                s2 += arow[kk + 2] * brow[kk + 2];
                s3 += arow[kk + 3] * brow[kk + 3];
            }
            float sum = (s0 + s1) + (s2 + s3);
            for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
            crow[j] = sum;
        }
    }
}

void seed_gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    c.fill(0.0f);
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* arow = a.data() + kk * m;
        const float* brow = b.data() + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float aki = arow[i];
            if (aki == 0.0f) continue;
            float* crow = c.data() + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
        }
    }
}

struct Result {
    std::string kernel;
    std::size_t m, k, n;
    double gflops_seed = 0.0;
    double gflops_blocked = 0.0;
    double gflops_parallel = 0.0;
    bool bit_identical = true;
};

template <typename Fn>
double time_gflops(std::size_t flops, std::size_t iters, const Fn& fn) {
    fn();  // warm-up (also populates caches and the pool)
    xpcore::WallTimer timer;
    for (std::size_t it = 0; it < iters; ++it) fn();
    const double seconds = timer.seconds();
    return seconds > 0 ? static_cast<double>(flops) * static_cast<double>(iters) / seconds / 1e9
                       : 0.0;
}

bool identical(const Tensor& a, const Tensor& b) {
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

Result run_shape(const char* kernel, std::size_t m, std::size_t k, std::size_t n,
                 std::size_t iters_override) {
    xpcore::Rng rng(m * 7919 + k * 131 + n);
    const std::size_t flops = 2 * m * k * n;
    const std::size_t iters =
        iters_override > 0
            ? iters_override
            : std::max<std::size_t>(1, (std::size_t{1} << 30) / std::max<std::size_t>(1, flops));

    Result result{kernel, m, k, n, 0, 0, 0, true};
    Tensor reference;
    auto bench = [&](auto&& seed_fn, auto&& new_fn) {
        result.gflops_seed = time_gflops(flops, iters, seed_fn);
        {
            xpcore::SerialGuard serial;
            result.gflops_blocked = time_gflops(flops, iters, new_fn);
        }
        result.gflops_parallel = time_gflops(flops, iters, new_fn);
    };

    if (std::strcmp(kernel, "nn") == 0) {
        Tensor a(m, k), b(k, n), c(m, n), c2(m, n);
        fill_random(a, rng);
        fill_random(b, rng);
        bench([&] { seed_gemm_nn(a, b, c); }, [&] { nn::gemm_nn(a, b, c2); });
        result.bit_identical = identical(c, c2);
    } else if (std::strcmp(kernel, "nt") == 0) {
        Tensor a(m, k), b(n, k), c(m, n), c2(m, n);
        fill_random(a, rng);
        fill_random(b, rng);
        bench([&] { seed_gemm_nt(a, b, c); }, [&] { nn::gemm_nt(a, b, c2); });
        result.bit_identical = identical(c, c2);
    } else {
        Tensor a(k, m), b(k, n), c(m, n), c2(m, n);
        fill_random(a, rng);
        fill_random(b, rng);
        bench([&] { seed_gemm_tn(a, b, c); }, [&] { nn::gemm_tn(a, b, c2); });
        result.bit_identical = identical(c, c2);
    }
    return result;
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
    std::vector<std::size_t> sizes;
    std::size_t begin = 0;
    while (begin < csv.size()) {
        std::size_t end = csv.find(',', begin);
        if (end == std::string::npos) end = csv.size();
        const std::string token = csv.substr(begin, end - begin);
        std::size_t parsed = 0;
        try {
            std::size_t consumed = 0;
            parsed = std::stoul(token, &consumed);
            if (consumed != token.size()) parsed = 0;
        } catch (const std::exception&) {
            parsed = 0;
        }
        if (parsed == 0) {
            std::fprintf(stderr, "micro_gemm: invalid --sizes entry '%s' (expected positive integers, e.g. --sizes=256,512)\n",
                         token.c_str());
            std::exit(2);
        }
        sizes.push_back(parsed);
        begin = end + 1;
    }
    return sizes;
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const bool smoke = args.get_bool("smoke", false);
    const auto iters = static_cast<std::size_t>(args.get_int("iters", smoke ? 1 : 0));
    const auto batch = static_cast<std::size_t>(args.get_int("batch", smoke ? 16 : 128));
    const std::vector<std::size_t> sizes =
        parse_sizes(args.get("sizes", smoke ? "64,96" : "256,512,1024,1500"));

    const std::size_t threads = xpcore::ThreadPool::global().size();
    std::printf("== micro_gemm: seed (unblocked serial) vs blocked vs blocked+parallel ==\n");
    std::printf("pool workers: %zu  (XPDNN_THREADS)  parallel threshold: %zu m*n*k"
                "  (XPDNN_GEMM_THRESHOLD)\n\n",
                threads, nn::gemm_parallel_threshold());

    std::vector<Result> results;
    for (std::size_t n : sizes) {
        for (const char* kernel : {"nn", "nt", "tn"}) {
            results.push_back(run_shape(kernel, n, n, n, iters));
        }
    }
    // Training shapes: forward batch x in x out and the backward dW shape.
    for (std::size_t n : sizes) {
        results.push_back(run_shape("nn", batch, n, n, iters));
        results.push_back(run_shape("tn", n, batch, n, iters));
    }

    xpcore::Table table({"kernel", "m x k x n", "seed GF/s", "blocked GF/s", "parallel GF/s",
                         "speedup", "bit-identical"});
    bool all_identical = true;
    for (const auto& r : results) {
        all_identical = all_identical && r.bit_identical;
        const double speedup = r.gflops_seed > 0 ? r.gflops_parallel / r.gflops_seed : 0.0;
        table.add_row({r.kernel,
                       std::to_string(r.m) + "x" + std::to_string(r.k) + "x" + std::to_string(r.n),
                       xpcore::Table::num(r.gflops_seed, 2), xpcore::Table::num(r.gflops_blocked, 2),
                       xpcore::Table::num(r.gflops_parallel, 2),
                       xpcore::Table::num(speedup, 2) + "x", r.bit_identical ? "yes" : "NO"});
    }
    table.print();
    std::printf("\nspeedup = parallel vs seed. Results are bit-identical by construction\n"
                "(row-partitioned dispatch preserves per-element accumulation order).\n");

    const std::string json_path = args.get("json", "");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << "{\n  \"threads\": " << threads << ",\n  \"results\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            out << "    {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.m << ", \"k\": " << r.k
                << ", \"n\": " << r.n << ", \"gflops_seed\": " << r.gflops_seed
                << ", \"gflops_blocked\": " << r.gflops_blocked
                << ", \"gflops_parallel\": " << r.gflops_parallel
                << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false") << "}"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return all_identical ? 0 : 1;
}
