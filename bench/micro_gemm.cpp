/// \file micro_gemm.cpp
/// Before/after micro-benchmark of the GEMM kernels: the seed's unblocked
/// single-threaded loops (reimplemented locally as the "before" baseline)
/// vs. the cache-blocked scalar kernels vs. the packed AVX2/FMA and AVX-512
/// microkernels, serial and pool-parallel.
///
/// Every configuration is timed --repeats times after a warm-up run; the
/// reported rate is the *median* repeat and the run-to-run spread
/// ((max - min) / median) is printed alongside, so a noisy measurement is
/// visible instead of silently skewing the trajectory (the source paper is
/// about exactly this failure mode).
///
/// Correctness gates (exit 1 on violation):
///   * the scalar blocked kernels must be bit-identical to the seed loops —
///     they only re-block and re-partition, never reorder the per-element
///     accumulation;
///   * the SIMD kernels use FMA and a different summation tree, so they are
///     tolerance-checked instead: max |simd - seed| / max|C| <= 1e-5, at
///     every vector level the host supports.
///
/// Options:
///   --sizes=N1,N2,..  square problem sizes (default 256,512,1024,1500)
///   --batch=B         also run the training shapes B x N x N / N x B x N
///   --iters=K         fixed iteration count (default: sized to ~1 GFLOP)
///   --repeats=R       timing repeats per configuration (default 3)
///   --json=FILE       machine-readable results (BENCH_gemm.json convention)
///   --smoke           tiny sizes + 1 iteration (CI bit-rot gate)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/table.hpp"
#include "xpcore/thread_pool.hpp"
#include "xpcore/timer.hpp"

namespace {

using nn::Tensor;

void fill_random(Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

// ---- the seed kernels (unblocked, single-threaded), kept as the "before"
// ---- measurement baseline.

void seed_gemm_nn(const Tensor& a, const Tensor& b, Tensor& c) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    c.fill(0.0f);
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.data() + i * k;
        float* crow = c.data() + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f) continue;
            const float* brow = b.data() + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
    }
}

void seed_gemm_nt(const Tensor& a, const Tensor& b, Tensor& c) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.data() + i * k;
        float* crow = c.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b.data() + j * k;
            float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
            std::size_t kk = 0;
            for (; kk + 4 <= k; kk += 4) {
                s0 += arow[kk] * brow[kk];
                s1 += arow[kk + 1] * brow[kk + 1];
                s2 += arow[kk + 2] * brow[kk + 2];
                s3 += arow[kk + 3] * brow[kk + 3];
            }
            float sum = (s0 + s1) + (s2 + s3);
            for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
            crow[j] = sum;
        }
    }
}

void seed_gemm_tn(const Tensor& a, const Tensor& b, Tensor& c) {
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    c.fill(0.0f);
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* arow = a.data() + kk * m;
        const float* brow = b.data() + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float aki = arow[i];
            if (aki == 0.0f) continue;
            float* crow = c.data() + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
        }
    }
}

struct Result {
    std::string kernel;
    std::size_t m, k, n;
    double gflops_seed = 0.0;
    double gflops_blocked = 0.0;
    double gflops_avx2 = 0.0;
    double gflops_avx512 = 0.0;
    double gflops_parallel = 0.0;
    double spread_max = 0.0;         ///< worst (max-min)/median over the configs
    bool bit_identical = true;       ///< scalar blocked vs seed
    double simd_rel_err = 0.0;       ///< max |simd - seed| / max|C|, worst level
    bool simd_within_tol = true;
};

constexpr double kSimdRelTol = 1e-5;

// Timing repeats per configuration (--repeats); median reported, spread kept.
std::size_t g_repeats = 3;

/// Median-of-g_repeats GF/s after one warm-up run. `spread_max` is raised to
/// the run-to-run spread (max - min) / median when that is larger.
template <typename Fn>
double time_gflops(std::size_t flops, std::size_t iters, double& spread_max, const Fn& fn) {
    fn();  // warm-up (also populates caches and the pool)
    std::vector<double> rates;
    rates.reserve(g_repeats);
    for (std::size_t rep = 0; rep < std::max<std::size_t>(g_repeats, 1); ++rep) {
        xpcore::WallTimer timer;
        for (std::size_t it = 0; it < iters; ++it) fn();
        const double seconds = timer.seconds();
        rates.push_back(seconds > 0 ? static_cast<double>(flops) *
                                          static_cast<double>(iters) / seconds / 1e9
                                    : 0.0);
    }
    std::sort(rates.begin(), rates.end());
    const double median = rates[rates.size() / 2];
    if (median > 0) {
        spread_max = std::max(spread_max, (rates.back() - rates.front()) / median);
    }
    return median;
}

bool identical(const Tensor& a, const Tensor& b) {
    return a.rows() == b.rows() && a.cols() == b.cols() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

double max_rel_error(const Tensor& reference, const Tensor& candidate) {
    double max_abs = 0.0, max_err = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        max_abs = std::max(max_abs, std::abs(static_cast<double>(reference.data()[i])));
        max_err = std::max(max_err, std::abs(static_cast<double>(reference.data()[i]) -
                                             static_cast<double>(candidate.data()[i])));
    }
    return max_abs > 0 ? max_err / max_abs : max_err;
}

Result run_shape(const char* kernel, std::size_t m, std::size_t k, std::size_t n,
                 std::size_t iters_override) {
    xpcore::Rng rng(m * 7919 + k * 131 + n);
    const std::size_t flops = 2 * m * k * n;
    const std::size_t iters =
        iters_override > 0
            ? iters_override
            : std::max<std::size_t>(1, (std::size_t{1} << 30) / std::max<std::size_t>(1, flops));

    const bool have_avx2 = xpcore::simd::max_level() >= xpcore::simd::Level::Avx2;
    const bool have_avx512 = xpcore::simd::max_level() >= xpcore::simd::Level::Avx512;

    Result result;
    result.kernel = kernel;
    result.m = m;
    result.k = k;
    result.n = n;
    auto bench = [&](auto&& seed_fn, auto&& new_fn, const Tensor& c, Tensor& c2) {
        result.gflops_seed = time_gflops(flops, iters, result.spread_max, seed_fn);
        {
            // Scalar blocked, serial: must reproduce the seed bit for bit.
            xpcore::simd::LevelGuard scalar(xpcore::simd::Level::Scalar);
            xpcore::SerialGuard serial;
            result.gflops_blocked = time_gflops(flops, iters, result.spread_max, new_fn);
            result.bit_identical = identical(c, c2);
        }
        if (have_avx2) {
            xpcore::simd::LevelGuard simd(xpcore::simd::Level::Avx2);
            {
                xpcore::SerialGuard serial;
                result.gflops_avx2 = time_gflops(flops, iters, result.spread_max, new_fn);
            }
            result.simd_rel_err = max_rel_error(c, c2);
        }
        if (have_avx512) {
            xpcore::simd::LevelGuard simd(xpcore::simd::Level::Avx512);
            {
                xpcore::SerialGuard serial;
                result.gflops_avx512 = time_gflops(flops, iters, result.spread_max, new_fn);
            }
            result.simd_rel_err = std::max(result.simd_rel_err, max_rel_error(c, c2));
        }
        result.simd_within_tol = result.simd_rel_err <= kSimdRelTol;
        // Whatever the environment selected (SIMD unless XPDNN_SIMD caps it),
        // plus the thread pool: the configuration the library actually runs
        // with.
        result.gflops_parallel = time_gflops(flops, iters, result.spread_max, new_fn);
    };

    if (std::strcmp(kernel, "nn") == 0) {
        Tensor a(m, k), b(k, n), c(m, n), c2(m, n);
        fill_random(a, rng);
        fill_random(b, rng);
        bench([&] { seed_gemm_nn(a, b, c); }, [&] { nn::gemm_nn(a, b, c2); }, c, c2);
    } else if (std::strcmp(kernel, "nt") == 0) {
        Tensor a(m, k), b(n, k), c(m, n), c2(m, n);
        fill_random(a, rng);
        fill_random(b, rng);
        bench([&] { seed_gemm_nt(a, b, c); }, [&] { nn::gemm_nt(a, b, c2); }, c, c2);
    } else {
        Tensor a(k, m), b(k, n), c(m, n), c2(m, n);
        fill_random(a, rng);
        fill_random(b, rng);
        bench([&] { seed_gemm_tn(a, b, c); }, [&] { nn::gemm_tn(a, b, c2); }, c, c2);
    }
    return result;
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
    std::vector<std::size_t> sizes;
    std::size_t begin = 0;
    while (begin < csv.size()) {
        std::size_t end = csv.find(',', begin);
        if (end == std::string::npos) end = csv.size();
        const std::string token = csv.substr(begin, end - begin);
        std::size_t parsed = 0;
        try {
            std::size_t consumed = 0;
            parsed = std::stoul(token, &consumed);
            if (consumed != token.size()) parsed = 0;
        } catch (const std::exception&) {
            parsed = 0;
        }
        if (parsed == 0) {
            std::fprintf(stderr, "micro_gemm: invalid --sizes entry '%s' (expected positive integers, e.g. --sizes=256,512)\n",
                         token.c_str());
            std::exit(2);
        }
        sizes.push_back(parsed);
        begin = end + 1;
    }
    return sizes;
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const bool smoke = args.get_bool("smoke", false);
    const auto iters = static_cast<std::size_t>(args.get_int("iters", smoke ? 1 : 0));
    const auto batch = static_cast<std::size_t>(args.get_int("batch", smoke ? 16 : 128));
    g_repeats = std::max<std::size_t>(1, static_cast<std::size_t>(args.get_int("repeats", 3)));
    const std::vector<std::size_t> sizes =
        parse_sizes(args.get("sizes", smoke ? "64,96" : "256,512,1024,1500"));

    const std::size_t threads = xpcore::ThreadPool::global().size();
    std::printf("== micro_gemm: seed (unblocked serial) vs blocked vs SIMD vs parallel ==\n");
    std::printf("pool workers: %zu  (XPDNN_THREADS)  parallel threshold: %zu m*n*k"
                "  (XPDNN_GEMM_THRESHOLD)\n",
                threads, nn::gemm_parallel_threshold());
    std::printf("simd: max=%s active=%s  (XPDNN_SIMD)  repeats: %zu (median reported)\n\n",
                xpcore::simd::level_name(xpcore::simd::max_level()),
                xpcore::simd::level_name(xpcore::simd::active_level()), g_repeats);

    std::vector<Result> results;
    for (std::size_t n : sizes) {
        for (const char* kernel : {"nn", "nt", "tn"}) {
            results.push_back(run_shape(kernel, n, n, n, iters));
        }
    }
    // Training shapes: forward batch x in x out and the backward dW shape.
    for (std::size_t n : sizes) {
        results.push_back(run_shape("nn", batch, n, n, iters));
        results.push_back(run_shape("tn", n, batch, n, iters));
    }

    xpcore::Table table({"kernel", "m x k x n", "seed GF/s", "blocked GF/s", "avx2 GF/s",
                         "avx512 GF/s", "active GF/s", "speedup", "spread", "scalar-bits",
                         "simd rel err"});
    bool all_ok = true;
    for (const auto& r : results) {
        all_ok = all_ok && r.bit_identical && r.simd_within_tol;
        const double best =
            std::max({r.gflops_avx2, r.gflops_avx512, r.gflops_parallel});
        const double speedup = r.gflops_seed > 0 ? best / r.gflops_seed : 0.0;
        char err[32];
        std::snprintf(err, sizeof(err), "%.1e%s", r.simd_rel_err,
                      r.simd_within_tol ? "" : " BAD");
        char spread[16];
        std::snprintf(spread, sizeof(spread), "%.0f%%", r.spread_max * 100.0);
        table.add_row({r.kernel,
                       std::to_string(r.m) + "x" + std::to_string(r.k) + "x" + std::to_string(r.n),
                       xpcore::Table::num(r.gflops_seed, 2), xpcore::Table::num(r.gflops_blocked, 2),
                       xpcore::Table::num(r.gflops_avx2, 2),
                       xpcore::Table::num(r.gflops_avx512, 2),
                       xpcore::Table::num(r.gflops_parallel, 2),
                       xpcore::Table::num(speedup, 2) + "x", spread,
                       r.bit_identical ? "yes" : "NO", err});
    }
    table.print();
    std::printf("\nspeedup = best(avx2, avx512, active) vs seed; spread = worst\n"
                "(max - min) / median over the %zu timing repeats of any configuration\n"
                "in the row. The scalar blocked kernels are bit-identical to the seed\n"
                "by construction (row-partitioned dispatch preserves accumulation\n"
                "order); the SIMD kernels use FMA and are tolerance-checked at every\n"
                "vector level (max rel err <= %.0e).\n", g_repeats, kSimdRelTol);

    const std::string json_path = args.get("json", "");
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        out << "{\n  \"threads\": " << threads
            << ",\n  \"simd_active\": \""
            << xpcore::simd::level_name(xpcore::simd::active_level())
            << "\",\n  \"results\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& r = results[i];
            out << "    {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.m << ", \"k\": " << r.k
                << ", \"n\": " << r.n << ", \"gflops_seed\": " << r.gflops_seed
                << ", \"gflops_blocked\": " << r.gflops_blocked
                << ", \"gflops_avx2\": " << r.gflops_avx2
                << ", \"gflops_avx512\": " << r.gflops_avx512
                << ", \"gflops_parallel\": " << r.gflops_parallel
                << ", \"spread\": " << r.spread_max
                << ", \"bit_identical\": " << (r.bit_identical ? "true" : "false")
                << ", \"simd_rel_err\": " << r.simd_rel_err << "}"
                << (i + 1 < results.size() ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }
    return all_ok ? 0 : 1;
}
