/// \file serve_throughput.cpp
/// Closed-loop throughput/latency bench of the xpdnnd daemon.
///
/// Starts an in-process serve::Server, seeds its report cache with one
/// regression-modeled task, then hammers it with concurrent client
/// connections doing round-trip "predict" requests. Emits BENCH_serve.json
/// (machine provenance shared with BENCH_nn.json, req/s, latency
/// percentiles, gate verdicts) and exits non-zero when a gate fails.
///
/// Options:
///   --smoke              reduced request counts for the ctest smoke run
///   --json=FILE          output path (default BENCH_serve.json)
///   --connections=N      concurrent clients (default 4)
///   --requests=N         round-trips per connection (default 2000)
///   --workers=N          daemon worker threads (default 2)
///   --verb=predict|ping  request mix (default predict)
///   --min-rps=X          acceptance gate (default 500; 0 disables)
///   --max-p99-ms=X       acceptance gate (default 0 = record only)

#include <cstdio>

#include "serve/throughput.hpp"
#include "xpcore/cli.hpp"

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const bool smoke = args.get_bool("smoke", false);

    serve::ThroughputConfig config;
    config.connections = static_cast<std::size_t>(args.get_int("connections", 4));
    config.requests_per_connection =
        static_cast<std::size_t>(args.get_int("requests", smoke ? 500 : 2000));
    config.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    config.verb = args.get("verb", "predict");
    config.min_rps = args.get_double("min-rps", 500.0);
    config.max_p99_ms = args.get_double("max-p99-ms", 0.0);

    std::printf("== serve_throughput ==\n");
    std::printf("connections %zu x %zu %s round-trips, %zu daemon worker(s)\n",
                config.connections, config.requests_per_connection, config.verb.c_str(),
                config.workers);

    const serve::ThroughputResult result = serve::run_throughput(config);

    std::printf("%zu requests in %.3fs -> %.0f req/s (%zu failures)\n", result.requests,
                result.seconds, result.rps, result.failures);
    std::printf("latency ms: p50 %.3f  p90 %.3f  p99 %.3f  max %.3f\n", result.p50_ms,
                result.p90_ms, result.p99_ms, result.max_ms);

    const std::string json_path = args.get("json", "BENCH_serve.json");
    serve::write_bench_json(config, result, json_path);
    std::printf("wrote %s\n", json_path.c_str());

    if (!result.ok()) {
        std::fprintf(stderr, "serve_throughput: acceptance gate FAILED (rps_ok=%d p99_ok=%d failures=%zu)\n",
                     result.rps_ok, result.p99_ok, result.failures);
        return 1;
    }
    return 0;
}
