/// \file micro_nn.cpp
/// google-benchmark micro benchmarks for the neural-network substrate:
/// GEMM kernels, layer forward/backward, optimizer steps, preprocessing,
/// and end-to-end training throughput — the costs that dominate the
/// adaptive modeler's overhead (Fig. 6).

#include <benchmark/benchmark.h>

#include "dnn/preprocess.hpp"
#include "dnn/training_data.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "xpcore/rng.hpp"

namespace {

void fill_random(nn::Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

void BM_GemmNN(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(1);
    nn::Tensor a(n, n), b(n, n), c(n, n);
    fill_random(a, rng);
    fill_random(b, rng);
    for (auto _ : state) {
        nn::gemm_nn(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n * 2);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(2);
    nn::Tensor a(n, n), b(n, n), c(n, n);
    fill_random(a, rng);
    fill_random(b, rng);
    for (auto _ : state) {
        nn::gemm_nt(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n * 2);
}
BENCHMARK(BM_GemmNT)->Arg(128);

void BM_NetworkForward(benchmark::State& state) {
    const auto batch = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(3);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::Tensor in(batch, 11);
    fill_random(in, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward(in).data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_NetworkForward)->Arg(1)->Arg(128);

void BM_NetworkTrainStep(benchmark::State& state) {
    xpcore::Rng rng(4);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    opt.attach(net.params());
    nn::Tensor in(128, 11);
    fill_random(in, rng);
    std::vector<std::int32_t> labels(128);
    for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<std::int32_t>(i % 43);
    nn::Tensor probs, grad;
    for (auto _ : state) {
        nn::SoftmaxCrossEntropy::softmax(net.forward(in), probs);
        nn::SoftmaxCrossEntropy::backward(probs, labels, grad);
        net.backward(grad);
        opt.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_NetworkTrainStep);

void BM_Preprocess(benchmark::State& state) {
    const std::vector<double> xs = {8, 64, 512, 4096, 32768};
    const std::vector<double> vs = {1.2, 3.4, 9.1, 28.0, 80.5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(dnn::preprocess_line(xs, vs));
    }
}
BENCHMARK(BM_Preprocess);

void BM_TrainingDataGeneration(benchmark::State& state) {
    dnn::GeneratorConfig config;
    config.samples_per_class = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        xpcore::Rng rng(5);
        const auto data = dnn::generate_training_data(config, rng);
        benchmark::DoNotOptimize(data.inputs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 43 * state.range(0));
}
BENCHMARK(BM_TrainingDataGeneration)->Arg(10)->Arg(50);

}  // namespace
