/// \file micro_nn.cpp
/// google-benchmark micro benchmarks for the neural-network substrate:
/// GEMM kernels, layer forward/backward, optimizer steps, preprocessing,
/// and end-to-end training throughput — the costs that dominate the
/// adaptive modeler's overhead (Fig. 6).

#include <benchmark/benchmark.h>

#include <cmath>

#include "dnn/preprocess.hpp"
#include "dnn/training_data.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"

namespace {

// range(…) selects the dispatch level: 0 scalar, 1 AVX2, 2 AVX-512. SIMD
// variants report no iterations on hosts without the level instead of
// failing, so the same benchmark list runs everywhere.
xpcore::simd::Level level_arg(benchmark::State& state, int index) {
    switch (state.range(index)) {
        case 0: return xpcore::simd::Level::Scalar;
        case 1: return xpcore::simd::Level::Avx2;
        default: return xpcore::simd::Level::Avx512;
    }
}

bool skip_unsupported(benchmark::State& state, xpcore::simd::Level level) {
    if (level > xpcore::simd::max_level()) {
        state.SkipWithError(level == xpcore::simd::Level::Avx512
                                ? "AVX-512 not available on this host"
                                : "AVX2+FMA not available on this host");
        return true;
    }
    return false;
}

void fill_random(nn::Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

void BM_GemmNN(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(1);
    nn::Tensor a(n, n), b(n, n), c(n, n);
    fill_random(a, rng);
    fill_random(b, rng);
    for (auto _ : state) {
        nn::gemm_nn(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n * 2);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(2);
    nn::Tensor a(n, n), b(n, n), c(n, n);
    fill_random(a, rng);
    fill_random(b, rng);
    for (auto _ : state) {
        nn::gemm_nt(a, b, c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n * n * n * 2);
}
BENCHMARK(BM_GemmNT)->Arg(128);

// ---- scalar vs SIMD: the elementwise kernels ------------------------------

void BM_Tanh(benchmark::State& state) {
    const auto level = level_arg(state, 1);
    if (skip_unsupported(state, level)) return;
    xpcore::simd::LevelGuard guard(level);
    const auto n = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(11);
    nn::Tensor in(1, n), out(1, n);
    fill_random(in, rng);
    nn::Tanh layer(n);
    for (auto _ : state) {
        layer.forward(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Tanh)
    ->Args({1500, 0})
    ->Args({1500, 1})
    ->Args({1500, 2})
    ->Args({128 * 1500, 0})
    ->Args({128 * 1500, 1})
    ->Args({128 * 1500, 2});

void BM_Softmax(benchmark::State& state) {
    const auto level = level_arg(state, 1);
    if (skip_unsupported(state, level)) return;
    xpcore::simd::LevelGuard guard(level);
    const auto rows = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(12);
    nn::Tensor logits(rows, 43), probs;
    fill_random(logits, rng);
    for (auto _ : state) {
        nn::SoftmaxCrossEntropy::softmax(logits, probs);
        benchmark::DoNotOptimize(probs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_Softmax)->Args({128, 0})->Args({128, 1})->Args({128, 2});

void BM_AdaMaxStep(benchmark::State& state) {
    const auto level = level_arg(state, 1);
    if (skip_unsupported(state, level)) return;
    xpcore::simd::LevelGuard guard(level);
    xpcore::Rng rng(13);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    opt.attach(net.params());
    // Keep gradients non-zero: refill one parameter's grad each iteration
    // (step() zeroes them; the refill cost is negligible next to the update).
    auto params = net.params();
    for (auto& p : params) fill_random(*p.grad, rng);
    for (auto _ : state) {
        for (auto& p : params) p.grad->fill(0.01f);
        opt.step();
        benchmark::DoNotOptimize(params.front().value->data());
    }
    std::int64_t scalars = 0;
    for (auto& p : params) scalars += static_cast<std::int64_t>(p.value->size());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * scalars);
}
BENCHMARK(BM_AdaMaxStep)->Args({0, 0})->Args({0, 1})->Args({0, 2});

void BM_NetworkForward(benchmark::State& state) {
    const auto batch = static_cast<std::size_t>(state.range(0));
    xpcore::Rng rng(3);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::Tensor in(batch, 11);
    fill_random(in, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward(in).data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_NetworkForward)->Arg(1)->Arg(128);

void BM_NetworkTrainStep(benchmark::State& state) {
    xpcore::Rng rng(4);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    opt.attach(net.params());
    nn::Tensor in(128, 11);
    fill_random(in, rng);
    std::vector<std::int32_t> labels(128);
    for (std::size_t i = 0; i < labels.size(); ++i) labels[i] = static_cast<std::int32_t>(i % 43);
    nn::Tensor probs, grad;
    for (auto _ : state) {
        nn::SoftmaxCrossEntropy::softmax(net.forward(in), probs);
        nn::SoftmaxCrossEntropy::backward(probs, labels, grad);
        net.backward(grad);
        opt.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_NetworkTrainStep);

// ---- scalar vs SIMD: one full training epoch ------------------------------
// The end-to-end number behind the ">= 2x epoch time" acceptance criterion;
// tools/bench_record runs this comparison and records it in BENCH_nn.json.

void BM_TrainEpoch(benchmark::State& state) {
    const auto level = level_arg(state, 0);
    if (skip_unsupported(state, level)) return;
    xpcore::simd::LevelGuard guard(level);
    xpcore::Rng rng(14);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 128, true});
    nn::Dataset data;
    const std::size_t samples = 2048;
    data.inputs.resize(samples, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);
    xpcore::Rng train_rng(15);
    for (auto _ : state) {
        const auto stats = trainer.fit(data, train_rng);
        benchmark::DoNotOptimize(stats.loss);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(samples));
}
// 3 repetitions: google-benchmark then reports mean/median/stddev/cv, giving
// the run-to-run spread alongside the headline number (the acceptance
// criteria compare medians, not single runs).
BENCHMARK(BM_TrainEpoch)->Arg(0)->Arg(1)->Arg(2)->Repetitions(3)->ReportAggregatesOnly(true);

// The data-parallel training epoch (Trainer::Config::grad_shards = 4) at
// each dispatch level — the configuration DnnModeler::pretrain() runs with.
// Worker count comes from XPDNN_THREADS; the weights are bit-identical to
// the serial sharded run by construction (tests/test_determinism.cpp).
void BM_TrainEpochSharded(benchmark::State& state) {
    const auto level = level_arg(state, 0);
    if (skip_unsupported(state, level)) return;
    xpcore::simd::LevelGuard guard(level);
    xpcore::Rng rng(16);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer::Config config;
    config.epochs = 1;
    config.batch_size = 128;
    config.grad_shards = 4;
    nn::Trainer trainer(net, opt, config);
    nn::Dataset data;
    const std::size_t samples = 2048;
    data.inputs.resize(samples, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);
    xpcore::Rng train_rng(17);
    for (auto _ : state) {
        const auto stats = trainer.fit(data, train_rng);
        benchmark::DoNotOptimize(stats.loss);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(samples));
}
BENCHMARK(BM_TrainEpochSharded)->Arg(0)->Arg(1)->Arg(2)->Repetitions(3)->ReportAggregatesOnly(true);

void BM_Preprocess(benchmark::State& state) {
    const std::vector<double> xs = {8, 64, 512, 4096, 32768};
    const std::vector<double> vs = {1.2, 3.4, 9.1, 28.0, 80.5};
    for (auto _ : state) {
        benchmark::DoNotOptimize(dnn::preprocess_line(xs, vs));
    }
}
BENCHMARK(BM_Preprocess);

void BM_TrainingDataGeneration(benchmark::State& state) {
    dnn::GeneratorConfig config;
    config.samples_per_class = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        xpcore::Rng rng(5);
        const auto data = dnn::generate_training_data(config, rng);
        benchmark::DoNotOptimize(data.inputs.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 43 * state.range(0));
}
BENCHMARK(BM_TrainingDataGeneration)->Arg(10)->Arg(50);

}  // namespace
