/// \file xpdnnd.cpp
/// The standalone xpdnnd daemon binary: modeling-as-a-service over
/// newline-delimited JSON on loopback TCP. Identical to `xpdnn serve`
/// (both call serve::daemon_main); this entry point exists so deployments
/// can ship the daemon without the rest of the CLI.
///
///     xpdnnd --port=7979 --workers=2
///     xpdnn request --port=7979 '{"verb": "ping"}'
///
/// SIGTERM/SIGINT begin a graceful drain: stop accepting, finish queued
/// and in-flight requests, flush responses, exit 0.

#include <iostream>

#include "serve/daemon.hpp"
#include "xpcore/cli.hpp"

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    if (args.has("help")) {
        std::cout << "usage: xpdnnd [--port=N] [--workers=N] [--queue=N] "
                     "[--deadline-ms=N] [--cache=N] [--no-warm] [--net=PROFILE] "
                     "[--seed=S] [--drain-after-ms=N] [--store=DIR] "
                     "[--store-capacity=N]\n";
        return 0;
    }
    return serve::daemon_main(args, std::cout, std::cerr);
}
