/// \file xpdnn.cpp
/// The xpdnn command-line tool: model measurements, analyze noise, evaluate
/// stored models, and generate simulated case-study campaigns. All logic
/// lives in the `cli` library (src/cli) so it is unit tested.

#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) { return cli::run(argc, argv, std::cout, std::cerr); }
