// Deterministic mutation fuzzer for the text-input pipeline.
//
// Exercises measure::try_load_text / try_load_archive, dnn::preprocess_line,
// and the report/model JSON readers (modeling/report.hpp) with five kinds of
// input per iteration:
//
//   1. Clean, serializer-produced files: must load, and must round-trip
//      bit-exactly (save -> load -> save yields identical bytes).
//   2. Mutated files (byte flips, truncation, NaN/Inf/overflow tokens,
//      CRLF conversion, locale-style commas, line shuffles, ...): must
//      either load or be rejected with a structured xpcore::Diagnostic.
//      No other exception type and no crash is acceptable.
//   3. Random (mostly invalid) preprocess_line inputs: must either produce
//      an all-finite network input or throw xpcore::ValidationError.
//   4. Clean report documents from modeling::to_json: must parse back and
//      re-serialize byte-exactly, and model_from_json_document must agree
//      with the report's has_model flag.
//   5. Mutated report/model JSON through model_from_json_document (the
//      `xpdnn predict` entry point, which accepts both schemas): must
//      either return a model or throw a typed xpcore::Error — never any
//      other exception, never a crash.
//   6. Noise specs through parse_noise_spec: well-formed family:level
//      strings must round-trip exactly; arbitrary text must parse or be
//      rejected with a typed xpcore::Error.
//   7. The noise-family zoo itself: every registered family at a random
//      level must sample finite values, estimate a finite non-negative
//      level, and produce a registered detect_family verdict.
//   8. Clean "xpdnn.arch" binary archives (both shapes, saved and streamed
//      through the append path): must open, materialize to the text-identical
//      document, and re-serialize byte-exactly.
//   9. Mutated binary archives (bit flips, truncation, zeroed runs, u64
//      offset/count bombs): Reader::open must accept or throw a typed
//      xpcore::Error, and on a typed miss the streaming Writer must repair
//      (move the file to ".corrupt", publish a fresh openable archive).
//  10. Clean durable-store blobs (xpcore/store.hpp, arbitrary binary keys
//      and payloads): put must publish, and load — same instance or a fresh
//      one over the directory — must return the byte-identical payload.
//  11. Mutated durable-store blobs: load must return the original payload
//      (no-op mutation) or miss without throwing, and a re-put must repair
//      the slot in place.
//
// The run is fully deterministic for a given --seed, so any failure is
// reproducible with the printed iteration number.
//
// Usage: fuzz_inputs [--iterations=N] [--seed=S]
//        [--only=report|noise|archive|store] [--verbose]

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dnn/preprocess.hpp"
#include "measure/archive.hpp"
#include "measure/binary.hpp"
#include "measure/io.hpp"
#include "modeling/report.hpp"
#include "noise/injector.hpp"
#include "noise/model.hpp"
#include "pmnf/model.hpp"
#include "pmnf/serialize.hpp"
#include "xpcore/error.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/store.hpp"

namespace {

struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t violations = 0;
};

std::string param_name(xpcore::Rng& rng) {
    static const std::vector<std::string> names = {"p", "n", "d", "g", "size", "ranks"};
    return rng.pick(names);
}

/// A random well-formed experiment set (the building block for both the
/// text and the binary clean-input checks).
measure::ExperimentSet random_set(xpcore::Rng& rng) {
    const std::size_t arity = 1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
    std::vector<std::string> names;
    for (std::size_t i = 0; i < arity; ++i) names.push_back(param_name(rng) + std::to_string(i));
    measure::ExperimentSet set(names);
    const int rows = static_cast<int>(rng.uniform_int(1, 12));
    for (int r = 0; r < rows; ++r) {
        measure::Coordinate point;
        for (std::size_t i = 0; i < arity; ++i) point.push_back(rng.uniform(1.0, 1e5));
        std::vector<double> values;
        const int reps = static_cast<int>(rng.uniform_int(1, 5));
        for (int v = 0; v < reps; ++v) {
            double value = rng.uniform(-1e3, 1e6);
            if (rng.chance(0.05)) value = 0.0;
            if (rng.chance(0.05)) value = rng.uniform(-1e-12, 1e-12);
            values.push_back(value);
        }
        set.add(point, values);
    }
    return set;
}

measure::Archive random_archive(xpcore::Rng& rng) {
    measure::Archive archive({"p", "n"});
    const int entries = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < entries; ++e) {
        measure::ExperimentSet set({"p", "n"});
        const int rows = static_cast<int>(rng.uniform_int(1, 6));
        for (int r = 0; r < rows; ++r) {
            set.add({rng.uniform(1.0, 64.0), rng.uniform(1.0, 4096.0)},
                    {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
        }
        archive.add("kernel" + std::to_string(e), "time", std::move(set));
    }
    return archive;
}

/// A syntactically valid experiment file straight from the serializer.
std::string clean_set_text(xpcore::Rng& rng) {
    std::ostringstream out;
    measure::save_text(random_set(rng), out);
    return out.str();
}

std::string clean_archive_text(xpcore::Rng& rng) {
    std::ostringstream out;
    measure::save_archive(random_archive(rng), out);
    return out.str();
}

/// Apply 1..4 random structural mutations to a well-formed file.
std::string mutate(std::string text, xpcore::Rng& rng) {
    static const std::vector<std::string> poison = {
        "nan", "-nan", "inf", "-inf", "1e999", "-1e999", "1e-999", "0x1p4",
        "4x7",  "--3",  ":",   "",    "\t",    "params:", "kernel:"};
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) {
        if (text.empty()) break;
        switch (rng.uniform_int(0, 8)) {
            case 0: {  // flip one byte to a random printable (or NUL) char
                const auto pos = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
                text[pos] = static_cast<char>(rng.uniform_int(0, 126));
                break;
            }
            case 1: {  // truncate
                text.resize(static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(text.size()))));
                break;
            }
            case 2: {  // inject a poison token at a random position
                const auto pos = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(text.size())));
                text.insert(pos, " " + rng.pick(poison) + " ");
                break;
            }
            case 3: {  // convert to CRLF line endings
                std::string crlf;
                for (char c : text) {
                    if (c == '\n') crlf += '\r';
                    crlf += c;
                }
                text = crlf;
                break;
            }
            case 4: {  // locale-style decimal commas
                for (char& c : text) {
                    if (c == '.' && rng.chance(0.5)) c = ',';
                }
                break;
            }
            case 5: {  // duplicate a random line
                std::vector<std::string> lines;
                std::istringstream in(text);
                std::string line;
                while (std::getline(in, line)) lines.push_back(line);
                if (lines.empty()) break;
                const auto i = static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(lines.size()) - 1));
                lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
                text.clear();
                for (const auto& l : lines) text += l + "\n";
                break;
            }
            case 6: {  // shuffle all lines
                std::vector<std::string> lines;
                std::istringstream in(text);
                std::string line;
                while (std::getline(in, line)) lines.push_back(line);
                rng.shuffle(lines);
                text.clear();
                for (const auto& l : lines) text += l + "\n";
                break;
            }
            case 7: {  // drop the trailing newline / append junk whitespace
                if (rng.chance(0.5) && !text.empty() && text.back() == '\n') {
                    text.pop_back();
                } else {
                    text += rng.chance(0.5) ? "   \t " : "\r\n\r\n";
                }
                break;
            }
            case 8: {  // insert blank/comment noise lines at the front
                text.insert(0, rng.chance(0.5) ? "# fuzz comment\n\n" : "\n   \n");
                break;
            }
        }
    }
    return text;
}

void violation(Stats& stats, std::uint64_t iter, const std::string& what,
               const std::string& input) {
    ++stats.violations;
    std::cerr << "VIOLATION at iteration " << iter << ": " << what << "\n";
    std::cerr << "--- input (" << input.size() << " bytes) ---\n" << input << "\n---\n";
}

/// Clean inputs must parse and round-trip bit-exactly.
template <typename LoadFn, typename SaveFn>
void check_clean(Stats& stats, std::uint64_t iter, const std::string& text, LoadFn load,
                 SaveFn save) {
    try {
        auto first = load(text);
        std::ostringstream out1;
        save(first, out1);
        auto second = load(out1.str());
        std::ostringstream out2;
        save(second, out2);
        if (out1.str() != out2.str()) {
            violation(stats, iter, "clean input does not round-trip bit-exactly", text);
            return;
        }
        ++stats.accepted;
    } catch (const xpcore::Error& e) {
        violation(stats, iter, std::string("clean input rejected: ") + e.what(), text);
    } catch (const std::exception& e) {
        violation(stats, iter, std::string("clean input raised non-taxonomy exception: ") + e.what(),
                  text);
    }
}

/// Mutated inputs must load or yield structured diagnostics — nothing else.
template <typename TryLoadFn>
void check_mutated(Stats& stats, std::uint64_t iter, const std::string& text, TryLoadFn try_load) {
    try {
        const auto result = try_load(text);
        if (result.ok()) {
            if (!result.diagnostics.empty()) {
                violation(stats, iter, "ok() load carries diagnostics", text);
                return;
            }
            ++stats.accepted;
            return;
        }
        if (result.diagnostics.empty()) {
            violation(stats, iter, "rejected input carries no diagnostics", text);
            return;
        }
        for (const auto& d : result.diagnostics) {
            if (d.message.empty() || d.source != "<fuzz>") {
                violation(stats, iter, "diagnostic missing message or source", text);
                return;
            }
        }
        ++stats.rejected;
    } catch (const std::exception& e) {
        violation(stats, iter, std::string("try_load threw: ") + e.what(), text);
    } catch (...) {
        violation(stats, iter, "try_load threw a non-std exception", text);
    }
}

void check_preprocess(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 13));
    std::vector<double> xs, vs;
    double x = rng.uniform(-10.0, 10.0);
    for (std::size_t i = 0; i < n; ++i) {
        x += rng.uniform(-1.0, 100.0);  // occasionally non-increasing / negative
        double xi = x;
        double vi = rng.uniform(-1e9, 1e9);
        if (rng.chance(0.05)) xi = std::nan("");
        if (rng.chance(0.05)) vi = std::numeric_limits<double>::infinity();
        if (rng.chance(0.05)) xi = 0.0;
        xs.push_back(xi);
        vs.push_back(vi);
    }
    if (rng.chance(0.1) && !vs.empty()) vs.pop_back();  // size mismatch
    std::ostringstream desc;
    desc << "preprocess_line n=" << xs.size() << "/" << vs.size();
    try {
        const auto input = dnn::preprocess_line(xs, vs);
        for (float v : input) {
            if (!std::isfinite(v)) {
                violation(stats, iter, "preprocess_line produced a non-finite input", desc.str());
                return;
            }
        }
        ++stats.accepted;
    } catch (const xpcore::ValidationError&) {
        ++stats.rejected;  // structured rejection is the contract
    } catch (const std::exception& e) {
        violation(stats, iter, std::string("preprocess_line raised non-taxonomy exception: ") + e.what(),
                  desc.str());
    }
}

// ---- report / model JSON --------------------------------------------------

pmnf::Model random_model(xpcore::Rng& rng) {
    std::vector<pmnf::CompoundTerm> terms;
    const int term_count = static_cast<int>(rng.uniform_int(0, 3));
    for (int t = 0; t < term_count; ++t) {
        pmnf::CompoundTerm term;
        term.coefficient = rng.uniform(-1e3, 1e3);
        const int factor_count = static_cast<int>(rng.uniform_int(1, 3));
        for (int f = 0; f < factor_count; ++f) {
            pmnf::TermFactor factor;
            factor.parameter = static_cast<std::size_t>(rng.uniform_int(0, 2));
            factor.cls.i = pmnf::Rational(static_cast<int>(rng.uniform_int(0, 5)),
                                          static_cast<int>(rng.uniform_int(1, 5)));
            factor.cls.j = static_cast<int>(rng.uniform_int(0, 2));
            term.factors.push_back(factor);
        }
        terms.push_back(std::move(term));
    }
    return pmnf::Model(rng.uniform(-10.0, 100.0), std::move(terms));
}

modeling::ReportEntry random_entry(xpcore::Rng& rng) {
    modeling::ReportEntry entry;
    entry.model = random_model(rng);
    entry.cv_smape = rng.uniform(0.0, 100.0);
    entry.fit_smape = rng.uniform(0.0, 100.0);
    return entry;
}

modeling::Report random_report(xpcore::Rng& rng) {
    static const std::vector<std::string> modelers = {"regression", "dnn", "ensemble",
                                                      "adaptive", "batch", "noise"};
    // Task labels exercise the string escaping paths (quotes, control chars).
    static const std::vector<std::string> tasks = {
        "", "kernel0", "update electrical activity", "with \"quotes\"",
        "tab\there", "line\nbreak", std::string("ctrl\x01char"), "back\\slash"};
    modeling::Report report;
    report.modeler = rng.pick(modelers);
    report.task = rng.pick(tasks);
    report.config_hash = (static_cast<std::uint64_t>(rng.uniform_int(0, 0xFFFFFFFF)) << 32) |
                         static_cast<std::uint64_t>(rng.uniform_int(0, 0xFFFFFFFF));
    report.noise.estimate = rng.uniform(0.0, 2.0);
    report.noise.min = rng.uniform(0.0, 0.1);
    report.noise.max = rng.uniform(0.1, 3.0);
    report.noise.mean = rng.uniform(0.0, 1.0);
    report.noise.median = rng.uniform(0.0, 1.0);
    // Version-2 noise block: a registered family plus the arbiter fields, so
    // the clean-report round trip covers the family-aware schema.
    report.noise.family = rng.pick(noise::registered_families());
    report.noise.family_level = rng.uniform(0.0, 1.0);
    report.noise.detection_score = rng.uniform(-50.0, 50.0);
    report.winner = rng.chance(0.5) ? "regression" : "dnn";
    report.used_regression = rng.chance(0.7);
    report.used_dnn = rng.chance(0.7);
    report.cluster = static_cast<std::size_t>(rng.uniform_int(0, 5));
    report.timings.regression_seconds = rng.uniform(0.0, 1.0);
    report.timings.dnn_seconds = rng.uniform(0.0, 60.0);
    report.timings.total_seconds = rng.uniform(0.0, 61.0);
    report.has_model = rng.chance(0.8);
    if (report.has_model) {
        report.selected = random_entry(rng);
        const int alternatives = static_cast<int>(rng.uniform_int(0, 2));
        for (int a = 0; a < alternatives; ++a) report.alternatives.push_back(random_entry(rng));
    } else {
        report.winner.clear();
    }
    return report;
}

/// Clean reports must round-trip byte-exactly, and the model extractor must
/// agree with has_model (returning the selected model, or rejecting a
/// diagnostic-only report with a ValidationError).
void check_clean_report(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    const modeling::Report report = random_report(rng);
    const std::string text = modeling::to_json(report);
    try {
        const modeling::Report parsed = modeling::report_from_json(text, "<fuzz>");
        if (modeling::to_json(parsed) != text) {
            violation(stats, iter, "clean report does not round-trip bit-exactly", text);
            return;
        }
        try {
            const pmnf::Model model = modeling::model_from_json_document(text, "<fuzz>");
            if (!report.has_model) {
                violation(stats, iter, "extracted a model from a diagnostic-only report", text);
                return;
            }
            if (pmnf::to_json(model) != pmnf::to_json(report.selected.model)) {
                violation(stats, iter, "extracted model differs from the selected model", text);
                return;
            }
        } catch (const xpcore::ValidationError&) {
            if (report.has_model) {
                violation(stats, iter, "model-bearing report rejected by the extractor", text);
                return;
            }
        }
        ++stats.accepted;
    } catch (const xpcore::Error& e) {
        violation(stats, iter, std::string("clean report rejected: ") + e.what(), text);
    } catch (const std::exception& e) {
        violation(stats, iter,
                  std::string("clean report raised non-taxonomy exception: ") + e.what(), text);
    }
}

/// Mutated report/model documents through the `xpdnn predict` entry point:
/// either a model comes back or a typed xpcore::Error is thrown.
void check_mutated_document(Stats& stats, std::uint64_t iter, const std::string& text) {
    try {
        (void)modeling::model_from_json_document(text, "<fuzz>");
        ++stats.accepted;
    } catch (const xpcore::Error& e) {
        if (std::string(e.what()).empty()) {
            violation(stats, iter, "document rejected with an empty message", text);
            return;
        }
        ++stats.rejected;
    } catch (const std::exception& e) {
        violation(stats, iter,
                  std::string("model_from_json_document raised non-taxonomy exception: ") +
                      e.what(),
                  text);
    } catch (...) {
        violation(stats, iter, "model_from_json_document threw a non-std exception", text);
    }
}

// ---- noise-family zoo -----------------------------------------------------

/// Well-formed family:level specs must parse back exactly; arbitrary spec
/// text must either parse or throw a typed xpcore::Error (ParseError for
/// undecodable text, ValidationError for out-of-domain values) — never any
/// other exception, never a crash.
void check_noise_spec(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    std::string text;
    if (rng.chance(0.4)) {  // clean spec: must round-trip exactly
        const std::string family = rng.pick(noise::registered_families());
        const double level = rng.uniform(0.0, 2.0);
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%s:%.17g", family.c_str(), level);
        text = buffer;
        try {
            const auto spec = noise::parse_noise_spec(text, "<fuzz>");
            if (spec.family != family || spec.level != level) {
                violation(stats, iter, "clean noise spec does not round-trip exactly", text);
                return;
            }
            ++stats.accepted;
        } catch (const std::exception& e) {
            violation(stats, iter, std::string("clean noise spec rejected: ") + e.what(), text);
        }
        return;
    }
    // Garbage: random characters drawn from a charset biased towards family
    // names, digits, separators, and poison tokens.
    static const std::string charset = "uniformgauslX:0123456789.,+-eE \tnaif%";
    const std::size_t length = static_cast<std::size_t>(rng.uniform_int(0, 24));
    for (std::size_t i = 0; i < length; ++i) {
        text += charset[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(charset.size()) - 1))];
    }
    try {
        const auto spec = noise::parse_noise_spec(text, "<fuzz>");
        if (!noise::is_registered_family(spec.family) || !std::isfinite(spec.level) ||
            spec.level < 0.0) {
            violation(stats, iter, "parse_noise_spec accepted an invalid spec", text);
            return;
        }
        ++stats.accepted;
    } catch (const xpcore::Error& e) {
        if (std::string(e.what()).empty()) {
            violation(stats, iter, "noise spec rejected with an empty message", text);
            return;
        }
        ++stats.rejected;
    } catch (const std::exception& e) {
        violation(stats, iter,
                  std::string("parse_noise_spec raised non-taxonomy exception: ") + e.what(), text);
    }
}

/// Every registered family at a random level must inject finite values,
/// estimate a finite non-negative level, and yield a registered arbiter
/// verdict with finite score — on clean inputs nothing may throw.
void check_noise_models(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    const std::string family = rng.pick(noise::registered_families());
    const double level = rng.uniform(0.0, 1.2);
    std::ostringstream desc;
    desc << "noise family=" << family << " level=" << level;
    try {
        measure::ExperimentSet set({"p"});
        noise::Injector injector(family, level, rng);
        const int points = static_cast<int>(rng.uniform_int(2, 20));
        const std::size_t reps = static_cast<std::size_t>(rng.uniform_int(1, 6));
        for (int p = 1; p <= points; ++p) {
            const double truth = rng.uniform(0.1, 1e6);
            for (double value : injector.repetitions(truth, reps)) {
                if (!std::isfinite(value)) {
                    violation(stats, iter, "injector produced a non-finite value", desc.str());
                    return;
                }
            }
            set.add({static_cast<double>(p)}, injector.repetitions(truth, reps));
        }
        const double estimated = noise::noise_model(family).estimate_level(set);
        if (!std::isfinite(estimated) || estimated < 0.0) {
            violation(stats, iter, "estimate_level is non-finite or negative", desc.str());
            return;
        }
        const auto detection = noise::detect_family(set);
        if (!noise::is_registered_family(detection.family) || !std::isfinite(detection.level) ||
            detection.level < 0.0 || !std::isfinite(detection.score)) {
            violation(stats, iter, "detect_family verdict violates its invariants", desc.str());
            return;
        }
        ++stats.accepted;
    } catch (const std::exception& e) {
        violation(stats, iter, std::string("noise pipeline threw on clean input: ") + e.what(),
                  desc.str());
    }
}

// ---- "xpdnn.arch" binary archives -----------------------------------------

/// Scratch directory for the file-based binary checks (Reader/Writer work on
/// paths, not streams). Created on first use, removed at the end of main.
const std::string& fuzz_scratch_dir() {
    static const std::string dir = [] {
        namespace fs = std::filesystem;
        const fs::path d =
            fs::temp_directory_path() / ("xpdnn_fuzz_" + std::to_string(::getpid()));
        fs::create_directories(d);
        return d.string();
    }();
    return dir;
}

std::string read_file_bytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_file_bytes(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Apply 1..4 random binary mutations: bit/byte flips, truncation, appended
/// junk, zeroed runs, and u64-field bombs (huge offsets/counts written over
/// aligned header or table fields).
std::string mutate_binary(std::string bytes, xpcore::Rng& rng) {
    const int mutations = static_cast<int>(rng.uniform_int(1, 4));
    for (int m = 0; m < mutations; ++m) {
        if (bytes.empty()) break;
        const auto size = static_cast<std::int64_t>(bytes.size());
        switch (rng.uniform_int(0, 5)) {
            case 0: {  // overwrite one byte with a random value
                bytes[static_cast<std::size_t>(rng.uniform_int(0, size - 1))] =
                    static_cast<char>(rng.uniform_int(0, 255));
                break;
            }
            case 1: {  // flip a single bit
                const auto pos = static_cast<std::size_t>(rng.uniform_int(0, size - 1));
                bytes[pos] = static_cast<char>(
                    static_cast<unsigned char>(bytes[pos]) ^ (1u << rng.uniform_int(0, 7)));
                break;
            }
            case 2: {  // truncate (including to zero: an empty file)
                bytes.resize(static_cast<std::size_t>(rng.uniform_int(0, size)));
                break;
            }
            case 3: {  // append junk bytes
                const int extra = static_cast<int>(rng.uniform_int(1, 64));
                for (int i = 0; i < extra; ++i) {
                    bytes += static_cast<char>(rng.uniform_int(0, 255));
                }
                break;
            }
            case 4: {  // u64 bomb: a huge value over an 8-aligned field
                if (bytes.size() < 8) break;
                const auto slot = rng.uniform_int(0, (size - 8) / 8);
                std::uint64_t bomb = static_cast<std::uint64_t>(rng.uniform_int(0, 0xFFFF))
                                     << static_cast<unsigned>(rng.uniform_int(0, 48));
                for (int b = 0; b < 8; ++b) {
                    bytes[static_cast<std::size_t>(slot * 8 + b)] =
                        static_cast<char>((bomb >> (8 * b)) & 0xFF);
                }
                break;
            }
            case 5: {  // zero a run of up to 64 bytes
                const auto pos = static_cast<std::size_t>(rng.uniform_int(0, size - 1));
                const auto run = std::min<std::size_t>(
                    static_cast<std::size_t>(rng.uniform_int(1, 64)), bytes.size() - pos);
                for (std::size_t i = 0; i < run; ++i) bytes[pos + i] = '\0';
                break;
            }
        }
    }
    return bytes;
}

/// Clean binary files (both shapes, saved and streamed) must open, must
/// materialize to the text-identical document, and must re-serialize to the
/// byte-identical binary image.
void check_clean_binary(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    const std::string path = fuzz_scratch_dir() + "/clean.arch";
    const std::string repath = fuzz_scratch_dir() + "/clean2.arch";
    std::string desc = "binary clean";
    try {
        if (rng.chance(0.5)) {  // single experiment set shape
            const measure::ExperimentSet set = random_set(rng);
            desc += " set";
            if (rng.chance(0.5)) {  // streamed via the append path
                std::filesystem::remove(path);
                measure::append_binary_set_file(path, set);
                desc += " (streamed)";
            } else {
                measure::save_binary_file(set, path);
            }
            const measure::ExperimentSet loaded = measure::load_binary_set_file(path);
            std::ostringstream expected, actual;
            measure::save_text(set, expected);
            measure::save_text(loaded, actual);
            if (expected.str() != actual.str()) {
                violation(stats, iter, "binary set does not round-trip to identical text", desc);
                return;
            }
            measure::save_binary_file(loaded, repath);
        } else {  // multi-kernel archive shape
            const measure::Archive archive = random_archive(rng);
            desc += " archive";
            if (rng.chance(0.5)) {  // streamed: one append commit per entry
                std::filesystem::remove(path);
                for (const measure::ArchiveEntry& entry : archive.entries()) {
                    measure::append_binary_file(path, entry.kernel, entry.metric,
                                                entry.experiments);
                }
                desc += " (streamed)";
            } else {
                measure::save_binary_file(archive, path);
            }
            const measure::Archive loaded = measure::load_binary_archive_file(path);
            std::ostringstream expected, actual;
            measure::save_archive(archive, expected);
            measure::save_archive(loaded, actual);
            if (expected.str() != actual.str()) {
                violation(stats, iter, "binary archive does not round-trip to identical text",
                          desc);
                return;
            }
            measure::save_binary_file(loaded, repath);
        }
        if (read_file_bytes(path) != read_file_bytes(repath)) {
            violation(stats, iter, "binary re-serialization is not byte-identical", desc);
            return;
        }
        ++stats.accepted;
    } catch (const std::exception& e) {
        violation(stats, iter, std::string("clean binary input raised: ") + e.what(), desc);
    }
}

/// Mutated binary files must either still open (mutation landed in padding
/// or was a no-op) or be rejected with a typed xpcore error — and in that
/// case the streaming Writer must treat the file as a typed miss: move it to
/// "<path>.corrupt" and publish a fresh, openable archive in its place.
void check_mutated_binary(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    namespace fs = std::filesystem;
    const std::string path = fuzz_scratch_dir() + "/mutated.arch";
    const std::string corrupt = path + ".corrupt";

    std::vector<std::string> params;
    std::uint32_t flags = 0;
    if (rng.chance(0.5)) {
        const measure::ExperimentSet set = random_set(rng);
        params = set.parameter_names();
        flags = xpcore::archive::kFlagSingleSet;
        measure::save_binary_file(set, path);
    } else {
        params = {"p", "n"};
        measure::save_binary_file(random_archive(rng), path);
    }
    const std::string bytes = mutate_binary(read_file_bytes(path), rng);
    write_file_bytes(path, bytes);
    std::error_code ec;
    fs::remove(corrupt, ec);

    std::ostringstream desc;
    desc << "binary mutated (" << bytes.size() << " bytes, flags " << flags << ")";
    try {
        (void)xpcore::archive::Reader::open(path, /*verify_content=*/true);
        // Still healthy: the fingerprints cover names and flags, so the
        // Writer must recognize it and continue appending.
        xpcore::archive::Writer writer(path, params, flags);
        if (writer.status() != xpcore::archive::Writer::OpenStatus::Appending) {
            violation(stats, iter, "Writer did not append to a healthy mutated archive",
                      desc.str());
            return;
        }
        ++stats.accepted;
    } catch (const xpcore::Error& e) {
        if (std::string(e.what()).empty()) {
            violation(stats, iter, "mutated archive rejected with an empty message", desc.str());
            return;
        }
        // Typed miss: the Writer must repair (move aside + fresh start) and
        // an empty first commit must leave an openable archive behind.
        try {
            xpcore::archive::Writer writer(path, params, flags);
            if (writer.status() != xpcore::archive::Writer::OpenStatus::Repaired) {
                violation(stats, iter, "Writer did not repair a corrupt archive", desc.str());
                return;
            }
            if (!fs::exists(corrupt)) {
                violation(stats, iter, "repair did not preserve the corrupt file", desc.str());
                return;
            }
            writer.commit();
            (void)xpcore::archive::Reader::open(path, /*verify_content=*/true);
        } catch (const std::exception& repair_error) {
            violation(stats, iter,
                      std::string("repair after typed miss failed: ") + repair_error.what(),
                      desc.str());
            return;
        }
        ++stats.rejected;
    } catch (const std::exception& e) {
        violation(stats, iter,
                  std::string("mutated archive raised non-taxonomy exception: ") + e.what(),
                  desc.str());
    } catch (...) {
        violation(stats, iter, "mutated archive raised a non-std exception", desc.str());
    }
}

// ---- durable store (xpcore/store.hpp) ---------------------------------------

/// Arbitrary binary key: the store hashes it into the file name, so any
/// byte sequence (NULs, slashes, high bits) must work.
std::string random_store_key(xpcore::Rng& rng) {
    std::string key(static_cast<std::size_t>(rng.uniform_int(1, 32)), '\0');
    for (auto& c : key) c = static_cast<char>(rng.uniform_int(0, 255));
    return key;
}

std::string random_store_payload(xpcore::Rng& rng) {
    std::string payload(static_cast<std::size_t>(rng.uniform_int(0, 2048)), '\0');
    for (auto& c : payload) c = static_cast<char>(rng.uniform_int(0, 255));
    return payload;
}

/// Store config over a scratch subdirectory, with warnings captured into
/// `warnings` instead of spamming stderr across thousands of iterations.
xpcore::store::Config fuzz_store_config(const std::string& sub,
                                        std::vector<std::string>* warnings) {
    xpcore::store::Config config;
    config.dir = fuzz_scratch_dir() + "/" + sub;
    config.prefix = "fz";
    config.warn = [warnings](const xpcore::Diagnostic& diagnostic) {
        warnings->push_back(diagnostic.format());
    };
    return config;
}

/// Clean store traffic: every put must publish and load back byte-identical,
/// both from the putting instance and from a fresh instance over the same
/// directory (the restart path).
void check_clean_store(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    std::vector<std::string> warnings;
    const xpcore::store::Config config = fuzz_store_config("store_clean", &warnings);
    std::error_code ec;
    std::filesystem::remove_all(config.dir, ec);

    std::map<std::string, std::string> expected;  // last put per key wins
    const int puts = static_cast<int>(rng.uniform_int(1, 4));
    const std::string desc = "store clean (" + std::to_string(puts) + " puts)";
    try {
        {
            xpcore::store::Store store(config);
            for (int i = 0; i < puts; ++i) {
                const std::string key = random_store_key(rng);
                const std::string payload = random_store_payload(rng);
                if (!store.put(key, payload)) {
                    violation(stats, iter, "clean store put failed", desc);
                    return;
                }
                expected[key] = payload;
            }
            for (const auto& [key, payload] : expected) {
                const auto loaded = store.load(key);
                if (!loaded.has_value() || *loaded != payload) {
                    violation(stats, iter, "clean store load is not byte-identical", desc);
                    return;
                }
            }
        }
        xpcore::store::Store reopened(config);
        for (const auto& [key, payload] : expected) {
            const auto loaded = reopened.load(key);
            if (!loaded.has_value() || *loaded != payload) {
                violation(stats, iter, "store load after reopen is not byte-identical", desc);
                return;
            }
        }
        if (!warnings.empty()) {
            violation(stats, iter, "clean store traffic warned: " + warnings.front(), desc);
            return;
        }
        ++stats.accepted;
    } catch (const std::exception& e) {
        violation(stats, iter, std::string("clean store traffic raised: ") + e.what(), desc);
    }
}

/// Mutated store blobs: load must return the original payload (the mutation
/// was a no-op) or miss — never throw, never hand back different bytes —
/// and a re-put must repair the slot in place.
void check_mutated_store(Stats& stats, std::uint64_t iter, xpcore::Rng& rng) {
    std::vector<std::string> warnings;
    const xpcore::store::Config config = fuzz_store_config("store_mut", &warnings);
    std::error_code ec;
    std::filesystem::remove_all(config.dir, ec);

    const std::string key = random_store_key(rng);
    const std::string payload = random_store_payload(rng);
    std::string blob;
    {
        xpcore::store::Store store(config);
        if (!store.put(key, payload)) return;  // scratch dir unusable; skip
        blob = store.path_for(key);
    }
    write_file_bytes(blob, mutate_binary(read_file_bytes(blob), rng));

    std::ostringstream desc;
    desc << "store mutated (key " << key.size() << "B, payload " << payload.size() << "B)";
    try {
        xpcore::store::Store store(config);
        const auto loaded = store.load(key);
        if (loaded.has_value()) {
            if (*loaded != payload) {
                violation(stats, iter, "mutated store blob loaded as different bytes",
                          desc.str());
                return;
            }
            ++stats.accepted;
            return;
        }
        // Typed miss (quarantined or stale): the next put repairs in place.
        if (!store.put(key, payload)) {
            violation(stats, iter, "store put failed to repair after a miss", desc.str());
            return;
        }
        const auto repaired = store.load(key);
        if (!repaired.has_value() || *repaired != payload) {
            violation(stats, iter, "store repair did not restore the payload", desc.str());
            return;
        }
        ++stats.rejected;
    } catch (const std::exception& e) {
        violation(stats, iter, std::string("mutated store blob raised: ") + e.what(),
                  desc.str());
    } catch (...) {
        violation(stats, iter, "mutated store blob raised a non-std exception", desc.str());
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::uint64_t iterations = 10000;
    std::uint64_t seed = 1;
    bool verbose = false;
    bool only_report = false;
    bool only_noise = false;
    bool only_archive = false;
    bool only_store = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--iterations=", 0) == 0) {
            iterations = std::strtoull(arg.c_str() + 13, nullptr, 10);
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (arg == "--only=report") {
            only_report = true;
        } else if (arg == "--only=noise") {
            only_noise = true;
        } else if (arg == "--only=archive") {
            only_archive = true;
        } else if (arg == "--only=store") {
            only_store = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else {
            std::cerr << "usage: fuzz_inputs [--iterations=N] [--seed=S] "
                         "[--only=report|noise|archive|store] [--verbose]\n";
            return 2;
        }
    }

    Stats stats;
    xpcore::Rng master(seed);
    const auto load_set = [](const std::string& text) {
        std::istringstream in(text);
        return measure::load_text(in, "<fuzz>");
    };
    const auto save_set = [](const measure::ExperimentSet& set, std::ostringstream& out) {
        measure::save_text(set, out);
    };
    const auto load_arch = [](const std::string& text) {
        std::istringstream in(text);
        return measure::load_archive(in, "<fuzz>");
    };
    const auto save_arch = [](const measure::Archive& archive, std::ostringstream& out) {
        measure::save_archive(archive, out);
    };
    const auto try_set = [](const std::string& text) {
        std::istringstream in(text);
        return measure::try_load_text(in, "<fuzz>");
    };
    const auto try_arch = [](const std::string& text) {
        std::istringstream in(text);
        return measure::try_load_archive(in, "<fuzz>");
    };

    for (std::uint64_t iter = 0; iter < iterations; ++iter) {
        xpcore::Rng rng = master.split();
        switch (only_report    ? 5 + iter % 2
                : only_noise   ? 7 + iter % 2
                : only_archive ? 9 + iter % 2
                : only_store   ? 11 + iter % 2
                               : iter % 13) {
            case 0: check_clean(stats, iter, clean_set_text(rng), load_set, save_set); break;
            case 1: check_clean(stats, iter, clean_archive_text(rng), load_arch, save_arch); break;
            case 2: check_mutated(stats, iter, mutate(clean_set_text(rng), rng), try_set); break;
            case 3: check_mutated(stats, iter, mutate(clean_archive_text(rng), rng), try_arch); break;
            case 4: check_preprocess(stats, iter, rng); break;
            case 5: check_clean_report(stats, iter, rng); break;
            case 6: {
                const std::string doc = rng.chance(0.5)
                                            ? modeling::to_json(random_report(rng))
                                            : pmnf::to_json(random_model(rng));
                check_mutated_document(stats, iter, mutate(doc, rng));
                break;
            }
            case 7: check_noise_spec(stats, iter, rng); break;
            case 8: check_noise_models(stats, iter, rng); break;
            case 9: check_clean_binary(stats, iter, rng); break;
            case 10: check_mutated_binary(stats, iter, rng); break;
            case 11: check_clean_store(stats, iter, rng); break;
            case 12: check_mutated_store(stats, iter, rng); break;
        }
        if (verbose && (iter + 1) % 1000 == 0) {
            std::cerr << "  " << (iter + 1) << "/" << iterations << " iterations\n";
        }
    }

    {
        std::error_code ec;
        std::filesystem::remove_all(fuzz_scratch_dir(), ec);
    }

    std::cout << "fuzz_inputs: " << iterations << " iterations, seed " << seed << ": "
              << stats.accepted << " accepted, " << stats.rejected
              << " rejected with diagnostics, " << stats.violations << " violations\n";
    return stats.violations == 0 ? 0 : 1;
}
