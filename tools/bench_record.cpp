/// \file bench_record.cpp
/// Records the SIMD-backend performance trajectory in BENCH_nn.json:
/// GEMM GFLOP/s scalar vs SIMD, one-epoch training time scalar vs SIMD
/// (single-threaded, the acceptance number for the ">= 2x" criterion),
/// heap allocations per steady-state training step / batched inference
/// call (counted with an interposed global operator new), and end-to-end
/// adaptive-modeling timings read from the modeling session's Report
/// (informational, not gated).
///
/// Options:
///   --json=FILE   output path (default BENCH_nn.json)
///   --samples=N   training-set size for the epoch measurement (default 2048)
///   --epochs=K    measured epochs per variant (default 3, best-of)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "dnn/modeler.hpp"
#include "modeling/session.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/thread_pool.hpp"
#include "xpcore/timer.hpp"

// ---- allocation counting ---------------------------------------------------
// Interpose the global allocator so allocs/step can be *measured*, not
// asserted. tests/test_zero_alloc.cpp is the enforcing twin of this tool.

namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using xpcore::simd::Level;

void fill_random(nn::Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

double gemm_gflops(Level level, std::size_t m, std::size_t k, std::size_t n) {
    xpcore::simd::LevelGuard guard(level);
    xpcore::SerialGuard serial;
    xpcore::Rng rng(m + k + n);
    nn::Tensor a(m, k), b(k, n), c(m, n);
    fill_random(a, rng);
    fill_random(b, rng);
    nn::gemm_nn(a, b, c);  // warm-up
    const std::size_t flops = 2 * m * k * n;
    const std::size_t iters =
        std::max<std::size_t>(3, (std::size_t{1} << 29) / std::max<std::size_t>(1, flops));
    xpcore::WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) nn::gemm_nn(a, b, c);
    const double seconds = timer.seconds();
    return seconds > 0
               ? static_cast<double>(flops) * static_cast<double>(iters) / seconds / 1e9
               : 0.0;
}

/// Best-of-K single-threaded epoch time over the micro_nn training problem.
double epoch_seconds(Level level, std::size_t samples, std::size_t epochs) {
    xpcore::simd::LevelGuard guard(level);
    xpcore::SerialGuard serial;
    xpcore::Rng rng(14);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 128, true});
    nn::Dataset data;
    data.inputs.resize(samples, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);
    xpcore::Rng train_rng(15);
    trainer.fit(data, train_rng);  // warm-up: sizes the workspace
    double best = 1e30;
    for (std::size_t e = 0; e < epochs; ++e) {
        xpcore::WallTimer timer;
        trainer.fit(data, train_rng);
        best = std::min(best, timer.seconds());
    }
    return best;
}

/// Heap allocations of one steady-state training step (after warm-up).
long long train_step_allocs() {
    xpcore::SerialGuard serial;
    xpcore::Rng rng(16);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 128, false});
    nn::Dataset data;
    data.inputs.resize(256, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(256);
    for (std::size_t i = 0; i < 256; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);
    xpcore::Rng train_rng(17);
    trainer.fit(data, train_rng);  // warm-up epoch sizes all buffers
    const long long before = g_allocs.load();
    trainer.fit(data, train_rng);
    return g_allocs.load() - before;
}

/// Heap allocations of one steady-state batched classify call (after warm-up).
long long classify_allocs() {
    xpcore::SerialGuard serial;
    dnn::DnnConfig config;
    config.hidden = {64, 32};
    config.pretrain_samples_per_class = 20;
    config.pretrain_epochs = 1;
    dnn::DnnModeler modeler(config, 1);
    modeler.pretrain();
    std::vector<dnn::LineSample> lines(8);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        lines[i].xs = {8, 16, 32, 64, 128};
        lines[i].values = {1.0, 2.1, 4.4, 9.0, 18.5};
    }
    nn::Tensor probs;
    modeler.classify_lines_into(lines, probs);  // warm-up
    const long long before = g_allocs.load();
    modeler.classify_lines_into(lines, probs);
    return g_allocs.load() - before;
}

/// End-to-end adaptive modeling of one simulated RELeARN kernel on a tiny
/// network. The per-path seconds come out of the session's Report — the
/// same numbers every other consumer sees — instead of re-measuring with a
/// separate stopwatch around the call.
modeling::Report modeling_report() {
    xpcore::SerialGuard serial;
    modeling::Options options;
    options.net_profile = "bench-tiny";
    options.net.hidden = {64, 32};
    options.net.pretrain_samples_per_class = 40;
    options.net.pretrain_epochs = 1;
    options.net.adapt_samples_per_class = 40;
    options.use_cache = false;  // keep the bench hermetic: no cache files
    modeling::Session session(options);

    const casestudy::CaseStudy study = casestudy::relearn();
    xpcore::Rng rng(2021);
    const auto set = study.generate_modeling(study.kernels.front(), rng);
    return session.run("adaptive", set);
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const std::string json_path = args.get("json", "BENCH_nn.json");
    const auto samples = static_cast<std::size_t>(args.get_int("samples", 2048));
    const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 3));

    const bool have_simd = xpcore::simd::max_level() >= Level::Avx2;
    struct Shape {
        const char* name;
        std::size_t m, k, n;
    };
    // Forward pass of the reduced profile (batch 128) and a square stress shape.
    const Shape shapes[] = {{"fwd_128x256x128", 128, 256, 128}, {"square_512", 512, 512, 512}};

    std::printf("== bench_record: scalar vs %s ==\n",
                xpcore::simd::level_name(xpcore::simd::max_level()));
    std::string gemm_json;
    for (const auto& s : shapes) {
        const double scalar = gemm_gflops(Level::Scalar, s.m, s.k, s.n);
        const double simd = have_simd ? gemm_gflops(Level::Avx2, s.m, s.k, s.n) : 0.0;
        std::printf("gemm %-16s  scalar %7.2f GF/s   simd %7.2f GF/s\n", s.name, scalar, simd);
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"kernel\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, "
                      "\"gflops_scalar\": %.3f, \"gflops_simd\": %.3f},\n",
                      s.name, s.m, s.k, s.n, scalar, simd);
        gemm_json += buf;
    }
    if (!gemm_json.empty()) gemm_json.erase(gemm_json.size() - 2, 1);  // drop trailing comma

    const double scalar_epoch = epoch_seconds(Level::Scalar, samples, epochs);
    const double simd_epoch = have_simd ? epoch_seconds(Level::Avx2, samples, epochs) : 0.0;
    const double speedup = (have_simd && simd_epoch > 0) ? scalar_epoch / simd_epoch : 0.0;
    std::printf("epoch (%zu samples, 1 thread)  scalar %.4fs   simd %.4fs   speedup %.2fx\n",
                samples, scalar_epoch, simd_epoch, speedup);

    const long long step_allocs = train_step_allocs();
    const long long infer_allocs = classify_allocs();
    std::printf("steady-state allocs: train epoch %lld, classify_lines %lld\n", step_allocs,
                infer_allocs);

    const modeling::Report report = modeling_report();
    std::printf("adaptive modeling (tiny net): regression %.4fs, dnn %.4fs, total %.4fs\n",
                report.timings.regression_seconds, report.timings.dnn_seconds,
                report.timings.total_seconds);

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"simd_max\": \"" << xpcore::simd::level_name(xpcore::simd::max_level())
        << "\",\n  \"gemm\": [\n"
        << gemm_json << "  ],\n"
        << "  \"epoch\": {\"samples\": " << samples
        << ", \"batch\": 128, \"net\": [11, 256, 128, 64, 43], \"threads\": 1"
        << ", \"seconds_scalar\": " << scalar_epoch << ", \"seconds_simd\": " << simd_epoch
        << ", \"speedup\": " << speedup << "},\n"
        << "  \"allocs\": {\"steady_train_epoch\": " << step_allocs
        << ", \"steady_classify_lines\": " << infer_allocs << "},\n"
        << "  \"modeling\": {\"modeler\": \"" << report.modeler << "\", \"winner\": \""
        << report.winner << "\", \"regression_seconds\": " << report.timings.regression_seconds
        << ", \"dnn_seconds\": " << report.timings.dnn_seconds
        << ", \"total_seconds\": " << report.timings.total_seconds << "}\n"
        << "}\n";
    std::printf("wrote %s\n", json_path.c_str());

    // Gate: the SIMD epoch must be >= 2x faster than scalar (when available)
    // and the steady-state paths must be allocation-free.
    bool ok = step_allocs == 0 && infer_allocs == 0;
    if (have_simd && speedup < 2.0) ok = false;
    if (!ok) std::fprintf(stderr, "bench_record: acceptance gate FAILED\n");
    return ok ? 0 : 1;
}
