/// \file bench_record.cpp
/// Records the compute-backend performance trajectory in BENCH_nn.json:
/// machine provenance (CPU model, SIMD level, cache hierarchy, autotuned
/// GEMM blocking), GEMM GFLOP/s at every dispatch level, one-epoch training
/// time scalar vs vector (single-threaded, the ">= 2x" acceptance number),
/// the cold data-parallel pretraining time (serial AVX2 baseline vs 4-worker
/// sharded run, with the bit-identical-weights determinism check), heap
/// allocations per steady-state training step / batched inference call
/// (counted with an interposed global operator new, including the
/// over-aligned forms Tensor buffers use), and end-to-end adaptive-modeling
/// timings read from the modeling session's Report (informational).
///
/// All timings are the *median* of --repeats runs after a warm-up, and the
/// run-to-run spread ((max - min) / median) is recorded next to each number
/// — a noisy machine shows up in the trajectory instead of corrupting it.
///
/// Options:
///   --json=FILE   output path (default BENCH_nn.json)
///   --samples=N   training-set size for the epoch measurement (default 2048)
///   --epochs=K    measured epochs per variant (default 3, median-of)
///   --repeats=R   timing repeats for GEMM/pretrain medians (default 3)
///   --serve-json=FILE    record the daemon throughput gate instead
///   --ingest-json=FILE   record the archive-ingestion gate instead
///                        (--smoke shrinks the workload to CI scale)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "measure/ingest_bench.hpp"
#include "serve/throughput.hpp"
#include "dnn/modeler.hpp"
#include "modeling/session.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"
#include "xpcore/cli.hpp"
#include "xpcore/provenance.hpp"
#include "xpcore/gemm_tune.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"
#include "xpcore/thread_pool.hpp"
#include "xpcore/timer.hpp"

// ---- allocation counting ---------------------------------------------------
// Interpose the global allocator so allocs/step can be *measured*, not
// asserted. tests/test_zero_alloc.cpp is the enforcing twin of this tool.
// The over-aligned forms matter: Tensor data allocates with a 64-byte
// alignment request (xpcore/aligned.hpp) and would otherwise go uncounted.

namespace {
std::atomic<long long> g_allocs{0};
}

void* operator new(std::size_t size) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    const std::size_t alignment = std::max(static_cast<std::size_t>(align), sizeof(void*));
    if (posix_memalign(&p, alignment, size ? size : alignment) == 0) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using xpcore::simd::Level;

std::size_t g_repeats = 3;

/// Median and (max - min) / median of a measurement repeated g_repeats times.
struct Timed {
    double median = 0.0;
    double spread = 0.0;
};

template <typename Fn>
Timed time_median(const Fn& measure_once) {
    std::vector<double> xs;
    xs.reserve(g_repeats);
    for (std::size_t r = 0; r < std::max<std::size_t>(g_repeats, 1); ++r) {
        xs.push_back(measure_once());
    }
    std::sort(xs.begin(), xs.end());
    Timed t;
    t.median = xs[xs.size() / 2];
    if (t.median > 0) t.spread = (xs.back() - xs.front()) / t.median;
    return t;
}

void fill_random(nn::Tensor& t, xpcore::Rng& rng) {
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<float>(rng.uniform(-1, 1));
    }
}

Timed gemm_gflops(Level level, std::size_t m, std::size_t k, std::size_t n) {
    xpcore::simd::LevelGuard guard(level);
    xpcore::SerialGuard serial;
    xpcore::Rng rng(m + k + n);
    nn::Tensor a(m, k), b(k, n), c(m, n);
    fill_random(a, rng);
    fill_random(b, rng);
    nn::gemm_nn(a, b, c);  // warm-up (also triggers the autotuner)
    const std::size_t flops = 2 * m * k * n;
    const std::size_t iters =
        std::max<std::size_t>(3, (std::size_t{1} << 29) / std::max<std::size_t>(1, flops));
    return time_median([&] {
        xpcore::WallTimer timer;
        for (std::size_t i = 0; i < iters; ++i) nn::gemm_nn(a, b, c);
        const double seconds = timer.seconds();
        return seconds > 0 ? static_cast<double>(flops) * static_cast<double>(iters) /
                                 seconds / 1e9
                           : 0.0;
    });
}

/// Median-of-K single-threaded epoch time over the micro_nn training problem.
Timed epoch_seconds(Level level, std::size_t samples, std::size_t epochs) {
    xpcore::simd::LevelGuard guard(level);
    xpcore::SerialGuard serial;
    xpcore::Rng rng(14);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 128, true});
    nn::Dataset data;
    data.inputs.resize(samples, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);
    xpcore::Rng train_rng(15);
    trainer.fit(data, train_rng);  // warm-up: sizes the workspace
    std::vector<double> times;
    for (std::size_t e = 0; e < std::max<std::size_t>(epochs, 1); ++e) {
        xpcore::WallTimer timer;
        trainer.fit(data, train_rng);
        times.push_back(timer.seconds());
    }
    std::sort(times.begin(), times.end());
    Timed t;
    t.median = times[times.size() / 2];
    if (t.median > 0) t.spread = (times.back() - times.front()) / t.median;
    return t;
}

// ---- data-parallel pretraining ---------------------------------------------
// The tentpole acceptance number: cold DnnModeler::pretrain() with the
// sharded epoch on 4 workers vs the serial single-thread AVX2 baseline (the
// pre-sharding configuration). Bench-sized network so the whole comparison
// stays inside the smoke-test budget; the shape of the result is what the
// trajectory tracks.

dnn::DnnConfig pretrain_config(std::size_t shards) {
    dnn::DnnConfig config;
    config.hidden = {128, 64};
    config.pretrain_samples_per_class = 100;
    config.pretrain_epochs = 2;
    config.pretrain_shards = shards;
    return config;
}

double pretrain_once(Level level, std::size_t workers, std::size_t shards) {
    xpcore::ThreadPool::reset_global(workers);
    xpcore::simd::LevelGuard guard(level);
    dnn::DnnModeler modeler(pretrain_config(shards), /*seed=*/7);
    xpcore::WallTimer timer;
    modeler.pretrain();  // cold: includes data generation, every run alike
    return timer.seconds();
}

std::vector<float> pretrain_weights(Level level, std::size_t workers, std::size_t shards) {
    xpcore::ThreadPool::reset_global(workers);
    xpcore::simd::LevelGuard guard(level);
    dnn::DnnModeler modeler(pretrain_config(shards), /*seed=*/7);
    modeler.pretrain();
    nn::Network net = modeler.snapshot_state().pretrained.clone();
    std::vector<float> flat;
    for (const nn::Param& p : net.params()) {
        flat.insert(flat.end(), p.value->data(), p.value->data() + p.value->size());
    }
    return flat;
}

/// Heap allocations of one steady-state training step (after warm-up).
long long train_step_allocs() {
    xpcore::SerialGuard serial;
    xpcore::Rng rng(16);
    nn::Network net = nn::Network::mlp({11, 256, 128, 64, 43}, rng);
    nn::AdaMax opt;
    nn::Trainer trainer(net, opt, {1, 128, false});
    nn::Dataset data;
    data.inputs.resize(256, 11);
    fill_random(data.inputs, rng);
    data.labels.resize(256);
    for (std::size_t i = 0; i < 256; ++i) data.labels[i] = static_cast<std::int32_t>(i % 43);
    xpcore::Rng train_rng(17);
    trainer.fit(data, train_rng);  // warm-up epoch sizes all buffers
    const long long before = g_allocs.load();
    trainer.fit(data, train_rng);
    return g_allocs.load() - before;
}

/// Heap allocations of one steady-state batched classify call (after warm-up).
long long classify_allocs() {
    xpcore::SerialGuard serial;
    dnn::DnnConfig config;
    config.hidden = {64, 32};
    config.pretrain_samples_per_class = 20;
    config.pretrain_epochs = 1;
    dnn::DnnModeler modeler(config, 1);
    modeler.pretrain();
    std::vector<dnn::LineSample> lines(8);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        lines[i].xs = {8, 16, 32, 64, 128};
        lines[i].values = {1.0, 2.1, 4.4, 9.0, 18.5};
    }
    nn::Tensor probs;
    modeler.classify_lines_into(lines, probs);  // warm-up
    const long long before = g_allocs.load();
    modeler.classify_lines_into(lines, probs);
    return g_allocs.load() - before;
}

/// End-to-end adaptive modeling of one simulated RELeARN kernel on a tiny
/// network. The per-path seconds come out of the session's Report — the
/// same numbers every other consumer sees — instead of re-measuring with a
/// separate stopwatch around the call.
modeling::Report modeling_report() {
    xpcore::SerialGuard serial;
    modeling::Options options;
    options.net_profile = "bench-tiny";
    options.net.hidden = {64, 32};
    options.net.pretrain_samples_per_class = 40;
    options.net.pretrain_epochs = 1;
    options.net.adapt_samples_per_class = 40;
    options.use_cache = false;  // keep the bench hermetic: no cache files
    modeling::Session session(options);

    const casestudy::CaseStudy study = casestudy::relearn();
    xpcore::Rng rng(2021);
    const auto set = study.generate_modeling(study.kernels.front(), rng);
    return session.run("adaptive", set);
}

}  // namespace

int main(int argc, char** argv) {
    const xpcore::CliArgs args(argc, argv);
    const std::string json_path = args.get("json", "BENCH_nn.json");
    const auto samples = static_cast<std::size_t>(args.get_int("samples", 2048));
    const auto epochs = static_cast<std::size_t>(args.get_int("epochs", 3));
    g_repeats = std::max<std::size_t>(1, static_cast<std::size_t>(args.get_int("repeats", 3)));

    if (args.has("ingest-json")) {
        // Archive-ingestion mode: run the text-vs-binary measurement-loading
        // benchmark (the bench/ingest_throughput engine) and record
        // BENCH_ingest.json, gated on >= 10x mmap-over-text load speedup
        // with a byte-identical round trip.
        measure::IngestBenchConfig config;
        if (args.get_bool("smoke", false)) {
            config.kernels = 20;
            config.points_per_kernel = 150;
            config.repetitions = 20;
        }
        config.kernels = static_cast<std::size_t>(
            args.get_int("kernels", static_cast<long>(config.kernels)));
        config.points_per_kernel = static_cast<std::size_t>(
            args.get_int("points", static_cast<long>(config.points_per_kernel)));
        config.repetitions = static_cast<std::size_t>(
            args.get_int("reps", static_cast<long>(config.repetitions)));
        config.repeats = g_repeats;
        config.min_speedup = args.get_double("min-speedup", config.min_speedup);
        const measure::IngestBenchResult result = measure::run_ingest_bench(config);
        std::printf("ingest: %zu values, load text %.4fs vs binary open+verify %.4fs "
                    "-> %.1fx, append %.0f values/s, parity %s\n",
                    result.values, result.text_load_seconds, result.binary_load_seconds,
                    result.speedup(), result.append_values_per_second,
                    result.parity ? "ok" : "MISMATCH");
        const std::string ingest_path = args.get("ingest-json", "BENCH_ingest.json");
        measure::write_ingest_bench_json(config, result, ingest_path);
        std::printf("wrote %s\n", ingest_path.c_str());
        if (!result.ok()) std::fprintf(stderr, "bench_record: ingest gate FAILED\n");
        return result.ok() ? 0 : 1;
    }

    if (args.has("serve-json")) {
        // Daemon throughput mode: measure the serving path and record
        // BENCH_serve.json (same machine-provenance block as BENCH_nn.json),
        // gated on >= 500 req/s with zero failed round-trips.
        serve::ThroughputConfig config;
        config.connections = static_cast<std::size_t>(args.get_int("connections", 4));
        config.requests_per_connection =
            static_cast<std::size_t>(args.get_int("requests", 500));
        config.workers = static_cast<std::size_t>(args.get_int("workers", 2));
        config.min_rps = args.get_double("min-rps", 500.0);
        config.max_p99_ms = args.get_double("max-p99-ms", 0.0);
        const serve::ThroughputResult result = serve::run_throughput(config);
        std::printf("serve: %zu requests in %.3fs -> %.0f req/s, p99 %.3f ms\n",
                    result.requests, result.seconds, result.rps, result.p99_ms);
        const std::string serve_path = args.get("serve-json", "BENCH_serve.json");
        serve::write_bench_json(config, result, serve_path);
        std::printf("wrote %s\n", serve_path.c_str());
        if (!result.ok()) std::fprintf(stderr, "bench_record: serve gate FAILED\n");
        return result.ok() ? 0 : 1;
    }

    const Level max = xpcore::simd::max_level();
    const bool have_avx2 = max >= Level::Avx2;
    const bool have_avx512 = max >= Level::Avx512;
    const unsigned cores = std::thread::hardware_concurrency();

    // ---- machine provenance ------------------------------------------------
    const xpcore::simd::CacheHierarchy& cache = xpcore::simd::cache_hierarchy();
    std::printf("== bench_record ==\n");
    std::printf("cpu: %s\n", xpcore::simd::cpu_model_string());
    std::printf("simd max: %s   hardware threads: %u\n", xpcore::simd::level_name(max), cores);
    std::printf("cache: L1d %zu KiB, L2 %zu KiB, L3 %zu KiB (%s)\n", cache.l1d_bytes / 1024,
                cache.l2_bytes / 1024, cache.l3_bytes / 1024,
                cache.detected ? "detected" : "fallback");
    if (have_avx2) {
        const auto info2 = xpcore::simd::gemm_tune_info(Level::Avx2);
        std::printf("gemm blocking avx2: kc=%zu mc=%zu nc=%zu (%s)\n", info2.blocking.kc,
                    info2.blocking.mc, info2.blocking.nc, info2.source);
    }
    if (have_avx512) {
        const auto info5 = xpcore::simd::gemm_tune_info(Level::Avx512);
        std::printf("gemm blocking avx512: kc=%zu mc=%zu nc=%zu (%s)\n", info5.blocking.kc,
                    info5.blocking.mc, info5.blocking.nc, info5.source);
    }

    // ---- GEMM at every level ----------------------------------------------
    struct Shape {
        const char* name;
        std::size_t m, k, n;
    };
    // Forward pass of the reduced profile (batch 128) and a square stress shape.
    const Shape shapes[] = {{"fwd_128x256x128", 128, 256, 128}, {"square_512", 512, 512, 512}};

    std::string gemm_json;
    for (const auto& s : shapes) {
        const Timed scalar = gemm_gflops(Level::Scalar, s.m, s.k, s.n);
        const Timed avx2 = have_avx2 ? gemm_gflops(Level::Avx2, s.m, s.k, s.n) : Timed{};
        const Timed avx512 = have_avx512 ? gemm_gflops(Level::Avx512, s.m, s.k, s.n) : Timed{};
        std::printf("gemm %-16s  scalar %7.2f GF/s   avx2 %7.2f GF/s   avx512 %7.2f GF/s"
                    "   (spread %.0f%%)\n",
                    s.name, scalar.median, avx2.median, avx512.median,
                    std::max({scalar.spread, avx2.spread, avx512.spread}) * 100.0);
        char buf[320];
        std::snprintf(buf, sizeof(buf),
                      "    {\"kernel\": \"%s\", \"m\": %zu, \"k\": %zu, \"n\": %zu, "
                      "\"gflops_scalar\": %.3f, \"gflops_avx2\": %.3f, "
                      "\"gflops_avx512\": %.3f, \"spread\": %.4f},\n",
                      s.name, s.m, s.k, s.n, scalar.median, avx2.median, avx512.median,
                      std::max({scalar.spread, avx2.spread, avx512.spread}));
        gemm_json += buf;
    }
    if (!gemm_json.empty()) gemm_json.erase(gemm_json.size() - 2, 1);  // drop trailing comma

    // ---- single-thread epoch: the ">= 2x" gate ------------------------------
    const Timed scalar_epoch = epoch_seconds(Level::Scalar, samples, epochs);
    const Timed simd_epoch = have_avx2 ? epoch_seconds(max, samples, epochs) : Timed{};
    const double speedup =
        (have_avx2 && simd_epoch.median > 0) ? scalar_epoch.median / simd_epoch.median : 0.0;
    std::printf("epoch (%zu samples, 1 thread)  scalar %.4fs   %s %.4fs   speedup %.2fx\n",
                samples, scalar_epoch.median, xpcore::simd::level_name(max),
                simd_epoch.median, speedup);

    // ---- cold pretrain: serial AVX2 baseline vs 4-worker sharded ------------
    const Level baseline_level = have_avx2 ? Level::Avx2 : Level::Scalar;
    const Timed pretrain_serial =
        time_median([&] { return pretrain_once(baseline_level, 0, 1); });
    const Timed pretrain_sharded = time_median([&] { return pretrain_once(max, 4, 4); });
    const double pretrain_speedup =
        pretrain_sharded.median > 0 ? pretrain_serial.median / pretrain_sharded.median : 0.0;
    // Determinism: the sharded pretrain must produce the exact same weight
    // bytes at 0, 1, and 4 workers (the shard count, not the worker count,
    // fixes the FP reduction grouping).
    const std::vector<float> w0 = pretrain_weights(max, 0, 4);
    const std::vector<float> w1 = pretrain_weights(max, 1, 4);
    const std::vector<float> w4 = pretrain_weights(max, 4, 4);
    const bool weights_identical =
        w0.size() == w1.size() && w0.size() == w4.size() &&
        std::memcmp(w0.data(), w1.data(), w0.size() * sizeof(float)) == 0 &&
        std::memcmp(w0.data(), w4.data(), w0.size() * sizeof(float)) == 0;
    // The >= 2x wall-clock gate only makes sense with real parallel hardware.
    const bool pretrain_gate_active = cores >= 4;
    xpcore::ThreadPool::reset_global();  // back to the XPDNN_THREADS default
    std::printf("pretrain (cold)  serial %s %.4fs   4 workers %s/4 shards %.4fs   "
                "speedup %.2fx%s   weights 0/1/4 workers: %s\n",
                xpcore::simd::level_name(baseline_level), pretrain_serial.median,
                xpcore::simd::level_name(max), pretrain_sharded.median, pretrain_speedup,
                pretrain_gate_active ? "" : " (gate off: < 4 cores)",
                weights_identical ? "bit-identical" : "DIFFER");

    const long long step_allocs = train_step_allocs();
    const long long infer_allocs = classify_allocs();
    std::printf("steady-state allocs: train epoch %lld, classify_lines %lld\n", step_allocs,
                infer_allocs);

    const modeling::Report report = modeling_report();
    std::printf("adaptive modeling (tiny net): regression %.4fs, dnn %.4fs, total %.4fs\n",
                report.timings.regression_seconds, report.timings.dnn_seconds,
                report.timings.total_seconds);

    std::ofstream out(json_path);
    out << "{\n"
        << "  \"machine\": " << xpcore::machine_provenance_json(2) << ",\n"
        << "  \"simd_max\": \"" << xpcore::simd::level_name(max) << "\",\n  \"gemm\": [\n"
        << gemm_json << "  ],\n"
        << "  \"epoch\": {\"samples\": " << samples
        << ", \"batch\": 128, \"net\": [11, 256, 128, 64, 43], \"threads\": 1"
        << ", \"seconds_scalar\": " << scalar_epoch.median
        << ", \"seconds_simd\": " << simd_epoch.median << ", \"speedup\": " << speedup
        << ", \"spread\": " << std::max(scalar_epoch.spread, simd_epoch.spread) << "},\n"
        << "  \"pretrain\": {\"net_hidden\": [128, 64], \"samples_per_class\": 100"
        << ", \"epochs\": 2, \"shards\": 4"
        << ", \"seconds_serial_" << xpcore::simd::level_name(baseline_level)
        << "\": " << pretrain_serial.median
        << ", \"seconds_4workers\": " << pretrain_sharded.median
        << ", \"speedup\": " << pretrain_speedup
        << ", \"spread\": " << std::max(pretrain_serial.spread, pretrain_sharded.spread)
        << ", \"weights_identical_0_1_4\": " << (weights_identical ? "true" : "false")
        << ", \"gate_active\": " << (pretrain_gate_active ? "true" : "false") << "},\n"
        << "  \"allocs\": {\"steady_train_epoch\": " << step_allocs
        << ", \"steady_classify_lines\": " << infer_allocs << "},\n"
        << "  \"modeling\": {\"modeler\": \"" << report.modeler << "\", \"winner\": \""
        << report.winner << "\", \"regression_seconds\": " << report.timings.regression_seconds
        << ", \"dnn_seconds\": " << report.timings.dnn_seconds
        << ", \"total_seconds\": " << report.timings.total_seconds << "}\n"
        << "}\n";
    std::printf("wrote %s\n", json_path.c_str());

    // Gates: the vector epoch must be >= 2x faster than scalar (when
    // available), the steady-state paths must be allocation-free, sharded
    // pretraining must be worker-count-deterministic, and — on hosts with
    // >= 4 cores — the 4-worker pretrain must be >= 2x the serial baseline.
    bool ok = step_allocs == 0 && infer_allocs == 0 && weights_identical;
    if (have_avx2 && speedup < 2.0) ok = false;
    if (pretrain_gate_active && pretrain_speedup < 2.0) ok = false;
    if (!ok) std::fprintf(stderr, "bench_record: acceptance gate FAILED\n");
    return ok ? 0 : 1;
}
