#include "pmnf/exponents.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace pmnf {

std::string Rational::to_string() const {
    char buf[32];
    if (den_ == 1) {
        std::snprintf(buf, sizeof(buf), "%d", num_);
    } else {
        std::snprintf(buf, sizeof(buf), "%d/%d", num_, den_);
    }
    return buf;
}

std::string TermClass::to_string(const std::string& var) const {
    std::string out;
    const bool has_poly = !(i == Rational(0));
    if (has_poly) {
        out += var;
        if (!(i == Rational(1))) {
            out += "^";
            if (i.den() != 1) {
                out += "(";
                out += i.to_string();
                out += ")";
            } else {
                out += i.to_string();
            }
        }
    }
    if (j != 0) {
        if (has_poly) out += " * ";
        out += "log2(";
        out += var;
        out += ")";
        if (j != 1) {
            out += "^";
            out += std::to_string(j);
        }
    }
    if (out.empty()) out = "1";
    return out;
}

namespace {

std::vector<TermClass> build_exponent_set() {
    std::vector<TermClass> classes;
    classes.reserve(43);
    // Eq. 2, first block: {0,1/4,1/3,1/2,2/3,3/4,1,3/2,2,5/2} x {0,1,2}
    const std::array<Rational, 10> block1 = {Rational(0),    Rational(1, 4), Rational(1, 3),
                                             Rational(1, 2), Rational(2, 3), Rational(3, 4),
                                             Rational(1),    Rational(3, 2), Rational(2),
                                             Rational(5, 2)};
    for (const auto& i : block1) {
        for (int j = 0; j <= 2; ++j) classes.push_back({i, j});
    }
    // Second block: {5/4,4/3,3} x {0,1}
    const std::array<Rational, 3> block2 = {Rational(5, 4), Rational(4, 3), Rational(3)};
    for (const auto& i : block2) {
        for (int j = 0; j <= 1; ++j) classes.push_back({i, j});
    }
    // Third block: {4/5,5/3,7/4,9/4,7/3,8/3,11/4} x {0}
    const std::array<Rational, 7> block3 = {Rational(4, 5), Rational(5, 3), Rational(7, 4),
                                            Rational(9, 4), Rational(7, 3), Rational(8, 3),
                                            Rational(11, 4)};
    for (const auto& i : block3) classes.push_back({i, 0});
    return classes;
}

const std::vector<TermClass>& exponent_set_storage() {
    static const std::vector<TermClass> classes = build_exponent_set();
    return classes;
}

}  // namespace

std::span<const TermClass> exponent_set() { return exponent_set_storage(); }

std::size_t class_count() { return exponent_set_storage().size(); }

std::size_t class_index(const TermClass& cls) {
    const auto& classes = exponent_set_storage();
    for (std::size_t k = 0; k < classes.size(); ++k) {
        if (classes[k] == cls) return k;
    }
    return classes.size();
}

const TermClass& nearest_class(double effective_exponent) {
    const auto& classes = exponent_set_storage();
    std::size_t best = 0;
    double best_dist = std::abs(classes[0].effective_exponent() - effective_exponent);
    for (std::size_t k = 1; k < classes.size(); ++k) {
        const double dist = std::abs(classes[k].effective_exponent() - effective_exponent);
        if (dist < best_dist) {
            best_dist = dist;
            best = k;
        }
    }
    return classes[best];
}

}  // namespace pmnf
