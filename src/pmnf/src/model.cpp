#include "pmnf/model.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace pmnf {

namespace {

/// Coefficients with magnitude below this play no role in the model's
/// asymptotic behavior and are excluded from lead-exponent analysis.
constexpr double kNegligibleCoefficient = 1e-9;

std::string format_coefficient(double c) {
    char buf[64];
    const double mag = std::abs(c);
    if (mag != 0.0 && (mag >= 1e5 || mag < 1e-3)) {
        std::snprintf(buf, sizeof(buf), "%.3e", c);
    } else {
        std::snprintf(buf, sizeof(buf), "%.4g", c);
    }
    return buf;
}

}  // namespace

double CompoundTerm::evaluate(std::span<const double> point) const {
    double product = coefficient;
    for (const auto& factor : factors) {
        assert(factor.parameter < point.size());
        product *= factor.cls.evaluate(point[factor.parameter]);
    }
    return product;
}

double Model::evaluate(std::span<const double> point) const {
    double sum = constant_;
    for (const auto& term : terms_) sum += term.evaluate(point);
    return sum;
}

double Model::lead_exponent(std::size_t parameter) const {
    double lead = 0.0;
    for (const auto& term : terms_) {
        if (std::abs(term.coefficient) < kNegligibleCoefficient) continue;
        for (const auto& factor : term.factors) {
            if (factor.parameter == parameter) {
                lead = std::max(lead, factor.cls.effective_exponent());
            }
        }
    }
    return lead;
}

double Model::lead_exponent_distance(const Model& other, std::size_t parameters) const {
    double d = 0.0;
    for (std::size_t l = 0; l < parameters; ++l) {
        d = std::max(d, std::abs(lead_exponent(l) - other.lead_exponent(l)));
    }
    return d;
}

Model Model::simplified(std::span<const double> reference, double epsilon) const {
    const double total = std::abs(evaluate(reference));
    if (total == 0.0) return *this;
    std::vector<CompoundTerm> kept;
    for (const auto& term : terms_) {
        if (std::abs(term.evaluate(reference)) >= epsilon * total) kept.push_back(term);
    }
    return Model(constant_, std::move(kept));
}

std::string Model::to_string(std::span<const std::string> names) const {
    auto name_of = [&](std::size_t l) -> std::string {
        if (l < names.size()) return names[l];
        std::string fallback = "x";
        fallback += std::to_string(l + 1);
        return fallback;
    };

    std::string out = format_coefficient(constant_);
    for (const auto& term : terms_) {
        if (term.coefficient < 0) {
            out += " - " + format_coefficient(-term.coefficient);
        } else {
            out += " + " + format_coefficient(term.coefficient);
        }
        for (const auto& factor : term.factors) {
            if (factor.cls.is_constant()) continue;
            out += " * " + factor.cls.to_string(name_of(factor.parameter));
        }
    }
    return out;
}

}  // namespace pmnf
