#include "pmnf/serialize.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <string_view>

#include "xpcore/parse.hpp"

namespace pmnf {

namespace {

std::string format_double(double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/// Minimal recursive-descent parser for the fixed model schema.
class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    Model parse_model() {
        expect('{');
        double constant = 0.0;
        std::vector<CompoundTerm> terms;
        bool saw_constant = false;
        for (;;) {
            const std::string key = parse_string();
            expect(':');
            if (key == "constant") {
                constant = parse_number();
                saw_constant = true;
            } else if (key == "terms") {
                terms = parse_terms();
            } else {
                fail("unknown key '" + key + "'");
            }
            if (!consume(',')) break;
        }
        expect('}');
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters");
        if (!saw_constant) fail("missing 'constant'");
        return Model(constant, std::move(terms));
    }

private:
    std::vector<CompoundTerm> parse_terms() {
        std::vector<CompoundTerm> terms;
        expect('[');
        if (consume(']')) return terms;
        do {
            terms.push_back(parse_term());
        } while (consume(','));
        expect(']');
        return terms;
    }

    CompoundTerm parse_term() {
        expect('{');
        CompoundTerm term;
        bool saw_coefficient = false;
        for (;;) {
            const std::string key = parse_string();
            expect(':');
            if (key == "coefficient") {
                term.coefficient = parse_number();
                saw_coefficient = true;
            } else if (key == "factors") {
                term.factors = parse_factors();
            } else {
                fail("unknown key '" + key + "'");
            }
            if (!consume(',')) break;
        }
        expect('}');
        if (!saw_coefficient) fail("term missing 'coefficient'");
        return term;
    }

    std::vector<TermFactor> parse_factors() {
        std::vector<TermFactor> factors;
        expect('[');
        if (consume(']')) return factors;
        do {
            factors.push_back(parse_factor());
        } while (consume(','));
        expect(']');
        return factors;
    }

    TermFactor parse_factor() {
        expect('{');
        TermFactor factor;
        bool saw_i = false;
        for (;;) {
            const std::string key = parse_string();
            expect(':');
            if (key == "parameter") {
                const double value = parse_number();
                if (value < 0 || value != static_cast<double>(static_cast<long>(value))) {
                    fail("'parameter' must be a non-negative integer");
                }
                factor.parameter = static_cast<std::size_t>(value);
            } else if (key == "i") {
                expect('[');
                const int num = parse_int();
                expect(',');
                const int den = parse_int();
                expect(']');
                if (den == 0) fail("rational denominator must not be zero");
                factor.cls.i = Rational(num, den);
                saw_i = true;
            } else if (key == "j") {
                factor.cls.j = parse_int();
            } else {
                fail("unknown key '" + key + "'");
            }
            if (!consume(',')) break;
        }
        expect('}');
        if (!saw_i) fail("factor missing 'i'");
        return factor;
    }

    std::string parse_string() {
        skip_whitespace();
        if (pos_ >= text_.size() || text_[pos_] != '"') fail("expected string");
        ++pos_;
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') out += text_[pos_++];
        if (pos_ >= text_.size()) fail("unterminated string");
        ++pos_;
        return out;
    }

    double parse_number() {
        skip_whitespace();
        double value = 0.0;
        // from_chars-based: strict, locale-independent. std::stod routes
        // through strtod and would mis-parse under an LC_NUMERIC locale
        // with a ',' decimal point.
        const std::size_t consumed =
            xpcore::parse_double_prefix(std::string_view(text_).substr(pos_), value);
        if (consumed == 0) fail("expected number");
        pos_ += consumed;
        return value;
    }

    int parse_int() {
        const double value = parse_number();
        if (value != static_cast<double>(static_cast<int>(value))) fail("expected integer");
        return static_cast<int>(value);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool consume(char c) {
        skip_whitespace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c) {
        if (!consume(c)) fail(std::string("expected '") + c + "'");
    }

    [[noreturn]] void fail(const std::string& what) {
        throw std::runtime_error("pmnf::from_json: " + what + " at offset " +
                                 std::to_string(pos_));
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string to_json(const Model& model) {
    std::string out = "{\"constant\": " + format_double(model.constant()) + ", \"terms\": [";
    bool first_term = true;
    for (const auto& term : model.terms()) {
        if (!first_term) out += ", ";
        first_term = false;
        out += "{\"coefficient\": " + format_double(term.coefficient) + ", \"factors\": [";
        bool first_factor = true;
        for (const auto& factor : term.factors) {
            if (!first_factor) out += ", ";
            first_factor = false;
            out += "{\"parameter\": " + std::to_string(factor.parameter) + ", \"i\": [" +
                   std::to_string(factor.cls.i.num()) + ", " + std::to_string(factor.cls.i.den()) +
                   "], \"j\": " + std::to_string(factor.cls.j) + "}";
        }
        out += "]}";
    }
    out += "]}";
    return out;
}

Model from_json(const std::string& json) { return Parser(json).parse_model(); }

}  // namespace pmnf
