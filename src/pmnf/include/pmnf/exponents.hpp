#pragma once

/// \file exponents.hpp
/// The PMNF exponent search space (Eq. 2 of the paper).
///
/// Extra-P restricts the exponents of the performance model normal form to a
/// fixed set E of (i, j) pairs derived from the complexity classes observed
/// in real parallel algorithms. Instantiating Eq. 1 with every element of E
/// yields exactly 43 single-parameter term classes, which are both the
/// regression modeler's hypothesis space and the DNN's classification target.

#include <cmath>
#include <compare>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pmnf {

/// Exact rational number for polynomial exponents, so models print as the
/// paper writes them (x^(4/5), not x^0.8) and class comparisons are exact.
class Rational {
public:
    constexpr Rational() = default;
    /// Construct num/den in lowest terms; den must be positive.
    constexpr Rational(int num, int den = 1) : num_(num), den_(den) { normalize(); }

    constexpr int num() const { return num_; }
    constexpr int den() const { return den_; }
    constexpr double value() const { return static_cast<double>(num_) / den_; }

    friend constexpr bool operator==(const Rational& a, const Rational& b) {
        return a.num_ == b.num_ && a.den_ == b.den_;
    }
    friend constexpr auto operator<=>(const Rational& a, const Rational& b) {
        return static_cast<long>(a.num_) * b.den_ <=> static_cast<long>(b.num_) * a.den_;
    }

    /// "0", "2", or "4/5".
    std::string to_string() const;

private:
    constexpr void normalize() {
        if (den_ < 0) {
            num_ = -num_;
            den_ = -den_;
        }
        int a = num_ < 0 ? -num_ : num_;
        int b = den_;
        while (b != 0) {
            const int t = a % b;
            a = b;
            b = t;
        }
        if (a != 0) {
            num_ /= a;
            den_ /= a;
        } else {
            den_ = 1;
        }
    }

    int num_ = 0;
    int den_ = 1;
};

/// One single-parameter term class: x^i * log2(x)^j.
struct TermClass {
    Rational i;  ///< polynomial exponent
    int j = 0;   ///< logarithm exponent (0, 1, or 2)

    friend bool operator==(const TermClass&, const TermClass&) = default;

    /// Evaluate x^i * log2(x)^j for x > 0.
    double evaluate(double x) const {
        double result = std::pow(x, i.value());
        if (j != 0) {
            const double lg = std::log2(x);
            for (int k = 0; k < j; ++k) result *= lg;
        }
        return result;
    }

    /// True for the constant class (i == 0, j == 0).
    bool is_constant() const { return i == Rational(0) && j == 0; }

    /// Effective asymptotic exponent i + j/4: a log2 factor behaves like a
    /// small polynomial power over practical parameter ranges, making the
    /// lead-exponent distance buckets (<= 1/4, 1/3, 1/2) meaningful for both
    /// polynomial and logarithmic mispredictions (see DESIGN.md).
    double effective_exponent() const { return i.value() + static_cast<double>(j) / 4.0; }

    /// "x^(2/3) * log2(x)^2" with a custom variable name.
    std::string to_string(const std::string& var = "x") const;
};

/// The full exponent set E (Eq. 2): all 43 term classes, in a fixed,
/// deterministic order that defines the DNN's class indices.
std::span<const TermClass> exponent_set();

/// Number of classes in E (== 43).
std::size_t class_count();

/// Index of `cls` within exponent_set(), or class_count() if not a member.
std::size_t class_index(const TermClass& cls);

/// The class in E closest to the given effective exponent (used by tests
/// and by the synthetic ground-truth bucketing).
const TermClass& nearest_class(double effective_exponent);

}  // namespace pmnf
