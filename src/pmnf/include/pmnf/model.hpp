#pragma once

/// \file model.hpp
/// Multi-parameter PMNF performance models.
///
/// A model is f(x_1..x_m) = c_0 + sum_k c_k * prod_l x_l^{i_kl} log2^{j_kl}(x_l),
/// with (per the paper) at most one term class per parameter inside a
/// compound term. Models are the common output type of the regression, DNN,
/// and adaptive modelers.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "pmnf/exponents.hpp"

namespace pmnf {

/// One factor of a compound term: which parameter, and its term class.
struct TermFactor {
    std::size_t parameter = 0;  ///< index into the model's parameter list
    TermClass cls;

    friend bool operator==(const TermFactor&, const TermFactor&) = default;
};

/// A product of per-parameter factors with a multiplicative coefficient,
/// e.g. 0.11 * x1^(1/3) * x2 * x3^(4/5).
struct CompoundTerm {
    double coefficient = 0.0;
    std::vector<TermFactor> factors;

    /// Evaluate coefficient * prod_l factor_l(point[parameter_l]).
    double evaluate(std::span<const double> point) const;
};

/// A complete performance model: constant + compound terms.
class Model {
public:
    Model() = default;
    Model(double constant, std::vector<CompoundTerm> terms)
        : constant_(constant), terms_(std::move(terms)) {}

    /// Constant-only model.
    static Model constant_model(double c) { return Model(c, {}); }

    double constant() const { return constant_; }
    const std::vector<CompoundTerm>& terms() const { return terms_; }

    /// Evaluate the model at a measurement point (one value per parameter).
    double evaluate(std::span<const double> point) const;

    /// Effective lead exponent of the model with respect to parameter `l`:
    /// the largest effective exponent of `l`'s factor over all terms with a
    /// non-negligible coefficient; 0 when the parameter does not appear.
    double lead_exponent(std::size_t parameter) const;

    /// Lead-exponent distance to another model over `parameters` parameters:
    /// d = max_l |lead_this(l) - lead_other(l)| (see DESIGN.md).
    double lead_exponent_distance(const Model& other, std::size_t parameters) const;

    /// Human-readable form, e.g. "8.51 + 0.11 * p^(1/3) * d * g^(4/5)".
    /// `names` supplies one variable name per parameter; missing names
    /// default to x1, x2, ...
    std::string to_string(std::span<const std::string> names = {}) const;

    /// Copy without the terms whose relative contribution at `reference` is
    /// below `epsilon` (fraction of the value at that point). Useful to
    /// present fitted models without numerically-irrelevant clutter.
    Model simplified(std::span<const double> reference, double epsilon = 1e-3) const;

private:
    double constant_ = 0.0;
    std::vector<CompoundTerm> terms_;
};

}  // namespace pmnf
