#pragma once

/// \file serialize.hpp
/// JSON (de)serialization of PMNF models.
///
/// Models are exchanged as a small fixed-schema JSON document so they can
/// be stored next to the measurements, diffed, and consumed by other tools:
///
///     {
///       "constant": 8.51,
///       "terms": [
///         { "coefficient": 0.11,
///           "factors": [ { "parameter": 0, "i": [1, 3], "j": 0 },
///                        { "parameter": 1, "i": [1, 1], "j": 0 } ] }
///       ]
///     }
///
/// The exponent "i" is the exact rational [numerator, denominator], so a
/// round trip is lossless.

#include <string>

#include "pmnf/model.hpp"

namespace pmnf {

/// Serialize a model to the JSON schema above (single line, no trailing
/// newline).
std::string to_json(const Model& model);

/// Parse a model from the JSON schema above. Whitespace-tolerant; throws
/// std::runtime_error with a byte offset on malformed input.
Model from_json(const std::string& json);

}  // namespace pmnf
