#pragma once

/// \file modeler.hpp
/// The regression-based performance modeler (the Extra-P baseline).

#include <cstddef>

#include "measure/experiment.hpp"
#include "regression/search.hpp"

namespace regression {

/// Extra-P's purely regression-based modeler: per-parameter hypothesis
/// ranking on measurement lines, followed by combination search and
/// SMAPE/cross-validation selection.
class RegressionModeler {
public:
    struct Config {
        /// Per-parameter finalists carried into the combination search.
        std::size_t top_k = 3;
        /// Cross-validation fold cap (leave-one-out below this).
        std::size_t max_folds = 25;
        /// Representative value of the measurement repetitions.
        measure::Aggregation aggregation = measure::Aggregation::Median;
    };

    RegressionModeler() : RegressionModeler(Config{}) {}
    explicit RegressionModeler(Config config) : config_(config) {}

    const Config& config() const { return config_; }

    /// Create a performance model for the experiment set. Requires at least
    /// one line of >= 2 points per parameter; throws std::invalid_argument
    /// otherwise.
    ModelResult model(const measure::ExperimentSet& set) const;

    /// The `keep` best-ranked models (best first) — competing explanations
    /// of the same measurements with their cross-validation scores.
    std::vector<ModelResult> model_alternatives(const measure::ExperimentSet& set,
                                                std::size_t keep) const;

private:
    Config config_;
};

}  // namespace regression
