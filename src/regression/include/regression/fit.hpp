#pragma once

/// \file fit.hpp
/// Coefficient fitting and cross-validation for PMNF hypotheses.
///
/// A *candidate shape* is a PMNF hypothesis with its exponents fixed but its
/// coefficients free: constant + one or more compound terms, each a product
/// of per-parameter term classes. Shapes are fitted to measurement medians
/// by linear least squares (the coefficients enter Eq. 1 linearly) and
/// ranked by cross-validated SMAPE, exactly as Extra-P does. The DNN modeler
/// reuses this machinery for its top-3 hypotheses.

#include <optional>
#include <span>
#include <vector>

#include "measure/experiment.hpp"
#include "pmnf/model.hpp"

namespace regression {

/// A hypothesis with free coefficients: each entry is the factor list of one
/// compound term (constant c_0 is always implied).
struct CandidateShape {
    std::vector<std::vector<pmnf::TermFactor>> terms;

    /// Number of free coefficients (terms + constant).
    std::size_t coefficient_count() const { return terms.size() + 1; }
};

/// Least-squares fit of a shape to (points, values). Columns are scaled to
/// unit max magnitude before solving the normal equations, which keeps the
/// system well-conditioned even when term values span many orders of
/// magnitude (e.g. x^3 at x = 32768). Returns std::nullopt if the system is
/// unsolvable or the fit produces non-finite values.
std::optional<pmnf::Model> fit_shape(const CandidateShape& shape,
                                     std::span<const measure::Coordinate> points,
                                     std::span<const double> values);

/// SMAPE of a fitted model on (points, values), in percent.
double model_smape(const pmnf::Model& model, std::span<const measure::Coordinate> points,
                   std::span<const double> values);

/// Cross-validated SMAPE of a shape on (points, values), in percent.
///
/// Uses leave-one-out when the number of points is at most `max_folds`,
/// otherwise `max_folds`-fold cross-validation with a round-robin split.
/// Folds whose training fit fails contribute the worst-case error (200%)
/// for every held-out point — even points whose value is 0 — so broken
/// hypotheses rank last instead of being silently skipped. Held-out pairs
/// where both value and prediction are exactly 0 are perfect agreement and
/// are excluded from the average, matching xpcore::smape.
double cross_validated_smape(const CandidateShape& shape,
                             std::span<const measure::Coordinate> points,
                             std::span<const double> values, std::size_t max_folds = 25);

}  // namespace regression
