#pragma once

/// \file search.hpp
/// The PMNF hypothesis search space.
///
/// Single-parameter search: all 43 term classes of the exponent set E are
/// fitted to a measurement line and ranked by cross-validated SMAPE.
///
/// Multi-parameter search: per-parameter finalists are combined into full
/// models by enumerating every set partition of the parameters — each block
/// of a partition becomes one compound (multiplicative) term, the blocks
/// add up. For m = 2 this yields the paper's additive and multiplicative
/// combinations; for m = 3 additionally the mixed forms.

#include <cstddef>
#include <span>
#include <vector>

#include "measure/aggregation.hpp"
#include "measure/experiment.hpp"
#include "pmnf/exponents.hpp"
#include "regression/fit.hpp"

namespace regression {

/// A single-parameter hypothesis with its cross-validation score.
struct RankedCandidate {
    pmnf::TermClass cls;
    double cv_smape = 0.0;
};

/// Rank all 43 single-parameter hypotheses on a line (xs strictly positive,
/// ys the measurement medians), best first.
std::vector<RankedCandidate> rank_single_parameter(std::span<const double> xs,
                                                   std::span<const double> ys,
                                                   std::size_t max_folds = 25);

/// All set partitions of {0, .., m-1}; each partition is a list of blocks.
/// Exposed for tests; m is expected to be small (Bell(4) == 15).
std::vector<std::vector<std::vector<std::size_t>>> set_partitions(std::size_t m);

/// Build all candidate shapes from per-parameter class choices:
/// every cross-product choice of one class per parameter x every partition.
/// Parameters whose chosen class is constant are left out of the shape, and
/// duplicate shapes are pruned.
std::vector<CandidateShape> build_combinations(
    std::span<const std::vector<pmnf::TermClass>> per_parameter_choices);

/// Result of a complete modeling run.
struct ModelResult {
    pmnf::Model model;
    double cv_smape = 0.0;   ///< cross-validated SMAPE of the winning shape
    double fit_smape = 0.0;  ///< SMAPE of the final fit on all points
};

/// Fit every shape built from `per_parameter_choices` to the full experiment
/// set and return the cross-validation winner (final coefficients are
/// refitted on all points). Shared by the regression and DNN modelers.
/// `aggregation` selects the representative value of the repetitions.
ModelResult select_best_combination(
    const measure::ExperimentSet& set,
    std::span<const std::vector<pmnf::TermClass>> per_parameter_choices,
    std::size_t max_folds = 25,
    measure::Aggregation aggregation = measure::Aggregation::Median);

/// Like select_best_combination, but also returns the `keep` best-scoring
/// distinct hypotheses (ranked, best first) — useful for showing the user
/// competing explanations of the same data.
std::vector<ModelResult> rank_combinations(
    const measure::ExperimentSet& set,
    std::span<const std::vector<pmnf::TermClass>> per_parameter_choices, std::size_t keep,
    std::size_t max_folds = 25,
    measure::Aggregation aggregation = measure::Aggregation::Median);

}  // namespace regression
