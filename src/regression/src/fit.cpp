#include "regression/fit.hpp"

#include <cassert>
#include <cmath>

#include "xpcore/linalg.hpp"
#include "xpcore/metrics.hpp"

namespace regression {

namespace {

/// Evaluate the factor product of one term at a point (coefficient-free).
double term_value(const std::vector<pmnf::TermFactor>& factors,
                  std::span<const double> point) {
    double product = 1.0;
    for (const auto& factor : factors) {
        assert(factor.parameter < point.size());
        product *= factor.cls.evaluate(point[factor.parameter]);
    }
    return product;
}

}  // namespace

std::optional<pmnf::Model> fit_shape(const CandidateShape& shape,
                                     std::span<const measure::Coordinate> points,
                                     std::span<const double> values) {
    const std::size_t rows = points.size();
    const std::size_t cols = shape.coefficient_count();
    if (rows < cols) return std::nullopt;  // under-determined

    // Design matrix: column 0 is the constant, one column per term.
    xpcore::MatrixD a(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        a(r, 0) = 1.0;
        for (std::size_t t = 0; t < shape.terms.size(); ++t) {
            const double v = term_value(shape.terms[t], points[r]);
            if (!std::isfinite(v)) return std::nullopt;
            a(r, t + 1) = v;
        }
    }

    // Column scaling for conditioning: term values span many orders of
    // magnitude (x^3 at x = 32768), which would wreck the normal equations.
    std::vector<double> scale(cols, 1.0);
    for (std::size_t c = 0; c < cols; ++c) {
        double max_mag = 0.0;
        for (std::size_t r = 0; r < rows; ++r) max_mag = std::max(max_mag, std::abs(a(r, c)));
        if (max_mag > 0.0) {
            scale[c] = max_mag;
            for (std::size_t r = 0; r < rows; ++r) a(r, c) /= max_mag;
        }
    }

    const auto solution = xpcore::least_squares(a, values);
    if (!solution) return std::nullopt;

    std::vector<pmnf::CompoundTerm> terms;
    terms.reserve(shape.terms.size());
    for (std::size_t t = 0; t < shape.terms.size(); ++t) {
        const double coeff = (*solution)[t + 1] / scale[t + 1];
        if (!std::isfinite(coeff)) return std::nullopt;
        terms.push_back({coeff, shape.terms[t]});
    }
    const double constant = (*solution)[0] / scale[0];
    if (!std::isfinite(constant)) return std::nullopt;
    return pmnf::Model(constant, std::move(terms));
}

double model_smape(const pmnf::Model& model, std::span<const measure::Coordinate> points,
                   std::span<const double> values) {
    std::vector<double> predicted(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) predicted[i] = model.evaluate(points[i]);
    return xpcore::smape(predicted, values);
}

double cross_validated_smape(const CandidateShape& shape,
                             std::span<const measure::Coordinate> points,
                             std::span<const double> values, std::size_t max_folds) {
    const std::size_t n = points.size();
    if (n <= shape.coefficient_count()) return 200.0;  // cannot leave anything out

    const std::size_t folds = std::min(max_folds, n);
    double sum = 0.0;
    std::size_t counted = 0;

    std::vector<measure::Coordinate> train_points;
    std::vector<double> train_values;
    for (std::size_t fold = 0; fold < folds; ++fold) {
        train_points.clear();
        train_values.clear();
        for (std::size_t i = 0; i < n; ++i) {
            if (i % folds == fold) continue;  // held out
            train_points.push_back(points[i]);
            train_values.push_back(values[i]);
        }
        const auto fitted = fit_shape(shape, train_points, train_values);
        for (std::size_t i = 0; i < n; ++i) {
            if (i % folds != fold) continue;
            if (fitted) {
                const double pred = fitted->evaluate(points[i]);
                const double denom = (std::abs(values[i]) + std::abs(pred)) / 2.0;
                if (denom == 0.0) continue;  // both zero: perfect, uncounted
                sum += xpcore::smape_term(pred, values[i]);
                ++counted;
            } else {
                // A failed training fit scores the worst possible error for
                // every held-out point — explicitly, not via a sign-flipped
                // prediction, which would rate a held-out value of 0 as a
                // perfect prediction and let degenerate hypotheses win.
                sum += 200.0;
                ++counted;
            }
        }
    }
    if (counted == 0) return 0.0;
    return sum / static_cast<double>(counted);
}

}  // namespace regression
