#include "regression/search.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "xpcore/stats.hpp"
#include "xpcore/thread_pool.hpp"

namespace regression {

std::vector<RankedCandidate> rank_single_parameter(std::span<const double> xs,
                                                   std::span<const double> ys,
                                                   std::size_t max_folds) {
    if (xs.size() != ys.size() || xs.size() < 2) {
        throw std::invalid_argument("rank_single_parameter: need >= 2 (x, y) pairs");
    }
    std::vector<measure::Coordinate> points;
    points.reserve(xs.size());
    for (double x : xs) points.push_back({x});

    // The 43 hypotheses are independent; score them across the pool. Each
    // index writes its own slot, so the result is order-deterministic.
    const auto classes = pmnf::exponent_set();
    std::vector<RankedCandidate> ranked(classes.size());
    xpcore::parallel_for(
        xpcore::ThreadPool::global(), classes.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                CandidateShape shape;
                if (!classes[i].is_constant()) shape.terms.push_back({{0, classes[i]}});
                ranked[i] = {classes[i], cross_validated_smape(shape, points, ys, max_folds)};
            }
        },
        /*grain=*/8);
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedCandidate& a, const RankedCandidate& b) {
                         if (a.cv_smape != b.cv_smape) return a.cv_smape < b.cv_smape;
                         // Tie-break toward the simpler explanation, mirroring
                         // the PMNF prior's bias-variance reasoning.
                         return a.cls.effective_exponent() < b.cls.effective_exponent();
                     });
    return ranked;
}

std::vector<std::vector<std::vector<std::size_t>>> set_partitions(std::size_t m) {
    std::vector<std::vector<std::vector<std::size_t>>> result;
    std::vector<std::vector<std::size_t>> current;

    // Classic recursive scheme: element k joins an existing block or opens
    // a new one. Deterministic order; Bell(3) = 5, Bell(4) = 15.
    auto recurse = [&](auto&& self, std::size_t k) -> void {
        if (k == m) {
            result.push_back(current);
            return;
        }
        // Index-based iteration: the recursion below grows `current`, which
        // can reallocate and would invalidate references into it.
        const std::size_t blocks = current.size();
        for (std::size_t b = 0; b < blocks; ++b) {
            current[b].push_back(k);
            self(self, k + 1);
            current[b].pop_back();
        }
        current.push_back({k});
        self(self, k + 1);
        current.pop_back();
    };
    recurse(recurse, 0);
    return result;
}

namespace {

/// Canonical key for duplicate pruning of shapes.
std::vector<std::vector<std::pair<std::size_t, std::size_t>>> shape_key(
    const CandidateShape& shape) {
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>> key;
    for (const auto& term : shape.terms) {
        std::vector<std::pair<std::size_t, std::size_t>> factors;
        for (const auto& f : term) factors.emplace_back(f.parameter, pmnf::class_index(f.cls));
        std::sort(factors.begin(), factors.end());
        key.push_back(std::move(factors));
    }
    std::sort(key.begin(), key.end());
    return key;
}

}  // namespace

std::vector<CandidateShape> build_combinations(
    std::span<const std::vector<pmnf::TermClass>> per_parameter_choices) {
    const std::size_t m = per_parameter_choices.size();
    const auto partitions = set_partitions(m);

    std::vector<CandidateShape> shapes;
    std::set<std::vector<std::vector<std::pair<std::size_t, std::size_t>>>> seen;

    // Enumerate the cross product of per-parameter choices.
    std::vector<std::size_t> choice(m, 0);
    for (;;) {
        for (const auto& partition : partitions) {
            CandidateShape shape;
            for (const auto& block : partition) {
                std::vector<pmnf::TermFactor> factors;
                for (std::size_t param : block) {
                    const auto& cls = per_parameter_choices[param][choice[param]];
                    // Constant factors contribute nothing to a product.
                    if (!cls.is_constant()) factors.push_back({param, cls});
                }
                if (!factors.empty()) shape.terms.push_back(std::move(factors));
            }
            if (seen.insert(shape_key(shape)).second) shapes.push_back(std::move(shape));
        }
        // Advance the mixed-radix counter over the choices.
        std::size_t l = 0;
        while (l < m && ++choice[l] == per_parameter_choices[l].size()) {
            choice[l] = 0;
            ++l;
        }
        if (l == m) break;
    }
    return shapes;
}

std::vector<ModelResult> rank_combinations(
    const measure::ExperimentSet& set,
    std::span<const std::vector<pmnf::TermClass>> per_parameter_choices, std::size_t keep,
    std::size_t max_folds, measure::Aggregation aggregation) {
    if (per_parameter_choices.size() != set.parameter_count()) {
        throw std::invalid_argument("rank_combinations: choice arity mismatch");
    }
    for (const auto& choices : per_parameter_choices) {
        if (choices.empty()) {
            throw std::invalid_argument("rank_combinations: empty choice set");
        }
    }

    std::vector<measure::Coordinate> points;
    points.reserve(set.size());
    for (const auto& m : set.measurements()) points.push_back(m.point);
    const std::vector<double> values = measure::aggregate_all(set, aggregation);

    struct Scored {
        double cv_smape;
        std::size_t coefficients;
        const CandidateShape* shape;
    };
    // Cross-validating the candidate shapes fans out over independent
    // hypothesis combinations — the dominant cost of model selection for
    // multi-parameter sets. Slot-indexed writes keep the ranking (and the
    // stable_sort tie-breaks below) identical for any thread count.
    const auto shapes = build_combinations(per_parameter_choices);
    std::vector<Scored> scored(shapes.size());
    xpcore::parallel_for(
        xpcore::ThreadPool::global(), shapes.size(),
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                scored[i] = {cross_validated_smape(shapes[i], points, values, max_folds),
                             shapes[i].coefficient_count(), &shapes[i]};
            }
        },
        /*grain=*/4);
    std::stable_sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
        if (a.cv_smape != b.cv_smape) return a.cv_smape < b.cv_smape;
        // Equal CV score: prefer the simpler shape (fewer coefficients).
        return a.coefficients < b.coefficients;
    });

    std::vector<ModelResult> ranked;
    for (const auto& entry : scored) {
        if (ranked.size() >= keep) break;
        const auto fitted = fit_shape(*entry.shape, points, values);
        if (!fitted) continue;  // degenerate shape: skip, try the next one
        ModelResult result;
        result.model = *fitted;
        result.cv_smape = entry.cv_smape;
        result.fit_smape = model_smape(*fitted, points, values);
        ranked.push_back(std::move(result));
    }
    if (ranked.empty()) {
        // Every shape failed (degenerate data): fall back to the constant.
        ModelResult fallback;
        fallback.model = pmnf::Model::constant_model(xpcore::median(values));
        fallback.cv_smape = fallback.fit_smape = model_smape(fallback.model, points, values);
        ranked.push_back(std::move(fallback));
    }
    return ranked;
}

ModelResult select_best_combination(
    const measure::ExperimentSet& set,
    std::span<const std::vector<pmnf::TermClass>> per_parameter_choices,
    std::size_t max_folds, measure::Aggregation aggregation) {
    return rank_combinations(set, per_parameter_choices, 1, max_folds, aggregation).front();
}

}  // namespace regression
