#include "regression/modeler.hpp"

#include <algorithm>
#include <stdexcept>

namespace regression {

namespace {

/// Per-parameter hypothesis ranking on the best measurement lines.
std::vector<std::vector<pmnf::TermClass>> rank_finalists(
    const measure::ExperimentSet& set, const RegressionModeler::Config& config) {
    const std::size_t m = set.parameter_count();
    std::vector<std::vector<pmnf::TermClass>> finalists(m);
    for (std::size_t l = 0; l < m; ++l) {
        const auto line = set.best_line(l);
        if (!line) {
            throw std::invalid_argument(
                "RegressionModeler::model: parameter '" + set.parameter_names()[l] +
                "' has no measurement line with >= 2 points");
        }
        const auto ranked = rank_single_parameter(
            line->xs(), measure::aggregate_line(*line, config.aggregation), config.max_folds);
        const std::size_t keep = std::min(config.top_k, ranked.size());
        for (std::size_t k = 0; k < keep; ++k) finalists[l].push_back(ranked[k].cls);
        // The constant class must always be available so an irrelevant
        // parameter can drop out of the combined model.
        const pmnf::TermClass constant{};
        if (std::find(finalists[l].begin(), finalists[l].end(), constant) == finalists[l].end()) {
            finalists[l].push_back(constant);
        }
    }
    return finalists;
}

}  // namespace

ModelResult RegressionModeler::model(const measure::ExperimentSet& set) const {
    if (set.parameter_count() == 0 || set.empty()) {
        throw std::invalid_argument("RegressionModeler::model: empty experiment set");
    }
    return select_best_combination(set, rank_finalists(set, config_), config_.max_folds,
                                   config_.aggregation);
}

std::vector<ModelResult> RegressionModeler::model_alternatives(
    const measure::ExperimentSet& set, std::size_t keep) const {
    if (set.parameter_count() == 0 || set.empty()) {
        throw std::invalid_argument("RegressionModeler::model_alternatives: empty experiment set");
    }
    return rank_combinations(set, rank_finalists(set, config_), keep, config_.max_folds,
                             config_.aggregation);
}

}  // namespace regression
