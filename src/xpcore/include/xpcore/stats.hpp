#pragma once

/// \file stats.hpp
/// Descriptive statistics and bootstrap confidence intervals.

#include <cstddef>
#include <span>
#include <vector>

namespace xpcore {
class Rng;

/// Arithmetic mean. Returns 0 for an empty range.
double mean(std::span<const double> xs);

/// Population variance (divides by N). Returns 0 for fewer than 2 samples.
double variance(std::span<const double> xs);

/// Population standard deviation.
double stddev(std::span<const double> xs);

/// Median (average of the two middle elements for even sizes).
/// Returns 0 for an empty range. Does not modify the input.
double median(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1]. Returns 0 for empty input.
double quantile(std::span<const double> xs, double q);

/// Minimum / maximum. Return 0 for empty input.
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Two-sided bootstrap percentile confidence interval for a statistic.
struct ConfidenceInterval {
    double lower = 0.0;
    double upper = 0.0;
    double point = 0.0;  ///< statistic on the original sample
};

/// Bootstrap CI for the median at the given confidence level (e.g. 0.99).
ConfidenceInterval bootstrap_median_ci(std::span<const double> xs, double confidence,
                                       std::size_t resamples, Rng& rng);

/// Bootstrap CI for the mean at the given confidence level.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs, double confidence,
                                     std::size_t resamples, Rng& rng);

/// Bootstrap CI for a proportion of successes (accuracy percentages).
/// `successes` out of `total`; returned values are fractions in [0, 1].
ConfidenceInterval bootstrap_proportion_ci(std::size_t successes, std::size_t total,
                                           double confidence, std::size_t resamples, Rng& rng);

}  // namespace xpcore
