#pragma once

/// \file hash.hpp
/// Small stable hashing utilities.
///
/// FNV-1a is used wherever the repo needs a *stable* fingerprint that must
/// not change across processes or builds (pretrain cache keys, the config
/// hash reported in modeling::Report). std::hash gives no such guarantee.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace xpcore {

/// Incremental FNV-1a over a byte stream.
struct Fnv1a {
    std::uint64_t state = 0xCBF29CE484222325ull;

    void mix(const void* data, std::size_t size) {
        const auto* bytes = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < size; ++i) {
            state ^= bytes[i];
            state *= 0x100000001B3ull;
        }
    }

    /// Mix a trivially-copyable value by its object representation. Only
    /// use with types whose representation is stable (integers, floats,
    /// enums) — never with structs that may contain padding.
    template <typename T>
    void mix_value(const T& value) {
        static_assert(std::is_trivially_copyable_v<T>);
        mix(&value, sizeof(T));
    }

    void mix_string(std::string_view text) {
        // Length-prefix so {"ab", "c"} and {"a", "bc"} hash differently.
        mix_value(text.size());
        mix(text.data(), text.size());
    }
};

}  // namespace xpcore
