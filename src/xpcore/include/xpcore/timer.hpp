#pragma once

/// \file timer.hpp
/// Wall-clock timing for the modeling-overhead experiments (Fig. 6).

#include <chrono>

namespace xpcore {

/// Monotonic wall-clock stopwatch.
class WallTimer {
public:
    WallTimer() : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace xpcore
