#pragma once

/// \file gemm_tune.hpp
/// Startup autotuning of the packed-panel GEMM cache blocking.
///
/// The compiled-in KC/MC/NC defaults in simd_avx2.cpp / simd_avx512.cpp are
/// sized for a generic 32K/1M/8M cache hierarchy. Real hosts differ (the
/// reference machine has a 2M L2 and a 260M shared L3), and the right
/// blocking is worth 10-30% of GEMM throughput. On first use of a vector
/// GEMM level the tuner:
///
///   1. reads the cache hierarchy from sysfs
///      (/sys/devices/system/cpu/cpu0/cache/index*), falling back to
///      32K/1M/8M when unavailable;
///   2. derives a small candidate set of blockings from those sizes (plus
///      the compiled default) and times each on one representative SGEMM
///      shape — warmup pass, then median of 3;
///   3. installs the fastest via set_gemm_blocking_*() and caches the
///      choice on disk (XPDNN_CACHE_DIR, default ".xpdnn_cache"), keyed by
///      CPU model + level + cache sizes, so later processes skip the probe.
///
/// `XPDNN_GEMM_TUNE` overrides the behavior:
///   - "off"        — keep the compiled defaults, never probe;
///   - "KC:MC:NC"   — install that blocking verbatim (clamped to legal
///                    values), never probe;
///   - "retune"     — ignore the disk cache, probe, rewrite the cache;
///   - "auto" / unset — use the disk cache when present, else probe.
///
/// Determinism: blocking changes the FP summation grouping, so two
/// *processes* tuned differently produce last-ulp-different GEMMs. Within
/// one process the tuner runs at most once per level (std::call_once)
/// before the first tuned GEMM executes, so every call in a process uses
/// one fixed blocking and the thread-count bit-identity contract holds.
/// The probe allocates transient buffers; it runs lazily on first GEMM
/// dispatch, which in the zero-alloc tests and benches lands inside the
/// warmup phase, outside any counting window.

#include <cstddef>

#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"

namespace xpcore::simd {

/// Data-cache sizes detected from sysfs (cpu0's view; per-core L1d/L2 and
/// the shared L3). `detected` is false when sysfs was unavailable and the
/// generic fallback sizes are reported instead.
struct CacheHierarchy {
    std::size_t l1d_bytes = 0;
    std::size_t l2_bytes = 0;
    std::size_t l3_bytes = 0;
    bool detected = false;
};

/// The host's cache hierarchy (detected once, then cached).
const CacheHierarchy& cache_hierarchy();

/// How the active blocking of a level was chosen.
struct GemmTuneInfo {
    GemmBlocking blocking;  ///< the installed blocking
    const char* source;     ///< "default" (off/scalar), "env", "cached" or "probed"
};

/// Ensure the blocking for `level` has been tuned (no-op for Scalar and
/// for levels this binary/CPU cannot run). Thread-safe, runs at most once
/// per level per process; every GEMM dispatch calls this before using a
/// vector kernel.
void ensure_gemm_tuned(Level level);

/// The tuning decision for `level` (forces ensure_gemm_tuned first).
/// Recorded by tools/bench_record as machine provenance.
GemmTuneInfo gemm_tune_info(Level level);

}  // namespace xpcore::simd
