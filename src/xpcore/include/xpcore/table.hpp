#pragma once

/// \file table.hpp
/// Aligned console tables for the reproduction harnesses, which print the
/// same rows/series the paper's figures report.

#include <string>
#include <vector>

namespace xpcore {

/// Builds and prints a fixed-column text table with automatic width
/// computation. Cells are strings; numeric helpers format with a fixed
/// number of decimals.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append a row; it must have exactly as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Format a double with `decimals` fraction digits.
    static std::string num(double value, int decimals = 2);

    /// Render the table (header, separator, rows) as a string.
    std::string to_string() const;

    /// Print to stdout.
    void print() const;

    std::size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace xpcore
