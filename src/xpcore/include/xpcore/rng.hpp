#pragma once

/// \file rng.hpp
/// Deterministic, explicitly-seeded random number generation.
///
/// Every stochastic component of the library (noise injection, synthetic
/// function generation, weight initialization, ...) draws from an \ref
/// xpcore::Rng that is seeded by the caller, so that all experiments are
/// reproducible bit-for-bit on the same platform.

#include <cstdint>
#include <random>
#include <vector>

namespace xpcore {

/// Deterministic pseudo random number generator.
///
/// A thin wrapper around std::mt19937_64 that offers the handful of
/// distributions the library needs and supports deterministic splitting,
/// so independent sub-tasks can receive statistically independent streams
/// derived from one master seed.
class Rng {
public:
    /// Construct with an explicit seed. There is intentionally no default
    /// constructor: all randomness in the library must be reproducible.
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform real in [lo, hi).
    double uniform(double lo, double hi) {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine_);
    }

    /// Uniform integer in [lo, hi] (inclusive).
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine_);
    }

    /// Standard normal deviate scaled to `stddev`.
    double normal(double mean, double stddev) {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine_);
    }

    /// Bernoulli trial with success probability p.
    bool chance(double p) { return uniform(0.0, 1.0) < p; }

    /// Pick a uniformly random element of a non-empty container.
    template <typename Container>
    const typename Container::value_type& pick(const Container& c) {
        return c[static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(c.size()) - 1))];
    }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /// Derive an independent child generator. The mixing constant is the
    /// 64-bit golden ratio (splitmix64 finalizer), which decorrelates
    /// sequential child seeds.
    Rng split() {
        std::uint64_t s = engine_() + 0x9E3779B97F4A7C15ull;
        s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ull;
        s = (s ^ (s >> 27)) * 0x94D049BB133111EBull;
        return Rng(s ^ (s >> 31));
    }

    /// Access the raw engine (for std distributions not wrapped here).
    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace xpcore
