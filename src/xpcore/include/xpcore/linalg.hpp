#pragma once

/// \file linalg.hpp
/// Small dense linear algebra: the coefficient fits in the modelers solve
/// least-squares problems with at most a handful of unknowns, so a compact
/// normal-equation solver with partial pivoting is sufficient and fast.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace xpcore {

/// Dense row-major matrix of doubles for the tiny systems solved here.
/// (The neural-network substrate has its own cache-optimized f32 tensor.)
class MatrixD {
public:
    MatrixD() = default;
    MatrixD(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
    std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/// Solve the square system A x = b by Gaussian elimination with partial
/// pivoting. Returns std::nullopt when A is (numerically) singular.
std::optional<std::vector<double>> solve_linear(MatrixD a, std::vector<double> b);

/// Solve min_x ||A x - b||_2 through the normal equations A^T A x = A^T b.
/// A tiny Tikhonov ridge (relative to the diagonal magnitude) is added when
/// the plain normal equations are singular, which happens when hypothesis
/// terms are collinear on the sampled points. Returns std::nullopt only if
/// even the regularized system cannot be solved.
std::optional<std::vector<double>> least_squares(const MatrixD& a, std::span<const double> b);

}  // namespace xpcore
