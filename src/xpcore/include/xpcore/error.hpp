#pragma once

/// \file error.hpp
/// Structured error taxonomy for input ingestion and validation.
///
/// Anything that consumes user-supplied data (measurement files, archives,
/// preprocessing inputs) reports problems through this taxonomy instead of
/// bare std::runtime_error strings:
///
///  - ParseError      — the input could not be decoded at all (bad numeric
///                      token, missing separator, truncated construct).
///  - ValidationError — the input decodes but violates a semantic rule
///                      (non-finite value, arity mismatch, empty repetition
///                      list, out-of-range magnitude).
///
/// Both carry a Diagnostic with source/line/column context, so callers can
/// render compiler-style messages ("file.txt:3:7: ...") or collect them in
/// batch without string-parsing what(). All types derive from
/// std::runtime_error, so legacy catch sites keep working.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace xpcore {

/// Where in an input a problem was detected.
///
/// `line` and `column` are 1-based; 0 means "not applicable" (e.g. a
/// file-open failure has no line, an in-memory validation no column).
struct Diagnostic {
    std::string source;    ///< file path or stream label (e.g. "<stream>")
    std::size_t line = 0;
    std::size_t column = 0;
    std::string message;

    /// Compiler-style rendering: "source:line:column: message", omitting
    /// unset location parts.
    std::string format() const;
};

/// Base of all structured input errors. what() == diagnostic().format().
class Error : public std::runtime_error {
public:
    explicit Error(Diagnostic diagnostic);

    const Diagnostic& diagnostic() const noexcept { return diagnostic_; }
    const std::string& source() const noexcept { return diagnostic_.source; }
    std::size_t line() const noexcept { return diagnostic_.line; }
    std::size_t column() const noexcept { return diagnostic_.column; }

private:
    Diagnostic diagnostic_;
};

/// Input that cannot be decoded (lexical/structural failure).
class ParseError : public Error {
public:
    using Error::Error;
};

/// Input that decodes but violates a semantic rule.
class ValidationError : public Error {
public:
    using Error::Error;
};

}  // namespace xpcore
