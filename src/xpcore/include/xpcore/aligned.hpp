#pragma once

/// \file aligned.hpp
/// 64-byte-aligned allocator for numeric buffers.
///
/// Tensor storage is allocated through this allocator so every buffer
/// starts on a cache-line (and full zmm-register) boundary. The vector
/// kernels use unaligned loads and therefore stay *correct* on any
/// address, but 64-byte bases keep AVX-512 loads from straddling cache
/// lines on the hot row-major access patterns and make row strides
/// predictable for the packing routines. tests/test_zero_alloc.cpp
/// asserts the alignment so a silent fallback to the default allocator
/// would be caught.
///
/// Allocation goes through the aligned global operator new, so tools that
/// interpose the allocator (the counting allocators in the zero-alloc test
/// and tools/bench_record) observe these allocations by also interposing
/// the align_val_t forms.

#include <cstddef>
#include <new>

namespace xpcore {

/// Minimum alignment of numeric buffers: one cache line, one zmm register.
inline constexpr std::size_t kBufferAlignment = 64;

template <typename T>
struct AlignedAllocator {
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

    T* allocate(std::size_t n) {
        return static_cast<T*>(
            ::operator new(n * sizeof(T), std::align_val_t{kBufferAlignment}));
    }

    void deallocate(T* p, std::size_t) noexcept {
        ::operator delete(p, std::align_val_t{kBufferAlignment});
    }

    template <typename U>
    bool operator==(const AlignedAllocator<U>&) const noexcept {
        return true;
    }
};

}  // namespace xpcore
