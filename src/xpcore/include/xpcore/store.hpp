#pragma once

/// \file store.hpp
/// The durable-state layer: one keyed, versioned, checksummed blob store
/// shared by every persistence site in the tree.
///
/// Before this layer existed the repo had three hand-rolled copies of the
/// same discipline — the dnn pretrain cache, the GEMM autotuner cache, and
/// the archive Writer each wrote temp(pid)+rename with subtly different
/// corruption/repair semantics. They now all sit on the two primitives
/// below (`temp_path_for` + `atomic_publish`, `quarantine_corrupt`) and,
/// for keyed blobs, on `store::Store`:
///
///  - the dnn pretrain cache (dnn/cache.cpp, prefix "xpdnn_pretrained"),
///  - the GEMM autotuner cache (xpcore/gemm_tune.cpp, prefix "gemm_tune"),
///  - the daemon's persistent report store (serve, prefix "xpdnn_report"),
///
/// while xpcore::archive::Writer uses the primitives directly (its payload
/// is one self-describing file, not a keyed set).
///
/// One entry is one file: `<dir>/<prefix>_<fnv1a(key):%016x>.blob`, a
/// 64-byte checksummed header followed by the key bytes and the payload
/// bytes (docs/FILE_FORMATS.md, "Durable store v1"). Integrity follows the
/// archive's discipline: FNV-1a fingerprints, atomic temp+rename commits,
/// and typed corrupt-file misses that quarantine the bad file to
/// `<file>.corrupt` so it stays inspectable. Loads never throw: a corrupt
/// or stale entry is a miss, and the next put repairs it. Writes never
/// throw either — a publish failure surfaces as a structured warning
/// diagnostic (and a false return) instead of being silently swallowed.

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "xpcore/error.hpp"

namespace xpcore {

/// A collision-free temp-file sibling of `path`: pid + process-wide counter
/// suffix keeps concurrent writers — other processes AND other threads of
/// this one — off each other's temp files; last rename wins.
std::string temp_path_for(const std::string& path);

/// THE atomic commit: stream `body` into a temp sibling of `path`, then
/// rename(2) over it, so a concurrent reader observes either the old bytes
/// or the complete new file, never a torn write. Throws xpcore::Error
/// (temp removed) when the temp cannot be opened, the write comes up
/// short, or the rename fails.
void atomic_publish(const std::string& path,
                    const std::function<void(std::ostream&)>& body);

/// THE typed-miss repair: move `path` aside to `<path>.corrupt` so the bad
/// bytes stay inspectable (falling back to removal when the rename fails).
/// Returns false when the file could be neither moved nor removed.
bool quarantine_corrupt(const std::string& path);

namespace store {

/// Bumped on incompatible changes to the blob header layout.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Counters for observability ("store" daemon verb, `xpdnn store`).
struct Stats {
    std::uint64_t entries = 0;        ///< blobs currently indexed
    std::uint64_t payload_bytes = 0;  ///< payload bytes across entries
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;         ///< absent, stale schema, or corrupt
    std::uint64_t puts = 0;           ///< successful publishes
    std::uint64_t put_failures = 0;   ///< publish failures (warned, not thrown)
    std::uint64_t evictions = 0;
    std::uint64_t repairs = 0;        ///< corrupt blobs quarantined
};

struct Config {
    std::string dir;                  ///< store directory (created on demand)
    std::string prefix = "blob";      ///< file-name prefix: one keyed set per prefix
    std::uint32_t schema_version = 1; ///< caller payload schema; mismatch = miss
    std::size_t capacity = 0;         ///< max entries; 0 = unbounded
    /// Warning sink for publish failures and corrupt-file repairs. Default
    /// (unset): one "xpdnn: warning: ..." line on stderr per event.
    std::function<void(const Diagnostic&)> warn;
};

/// A keyed durable blob store. Thread-safe (internal mutex); cross-process
/// safety comes from the atomic_publish discipline, exactly like the
/// archive. Construction scans `dir` for `<prefix>_*.blob` files so
/// capacity eviction and stats see entries from previous runs; blobs that
/// fail the header checksum during the scan are quarantined immediately.
class Store {
public:
    explicit Store(Config config);

    /// The payload stored under `key`, or nullopt on a miss. Misses never
    /// throw: an absent file, a stale schema_version, a foreign key in the
    /// slot (hash collision), and a corrupt blob (quarantined + warned) all
    /// land here so the caller regenerates and `put`s.
    std::optional<std::string> load(const std::string& key);

    /// Durably publish `payload` under `key`, evicting oldest entries past
    /// `capacity`. Returns false — after surfacing a structured warning
    /// diagnostic — when the blob cannot be published; the store never
    /// throws on a write failure (a cache must degrade, not abort).
    bool put(const std::string& key, std::string_view payload);

    /// Drop the entry for `key`. Returns true when a blob was removed.
    bool erase(const std::string& key);

    /// Evict oldest entries (deterministic: lowest sequence first, then
    /// file name) until at most `keep` remain. Returns the evicted count.
    std::size_t evict(std::size_t keep);

    /// Keys of every indexed entry, oldest first (eviction order).
    std::vector<std::string> keys() const;

    /// The blob file path `key` maps to (whether or not it exists).
    std::string path_for(const std::string& key) const;

    Stats stats() const;
    const Config& config() const { return config_; }

private:
    struct Entry {
        std::string key;
        std::string file;             ///< file name within dir
        std::uint64_t sequence = 0;   ///< monotonic put order (eviction key)
        std::uint64_t payload_size = 0;
    };

    void warn(const std::string& source, const std::string& message) const;
    void scan();
    std::size_t find_locked(const std::string& key) const;
    std::size_t evict_locked(std::size_t keep);

    Config config_;
    mutable std::mutex mutex_;
    std::vector<Entry> entries_;      ///< sorted oldest-first
    std::uint64_t next_sequence_ = 1;
    mutable Stats stats_;
};

}  // namespace store
}  // namespace xpcore
