#pragma once

/// \file cli.hpp
/// Minimal command-line option parsing for the bench/example binaries.
/// Accepts `--key=value` and `--flag`; anything else is a positional.

#include <string>
#include <unordered_map>
#include <vector>

namespace xpcore {

/// Parsed command line. Typed getters fall back to a default when the key
/// is absent; malformed numeric values throw std::invalid_argument so typos
/// in experiment sweeps fail loudly instead of silently running defaults.
class CliArgs {
public:
    CliArgs(int argc, const char* const* argv);

    bool has(const std::string& key) const { return options_.count(key) != 0; }

    std::string get(const std::string& key, const std::string& fallback) const;
    long get_int(const std::string& key, long fallback) const;
    double get_double(const std::string& key, double fallback) const;
    bool get_bool(const std::string& key, bool fallback) const;

    const std::vector<std::string>& positionals() const { return positionals_; }

private:
    std::unordered_map<std::string, std::string> options_;
    std::vector<std::string> positionals_;
};

}  // namespace xpcore
