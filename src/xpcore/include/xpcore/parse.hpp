#pragma once

/// \file parse.hpp
/// Locale-independent floating-point parsing.
///
/// std::stod delegates to strtod and therefore honors LC_NUMERIC: under a
/// comma-decimal locale (de_DE, fr_FR, ...) it parses "3.14" as 3 and
/// reports one consumed character. Every parser of machine-generated input
/// in this repository — JSON documents, CLI options, measurement files —
/// must be immune to the ambient locale, so they all go through these
/// std::from_chars-based helpers instead (the measurement-file tokenizer in
/// measure/parse_util.cpp applies the same discipline with column-aware
/// diagnostics on top).

#include <cstddef>
#include <string_view>

namespace xpcore {

/// Parse the longest valid floating-point literal at the start of `text`
/// (fixed or scientific form; one leading '+' is accepted for compatibility
/// with hand-written inputs). Returns the number of characters consumed and
/// writes the value to `out`; returns 0 — leaving `out` untouched — when
/// `text` does not start with a number or the number is out of range or
/// non-finite ("inf"/"nan" literals are rejected). Never consults the
/// locale, never throws.
std::size_t parse_double_prefix(std::string_view text, double& out);

/// Full-string variant: true iff the *entire* `text` is one finite number
/// (no surrounding whitespace, no trailing characters).
bool parse_double(std::string_view text, double& out);

}  // namespace xpcore
