#pragma once

/// \file archive.hpp
/// The "xpdnn.arch" v1 binary measurement archive: a versioned, checksummed,
/// memory-mappable container for measurement sections at million-measurement
/// scale. The text loaders (measure/io.hpp) are parse-bound and
/// all-or-nothing; this format trades their readability for zero-copy mmap
/// loads and append-only streaming ingestion.
///
/// On-disk layout (all integers and floats little-endian; the reader
/// refuses big-endian hosts rather than byte-swap):
///
///     [header: 128 bytes]
///     [data region: one 64-byte-aligned payload per section]
///     [string table]
///     [section table: 64 bytes per section]
///
/// Header (offsets in bytes):
///
///     0   char[8]  magic "xpdnArc1"
///     8   u32      format_version (1)
///     12  u32      flags (bit 0: single experiment set, see measure/binary.hpp)
///     16  u64      committed_file_size   (truncation detection)
///     24  u64      parameter_count
///     32  u64      section_count
///     40  u64      section_table_offset
///     48  u64      string_table_offset
///     56  u64      string_table_size
///     64  u64      content_fingerprint   (FNV-1a, see below)
///     72  u64      header_checksum       (FNV-1a of header bytes 0..71)
///     80  u8[48]   reserved (zero)
///
/// The string table starts with the parameter names (each u64 length +
/// bytes), followed by the section name bytes referenced by the section
/// table. A section table entry:
///
///     u64 kernel_offset, kernel_size      (into the string table)
///     u64 metric_offset, metric_size
///     u64 payload_offset                  (64-byte aligned, absolute)
///     u64 measurement_count               (m)
///     u64 value_count                     (total repetitions)
///     u64 section_fingerprint             (FNV-1a of names, counts, payload)
///
/// A section payload holds three arrays, each 64-byte aligned:
///
///     u64 value_offsets[m + 1]            (prefix offsets into values[])
///     f64 points[m * parameter_count]
///     f64 values[value_count]
///
/// Sections are an append-only log: the same (kernel, metric) may appear in
/// several sections — one per append batch — and consumers concatenate them
/// in file order. Integrity is two-level FNV-1a: each section's fingerprint
/// covers its names, counts, and payload arrays (scalars and strings mix
/// byte-wise; the arrays mix as little-endian u64 *words* — their byte size
/// is always a multiple of 8 — for one multiply per word instead of per
/// byte), and the content fingerprint is an incremental stream over
/// version, flags, parameter names, and the section fingerprints in file
/// order. Because FNV-1a's state *is* its digest, an appending writer
/// resumes the content stream from the stored fingerprint; the reader
/// re-derives everything with a single pass over the payload bytes, and
/// any flipped byte still changes both digests.
///
/// Durability follows the pretrain-cache discipline: every commit writes a
/// complete new image to a temp file (pid + counter suffix) and rename(2)s
/// it over the archive, so readers only ever observe fully-committed
/// archives — an mmap of the previous image stays valid after a concurrent
/// commit replaces the path. A corrupt or truncated existing file is a
/// *typed miss*: Reader::open throws xpcore::ParseError/ValidationError,
/// and Writer moves the bad file aside (".corrupt") and starts fresh
/// (OpenStatus::Repaired).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xpcore/hash.hpp"

namespace xpcore::archive {

inline constexpr char kMagic[8] = {'x', 'p', 'd', 'n', 'A', 'r', 'c', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderSize = 128;
inline constexpr std::size_t kAlignment = 64;

/// Header flag bits. Bit 0 marks an archive holding exactly one unnamed
/// experiment set (the binary form of a measure/io.hpp text file, as
/// opposed to a multi-kernel measure/archive.hpp file).
inline constexpr std::uint32_t kFlagSingleSet = 1u;

/// Zero-copy view of one section of a mapped archive. Spans point into the
/// mapping and stay valid for the lifetime of the Reader they came from.
struct SectionView {
    std::string_view kernel;
    std::string_view metric;
    std::span<const std::uint64_t> value_offsets;  ///< size m + 1, prefix sums
    std::span<const double> points;                ///< m * parameter_count
    std::span<const double> values;                ///< value_offsets.back()
    std::uint64_t fingerprint = 0;  ///< stored section fingerprint (verified on open)

    std::size_t measurement_count() const { return value_offsets.size() - 1; }
};

/// Memory-mapped archive reader. open() validates the whole structure
/// (magic, version, checksums, bounds, alignment, finiteness) up front, so
/// section access never fails. Copyable: copies share the mapping.
class Reader {
public:
    /// Map and validate `path`. Throws xpcore::Error when the file cannot
    /// be opened, xpcore::ParseError when it is not a well-formed archive
    /// (bad magic, torn header, truncation, out-of-bounds structure), and
    /// xpcore::ValidationError on semantic violations (version skew,
    /// fingerprint mismatch, non-finite payload values, big-endian host).
    /// `verify_content` additionally re-derives the content fingerprint and
    /// scans payloads for non-finite values (one sequential pass; on by
    /// default so a binary load is exactly as strict as a text load).
    static Reader open(const std::string& path, bool verify_content = true);

    std::uint32_t flags() const;
    const std::vector<std::string>& parameter_names() const;
    std::size_t parameter_count() const;
    std::size_t section_count() const;
    SectionView section(std::size_t index) const;
    std::uint64_t content_fingerprint() const;

    /// Sum of measurement_count over all sections.
    std::uint64_t total_measurements() const;
    /// Bytes of the mapped file.
    std::uint64_t file_size() const;

private:
    struct Impl;
    explicit Reader(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}
    std::shared_ptr<const Impl> impl_;
};

/// One staged append batch for a (kernel, metric) pair.
struct PendingSection {
    std::string kernel;
    std::string metric;
    std::vector<std::uint64_t> value_offsets;  ///< m + 1 prefix offsets
    std::vector<double> points;                ///< m * parameter_count
    std::vector<double> values;                ///< value_offsets.back()
};

/// Append-only streaming writer. stage() buffers sections in memory;
/// commit() atomically publishes everything staged so far as one batch
/// (write full image to temp, rename over the archive). Destroying a
/// writer with staged-but-uncommitted sections discards them.
class Writer {
public:
    enum class OpenStatus {
        Created,    ///< no archive existed; a fresh one will be written
        Appending,  ///< existing archive validated; appends continue it
        Repaired,   ///< existing file corrupt: moved to "<path>.corrupt", fresh start
    };

    /// Open `path` for appending, creating it logically when absent. An
    /// existing valid archive must have exactly `parameter_names` (and the
    /// same flags), otherwise xpcore::ValidationError; an existing invalid
    /// file is treated as a typed miss and repaired (moved aside). Nothing
    /// is written until the first commit(). With `truncate`, any existing
    /// file is ignored (not even read) and the first commit atomically
    /// replaces it — overwrite-save semantics.
    Writer(std::string path, std::vector<std::string> parameter_names,
           std::uint32_t format_flags = 0, bool truncate = false);

    OpenStatus status() const { return status_; }
    const std::vector<std::string>& parameter_names() const { return parameter_names_; }

    std::size_t committed_sections() const { return sections_.size(); }
    std::uint64_t committed_measurements() const { return committed_measurements_; }
    std::uint64_t staged_measurements() const { return staged_measurements_; }

    /// Stage one section. Validates shape (non-empty, strictly increasing
    /// prefix offsets, points sized m * parameter_count, finite doubles);
    /// throws xpcore::ValidationError on violations.
    void stage(PendingSection section);

    /// Atomically publish all staged sections: write the complete new image
    /// to "<path>.<pid>.<n>.tmp" and rename it over the archive. No-op when
    /// nothing is staged and a committed image already exists (a first
    /// commit with nothing staged publishes a valid empty archive). Throws
    /// xpcore::Error on I/O failure (the temp file is removed; the
    /// committed archive is untouched).
    void commit();

private:
    struct SectionMeta {
        std::string kernel;
        std::string metric;
        std::uint64_t payload_offset = 0;
        std::uint64_t measurement_count = 0;
        std::uint64_t value_count = 0;
        std::uint64_t fingerprint = 0;
    };

    std::string path_;
    std::vector<std::string> parameter_names_;
    std::uint32_t flags_ = 0;
    OpenStatus status_ = OpenStatus::Created;
    bool file_committed_ = false;  ///< a valid image exists at path_

    std::vector<SectionMeta> sections_;       ///< committed, in file order
    std::uint64_t data_region_size_ = 0;      ///< committed payload bytes
    std::uint64_t committed_measurements_ = 0;
    Fnv1a content_hash_;                      ///< running content fingerprint

    std::vector<PendingSection> staged_;
    std::uint64_t staged_measurements_ = 0;
};

/// True when the file at `path` starts with the archive magic (cheap sniff
/// used to route between the binary and text loaders). False for missing or
/// short files.
bool sniff(const std::string& path);

}  // namespace xpcore::archive
