#pragma once

/// \file net.hpp
/// Minimal POSIX TCP building blocks for the serving layer.
///
/// Everything the xpdnnd daemon and its clients need from the OS lives
/// here: an RAII socket, loopback listen/connect helpers, reliable
/// send-all, a buffered newline-delimited line reader with poll-based
/// timeouts, and a self-pipe for async-signal-safe wakeups of a poll loop.
/// All helpers report failures with std::system_error-style messages via
/// std::runtime_error; none of them install signal handlers (writes use
/// MSG_NOSIGNAL instead of relying on SIGPIPE being ignored).

#include <cstdint>
#include <string>
#include <string_view>

namespace xpcore::net {

/// RAII file-descriptor owner (socket or pipe end). Move-only.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close() noexcept;
    /// Give up ownership without closing.
    int release();

private:
    int fd_ = -1;
};

/// Create a listening TCP socket bound to 127.0.0.1:`port` (0 = pick an
/// ephemeral port). The actually bound port is written to *bound_port when
/// non-null. Throws std::runtime_error on failure.
Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port = nullptr, int backlog = 128);

/// Accept one pending connection (the listener must be readable). Returns
/// an invalid Socket when the accept would block or was interrupted.
Socket accept_connection(int listen_fd);

/// Blocking connect to 127.0.0.1:`port`, failing after `timeout_ms`.
/// Throws std::runtime_error on refusal or timeout.
Socket connect_tcp(std::uint16_t port, int timeout_ms = 5000);

/// Put the descriptor into non-blocking mode.
void set_nonblocking(int fd);

/// poll() the descriptor for readability. -1 waits forever. Returns true
/// when readable (or the peer hung up), false on timeout.
bool wait_readable(int fd, int timeout_ms);

/// Write the whole buffer, polling through partial writes and EAGAIN
/// (MSG_NOSIGNAL — a dead peer yields false, never SIGPIPE).
bool send_all(int fd, std::string_view data);

/// Buffered reader of '\n'-terminated lines from a socket.
class LineReader {
public:
    explicit LineReader(int fd) : fd_(fd) {}

    /// Read the next line (without its '\n'), waiting up to `timeout_ms`
    /// (-1 = forever) for more bytes. Returns false on EOF, error, or
    /// timeout with no complete line buffered.
    bool read_line(std::string& line, int timeout_ms = -1);

private:
    int fd_;
    std::string buffer_;
};

/// Self-pipe: notify() is async-signal-safe and wakes any poll() watching
/// read_fd(), which a drain handler needs (a SIGTERM handler may only call
/// async-signal-safe functions — write(2) qualifies, condition variables do
/// not).
class WakePipe {
public:
    WakePipe();
    ~WakePipe() = default;

    WakePipe(const WakePipe&) = delete;
    WakePipe& operator=(const WakePipe&) = delete;

    int read_fd() const { return read_end_.fd(); }
    /// Wake the poll loop. Safe from signal handlers and any thread.
    void notify() noexcept;
    /// Consume pending wakeup bytes (call after poll flags read_fd()).
    void drain() noexcept;

private:
    Socket read_end_;
    Socket write_end_;
};

}  // namespace xpcore::net
