#pragma once

/// \file thread_pool.hpp
/// A minimal work-sharing thread pool with a blocking parallel_for.
///
/// The library is written to run efficiently on a single core (where the
/// pool degrades to serial execution without spawning threads) and to scale
/// to many cores when they are available. parallel_for calls are safe from
/// multiple threads at once (each call tracks completion with its own
/// latch), may nest (waiting callers help drain the queue instead of
/// blocking a worker), and propagate the first exception a body throws.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xpcore {

/// Fixed-size thread pool. Tasks are std::function<void()>. An exception
/// escaping a submitted task is captured; wait_idle() rethrows the first
/// one after the queue drained. (parallel_for wraps its chunks and handles
/// exceptions per call instead.)
class ThreadPool {
public:
    /// Create a pool with `threads` workers; 0 means "serial" (run tasks
    /// inline on the caller's thread).
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads (0 for a serial pool).
    std::size_t size() const { return workers_.size(); }

    /// Enqueue a task. For a serial pool the task runs immediately (an
    /// exception then propagates directly to the caller).
    void submit(std::function<void()> task);

    /// Block until all submitted tasks have finished. Rethrows the first
    /// exception captured from a task since the last wait_idle().
    void wait_idle();

    /// Dequeue and run one pending task on the calling thread. Returns
    /// false when the queue is empty. Lets blocked parallel_for callers
    /// help instead of idling, which also makes nested calls deadlock-free.
    bool try_run_one();

    /// Process-wide default pool, sized from XPDNN_THREADS (if set) or
    /// hardware_concurrency() - 1. On a single-core machine this is a
    /// serial pool, avoiding oversubscription.
    static ThreadPool& global();

    /// Replace the global pool with one of `threads` workers. The previous
    /// pool is drained and joined first. Intended for tests and benches
    /// that compare thread counts in-process; not safe while other threads
    /// still use the old pool.
    static void reset_global(std::size_t threads);

    /// Restore the global pool to its environment-derived default size.
    static void reset_global();

private:
    void worker_loop();
    void run_task(std::function<void()>& task);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_available_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
    std::exception_ptr first_error_;
};

/// When false, parallel_for runs every body inline regardless of the pool —
/// a measurement switch for serial-vs-parallel A/B timing (fig6), not a
/// correctness knob (results are identical either way).
bool parallel_enabled();
void set_parallel_enabled(bool enabled);

/// RAII scope that disables parallel_for dispatch (see set_parallel_enabled).
class SerialGuard {
public:
    SerialGuard() : previous_(parallel_enabled()) { set_parallel_enabled(false); }
    ~SerialGuard() { set_parallel_enabled(previous_); }
    SerialGuard(const SerialGuard&) = delete;
    SerialGuard& operator=(const SerialGuard&) = delete;

private:
    bool previous_;
};

/// Split [0, n) into contiguous chunks and run `body(begin, end)` on the
/// pool. Blocks until every chunk finished; the first exception thrown by
/// any chunk is rethrown to the caller once all chunks have stopped. With a
/// serial pool (or n below `grain`) the body runs inline.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace xpcore
