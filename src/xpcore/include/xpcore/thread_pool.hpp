#pragma once

/// \file thread_pool.hpp
/// A minimal work-sharing thread pool with a blocking parallel_for.
///
/// The library is written to run efficiently on a single core (where the
/// pool degrades to serial execution without spawning threads) and to scale
/// to many cores when they are available.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xpcore {

/// Fixed-size thread pool. Tasks are std::function<void()>; exceptions
/// escaping a task terminate the program (tasks are expected to handle
/// their own errors — performance-modeling work items do not throw).
class ThreadPool {
public:
    /// Create a pool with `threads` workers; 0 means "serial" (run tasks
    /// inline on the caller's thread).
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of worker threads (0 for a serial pool).
    std::size_t size() const { return workers_.size(); }

    /// Enqueue a task. For a serial pool the task runs immediately.
    void submit(std::function<void()> task);

    /// Block until all submitted tasks have finished.
    void wait_idle();

    /// Process-wide default pool, sized from XPDNN_THREADS (if set) or
    /// hardware_concurrency() - 1. On a single-core machine this is a
    /// serial pool, avoiding oversubscription.
    static ThreadPool& global();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_available_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stop_ = false;
};

/// Split [0, n) into contiguous chunks and run `body(begin, end)` on the
/// pool. Blocks until every chunk finished. With a serial pool (or n below
/// `grain`) the body runs inline.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace xpcore
