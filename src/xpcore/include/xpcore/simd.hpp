#pragma once

/// \file simd.hpp
/// Runtime SIMD dispatch for the data-parallel compute kernels.
///
/// The library ships two implementations of every hot inner loop: the
/// portable scalar kernels (bit-for-bit identical to the pre-SIMD code, the
/// only path on non-x86 builds) and AVX2/FMA kernels selected at runtime
/// when the CPU supports them. Selection order:
///
///   1. a programmatic override installed with set_level() (tests, benches),
///   2. the XPDNN_SIMD environment variable
///      ("0"/"scalar" force the scalar path, "1"/"auto"/"avx2" allow SIMD),
///   3. CPUID: AVX2 + FMA support detected at first use.
///
/// SIMD is a speed knob with *bounded* numerical differences, not a results
/// knob in the bit-exact sense: the AVX2 kernels use FMA contraction and
/// polynomial approximations of tanh/exp (max errors documented in
/// simd_kernels.hpp and pinned by tests/test_simd_parity.cpp), so their
/// output differs from the scalar path at the last-ulp level. For any fixed
/// level, results remain bit-identical across thread counts: the kernels
/// partition output rows only and never reorder a per-element accumulation.

namespace xpcore::simd {

/// Instruction-set level of the compute kernels.
enum class Level {
    Scalar = 0,  ///< portable scalar kernels (pre-SIMD behavior, bit-exact)
    Avx2 = 1,    ///< AVX2 + FMA microkernels
};

/// Highest level this binary can run on this CPU (compile-time support
/// intersected with CPUID). Never affected by overrides or XPDNN_SIMD.
Level max_level();

/// The level the kernels dispatch on right now (override > env > CPUID).
Level active_level();

/// True when the AVX2 kernels are the active dispatch target.
bool avx2_active();

/// Install a runtime override (clamped to max_level()).
void set_level(Level level);

/// Drop the override and return to the XPDNN_SIMD / CPUID default.
void reset_level();

/// Human-readable level name ("scalar", "avx2").
const char* level_name(Level level);

/// RAII scope that pins the dispatch level and restores the previous state
/// on exit — used by the parity tests and the scalar-vs-SIMD benches.
class LevelGuard {
public:
    explicit LevelGuard(Level level) : previous_(active_level()) { set_level(level); }
    ~LevelGuard() { set_level(previous_); }
    LevelGuard(const LevelGuard&) = delete;
    LevelGuard& operator=(const LevelGuard&) = delete;

private:
    Level previous_;
};

}  // namespace xpcore::simd
