#pragma once

/// \file simd.hpp
/// Runtime SIMD dispatch for the data-parallel compute kernels.
///
/// The library ships three implementations of every hot inner loop: the
/// portable scalar kernels (bit-for-bit identical to the pre-SIMD code, the
/// only path on non-x86 builds), AVX2/FMA kernels, and AVX-512 kernels with
/// a widened microkernel and masked tails. The level is selected at runtime:
///
///   1. a programmatic override installed with set_level() (tests, benches),
///   2. the XPDNN_SIMD environment variable
///      ("0"/"scalar" force the scalar path, "avx2" caps at AVX2,
///      "1"/"auto"/"avx512" allow the best detected level),
///   3. CPUID: AVX2+FMA and AVX-512F/VL/DQ/BW support detected at first use.
///
/// SIMD is a speed knob with *bounded* numerical differences, not a results
/// knob in the bit-exact sense: the vector kernels use FMA contraction and
/// polynomial approximations of tanh/exp (max errors documented in
/// simd_kernels.hpp and pinned by tests/test_simd_parity.cpp), so their
/// output differs from the scalar path at the last-ulp level, and the two
/// vector levels differ from each other the same way (different summation
/// tree widths). For any fixed level, results remain bit-identical across
/// thread counts: the kernels partition output rows only and never reorder
/// a per-element accumulation.

namespace xpcore::simd {

/// Instruction-set level of the compute kernels.
enum class Level {
    Scalar = 0,  ///< portable scalar kernels (pre-SIMD behavior, bit-exact)
    Avx2 = 1,    ///< AVX2 + FMA microkernels
    Avx512 = 2,  ///< AVX-512F/VL microkernels (widened tiles, masked tails)
};

/// Highest level this binary can run on this CPU (compile-time support
/// intersected with CPUID). Never affected by overrides or XPDNN_SIMD.
Level max_level();

/// The level the kernels dispatch on right now (override > env > CPUID).
Level active_level();

/// True when the AVX2 kernels (or better) are the active dispatch target.
bool avx2_active();

/// True when the AVX-512 kernels are the active dispatch target.
bool avx512_active();

/// Install a runtime override (clamped to max_level()).
void set_level(Level level);

/// Drop the override and return to the XPDNN_SIMD / CPUID default.
void reset_level();

/// Human-readable level name ("scalar", "avx2", "avx512").
const char* level_name(Level level);

/// Parse a level name ("scalar"/"0"/"off", "avx2", "avx512"); anything else
/// (including "1"/"auto") means "best available". Shared by the XPDNN_SIMD
/// parser and the benches.
Level parse_level(const char* name);

/// The CPU brand string from CPUID (e.g. "Intel(R) Xeon(R) ..."), or
/// "unknown" where the leaf is unavailable. Recorded by tools/bench_record
/// so bench trajectories across machines stay interpretable.
const char* cpu_model_string();

/// RAII scope that pins the dispatch level and restores the previous state
/// on exit — used by the parity tests and the scalar-vs-SIMD benches.
class LevelGuard {
public:
    explicit LevelGuard(Level level) : previous_(active_level()) { set_level(level); }
    ~LevelGuard() { set_level(previous_); }
    LevelGuard(const LevelGuard&) = delete;
    LevelGuard& operator=(const LevelGuard&) = delete;

private:
    Level previous_;
};

}  // namespace xpcore::simd
