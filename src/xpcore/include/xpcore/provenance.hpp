#pragma once

/// \file provenance.hpp
/// The machine-provenance block shared by every BENCH_*.json emitter.
///
/// A benchmark number without the machine it was measured on is noise in
/// the trajectory. tools/bench_record (BENCH_nn.json) and
/// bench/serve_throughput (BENCH_serve.json) both stamp their output with
/// the same JSON object: CPU model, best SIMD dispatch level, hardware
/// thread count, detected cache hierarchy, and the autotuned GEMM blocking
/// per level (with its source: probed, cached, env, or default).

#include <string>

namespace xpcore {

/// The provenance object, serialized as a JSON value (no trailing
/// newline). `indent` spaces prefix the nested lines so the block can be
/// embedded at any depth of a pretty-printed document; the first line is
/// not indented (it follows a `"machine": ` key).
std::string machine_provenance_json(int indent = 2);

}  // namespace xpcore
