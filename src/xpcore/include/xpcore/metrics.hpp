#pragma once

/// \file metrics.hpp
/// Error metrics used for model selection and evaluation.

#include <cmath>
#include <span>

namespace xpcore {

/// Per-pair SMAPE contribution in percent, in [0, 200]; a both-zero pair
/// contributes 0 (perfect agreement).
inline double smape_term(double predicted, double actual) {
    const double denom = (std::abs(actual) + std::abs(predicted)) / 2.0;
    if (denom == 0.0) return 0.0;
    return 100.0 * std::abs(predicted - actual) / denom;
}

/// Symmetric mean absolute percentage error in percent, the selection
/// metric used by Extra-P and by this library's modelers.
///
/// SMAPE = 100/N * sum |pred - actual| / ((|actual| + |pred|) / 2),
/// where N counts only the pairs with a nonzero denominator: both-zero
/// pairs are perfect agreement and are excluded from sum *and* count (the
/// same convention mape uses), so they cannot deflate the average. Returns
/// 0 when no pair is countable. Result lies in [0, 200].
double smape(std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute percentage error in percent. Terms with actual == 0 are
/// skipped (they would be undefined).
double mape(std::span<const double> predicted, std::span<const double> actual);

/// Relative error |pred - actual| / |actual| in percent for a single value.
/// Returns |pred| * 100 when actual == 0 (graceful degenerate case).
inline double relative_error_pct(double predicted, double actual) {
    if (actual == 0.0) return std::abs(predicted) * 100.0;
    return std::abs(predicted - actual) / std::abs(actual) * 100.0;
}

}  // namespace xpcore
