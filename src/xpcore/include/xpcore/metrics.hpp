#pragma once

/// \file metrics.hpp
/// Error metrics used for model selection and evaluation.

#include <cmath>
#include <span>

namespace xpcore {

/// Symmetric mean absolute percentage error in percent, the selection
/// metric used by Extra-P and by this library's modelers.
///
/// SMAPE = 100/N * sum |pred - actual| / ((|actual| + |pred|) / 2),
/// with the convention that a term is 0 when both values are 0.
/// Result lies in [0, 200].
double smape(std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute percentage error in percent. Terms with actual == 0 are
/// skipped (they would be undefined).
double mape(std::span<const double> predicted, std::span<const double> actual);

/// Relative error |pred - actual| / |actual| in percent for a single value.
/// Returns |pred| * 100 when actual == 0 (graceful degenerate case).
inline double relative_error_pct(double predicted, double actual) {
    if (actual == 0.0) return std::abs(predicted) * 100.0;
    return std::abs(predicted - actual) / std::abs(actual) * 100.0;
}

}  // namespace xpcore
