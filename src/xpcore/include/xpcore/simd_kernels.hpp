#pragma once

/// \file simd_kernels.hpp
/// Vector kernel entry points for the two SIMD dispatch levels:
///   * _avx2 — AVX2/FMA, defined in simd_avx2.cpp (compiled with
///     -mavx2 -mfma on x86);
///   * _avx512 — AVX-512F/VL/BW/DQ, defined in simd_avx512.cpp (compiled
///     with the matching -mavx512* flags on x86).
/// Callers must check xpcore::simd::avx2_active() / avx512_active() before
/// calling the corresponding set; on builds without x86 SIMD support the
/// functions exist but terminate if reached (the actives are then constantly
/// false, so they are unreachable in correct code).
///
/// Numerical contracts (pinned by tests/test_simd_parity.cpp):
///  - gemm_f32_avx2 / gemm_f32_avx512: same sum over k per output element as
///    the scalar kernels, evaluated with FMA contraction and an 8-lane
///    (resp. 16-lane) tile layout; relative error vs. the scalar kernels is
///    O(k * eps_f32). Accumulation order per element is fixed by the
///    (k-panel, lane) position only, so results are bit-identical across
///    thread counts and batch row counts at a fixed level and blocking.
///  - tanh_f32_*: rational approximation R(x) = x * P(x^2) / Q(x^2) on the
///    clamped range [-9, 9]; max absolute error vs. std::tanh over [-20, 20]
///    is < 5e-7 (measured ~1.1e-7). Both widths evaluate the identical
///    polynomial (simd_poly.hpp).
///  - exp_f32_*: 2^n * P(r) range reduction with a degree-5 polynomial; max
///    relative error vs. std::exp over [-87, 87] is < 5e-7 (measured
///    ~1.2e-7). Inputs <= -87.3 flush to 0, inputs >= 88.7 saturate to the
///    largest finite float (softmax never feeds positive inputs).
///  - softmax_rows_* / adamax_update_*: composed from the above plus
///    elementwise FMA arithmetic; tolerance-checked against the scalar
///    implementations.

#include <cstddef>

namespace xpcore::simd {

/// Cache-blocking parameters of a packed-panel GEMM level: the k panel
/// depth (KC), the packed row block (MC, a multiple of the microkernel
/// row count) and the packed column block (NC, a multiple of the
/// microkernel column width). Installed per level by the startup autotuner
/// (xpcore/gemm_tune.hpp) or explicitly via set_gemm_blocking_*.
///
/// Blocking is a *within-process* constant in practice: KC changes the
/// floating-point summation grouping, so two processes tuned differently
/// produce last-ulp-different GEMMs — but within one process results stay
/// bit-identical across thread counts for any fixed blocking, which is the
/// determinism contract the library makes.
struct GemmBlocking {
    std::size_t kc = 0;
    std::size_t mc = 0;
    std::size_t nc = 0;
};

/// Register microkernel tile of a GEMM level (rows x columns).
struct GemmTile {
    std::size_t mr = 0;
    std::size_t nr = 0;
};

// ---- AVX2 ------------------------------------------------------------------

/// True when the binary contains the AVX2 kernels (x86 + compiler support).
bool compiled_with_avx2();

/// The AVX2 microkernel tile (6 x 16) and the active / compiled-in default
/// blocking. set_gemm_blocking_avx2 clamps and rounds its argument to legal
/// values (kc >= 8, mc a positive multiple of mr, nc a positive multiple
/// of nr).
GemmTile gemm_tile_avx2();
GemmBlocking gemm_blocking_avx2();
GemmBlocking default_gemm_blocking_avx2();
void set_gemm_blocking_avx2(GemmBlocking blocking);

/// General packed-panel SGEMM over an output-row range:
///   C[i0..i1, :] = (or +=) op_a(A) * op_b(B)
/// with op(X) = X or X^T selected by the trans flags. Logical shapes are
/// op_a(A) = [m x k], op_b(B) = [k x n], C = [m x n]; lda/ldb/ldc are the
/// *storage* row strides of A, B, C. Packing buffers are per-thread scratch
/// reused across calls (zero allocations in steady state once sized).
void gemm_f32_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                   std::size_t lda, bool trans_a, const float* b, std::size_t ldb,
                   bool trans_b, float* c, std::size_t ldc, bool accumulate,
                   std::size_t i0, std::size_t i1);

/// y[i] = tanh(x[i]) via the vectorized rational approximation.
void tanh_f32_avx2(const float* x, float* y, std::size_t n);

/// y[i] = exp(x[i]) via the vectorized range-reduction approximation.
void exp_f32_avx2(const float* x, float* y, std::size_t n);

/// Row-wise stable softmax: out[r, :] = softmax(in[r, :]) for `rows` rows
/// of `cols` contiguous floats (max-subtracted, vectorized exp and sums).
void softmax_rows_avx2(const float* in, float* out, std::size_t rows, std::size_t cols);

/// One fused AdaMax update over a parameter block of n scalars:
///   m = beta1 * m + (1 - beta1) * g
///   u = max(beta2 * u, |g|)
///   w -= rate * m / (u + epsilon)
///   g = 0                      (the step owns gradient clearing)
void adamax_update_avx2(float* w, float* g, float* m, float* u, std::size_t n,
                        float rate, float beta1, float beta2, float epsilon);

// ---- AVX-512 ---------------------------------------------------------------

/// True when the binary contains the AVX-512 kernels (x86 + compiler
/// support for -mavx512f/vl/bw/dq).
bool compiled_with_avx512();

/// The AVX-512 microkernel tile (14 x 32: 28 zmm accumulators, one
/// broadcast, two B loads — 31 of the 32 vector registers) and its
/// blocking controls, with the same rounding rules as the AVX2 setters.
GemmTile gemm_tile_avx512();
GemmBlocking gemm_blocking_avx512();
GemmBlocking default_gemm_blocking_avx512();
void set_gemm_blocking_avx512(GemmBlocking blocking);

/// AVX-512 counterparts of the AVX2 entry points above; identical calling
/// conventions and numerical contracts, wider tiles and masked tails.
void gemm_f32_avx512(std::size_t m, std::size_t n, std::size_t k, const float* a,
                     std::size_t lda, bool trans_a, const float* b, std::size_t ldb,
                     bool trans_b, float* c, std::size_t ldc, bool accumulate,
                     std::size_t i0, std::size_t i1);
void tanh_f32_avx512(const float* x, float* y, std::size_t n);
void exp_f32_avx512(const float* x, float* y, std::size_t n);
void softmax_rows_avx512(const float* in, float* out, std::size_t rows, std::size_t cols);
void adamax_update_avx512(float* w, float* g, float* m, float* u, std::size_t n,
                          float rate, float beta1, float beta2, float epsilon);

// ---- scalar references -----------------------------------------------------

/// Scalar reference implementations of the SIMD polynomial approximations
/// (same clamping and coefficients, no FMA guarantees). Exposed so tests
/// and docs can measure the approximation error independently of the
/// vector code path, and so non-benchmark callers can reuse the polynomial
/// without AVX2.
float tanh_approx(float x);
float exp_approx(float x);

}  // namespace xpcore::simd
