#include "xpcore/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "xpcore/hash.hpp"

namespace xpcore {

std::string temp_path_for(const std::string& path) {
    static std::atomic<std::uint64_t> counter{0};
    return path + "." + std::to_string(::getpid()) + "." +
           std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) + ".tmp";
}

void atomic_publish(const std::string& path,
                    const std::function<void(std::ostream&)>& body) {
    const std::string temp = temp_path_for(path);
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw Error({path, 0, 0, "cannot open temp file for commit: " + temp});
        }
        body(out);
        out.flush();
        if (!out) {
            out.close();
            std::error_code ec;
            std::filesystem::remove(temp, ec);
            throw Error({path, 0, 0, "short write while publishing " + path});
        }
    }
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::filesystem::remove(temp, ec);
        throw Error({path, 0, 0, "cannot publish commit: rename failed"});
    }
}

bool quarantine_corrupt(const std::string& path) {
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (!ec) return true;
    std::filesystem::remove(path, ec);
    return !ec;
}

namespace store {
namespace {

// Blob header layout (64 bytes, all fields little-endian, serialized field
// by field — never by struct memcpy). Documented in docs/FILE_FORMATS.md.
constexpr char kMagic[8] = {'x', 'p', 'd', 'n', 'S', 't', 'o', '1'};
constexpr std::size_t kHeaderSize = 64;
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffFormatVersion = 8;
constexpr std::size_t kOffSchemaVersion = 12;
constexpr std::size_t kOffSequence = 16;
constexpr std::size_t kOffKeySize = 24;
constexpr std::size_t kOffPayloadSize = 32;
constexpr std::size_t kOffFingerprint = 40;
constexpr std::size_t kOffHeaderChecksum = 48;
constexpr std::size_t kHeaderChecksumSpan = kOffHeaderChecksum;  // bytes 0..47

template <typename T>
void put_field(unsigned char* base, std::size_t offset, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(base + offset, &value, sizeof(T));
}

template <typename T>
T get_field(const unsigned char* base, std::size_t offset) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    std::memcpy(&value, base + offset, sizeof(T));
    return value;
}

struct BlobHeader {
    std::uint32_t format_version = kFormatVersion;
    std::uint32_t schema_version = 0;
    std::uint64_t sequence = 0;
    std::uint64_t key_size = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t fingerprint = 0;
};

void encode_blob_header(unsigned char* out, const BlobHeader& h) {
    std::memset(out, 0, kHeaderSize);
    std::memcpy(out + kOffMagic, kMagic, sizeof(kMagic));
    put_field(out, kOffFormatVersion, h.format_version);
    put_field(out, kOffSchemaVersion, h.schema_version);
    put_field(out, kOffSequence, h.sequence);
    put_field(out, kOffKeySize, h.key_size);
    put_field(out, kOffPayloadSize, h.payload_size);
    put_field(out, kOffFingerprint, h.fingerprint);
    Fnv1a checksum;
    checksum.mix(out, kHeaderChecksumSpan);
    put_field(out, kOffHeaderChecksum, checksum.state);
}

/// Decode + structurally validate a header against the actual file size.
/// Returns false on any damage (bad magic, checksum mismatch, size lie).
bool decode_blob_header(const unsigned char* in, std::uint64_t file_size,
                        BlobHeader* out) {
    if (file_size < kHeaderSize) return false;
    if (std::memcmp(in + kOffMagic, kMagic, sizeof(kMagic)) != 0) return false;
    Fnv1a checksum;
    checksum.mix(in, kHeaderChecksumSpan);
    if (checksum.state != get_field<std::uint64_t>(in, kOffHeaderChecksum)) return false;
    out->format_version = get_field<std::uint32_t>(in, kOffFormatVersion);
    out->schema_version = get_field<std::uint32_t>(in, kOffSchemaVersion);
    out->sequence = get_field<std::uint64_t>(in, kOffSequence);
    out->key_size = get_field<std::uint64_t>(in, kOffKeySize);
    out->payload_size = get_field<std::uint64_t>(in, kOffPayloadSize);
    out->fingerprint = get_field<std::uint64_t>(in, kOffFingerprint);
    if (out->format_version != kFormatVersion) return false;
    if (out->key_size > file_size - kHeaderSize ||
        out->payload_size != file_size - kHeaderSize - out->key_size) {
        return false;
    }
    return true;
}

std::uint64_t content_fingerprint(std::string_view key, std::string_view payload) {
    // Sizes live in the checksummed header, so plain concatenation cannot
    // be ambiguous here.
    Fnv1a hash;
    hash.mix(key.data(), key.size());
    hash.mix(payload.data(), payload.size());
    return hash.state;
}

bool read_file_bytes(const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) return false;
    *out = buffer.str();
    return true;
}

}  // namespace

Store::Store(Config config) : config_(std::move(config)) {
    if (config_.prefix.empty()) config_.prefix = "blob";
    scan();
}

void Store::warn(const std::string& source, const std::string& message) const {
    Diagnostic diagnostic;
    diagnostic.source = source;
    diagnostic.message = message;
    if (config_.warn) {
        config_.warn(diagnostic);
    } else {
        std::fprintf(stderr, "xpdnn: warning: %s\n", diagnostic.format().c_str());
    }
}

std::string Store::path_for(const std::string& key) const {
    Fnv1a hash;
    hash.mix(key.data(), key.size());
    char name[128];
    std::snprintf(name, sizeof(name), "%s_%016llx.blob", config_.prefix.c_str(),
                  static_cast<unsigned long long>(hash.state));
    return (std::filesystem::path(config_.dir) / name).string();
}

void Store::scan() {
    std::error_code ec;
    std::filesystem::directory_iterator it(config_.dir, ec);
    if (ec) return;  // absent dir: empty store, created on first put
    const std::string want_prefix = config_.prefix + "_";
    for (const auto& entry : it) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string file = entry.path().filename().string();
        if (file.size() < want_prefix.size() + 5 ||
            file.compare(0, want_prefix.size(), want_prefix) != 0 ||
            file.compare(file.size() - 5, 5, ".blob") != 0) {
            continue;
        }
        const std::string path = entry.path().string();
        std::string bytes;
        BlobHeader header;
        if (!read_file_bytes(path, &bytes) ||
            !decode_blob_header(reinterpret_cast<const unsigned char*>(bytes.data()),
                                bytes.size(), &header)) {
            // Structural damage visible from the header alone: repair now so
            // capacity accounting never counts junk. Payload damage is only
            // detectable by hashing, which load() does on demand.
            if (quarantine_corrupt(path)) {
                stats_.repairs += 1;
                warn(path, "corrupt store blob moved to " + path + ".corrupt");
            }
            continue;
        }
        Entry indexed;
        indexed.key = bytes.substr(kHeaderSize, header.key_size);
        indexed.file = file;
        indexed.sequence = header.sequence;
        indexed.payload_size = header.payload_size;
        next_sequence_ = std::max(next_sequence_, header.sequence + 1);
        entries_.push_back(std::move(indexed));
    }
    std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
        return a.sequence != b.sequence ? a.sequence < b.sequence : a.file < b.file;
    });
}

std::size_t Store::find_locked(const std::string& key) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].key == key) return i;
    }
    return entries_.size();
}

std::optional<std::string> Store::load(const std::string& key) {
    const std::string path = path_for(key);
    std::lock_guard<std::mutex> lock(mutex_);

    std::string bytes;
    if (!read_file_bytes(path, &bytes)) {
        stats_.misses += 1;
        return std::nullopt;
    }
    BlobHeader header;
    const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
    const bool header_ok = decode_blob_header(base, bytes.size(), &header);
    if (header_ok && header.schema_version != config_.schema_version) {
        // A healthy blob from another schema generation: a plain miss (the
        // next put overwrites it in place), never a repair.
        stats_.misses += 1;
        return std::nullopt;
    }
    std::string stored_key;
    std::string payload;
    bool intact = header_ok;
    if (intact) {
        stored_key = bytes.substr(kHeaderSize, header.key_size);
        payload = bytes.substr(kHeaderSize + header.key_size, header.payload_size);
        intact = content_fingerprint(stored_key, payload) == header.fingerprint;
    }
    if (!intact) {
        const std::size_t index = find_locked(key);
        if (index < entries_.size()) entries_.erase(entries_.begin() + index);
        if (quarantine_corrupt(path)) {
            stats_.repairs += 1;
            warn(path, "corrupt store blob moved to " + path + ".corrupt");
        }
        stats_.misses += 1;
        return std::nullopt;
    }
    if (stored_key != key) {
        // Hash collision: the slot holds a different key's blob. Miss; the
        // caller's put will overwrite (last writer wins, as for any cache).
        stats_.misses += 1;
        return std::nullopt;
    }
    stats_.hits += 1;
    return payload;
}

bool Store::put(const std::string& key, std::string_view payload) {
    const std::string path = path_for(key);
    std::lock_guard<std::mutex> lock(mutex_);

    std::error_code ec;
    std::filesystem::create_directories(config_.dir, ec);  // best effort

    BlobHeader header;
    header.schema_version = config_.schema_version;
    header.sequence = next_sequence_;
    header.key_size = key.size();
    header.payload_size = payload.size();
    header.fingerprint = content_fingerprint(key, payload);
    unsigned char header_bytes[kHeaderSize];
    encode_blob_header(header_bytes, header);

    try {
        atomic_publish(path, [&](std::ostream& out) {
            out.write(reinterpret_cast<const char*>(header_bytes), kHeaderSize);
            out.write(key.data(), static_cast<std::streamsize>(key.size()));
            out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        });
    } catch (const Error& error) {
        stats_.put_failures += 1;
        warn(path, "store write failed: " + error.diagnostic().message);
        return false;
    }

    next_sequence_ += 1;
    const std::size_t index = find_locked(key);
    if (index < entries_.size()) entries_.erase(entries_.begin() + index);
    Entry entry;
    entry.key = key;
    entry.file = std::filesystem::path(path).filename().string();
    entry.sequence = header.sequence;
    entry.payload_size = payload.size();
    entries_.push_back(std::move(entry));
    stats_.puts += 1;
    if (config_.capacity > 0) evict_locked(config_.capacity);
    return true;
}

bool Store::erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = find_locked(key);
    if (index < entries_.size()) entries_.erase(entries_.begin() + index);
    std::error_code ec;
    return std::filesystem::remove(path_for(key), ec) && !ec;
}

std::size_t Store::evict_locked(std::size_t keep) {
    std::size_t evicted = 0;
    while (entries_.size() > keep) {
        const Entry& victim = entries_.front();
        std::error_code ec;
        std::filesystem::remove(std::filesystem::path(config_.dir) / victim.file, ec);
        entries_.erase(entries_.begin());
        evicted += 1;
    }
    stats_.evictions += evicted;
    return evicted;
}

std::size_t Store::evict(std::size_t keep) {
    std::lock_guard<std::mutex> lock(mutex_);
    return evict_locked(keep);
}

std::vector<std::string> Store::keys() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& entry : entries_) out.push_back(entry.key);
    return out;
}

Stats Store::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.entries = entries_.size();
    out.payload_bytes = 0;
    for (const Entry& entry : entries_) out.payload_bytes += entry.payload_size;
    return out;
}

}  // namespace store
}  // namespace xpcore
