#include "xpcore/parse.hpp"

#include <charconv>
#include <cmath>
#include <system_error>

namespace xpcore {

std::size_t parse_double_prefix(std::string_view text, double& out) {
    std::string_view digits = text;
    std::size_t plus = 0;
    if (!digits.empty() && digits.front() == '+') {
        digits.remove_prefix(1);
        plus = 1;
    }
    // from_chars accepts "inf"/"nan" literals, which no caller's grammar
    // does — reject them before parsing so "nan" is 0-consumed, not NaN.
    if (!digits.empty()) {
        const char c = digits[digits.front() == '-' ? (digits.size() > 1 ? 1 : 0) : 0];
        if (c == 'i' || c == 'I' || c == 'n' || c == 'N') return 0;
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec == std::errc::invalid_argument || ptr == digits.data()) return 0;
    if (ec == std::errc::result_out_of_range || !std::isfinite(value)) return 0;
    out = value;
    return plus + static_cast<std::size_t>(ptr - digits.data());
}

bool parse_double(std::string_view text, double& out) {
    double value = 0.0;
    const std::size_t consumed = parse_double_prefix(text, value);
    if (consumed == 0 || consumed != text.size()) return false;
    out = value;
    return true;
}

}  // namespace xpcore
