#include "xpcore/stats.hpp"

#include <algorithm>
#include <cmath>

#include "xpcore/rng.hpp"

namespace xpcore {

double mean(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double sum = 0.0;
    for (double x : xs) sum += (x - m) * (x - m);
    return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    std::vector<double> copy(xs.begin(), xs.end());
    const std::size_t mid = copy.size() / 2;
    std::nth_element(copy.begin(), copy.begin() + mid, copy.end());
    const double hi = copy[mid];
    if (copy.size() % 2 == 1) return hi;
    const double lo = *std::max_element(copy.begin(), copy.begin() + mid);
    return 0.5 * (lo + hi);
}

double quantile(std::span<const double> xs, double q) {
    if (xs.empty()) return 0.0;
    std::vector<double> copy(xs.begin(), xs.end());
    std::sort(copy.begin(), copy.end());
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(copy.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, copy.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

double min_value(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
    if (xs.empty()) return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

namespace {

template <typename Statistic>
ConfidenceInterval bootstrap_ci(std::span<const double> xs, double confidence,
                                std::size_t resamples, Rng& rng, Statistic stat) {
    ConfidenceInterval ci;
    ci.point = stat(xs);
    if (xs.size() < 2 || resamples == 0) {
        ci.lower = ci.upper = ci.point;
        return ci;
    }
    std::vector<double> stats(resamples);
    std::vector<double> sample(xs.size());
    for (std::size_t r = 0; r < resamples; ++r) {
        for (std::size_t i = 0; i < xs.size(); ++i) {
            sample[i] = xs[rng.uniform_int(0, static_cast<std::int64_t>(xs.size()) - 1)];
        }
        stats[r] = stat(std::span<const double>(sample));
    }
    const double alpha = 1.0 - confidence;
    ci.lower = quantile(stats, alpha / 2.0);
    ci.upper = quantile(stats, 1.0 - alpha / 2.0);
    return ci;
}

}  // namespace

ConfidenceInterval bootstrap_median_ci(std::span<const double> xs, double confidence,
                                       std::size_t resamples, Rng& rng) {
    return bootstrap_ci(xs, confidence, resamples, rng,
                        [](std::span<const double> s) { return median(s); });
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs, double confidence,
                                     std::size_t resamples, Rng& rng) {
    return bootstrap_ci(xs, confidence, resamples, rng,
                        [](std::span<const double> s) { return mean(s); });
}

ConfidenceInterval bootstrap_proportion_ci(std::size_t successes, std::size_t total,
                                           double confidence, std::size_t resamples, Rng& rng) {
    ConfidenceInterval ci;
    if (total == 0) return ci;
    const double p = static_cast<double>(successes) / static_cast<double>(total);
    ci.point = p;
    if (resamples == 0) {
        ci.lower = ci.upper = p;
        return ci;
    }
    std::vector<double> stats(resamples);
    for (std::size_t r = 0; r < resamples; ++r) {
        std::size_t hits = 0;
        for (std::size_t i = 0; i < total; ++i) {
            if (rng.chance(p)) ++hits;
        }
        stats[r] = static_cast<double>(hits) / static_cast<double>(total);
    }
    const double alpha = 1.0 - confidence;
    ci.lower = quantile(stats, alpha / 2.0);
    ci.upper = quantile(stats, 1.0 - alpha / 2.0);
    return ci;
}

}  // namespace xpcore
