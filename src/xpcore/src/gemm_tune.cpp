#include "xpcore/gemm_tune.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "xpcore/hash.hpp"
#include "xpcore/store.hpp"
#include "xpcore/timer.hpp"

namespace xpcore::simd {

namespace {

/// Bump when the candidate-generation or probe logic changes, so stale
/// disk-cache entries are ignored.
constexpr std::uint32_t kTunerVersion = 1;

// Probe shape: large enough to stream through every blocking level,
// close enough in spirit to the training GEMMs (hundreds-of-rows operands).
constexpr std::size_t kProbeM = 384;
constexpr std::size_t kProbeK = 384;
constexpr std::size_t kProbeN = 384;
constexpr int kProbeIters = 3;  // median-of-3 after one warmup

// ---- cache hierarchy detection ---------------------------------------------

std::size_t parse_size_kib(const char* text) {
    // sysfs "size" files read like "48K", "2048K", "1M".
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text) return 0;
    std::size_t bytes = static_cast<std::size_t>(value);
    if (*end == 'K' || *end == 'k') {
        bytes *= 1024;
    } else if (*end == 'M' || *end == 'm') {
        bytes *= 1024 * 1024;
    }
    return bytes;
}

bool read_small_file(const std::string& path, char* buf, std::size_t cap) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) return false;
    const std::size_t n = std::fread(buf, 1, cap - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    return n > 0;
}

CacheHierarchy detect_cache_hierarchy() {
    CacheHierarchy info;
    const char* base = "/sys/devices/system/cpu/cpu0/cache";
    for (int index = 0; index < 8; ++index) {
        const std::string dir = std::string(base) + "/index" + std::to_string(index);
        char level[16];
        char type[32];
        char size[32];
        if (!read_small_file(dir + "/level", level, sizeof(level)) ||
            !read_small_file(dir + "/type", type, sizeof(type)) ||
            !read_small_file(dir + "/size", size, sizeof(size))) {
            continue;
        }
        if (std::strncmp(type, "Instruction", 11) == 0) continue;
        const long lvl = std::strtol(level, nullptr, 10);
        const std::size_t bytes = parse_size_kib(size);
        if (bytes == 0) continue;
        if (lvl == 1) info.l1d_bytes = bytes;
        if (lvl == 2) info.l2_bytes = bytes;
        if (lvl == 3) info.l3_bytes = bytes;
    }
    info.detected = info.l1d_bytes != 0 && info.l2_bytes != 0;
    // Generic fallbacks keep the candidate math meaningful everywhere.
    if (info.l1d_bytes == 0) info.l1d_bytes = 32 * 1024;
    if (info.l2_bytes == 0) info.l2_bytes = 1024 * 1024;
    if (info.l3_bytes == 0) info.l3_bytes = 8 * 1024 * 1024;
    return info;
}

// ---- per-level kernel access -----------------------------------------------

struct LevelOps {
    GemmTile tile;
    GemmBlocking compiled_default;
    void (*set_blocking)(GemmBlocking);
    GemmBlocking (*get_blocking)();
    void (*gemm)(std::size_t, std::size_t, std::size_t, const float*, std::size_t, bool,
                 const float*, std::size_t, bool, float*, std::size_t, bool, std::size_t,
                 std::size_t);
};

LevelOps level_ops(Level level) {
    if (level == Level::Avx512) {
        return {gemm_tile_avx512(), default_gemm_blocking_avx512(), set_gemm_blocking_avx512,
                gemm_blocking_avx512, gemm_f32_avx512};
    }
    return {gemm_tile_avx2(), default_gemm_blocking_avx2(), set_gemm_blocking_avx2,
            gemm_blocking_avx2, gemm_f32_avx2};
}

// ---- candidate generation ---------------------------------------------------

std::size_t round_down_to(std::size_t value, std::size_t unit) {
    value -= value % unit;
    return value < unit ? unit : value;
}

std::vector<GemmBlocking> make_candidates(const GemmTile& tile,
                                          const GemmBlocking& compiled_default,
                                          const CacheHierarchy& cache) {
    std::vector<GemmBlocking> candidates;
    candidates.push_back(compiled_default);
    for (const std::size_t kc : {std::size_t{128}, std::size_t{256}, std::size_t{384},
                                 std::size_t{512}}) {
        // The packed A block (MC x KC floats) should occupy about half of
        // L2, leaving room for the B panel stripe and C tiles.
        std::size_t mc = (cache.l2_bytes / 2) / (kc * sizeof(float));
        mc = round_down_to(std::clamp<std::size_t>(mc, tile.mr, 1008), tile.mr);
        // The packed B panel (KC x NC floats) streams from L3; an eighth of
        // it keeps the panel resident alongside other working sets.
        std::size_t nc = (cache.l3_bytes / 8) / (kc * sizeof(float));
        nc = round_down_to(std::clamp<std::size_t>(nc, tile.nr, 4096), tile.nr);
        const GemmBlocking candidate{kc, mc, nc};
        const bool duplicate =
            std::any_of(candidates.begin(), candidates.end(), [&](const GemmBlocking& b) {
                return b.kc == candidate.kc && b.mc == candidate.mc && b.nc == candidate.nc;
            });
        if (!duplicate) candidates.push_back(candidate);
    }
    return candidates;
}

// ---- probing ----------------------------------------------------------------

GemmBlocking probe_best(const LevelOps& ops, const std::vector<GemmBlocking>& candidates) {
    std::vector<float> a(kProbeM * kProbeK);
    std::vector<float> b(kProbeK * kProbeN);
    std::vector<float> c(kProbeM * kProbeN, 0.0f);
    // Deterministic non-trivial fill; values are irrelevant to timing but
    // denormals must be avoided.
    for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.5f + 0.001f * static_cast<float>(i % 97);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.25f + 0.002f * static_cast<float>(i % 89);

    GemmBlocking best = candidates.front();
    double best_seconds = -1.0;
    for (const GemmBlocking& candidate : candidates) {
        ops.set_blocking(candidate);
        double samples[kProbeIters];
        // Warmup primes the packing buffers and the caches.
        ops.gemm(kProbeM, kProbeN, kProbeK, a.data(), kProbeK, false, b.data(), kProbeN,
                 false, c.data(), kProbeN, false, 0, kProbeM);
        for (int iter = 0; iter < kProbeIters; ++iter) {
            WallTimer timer;
            ops.gemm(kProbeM, kProbeN, kProbeK, a.data(), kProbeK, false, b.data(), kProbeN,
                     false, c.data(), kProbeN, false, 0, kProbeM);
            samples[iter] = timer.seconds();
        }
        std::sort(samples, samples + kProbeIters);
        const double median = samples[kProbeIters / 2];
        if (best_seconds < 0.0 || median < best_seconds) {
            best_seconds = median;
            best = ops.get_blocking();  // the clamped form actually installed
        }
    }
    return best;
}

// ---- disk cache -------------------------------------------------------------

/// The durable store backing the tune cache: shares XPDNN_CACHE_DIR with
/// the pretrain cache, under its own "gemm_tune" prefix. The tuner version
/// rides as the store schema, so a probe-logic bump turns stale entries
/// into typed misses instead of silently reusing them.
store::Store tune_store() {
    store::Config config;
    config.dir = ".xpdnn_cache";
    if (const char* env = std::getenv("XPDNN_CACHE_DIR")) config.dir = env;
    config.prefix = "gemm_tune";
    config.schema_version = kTunerVersion;
    return store::Store(std::move(config));
}

/// Machine-specific cache key: CPU model, dispatch level, microkernel tile
/// and the detected cache hierarchy, so a moved cache dir can never feed
/// blockings tuned for a different machine.
std::string tune_cache_key(Level level, const GemmTile& tile, const CacheHierarchy& cache) {
    char key[256];
    std::snprintf(key, sizeof(key), "%s|%s|mr=%zu|nr=%zu|l1=%zu|l2=%zu|l3=%zu",
                  cpu_model_string(), level_name(level), tile.mr, tile.nr,
                  cache.l1d_bytes, cache.l2_bytes, cache.l3_bytes);
    return key;
}

bool load_cached_blocking(store::Store& cache, const std::string& key, GemmBlocking* out) {
    const std::optional<std::string> blob = cache.load(key);
    if (!blob.has_value()) return false;
    unsigned long long kc = 0;
    unsigned long long mc = 0;
    unsigned long long nc = 0;
    if (std::sscanf(blob->c_str(), "%llu %llu %llu", &kc, &mc, &nc) != 3) return false;
    if (kc == 0 || mc == 0 || nc == 0) return false;
    *out = {static_cast<std::size_t>(kc), static_cast<std::size_t>(mc),
            static_cast<std::size_t>(nc)};
    return true;
}

void store_cached_blocking(store::Store& cache, const std::string& key,
                           const GemmBlocking& blocking) {
    char text[96];
    std::snprintf(text, sizeof(text), "%zu %zu %zu\n", blocking.kc, blocking.mc,
                  blocking.nc);
    // The store publishes atomically (concurrent ctest -j processes may
    // tune the same level at once) and surfaces a write failure as a
    // structured warning instead of swallowing it.
    cache.put(key, text);
}

// ---- orchestration ----------------------------------------------------------

bool parse_explicit_blocking(const char* text, GemmBlocking* out) {
    unsigned long long kc = 0;
    unsigned long long mc = 0;
    unsigned long long nc = 0;
    if (std::sscanf(text, "%llu:%llu:%llu", &kc, &mc, &nc) != 3) return false;
    if (kc == 0 || mc == 0 || nc == 0) return false;
    *out = {static_cast<std::size_t>(kc), static_cast<std::size_t>(mc),
            static_cast<std::size_t>(nc)};
    return true;
}

struct LevelTuneState {
    std::once_flag once;
    GemmTuneInfo info{GemmBlocking{}, "default"};
};

LevelTuneState g_state[2];  // [0] = Avx2, [1] = Avx512

void tune_level(Level level, LevelTuneState* state) {
    const LevelOps ops = level_ops(level);
    state->info = {ops.compiled_default, "default"};

    const bool runnable = level <= max_level();
    const char* mode = std::getenv("XPDNN_GEMM_TUNE");
    if (mode != nullptr && std::strcmp(mode, "off") == 0) return;

    GemmBlocking explicit_blocking;
    if (mode != nullptr && parse_explicit_blocking(mode, &explicit_blocking)) {
        ops.set_blocking(explicit_blocking);
        state->info = {ops.get_blocking(), "env"};
        return;
    }
    if (!runnable) return;  // can't probe kernels this CPU/binary lacks

    const bool retune = mode != nullptr && std::strcmp(mode, "retune") == 0;
    const CacheHierarchy& cache = cache_hierarchy();
    store::Store disk = tune_store();
    const std::string key = tune_cache_key(level, ops.tile, cache);

    GemmBlocking blocking;
    if (!retune && load_cached_blocking(disk, key, &blocking)) {
        ops.set_blocking(blocking);
        state->info = {ops.get_blocking(), "cached"};
        return;
    }

    blocking = probe_best(ops, make_candidates(ops.tile, ops.compiled_default, cache));
    ops.set_blocking(blocking);
    state->info = {ops.get_blocking(), "probed"};
    store_cached_blocking(disk, key, state->info.blocking);
}

}  // namespace

const CacheHierarchy& cache_hierarchy() {
    static const CacheHierarchy info = detect_cache_hierarchy();
    return info;
}

void ensure_gemm_tuned(Level level) {
    if (level == Level::Scalar) return;
    LevelTuneState& state = g_state[level == Level::Avx512 ? 1 : 0];
    std::call_once(state.once, [&] { tune_level(level, &state); });
}

GemmTuneInfo gemm_tune_info(Level level) {
    if (level == Level::Scalar) return {GemmBlocking{}, "default"};
    ensure_gemm_tuned(level);
    return g_state[level == Level::Avx512 ? 1 : 0].info;
}

}  // namespace xpcore::simd
