#include "xpcore/metrics.hpp"

#include <cassert>
#include <cstdlib>

namespace xpcore {

double smape(std::span<const double> predicted, std::span<const double> actual) {
    assert(predicted.size() == actual.size());
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double denom = (std::abs(actual[i]) + std::abs(predicted[i])) / 2.0;
        if (denom == 0.0) continue;  // both zero: perfect agreement
        sum += std::abs(predicted[i] - actual[i]) / denom;
        ++counted;
    }
    if (counted == 0) return 0.0;
    return 100.0 * sum / static_cast<double>(counted);
}

double mape(std::span<const double> predicted, std::span<const double> actual) {
    assert(predicted.size() == actual.size());
    double sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (actual[i] == 0.0) continue;
        sum += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
        ++counted;
    }
    if (counted == 0) return 0.0;
    return 100.0 * sum / static_cast<double>(counted);
}

}  // namespace xpcore
