#include "xpcore/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "xpcore/simd_kernels.hpp"

#include "simd_poly.hpp"

namespace xpcore::simd {

// Portable scalar references for the SIMD approximations. Defined in this
// translation unit (baseline compile flags) so they are callable on CPUs
// without AVX2 — simd_avx2.cpp is compiled with -mavx2 and must never be
// entered unless avx2_active().
float tanh_approx(float x) { return detail::tanh_approx_scalar(x); }
float exp_approx(float x) { return detail::exp_approx_scalar(x); }

namespace {

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

Level env_default_level() {
    static const Level value = [] {
        const Level best = max_level();
        const char* env = std::getenv("XPDNN_SIMD");
        if (env != nullptr) {
            if (std::strcmp(env, "0") == 0 || std::strcmp(env, "scalar") == 0 ||
                std::strcmp(env, "off") == 0) {
                return Level::Scalar;
            }
            // "1" / "auto" / "avx2" (and anything else) mean "best available":
            // requesting a level the CPU lacks must not crash, so unknown or
            // too-high values clamp to the detected maximum.
        }
        return best;
    }();
    return value;
}

// -1 = no override installed; otherwise the Level value.
std::atomic<int> g_override{-1};

}  // namespace

Level max_level() {
    static const Level value =
        (compiled_with_avx2() && cpu_supports_avx2_fma()) ? Level::Avx2 : Level::Scalar;
    return value;
}

Level active_level() {
    const int override_value = g_override.load(std::memory_order_relaxed);
    if (override_value >= 0) return static_cast<Level>(override_value);
    return env_default_level();
}

bool avx2_active() { return active_level() == Level::Avx2; }

void set_level(Level level) {
    if (level > max_level()) level = max_level();
    g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_level() { g_override.store(-1, std::memory_order_relaxed); }

const char* level_name(Level level) {
    switch (level) {
        case Level::Scalar: return "scalar";
        case Level::Avx2: return "avx2";
    }
    return "?";
}

}  // namespace xpcore::simd
