#include "xpcore/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "xpcore/simd_kernels.hpp"

#include "simd_poly.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace xpcore::simd {

// Portable scalar references for the SIMD approximations. Defined in this
// translation unit (baseline compile flags) so they are callable on CPUs
// without AVX2 — simd_avx2.cpp / simd_avx512.cpp are compiled with vector
// flags and must never be entered unless the matching level is active.
float tanh_approx(float x) { return detail::tanh_approx_scalar(x); }
float exp_approx(float x) { return detail::exp_approx_scalar(x); }

namespace {

bool cpu_supports_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

// The AVX-512 kernels use F (foundation), VL (128/256-bit forms for the
// packing helpers), BW and DQ (float logic ops). Every server core that
// ships AVX-512 since Skylake-SP has all four; requiring the full set keeps
// one detection predicate instead of per-kernel feature math.
bool cpu_supports_avx512() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl") &&
           __builtin_cpu_supports("avx512bw") && __builtin_cpu_supports("avx512dq");
#else
    return false;
#endif
}

Level env_default_level() {
    static const Level value = [] {
        if (const char* env = std::getenv("XPDNN_SIMD")) return parse_level(env);
        return max_level();
    }();
    return value;
}

// -1 = no override installed; otherwise the Level value.
std::atomic<int> g_override{-1};

}  // namespace

Level max_level() {
    static const Level value = [] {
        if (compiled_with_avx512() && cpu_supports_avx512()) return Level::Avx512;
        if (compiled_with_avx2() && cpu_supports_avx2_fma()) return Level::Avx2;
        return Level::Scalar;
    }();
    return value;
}

Level active_level() {
    const int override_value = g_override.load(std::memory_order_relaxed);
    if (override_value >= 0) return static_cast<Level>(override_value);
    return env_default_level();
}

bool avx2_active() { return active_level() >= Level::Avx2; }

bool avx512_active() { return active_level() == Level::Avx512; }

void set_level(Level level) {
    if (level > max_level()) level = max_level();
    g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_level() { g_override.store(-1, std::memory_order_relaxed); }

const char* level_name(Level level) {
    switch (level) {
        case Level::Scalar: return "scalar";
        case Level::Avx2: return "avx2";
        case Level::Avx512: return "avx512";
    }
    return "?";
}

Level parse_level(const char* name) {
    const Level best = max_level();
    if (name == nullptr) return best;
    if (std::strcmp(name, "0") == 0 || std::strcmp(name, "scalar") == 0 ||
        std::strcmp(name, "off") == 0) {
        return Level::Scalar;
    }
    // "avx2" is a *cap*, not a request for the best level: on AVX-512 hosts
    // it pins the AVX2 kernels (A/B comparisons, bug triage). Requesting a
    // level the CPU lacks must not crash, so it still clamps to max_level().
    if (std::strcmp(name, "avx2") == 0) return best < Level::Avx2 ? best : Level::Avx2;
    // "1" / "auto" / "avx512" (and anything else) mean "best available".
    return best;
}

const char* cpu_model_string() {
    static const char* const value = [] {
        static char brand[49] = "unknown";
#if defined(__x86_64__) || defined(__i386__)
        unsigned int regs[4] = {0, 0, 0, 0};
        if (__get_cpuid(0x80000000u, &regs[0], &regs[1], &regs[2], &regs[3]) &&
            regs[0] >= 0x80000004u) {
            char raw[49] = {};
            for (unsigned int leaf = 0; leaf < 3; ++leaf) {
                __get_cpuid(0x80000002u + leaf, &regs[0], &regs[1], &regs[2], &regs[3]);
                std::memcpy(raw + leaf * 16, regs, 16);
            }
            raw[48] = '\0';
            // The brand string is right-justified with leading spaces on
            // some parts; trim both ends for stable cache keys.
            const char* begin = raw;
            while (*begin == ' ') ++begin;
            std::size_t len = std::strlen(begin);
            while (len > 0 && begin[len - 1] == ' ') --len;
            if (len > 0 && len < sizeof(brand)) {
                std::memcpy(brand, begin, len);
                brand[len] = '\0';
            }
        }
#endif
        return brand;
    }();
    return value;
}

}  // namespace xpcore::simd
