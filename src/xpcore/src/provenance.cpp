#include "xpcore/provenance.hpp"

#include <cstdio>
#include <thread>

#include "xpcore/gemm_tune.hpp"
#include "xpcore/simd.hpp"

namespace xpcore {

namespace {

std::string tune_entry(simd::Level level) {
    simd::ensure_gemm_tuned(level);
    const simd::GemmTuneInfo info = simd::gemm_tune_info(level);
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"level\": \"%s\", \"kc\": %zu, \"mc\": %zu, \"nc\": %zu, "
                  "\"source\": \"%s\"}",
                  simd::level_name(level), info.blocking.kc, info.blocking.mc,
                  info.blocking.nc, info.source);
    return buf;
}

}  // namespace

std::string machine_provenance_json(int indent) {
    const std::string pad(indent < 0 ? 0 : static_cast<std::size_t>(indent), ' ');
    const simd::Level max = simd::max_level();
    const simd::CacheHierarchy& cache = simd::cache_hierarchy();

    std::string tune_entries;
    if (max >= simd::Level::Avx2) {
        tune_entries = pad + "    " + tune_entry(simd::Level::Avx2);
    }
    if (max >= simd::Level::Avx512) {
        if (!tune_entries.empty()) tune_entries += ",\n";
        tune_entries += pad + "    " + tune_entry(simd::Level::Avx512);
    }

    std::string out = "{\n";
    out += pad + "  \"cpu\": \"" + std::string(simd::cpu_model_string()) + "\",\n";
    out += pad + "  \"simd_max\": \"" + std::string(simd::level_name(max)) + "\",\n";
    out += pad + "  \"hardware_concurrency\": " +
           std::to_string(std::thread::hardware_concurrency()) + ",\n";
    out += pad + "  \"cache\": {\"l1d_bytes\": " + std::to_string(cache.l1d_bytes) +
           ", \"l2_bytes\": " + std::to_string(cache.l2_bytes) +
           ", \"l3_bytes\": " + std::to_string(cache.l3_bytes) +
           ", \"detected\": " + (cache.detected ? "true" : "false") + "},\n";
    out += pad + "  \"gemm_tune\": [";
    if (tune_entries.empty()) {
        out += "]\n";
    } else {
        out += "\n" + tune_entries + "\n" + pad + "  ]\n";
    }
    out += pad + "}";
    return out;
}

}  // namespace xpcore
