#include "xpcore/cli.hpp"

#include <stdexcept>

#include "xpcore/parse.hpp"

namespace xpcore {

CliArgs::CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq == std::string::npos) {
                options_[arg.substr(2)] = "true";
            } else {
                options_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
            }
        } else {
            positionals_.push_back(arg);
        }
    }
}

std::string CliArgs::get(const std::string& key, const std::string& fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
}

long CliArgs::get_int(const std::string& key, long fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    std::size_t consumed = 0;
    const long value = std::stol(it->second, &consumed);
    if (consumed != it->second.size()) {
        throw std::invalid_argument("CliArgs: option --" + key + " is not an integer: " + it->second);
    }
    return value;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    double value = 0.0;
    // Locale-independent: std::stod would accept "3,5" as 3.0 (or reject
    // "3.5") under an LC_NUMERIC locale with a ',' decimal point.
    if (!parse_double(it->second, value)) {
        throw std::invalid_argument("CliArgs: option --" + key + " is not a number: " + it->second);
    }
    return value;
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
    const auto it = options_.find(key);
    if (it == options_.end()) return fallback;
    const std::string& v = it->second;
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    throw std::invalid_argument("CliArgs: option --" + key + " is not a boolean: " + v);
}

}  // namespace xpcore
