#include "xpcore/archive.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>

#include "xpcore/error.hpp"
#include "xpcore/store.hpp"

namespace xpcore::archive {
namespace {

// Every multi-byte field is stored little-endian. The archive targets the
// x86 containers this repo runs on; rather than byte-swap on exotic hosts,
// refuse loudly so the failure mode is a typed error, not silent garbage.
void require_little_endian(const std::string& source) {
    if constexpr (std::endian::native != std::endian::little) {
        throw ValidationError(
            {source, 0, 0, "binary archives require a little-endian host"});
    }
}

[[noreturn]] void parse_fail(const std::string& source, const std::string& message) {
    throw ParseError({source, 0, 0, message});
}

[[noreturn]] void validation_fail(const std::string& source, const std::string& message) {
    throw ValidationError({source, 0, 0, message});
}

std::uint64_t align_up(std::uint64_t offset) {
    return (offset + kAlignment - 1) / kAlignment * kAlignment;
}

// Fixed header field offsets (bytes). Serialized field by field — never by
// memcpy of a struct — so padding can not leak into the file.
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffFlags = 12;
constexpr std::size_t kOffFileSize = 16;
constexpr std::size_t kOffParamCount = 24;
constexpr std::size_t kOffSectionCount = 32;
constexpr std::size_t kOffSectionTable = 40;
constexpr std::size_t kOffStringTable = 48;
constexpr std::size_t kOffStringTableSize = 56;
constexpr std::size_t kOffFingerprint = 64;
constexpr std::size_t kOffHeaderChecksum = 72;
constexpr std::size_t kHeaderChecksumSpan = kOffHeaderChecksum;  // bytes 0..71

constexpr std::size_t kSectionEntrySize = 64;

struct Header {
    std::uint32_t version = kFormatVersion;
    std::uint32_t flags = 0;
    std::uint64_t file_size = 0;
    std::uint64_t parameter_count = 0;
    std::uint64_t section_count = 0;
    std::uint64_t section_table_offset = 0;
    std::uint64_t string_table_offset = 0;
    std::uint64_t string_table_size = 0;
    std::uint64_t content_fingerprint = 0;
};

template <typename T>
void put(unsigned char* base, std::size_t offset, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::memcpy(base + offset, &value, sizeof(T));
}

template <typename T>
T get(const unsigned char* base, std::size_t offset) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    std::memcpy(&value, base + offset, sizeof(T));
    return value;
}

void encode_header(unsigned char* out, const Header& h) {
    std::memset(out, 0, kHeaderSize);
    std::memcpy(out + kOffMagic, kMagic, sizeof(kMagic));
    put(out, kOffVersion, h.version);
    put(out, kOffFlags, h.flags);
    put(out, kOffFileSize, h.file_size);
    put(out, kOffParamCount, h.parameter_count);
    put(out, kOffSectionCount, h.section_count);
    put(out, kOffSectionTable, h.section_table_offset);
    put(out, kOffStringTable, h.string_table_offset);
    put(out, kOffStringTableSize, h.string_table_size);
    put(out, kOffFingerprint, h.content_fingerprint);
    Fnv1a checksum;
    checksum.mix(out, kHeaderChecksumSpan);
    put(out, kOffHeaderChecksum, checksum.state);
}

Header decode_header(const unsigned char* in, std::uint64_t actual_size,
                     const std::string& source) {
    if (actual_size < kHeaderSize) {
        parse_fail(source, "truncated header: file is " + std::to_string(actual_size) +
                               " bytes, header needs " + std::to_string(kHeaderSize));
    }
    if (std::memcmp(in + kOffMagic, kMagic, sizeof(kMagic)) != 0) {
        parse_fail(source, "bad magic: not an xpdnn.arch archive");
    }
    Header h;
    h.version = get<std::uint32_t>(in, kOffVersion);
    if (h.version != kFormatVersion) {
        validation_fail(source, "unsupported archive format version " +
                                    std::to_string(h.version) + " (expected " +
                                    std::to_string(kFormatVersion) + ")");
    }
    Fnv1a checksum;
    checksum.mix(in, kHeaderChecksumSpan);
    if (checksum.state != get<std::uint64_t>(in, kOffHeaderChecksum)) {
        parse_fail(source, "header checksum mismatch (torn or corrupt write)");
    }
    h.flags = get<std::uint32_t>(in, kOffFlags);
    h.file_size = get<std::uint64_t>(in, kOffFileSize);
    h.parameter_count = get<std::uint64_t>(in, kOffParamCount);
    h.section_count = get<std::uint64_t>(in, kOffSectionCount);
    h.section_table_offset = get<std::uint64_t>(in, kOffSectionTable);
    h.string_table_offset = get<std::uint64_t>(in, kOffStringTable);
    h.string_table_size = get<std::uint64_t>(in, kOffStringTableSize);
    h.content_fingerprint = get<std::uint64_t>(in, kOffFingerprint);
    if (h.file_size != actual_size) {
        parse_fail(source, "truncated archive: header commits " +
                               std::to_string(h.file_size) + " bytes, file has " +
                               std::to_string(actual_size));
    }
    return h;
}

// The content fingerprint covers everything semantically meaningful, in
// file order, so an appending writer can resume the FNV-1a stream from the
// stored state. Helpers shared by writer (forward) and reader (re-derive).
void mix_preamble(Fnv1a& hash, std::uint32_t flags,
                  const std::vector<std::string>& parameter_names) {
    hash.mix_value(kFormatVersion);
    hash.mix_value(flags);
    hash.mix_value(static_cast<std::uint64_t>(parameter_names.size()));
    for (const auto& name : parameter_names) hash.mix_string(name);
}

// Payload arrays mix as little-endian u64 words, not bytes (see the format
// notes in the header): one FNV multiply per word makes verifying a mapped
// million-measurement archive ~8x faster, and any flipped payload byte
// still changes the digest. Array byte sizes are always multiples of 8.
void mix_words(Fnv1a& hash, const void* data, std::size_t size_bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i + sizeof(std::uint64_t) <= size_bytes;
         i += sizeof(std::uint64_t)) {
        std::uint64_t word;
        std::memcpy(&word, p + i, sizeof(word));
        hash.state ^= word;
        hash.state *= 0x100000001B3ull;
    }
}

void mix_section(Fnv1a& hash, std::string_view kernel, std::string_view metric,
                 std::span<const std::uint64_t> value_offsets,
                 std::span<const double> points, std::span<const double> values) {
    hash.mix_string(kernel);
    hash.mix_string(metric);
    hash.mix_value(static_cast<std::uint64_t>(value_offsets.size() - 1));
    hash.mix_value(static_cast<std::uint64_t>(values.size()));
    mix_words(hash, value_offsets.data(), value_offsets.size_bytes());
    mix_words(hash, points.data(), points.size_bytes());
    mix_words(hash, values.data(), values.size_bytes());
}

std::uint64_t section_fingerprint(std::string_view kernel, std::string_view metric,
                                  std::span<const std::uint64_t> value_offsets,
                                  std::span<const double> points,
                                  std::span<const double> values) {
    Fnv1a hash;
    mix_section(hash, kernel, metric, value_offsets, points, values);
    return hash.state;
}

/// RAII read-only mapping of a whole file. Empty files map nothing.
struct Mapping {
    const unsigned char* data = nullptr;
    std::uint64_t size = 0;

    Mapping() = default;
    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;
    ~Mapping() {
        if (data != nullptr) ::munmap(const_cast<unsigned char*>(data), size);
    }

    void open(const std::string& path) {
        int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (fd < 0) {
            throw Error({path, 0, 0,
                         std::string("cannot open archive: ") + std::strerror(errno)});
        }
        struct ::stat st {};
        if (::fstat(fd, &st) != 0) {
            int err = errno;
            ::close(fd);
            throw Error({path, 0, 0,
                         std::string("cannot stat archive: ") + std::strerror(err)});
        }
        size = static_cast<std::uint64_t>(st.st_size);
        if (size > 0) {
            void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
            if (mapped == MAP_FAILED) {
                int err = errno;
                ::close(fd);
                throw Error({path, 0, 0,
                             std::string("cannot mmap archive: ") + std::strerror(err)});
            }
            data = static_cast<const unsigned char*>(mapped);
        }
        ::close(fd);
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// Reader

struct Reader::Impl {
    std::string path;
    Mapping mapping;
    Header header;
    std::vector<std::string> parameter_names;
    std::vector<SectionView> sections;
    std::uint64_t total_measurements = 0;
};

Reader Reader::open(const std::string& path, bool verify_content) {
    require_little_endian(path);
    auto impl = std::make_shared<Impl>();
    impl->path = path;
    impl->mapping.open(path);
    const unsigned char* base = impl->mapping.data;
    const std::uint64_t size = impl->mapping.size;
    impl->header = decode_header(base, size, path);
    const Header& h = impl->header;

    // Structural bounds. The layout is header | data | string table |
    // section table; every offset below is validated against `size` before
    // any dereference so a hostile file cannot walk the mapping.
    const std::uint64_t table_bytes = h.section_count * kSectionEntrySize;
    if (h.section_count > (size - kHeaderSize) / kSectionEntrySize ||
        h.section_table_offset > size - table_bytes) {
        parse_fail(path, "section table out of bounds");
    }
    if (h.string_table_offset > size || h.string_table_size > size - h.string_table_offset) {
        parse_fail(path, "string table out of bounds");
    }
    if (h.string_table_offset < kHeaderSize || h.section_table_offset < h.string_table_offset) {
        parse_fail(path, "layout violation: tables must follow the data region");
    }

    // Parameter names live at the head of the string table.
    const unsigned char* strings = base + h.string_table_offset;
    std::uint64_t cursor = 0;
    for (std::uint64_t p = 0; p < h.parameter_count; ++p) {
        if (cursor + sizeof(std::uint64_t) > h.string_table_size) {
            parse_fail(path, "string table truncated in parameter names");
        }
        const auto len = get<std::uint64_t>(strings, cursor);
        cursor += sizeof(std::uint64_t);
        if (len > h.string_table_size - cursor) {
            parse_fail(path, "parameter name overruns string table");
        }
        impl->parameter_names.emplace_back(reinterpret_cast<const char*>(strings + cursor),
                                           len);
        cursor += len;
    }

    auto string_ref = [&](std::uint64_t offset, std::uint64_t len,
                          const char* what) -> std::string_view {
        if (offset > h.string_table_size || len > h.string_table_size - offset) {
            parse_fail(path, std::string(what) + " name overruns string table");
        }
        return {reinterpret_cast<const char*>(strings + offset), len};
    };

    impl->sections.reserve(h.section_count);
    // Re-derive the content fingerprint alongside section validation: one
    // pass over each section's payload computes its fingerprint, which both
    // checks the stored per-section value and feeds the content stream.
    Fnv1a content;
    if (verify_content) mix_preamble(content, h.flags, impl->parameter_names);
    const unsigned char* table = base + h.section_table_offset;
    for (std::uint64_t s = 0; s < h.section_count; ++s) {
        const unsigned char* entry = table + s * kSectionEntrySize;
        const auto kernel_off = get<std::uint64_t>(entry, 0);
        const auto kernel_len = get<std::uint64_t>(entry, 8);
        const auto metric_off = get<std::uint64_t>(entry, 16);
        const auto metric_len = get<std::uint64_t>(entry, 24);
        const auto payload_off = get<std::uint64_t>(entry, 32);
        const auto m = get<std::uint64_t>(entry, 40);
        const auto value_count = get<std::uint64_t>(entry, 48);
        const auto stored_fp = get<std::uint64_t>(entry, 56);

        if (m == 0) parse_fail(path, "section " + std::to_string(s) + " has no measurements");
        if (payload_off % kAlignment != 0) {
            parse_fail(path, "section " + std::to_string(s) + " payload misaligned");
        }
        // Payload extent: offsets array, points array, values array, each
        // padded to the alignment. Guard each multiplication via division.
        const std::uint64_t max_count = size / sizeof(double);
        if (m >= max_count || value_count > max_count ||
            (h.parameter_count != 0 && m > max_count / h.parameter_count)) {
            parse_fail(path, "section " + std::to_string(s) + " counts out of bounds");
        }
        const std::uint64_t offsets_bytes = align_up((m + 1) * sizeof(std::uint64_t));
        const std::uint64_t points_bytes = align_up(m * h.parameter_count * sizeof(double));
        const std::uint64_t values_bytes = align_up(value_count * sizeof(double));
        const std::uint64_t payload_bytes = offsets_bytes + points_bytes + values_bytes;
        if (payload_off < kHeaderSize || payload_off > h.string_table_offset ||
            payload_bytes > h.string_table_offset - payload_off) {
            parse_fail(path, "section " + std::to_string(s) + " payload out of bounds");
        }

        SectionView view;
        view.kernel = string_ref(kernel_off, kernel_len, "kernel");
        view.metric = string_ref(metric_off, metric_len, "metric");
        view.fingerprint = stored_fp;
        view.value_offsets = {
            reinterpret_cast<const std::uint64_t*>(base + payload_off), m + 1};
        view.points = {
            reinterpret_cast<const double*>(base + payload_off + offsets_bytes),
            m * h.parameter_count};
        view.values = {
            reinterpret_cast<const double*>(base + payload_off + offsets_bytes + points_bytes),
            value_count};

        if (view.value_offsets.front() != 0 || view.value_offsets.back() != value_count) {
            parse_fail(path, "section " + std::to_string(s) + " prefix offsets malformed");
        }
        for (std::uint64_t i = 0; i < m; ++i) {
            if (view.value_offsets[i] >= view.value_offsets[i + 1]) {
                parse_fail(path, "section " + std::to_string(s) +
                                     " prefix offsets not strictly increasing");
            }
        }
        if (verify_content) {
            if (stored_fp != section_fingerprint(view.kernel, view.metric, view.value_offsets,
                                                 view.points, view.values)) {
                validation_fail(path, "section " + std::to_string(s) +
                                          " fingerprint mismatch (corrupt payload)");
            }
            content.mix_value(stored_fp);
            for (double v : view.points) {
                if (!std::isfinite(v)) {
                    validation_fail(path, "section " + std::to_string(s) +
                                              " contains a non-finite coordinate");
                }
            }
            for (double v : view.values) {
                if (!std::isfinite(v)) {
                    validation_fail(path, "section " + std::to_string(s) +
                                              " contains a non-finite value");
                }
            }
        }
        impl->total_measurements += m;
        impl->sections.push_back(view);
    }

    if (verify_content && content.state != h.content_fingerprint) {
        validation_fail(path, "content fingerprint mismatch (corrupt archive)");
    }
    return Reader(std::move(impl));
}

std::uint32_t Reader::flags() const { return impl_->header.flags; }
const std::vector<std::string>& Reader::parameter_names() const {
    return impl_->parameter_names;
}
std::size_t Reader::parameter_count() const { return impl_->parameter_names.size(); }
std::size_t Reader::section_count() const { return impl_->sections.size(); }
SectionView Reader::section(std::size_t index) const { return impl_->sections.at(index); }
std::uint64_t Reader::content_fingerprint() const {
    return impl_->header.content_fingerprint;
}
std::uint64_t Reader::total_measurements() const { return impl_->total_measurements; }
std::uint64_t Reader::file_size() const { return impl_->mapping.size; }

// ---------------------------------------------------------------------------
// Writer

Writer::Writer(std::string path, std::vector<std::string> parameter_names,
               std::uint32_t format_flags, bool truncate)
    : path_(std::move(path)), parameter_names_(std::move(parameter_names)),
      flags_(format_flags) {
    require_little_endian(path_);
    std::error_code ec;
    if (truncate || !std::filesystem::exists(path_, ec)) {
        status_ = OpenStatus::Created;
    } else {
        // A file that fails to load for *any* typed reason — truncation,
        // corruption, version skew — is a miss to repair, exactly like the
        // pretrain cache. Only a file that loads cleanly can raise a
        // semantic conflict (wrong parameters/flags), which is a caller
        // error against healthy data and must not destroy it.
        std::optional<Reader> existing;
        try {
            existing.emplace(Reader::open(path_, /*verify_content=*/true));
        } catch (const Error&) {
            // Typed miss: move the bad file aside so it stays inspectable,
            // then start fresh (the store layer's shared repair).
            quarantine_corrupt(path_);
            status_ = OpenStatus::Repaired;
        }
        if (existing.has_value()) {
            if (existing->parameter_names() != parameter_names_) {
                validation_fail(path_, "archive parameter names do not match writer");
            }
            if (existing->flags() != flags_) {
                validation_fail(path_, "archive flags do not match writer");
            }
            status_ = OpenStatus::Appending;
            data_region_size_ = 0;
            for (std::size_t s = 0; s < existing->section_count(); ++s) {
                SectionView view = existing->section(s);
                SectionMeta meta;
                meta.kernel = std::string(view.kernel);
                meta.metric = std::string(view.metric);
                meta.measurement_count = view.measurement_count();
                meta.value_count = view.values.size();
                // Already checked by the verifying open above — no re-hash.
                meta.fingerprint = view.fingerprint;
                // Payloads are re-packed contiguously from offset 128 on the
                // next commit; only sizes matter here, not old offsets.
                meta.payload_offset = 0;
                committed_measurements_ += meta.measurement_count;
                data_region_size_ += align_up((meta.measurement_count + 1) * sizeof(std::uint64_t)) +
                                     align_up(meta.measurement_count * parameter_names_.size() *
                                              sizeof(double)) +
                                     align_up(meta.value_count * sizeof(double));
                sections_.push_back(std::move(meta));
            }
            // Resume the content-fingerprint stream where the file left it.
            content_hash_.state = existing->content_fingerprint();
            file_committed_ = true;
        }
    }
    if (status_ != OpenStatus::Appending) {
        mix_preamble(content_hash_, flags_, parameter_names_);
    }
}

void Writer::stage(PendingSection section) {
    const std::size_t params = parameter_names_.size();
    if (section.value_offsets.size() < 2) {
        validation_fail(path_, "staged section needs at least one measurement");
    }
    const std::size_t m = section.value_offsets.size() - 1;
    if (section.value_offsets.front() != 0 ||
        section.value_offsets.back() != section.values.size()) {
        validation_fail(path_, "staged section prefix offsets do not cover values");
    }
    for (std::size_t i = 0; i < m; ++i) {
        if (section.value_offsets[i] >= section.value_offsets[i + 1]) {
            validation_fail(path_, "staged section prefix offsets not strictly increasing");
        }
    }
    if (section.points.size() != m * params) {
        validation_fail(path_, "staged section points size does not match measurements");
    }
    for (double v : section.points) {
        if (!std::isfinite(v)) validation_fail(path_, "staged section has non-finite coordinate");
    }
    for (double v : section.values) {
        if (!std::isfinite(v)) validation_fail(path_, "staged section has non-finite value");
    }
    staged_measurements_ += m;
    staged_.push_back(std::move(section));
}

void Writer::commit() {
    if (staged_.empty() && file_committed_) return;

    // Gather the committed payloads before building the image. Re-validate
    // the committed file so a concurrent corruption turns into a typed
    // error, not silent propagation.
    std::shared_ptr<void> keep_alive;  // holds the Reader's mapping
    std::vector<SectionView> committed_views;
    if (!sections_.empty()) {
        auto reader = std::make_shared<Reader>(Reader::open(path_, /*verify_content=*/false));
        if (reader->section_count() != sections_.size()) {
            validation_fail(path_, "archive changed under writer (section count)");
        }
        committed_views.reserve(sections_.size());
        for (std::size_t s = 0; s < sections_.size(); ++s) {
            committed_views.push_back(reader->section(s));
        }
        keep_alive = reader;
    }

    const std::size_t params = parameter_names_.size();
    struct Placed {
        std::uint64_t offset;
        std::uint64_t offsets_bytes;
        std::uint64_t points_bytes;
        std::uint64_t values_bytes;
    };

    // Lay out: header | payloads (old then new) | string table | table.
    std::uint64_t cursor = kHeaderSize;
    auto place = [&](std::uint64_t m, std::uint64_t value_count) {
        Placed p;
        p.offset = cursor;
        p.offsets_bytes = align_up((m + 1) * sizeof(std::uint64_t));
        p.points_bytes = align_up(m * params * sizeof(double));
        p.values_bytes = align_up(value_count * sizeof(double));
        cursor += p.offsets_bytes + p.points_bytes + p.values_bytes;
        return p;
    };
    std::vector<Placed> old_placed;
    old_placed.reserve(committed_views.size());
    for (const auto& view : committed_views) {
        old_placed.push_back(place(view.measurement_count(), view.values.size()));
    }
    std::vector<Placed> new_placed;
    new_placed.reserve(staged_.size());
    for (const auto& section : staged_) {
        new_placed.push_back(
            place(section.value_offsets.size() - 1, section.values.size()));
    }

    // String table: parameter names, then each section's kernel/metric.
    std::string strings;
    for (const auto& name : parameter_names_) {
        std::uint64_t len = name.size();
        strings.append(reinterpret_cast<const char*>(&len), sizeof(len));
        strings.append(name);
    }
    auto intern = [&](std::string_view text) {
        std::pair<std::uint64_t, std::uint64_t> ref{strings.size(), text.size()};
        strings.append(text);
        return ref;
    };

    const std::uint64_t string_table_offset = cursor;
    const std::uint64_t section_count = sections_.size() + staged_.size();

    // Extend the running content fingerprint over the new sections only —
    // the committed prefix is already mixed into content_hash_. Each staged
    // section's payload is hashed exactly once; the content stream mixes
    // the resulting section fingerprints, not the raw bytes again.
    std::vector<std::uint64_t> staged_fingerprints;
    staged_fingerprints.reserve(staged_.size());
    Fnv1a fingerprint = content_hash_;
    for (const auto& section : staged_) {
        staged_fingerprints.push_back(section_fingerprint(
            section.kernel, section.metric, section.value_offsets, section.points,
            section.values));
        fingerprint.mix_value(staged_fingerprints.back());
    }

    // Build the section table (and intern names) in file order.
    std::vector<unsigned char> table(section_count * kSectionEntrySize, 0);
    auto fill_entry = [&](std::size_t index, std::string_view kernel,
                          std::string_view metric, const Placed& placed, std::uint64_t m,
                          std::uint64_t value_count, std::uint64_t fp) {
        unsigned char* entry = table.data() + index * kSectionEntrySize;
        auto [koff, klen] = intern(kernel);
        auto [moff, mlen] = intern(metric);
        put(entry, std::size_t{0}, koff);
        put(entry, std::size_t{8}, klen);
        put(entry, std::size_t{16}, moff);
        put(entry, std::size_t{24}, mlen);
        put(entry, std::size_t{32}, placed.offset);
        put(entry, std::size_t{40}, m);
        put(entry, std::size_t{48}, value_count);
        put(entry, std::size_t{56}, fp);
    };
    for (std::size_t s = 0; s < committed_views.size(); ++s) {
        fill_entry(s, sections_[s].kernel, sections_[s].metric, old_placed[s],
                   sections_[s].measurement_count, sections_[s].value_count,
                   sections_[s].fingerprint);
    }
    for (std::size_t s = 0; s < staged_.size(); ++s) {
        const auto& section = staged_[s];
        const std::uint64_t m = section.value_offsets.size() - 1;
        fill_entry(committed_views.size() + s, section.kernel, section.metric, new_placed[s],
                   m, section.values.size(), staged_fingerprints[s]);
    }

    const std::uint64_t section_table_offset = string_table_offset + strings.size();
    const std::uint64_t file_size = section_table_offset + table.size();

    Header h;
    h.flags = flags_;
    h.file_size = file_size;
    h.parameter_count = params;
    h.section_count = section_count;
    h.section_table_offset = section_table_offset;
    h.string_table_offset = string_table_offset;
    h.string_table_size = strings.size();
    h.content_fingerprint = fingerprint.state;
    unsigned char header_bytes[kHeaderSize];
    encode_header(header_bytes, h);

    // Stream the image through the shared atomic temp+rename commit.
    atomic_publish(path_, [&](std::ostream& out) {
        auto write_bytes = [&](const void* data, std::size_t size) {
            out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
        };
        static constexpr char kPad[kAlignment] = {};
        auto write_padded = [&](const void* data, std::size_t size) {
            write_bytes(data, size);
            const std::size_t padded = align_up(size);
            if (padded > size) write_bytes(kPad, padded - size);
        };
        write_bytes(header_bytes, kHeaderSize);
        for (const auto& view : committed_views) {
            write_padded(view.value_offsets.data(), view.value_offsets.size_bytes());
            write_padded(view.points.data(), view.points.size_bytes());
            write_padded(view.values.data(), view.values.size_bytes());
        }
        for (const auto& section : staged_) {
            write_padded(section.value_offsets.data(),
                         section.value_offsets.size() * sizeof(std::uint64_t));
            write_padded(section.points.data(), section.points.size() * sizeof(double));
            write_padded(section.values.data(), section.values.size() * sizeof(double));
        }
        write_bytes(strings.data(), strings.size());
        write_bytes(table.data(), table.size());
    });

    // Adopt the staged sections as committed state.
    for (std::size_t s = 0; s < staged_.size(); ++s) {
        const auto& section = staged_[s];
        SectionMeta meta;
        meta.kernel = section.kernel;
        meta.metric = section.metric;
        meta.payload_offset = new_placed[s].offset;
        meta.measurement_count = section.value_offsets.size() - 1;
        meta.value_count = section.values.size();
        meta.fingerprint = get<std::uint64_t>(
            table.data() + (committed_views.size() + s) * kSectionEntrySize, 56);
        committed_measurements_ += meta.measurement_count;
        sections_.push_back(std::move(meta));
    }
    content_hash_ = fingerprint;
    data_region_size_ = cursor - kHeaderSize;
    staged_.clear();
    staged_measurements_ = 0;
    file_committed_ = true;
}

bool sniff(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    char head[sizeof(kMagic)];
    in.read(head, sizeof(head));
    return in.gcount() == static_cast<std::streamsize>(sizeof(head)) &&
           std::memcmp(head, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace xpcore::archive
