#include "xpcore/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace xpcore {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size()) {
        throw std::invalid_argument("Table::add_row: cell count does not match header");
    }
    rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int decimals) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string Table::to_string() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << (c == 0 ? "| " : " | ");
            out << row[c];
            out << std::string(widths[c] - row[c].size(), ' ');
        }
        out << " |\n";
    };
    emit_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
    }
    out << "-|\n";
    for (const auto& row : rows_) emit_row(row);
    return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace xpcore
