#include "xpcore/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace xpcore {

ThreadPool::ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    task_available_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    if (workers_.empty()) {
        task();  // serial pool: run inline
        return;
    }
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_available_.notify_one();
}

void ThreadPool::wait_idle() {
    if (workers_.empty()) return;
    std::unique_lock lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard lock(mutex_);
            if (--in_flight_ == 0) idle_.notify_all();
        }
    }
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool([] {
        if (const char* env = std::getenv("XPDNN_THREADS")) {
            const long requested = std::strtol(env, nullptr, 10);
            return static_cast<std::size_t>(std::max(0L, requested));
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hw > 1 ? hw - 1 : 0);
    }());
    return pool;
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
    if (n == 0) return;
    const std::size_t workers = pool.size();
    if (workers == 0 || n <= grain) {
        body(0, n);
        return;
    }
    const std::size_t chunks = std::min(workers * 4, std::max<std::size_t>(1, n / grain));
    const std::size_t chunk = (n + chunks - 1) / chunks;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(begin + chunk, n);
        pool.submit([&body, begin, end] { body(begin, end); });
    }
    pool.wait_idle();
}

}  // namespace xpcore
