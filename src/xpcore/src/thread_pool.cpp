#include "xpcore/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <utility>

namespace xpcore {

ThreadPool::ThreadPool(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stop_ = true;
    }
    task_available_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    if (workers_.empty()) {
        task();  // serial pool: run inline
        return;
    }
    {
        std::lock_guard lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_available_.notify_one();
}

void ThreadPool::wait_idle() {
    if (workers_.empty()) return;
    std::exception_ptr error;
    {
        std::unique_lock lock(mutex_);
        idle_.wait(lock, [this] { return in_flight_ == 0; });
        error = std::exchange(first_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
}

void ThreadPool::run_task(std::function<void()>& task) {
    std::exception_ptr error;
    try {
        task();
    } catch (...) {
        error = std::current_exception();
    }
    {
        std::lock_guard lock(mutex_);
        if (error && !first_error_) first_error_ = error;
        if (--in_flight_ == 0) idle_.notify_all();
    }
}

bool ThreadPool::try_run_one() {
    std::function<void()> task;
    {
        std::lock_guard lock(mutex_);
        if (tasks_.empty()) return false;
        task = std::move(tasks_.front());
        tasks_.pop();
    }
    run_task(task);
    return true;
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
            if (stop_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        run_task(task);
    }
}

namespace {

std::size_t default_global_threads() {
    if (const char* env = std::getenv("XPDNN_THREADS")) {
        const long requested = std::strtol(env, nullptr, 10);
        return static_cast<std::size_t>(std::max(0L, requested));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw > 1 ? hw - 1 : 0);
}

std::mutex& global_pool_mutex() {
    static std::mutex m;
    return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

std::atomic<bool> g_parallel_enabled{true};

}  // namespace

ThreadPool& ThreadPool::global() {
    std::lock_guard lock(global_pool_mutex());
    auto& slot = global_pool_slot();
    if (!slot) slot = std::make_unique<ThreadPool>(default_global_threads());
    return *slot;
}

void ThreadPool::reset_global(std::size_t threads) {
    std::lock_guard lock(global_pool_mutex());
    auto& slot = global_pool_slot();
    slot.reset();  // drain and join the old pool before the new one spawns
    slot = std::make_unique<ThreadPool>(threads);
}

void ThreadPool::reset_global() { reset_global(default_global_threads()); }

bool parallel_enabled() { return g_parallel_enabled.load(std::memory_order_relaxed); }

void set_parallel_enabled(bool enabled) {
    g_parallel_enabled.store(enabled, std::memory_order_relaxed);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body, std::size_t grain) {
    if (n == 0) return;
    const std::size_t workers = pool.size();
    if (workers == 0 || n <= grain || !parallel_enabled()) {
        body(0, n);
        return;
    }

    // Per-call completion latch: concurrent parallel_for calls (from
    // different threads, or nested from inside a chunk) each wait on their
    // own counter instead of a shared pool-wide one.
    struct Latch {
        std::mutex mutex;
        std::condition_variable done;
        std::size_t remaining = 0;
        std::exception_ptr error;
    } latch;

    const std::size_t chunks = std::min(workers * 4, std::max<std::size_t>(1, n / grain));
    const std::size_t chunk = (n + chunks - 1) / chunks;
    latch.remaining = (n + chunk - 1) / chunk;

    for (std::size_t begin = 0; begin < n; begin += chunk) {
        const std::size_t end = std::min(begin + chunk, n);
        pool.submit([&body, &latch, begin, end] {
            std::exception_ptr error;
            try {
                body(begin, end);
            } catch (...) {
                error = std::current_exception();
            }
            std::lock_guard lock(latch.mutex);
            if (error && !latch.error) latch.error = error;
            if (--latch.remaining == 0) latch.done.notify_all();
        });
    }

    // Help drain the queue while waiting: the tasks run may belong to this
    // call or to another one — either way progress is made, and a nested
    // parallel_for can never deadlock on a fully-blocked worker set.
    for (;;) {
        {
            std::lock_guard lock(latch.mutex);
            if (latch.remaining == 0) break;
        }
        if (!pool.try_run_one()) {
            std::unique_lock lock(latch.mutex);
            latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
            break;
        }
    }
    if (latch.error) std::rethrow_exception(latch.error);
}

}  // namespace xpcore
