/// \file simd_avx2.cpp
/// AVX2/FMA compute kernels: packed-panel SGEMM microkernel, vectorized
/// tanh/exp/softmax, and the fused AdaMax update. Compiled with
/// -mavx2 -mfma on x86 (see src/xpcore/CMakeLists.txt); on other targets
/// the entry points remain as never-called stubs and
/// compiled_with_avx2() reports false, so xpcore::simd::avx2_active()
/// keeps every caller on the scalar path.
///
/// GEMM design (BLIS-style, blocked for one core's cache hierarchy):
///   - 6x16 register microkernel: 12 ymm accumulators, one broadcast
///     register for A, two loads for B — 15 of the 16 ymm registers.
///   - A is packed into column-major micro-panels of 6 rows, B into
///     row-major micro-panels of 16 columns, both zero-padded at the
///     edges, so the microkernel always runs full-width FMAs and the
///     tails cost only packing zeros.
///   - Loop nest jc (NC) -> pc (KC) -> ic (MC) -> jr -> ir. Per output
///     element the k-accumulation order depends only on the pc split and
///     the microkernel's k loop, never on the row range, so results are
///     bit-identical for any thread partition and any batch row count.
///   - KC/MC/NC are runtime parameters (atomics, sampled once per call):
///     the startup autotuner (xpcore/gemm_tune.hpp) installs values probed
///     against the host's cache hierarchy; the compiled defaults below are
///     the fallback for XPDNN_GEMM_TUNE=off and non-tuned processes.
///   - Packing buffers are thread_local and grow to the largest blocking
///     seen; steady-state calls perform no heap allocation.
///
/// All loads/stores are unaligned variants (loadu/storeu): tensors are
/// 64-byte aligned (xpcore/aligned.hpp) but packed-panel interiors are not,
/// and on every AVX2-era core loadu on an aligned address costs the same as
/// an aligned load while never faulting on the unaligned case.

#include "xpcore/simd_kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "simd_poly.hpp"

namespace xpcore::simd {

namespace {

constexpr std::size_t kMR = 6;           // microkernel rows
constexpr std::size_t kNR = 16;          // microkernel cols (2 ymm)
constexpr std::size_t kDefaultKC = 256;  // k panel
constexpr std::size_t kDefaultMC = 96;   // row block (16 micro-panels of 6)
constexpr std::size_t kDefaultNC = 768;  // col block (48 micro-panels of 16)

static_assert(kDefaultMC % kMR == 0 && kDefaultNC % kNR == 0);

std::atomic<std::size_t> g_kc{kDefaultKC};
std::atomic<std::size_t> g_mc{kDefaultMC};
std::atomic<std::size_t> g_nc{kDefaultNC};

}  // namespace

GemmTile gemm_tile_avx2() { return {kMR, kNR}; }

GemmBlocking default_gemm_blocking_avx2() { return {kDefaultKC, kDefaultMC, kDefaultNC}; }

GemmBlocking gemm_blocking_avx2() {
    return {g_kc.load(std::memory_order_relaxed), g_mc.load(std::memory_order_relaxed),
            g_nc.load(std::memory_order_relaxed)};
}

void set_gemm_blocking_avx2(GemmBlocking blocking) {
    // Clamp to legal kernel parameters: the panel loops require kc >= 8 and
    // MC/NC to be positive multiples of the microkernel tile.
    const std::size_t kc = blocking.kc < 8 ? 8 : blocking.kc;
    const std::size_t mc = blocking.mc < kMR ? kMR : blocking.mc - blocking.mc % kMR;
    const std::size_t nc = blocking.nc < kNR ? kNR : blocking.nc - blocking.nc % kNR;
    g_kc.store(kc, std::memory_order_relaxed);
    g_mc.store(mc, std::memory_order_relaxed);
    g_nc.store(nc, std::memory_order_relaxed);
}

}  // namespace xpcore::simd

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cfloat>
#include <cstring>
#include <vector>

namespace xpcore::simd {

bool compiled_with_avx2() { return true; }

namespace {

/// Per-thread packing scratch, grown to the largest blocking seen and
/// reused (zero-allocation steady state). Holds ceil(mc/MR)*MR x kc for A
/// and kc x nc for B.
struct PackBuffers {
    std::vector<float> a;
    std::vector<float> b;
};

PackBuffers& pack_buffers(std::size_t kc, std::size_t mc, std::size_t nc) {
    thread_local PackBuffers buffers;
    if (buffers.a.size() < mc * kc) buffers.a.resize(mc * kc);
    if (buffers.b.size() < kc * nc) buffers.b.resize(kc * nc);
    return buffers;
}

/// Pack rows [row0, row0+mc) x k-slice [k0, k0+kc) of op(A) into
/// column-major micro-panels of kMR rows: dst panel p holds
/// dst[kk * kMR + i] = op(A)[row0 + p*kMR + i, k0 + kk], zero-padded rows.
void pack_a(float* dst, const float* a, std::size_t lda, bool trans, std::size_t row0,
            std::size_t mc, std::size_t k0, std::size_t kc) {
    for (std::size_t p = 0; p < mc; p += kMR) {
        const std::size_t rows = std::min(kMR, mc - p);
        if (!trans) {
            for (std::size_t kk = 0; kk < kc; ++kk) {
                for (std::size_t i = 0; i < rows; ++i) {
                    dst[kk * kMR + i] = a[(row0 + p + i) * lda + k0 + kk];
                }
                for (std::size_t i = rows; i < kMR; ++i) dst[kk * kMR + i] = 0.0f;
            }
        } else {
            // op(A) = A^T with A stored [k x m]: element (r, kk) = a[kk*lda + r].
            for (std::size_t kk = 0; kk < kc; ++kk) {
                const float* src = a + (k0 + kk) * lda + row0 + p;
                for (std::size_t i = 0; i < rows; ++i) dst[kk * kMR + i] = src[i];
                for (std::size_t i = rows; i < kMR; ++i) dst[kk * kMR + i] = 0.0f;
            }
        }
        dst += kMR * kc;
    }
}

/// Pack k-slice [k0, k0+kc) x cols [col0, col0+nc) of op(B) into row-major
/// micro-panels of kNR columns: dst panel q holds
/// dst[kk * kNR + j] = op(B)[k0 + kk, col0 + q*kNR + j], zero-padded cols.
void pack_b(float* dst, const float* b, std::size_t ldb, bool trans, std::size_t k0,
            std::size_t kc, std::size_t col0, std::size_t nc) {
    for (std::size_t q = 0; q < nc; q += kNR) {
        const std::size_t cols = std::min(kNR, nc - q);
        if (!trans) {
            for (std::size_t kk = 0; kk < kc; ++kk) {
                const float* src = b + (k0 + kk) * ldb + col0 + q;
                float* out = dst + kk * kNR;
                if (cols == kNR) {
                    _mm256_storeu_ps(out, _mm256_loadu_ps(src));
                    _mm256_storeu_ps(out + 8, _mm256_loadu_ps(src + 8));
                } else {
                    for (std::size_t j = 0; j < cols; ++j) out[j] = src[j];
                    for (std::size_t j = cols; j < kNR; ++j) out[j] = 0.0f;
                }
            }
        } else {
            // op(B) = B^T with B stored [n x k]: element (kk, c) = b[c*ldb + kk].
            for (std::size_t kk = 0; kk < kc; ++kk) {
                float* out = dst + kk * kNR;
                for (std::size_t j = 0; j < cols; ++j) {
                    out[j] = b[(col0 + q + j) * ldb + k0 + kk];
                }
                for (std::size_t j = cols; j < kNR; ++j) out[j] = 0.0f;
            }
        }
        dst += kNR * kc;
    }
}

/// C[0..mr, 0..nr] += panel product: ap is a kMR x kc column-major
/// micro-panel, bp a kc x kNR row-major micro-panel. Always computes the
/// full 6x16 tile in registers (padded lanes produce zeros) and adds the
/// valid region to C.
void micro_6x16(std::size_t kc, const float* ap, const float* bp, float* c,
                std::size_t ldc, std::size_t mr, std::size_t nr) {
    __m256 acc[kMR][2];
    for (std::size_t i = 0; i < kMR; ++i) {
        acc[i][0] = _mm256_setzero_ps();
        acc[i][1] = _mm256_setzero_ps();
    }
    for (std::size_t kk = 0; kk < kc; ++kk) {
        const __m256 b0 = _mm256_loadu_ps(bp + kk * kNR);
        const __m256 b1 = _mm256_loadu_ps(bp + kk * kNR + 8);
        const float* arow = ap + kk * kMR;
        for (std::size_t i = 0; i < kMR; ++i) {
            const __m256 ai = _mm256_broadcast_ss(arow + i);
            acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    if (mr == kMR && nr == kNR) {
        for (std::size_t i = 0; i < kMR; ++i) {
            float* crow = c + i * ldc;
            _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[i][0]));
            _mm256_storeu_ps(crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[i][1]));
        }
    } else {
        alignas(32) float tile[kMR * kNR];
        for (std::size_t i = 0; i < kMR; ++i) {
            _mm256_store_ps(tile + i * kNR, acc[i][0]);
            _mm256_store_ps(tile + i * kNR + 8, acc[i][1]);
        }
        for (std::size_t i = 0; i < mr; ++i) {
            float* crow = c + i * ldc;
            for (std::size_t j = 0; j < nr; ++j) crow[j] += tile[i * kNR + j];
        }
    }
}

// ---- vector math ---------------------------------------------------------

inline __m256 tanh_ps(__m256 x) {
    using namespace detail;
    const __m256 clamp = _mm256_set1_ps(kTanhClamp);
    x = _mm256_max_ps(_mm256_min_ps(x, clamp), _mm256_sub_ps(_mm256_setzero_ps(), clamp));
    const __m256 x2 = _mm256_mul_ps(x, x);
    __m256 p = _mm256_set1_ps(kTanhAlpha13);
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha11));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha9));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha7));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha5));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha3));
    p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha1));
    p = _mm256_mul_ps(x, p);
    __m256 q = _mm256_set1_ps(kTanhBeta6);
    q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhBeta4));
    q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhBeta2));
    q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhBeta0));
    return _mm256_div_ps(p, q);
}

inline __m256 exp_ps(__m256 x) {
    using namespace detail;
    x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
    x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
    __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2E), _mm256_set1_ps(0.5f));
    fx = _mm256_floor_ps(fx);
    x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(kExpC1), x);
    x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(kExpC2), x);
    const __m256 z = _mm256_mul_ps(x, x);
    __m256 p = _mm256_set1_ps(kExpP0);
    p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(kExpP1));
    p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(kExpP2));
    p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(kExpP3));
    p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(kExpP4));
    p = _mm256_fmadd_ps(p, x, _mm256_set1_ps(kExpP5));
    p = _mm256_fmadd_ps(p, z, _mm256_add_ps(x, _mm256_set1_ps(1.0f)));
    const __m256i n = _mm256_cvttps_epi32(fx);
    const __m256i pow2 =
        _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
    return _mm256_mul_ps(p, _mm256_castsi256_ps(pow2));
}

inline float hsum_ps(__m256 v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 sum = _mm_add_ps(lo, hi);
    sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 1));
    return _mm_cvtss_f32(sum);
}

inline float hmax_ps(__m256 v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 m = _mm_max_ps(lo, hi);
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    return _mm_cvtss_f32(m);
}

}  // namespace

void gemm_f32_avx2(std::size_t m, std::size_t n, std::size_t k, const float* a,
                   std::size_t lda, bool trans_a, const float* b, std::size_t ldb,
                   bool trans_b, float* c, std::size_t ldc, bool accumulate,
                   std::size_t i0, std::size_t i1) {
    (void)m;
    if (i0 >= i1 || n == 0) return;
    if (!accumulate) {
        if (ldc == n) {
            std::memset(c + i0 * ldc, 0, (i1 - i0) * n * sizeof(float));
        } else {
            for (std::size_t i = i0; i < i1; ++i) {
                std::memset(c + i * ldc, 0, n * sizeof(float));
            }
        }
    }
    if (k == 0) return;

    // Sampled once per call: every row range of one logical product uses
    // the same blocking even if the autotuner runs concurrently.
    const GemmBlocking blk = gemm_blocking_avx2();
    PackBuffers& buffers = pack_buffers(blk.kc, blk.mc, blk.nc);
    for (std::size_t jc = 0; jc < n; jc += blk.nc) {
        const std::size_t nc = std::min(blk.nc, n - jc);
        for (std::size_t pc = 0; pc < k; pc += blk.kc) {
            const std::size_t kc = std::min(blk.kc, k - pc);
            pack_b(buffers.b.data(), b, ldb, trans_b, pc, kc, jc, nc);
            for (std::size_t ic = i0; ic < i1; ic += blk.mc) {
                const std::size_t mc = std::min(blk.mc, i1 - ic);
                pack_a(buffers.a.data(), a, lda, trans_a, ic, mc, pc, kc);
                for (std::size_t jr = 0; jr < nc; jr += kNR) {
                    const std::size_t nr = std::min(kNR, nc - jr);
                    const float* bp = buffers.b.data() + (jr / kNR) * kNR * kc;
                    for (std::size_t ir = 0; ir < mc; ir += kMR) {
                        const std::size_t mr = std::min(kMR, mc - ir);
                        const float* ap = buffers.a.data() + (ir / kMR) * kMR * kc;
                        micro_6x16(kc, ap, bp, c + (ic + ir) * ldc + jc + jr, ldc, mr, nr);
                    }
                }
            }
        }
    }
}

void tanh_f32_avx2(const float* x, float* y, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(y + i, tanh_ps(_mm256_loadu_ps(x + i)));
    }
    if (i < n) {
        alignas(32) float buf[8] = {};
        std::memcpy(buf, x + i, (n - i) * sizeof(float));
        _mm256_store_ps(buf, tanh_ps(_mm256_load_ps(buf)));
        std::memcpy(y + i, buf, (n - i) * sizeof(float));
    }
}

void exp_f32_avx2(const float* x, float* y, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        _mm256_storeu_ps(y + i, exp_ps(_mm256_loadu_ps(x + i)));
    }
    if (i < n) {
        alignas(32) float buf[8] = {};
        std::memcpy(buf, x + i, (n - i) * sizeof(float));
        _mm256_store_ps(buf, exp_ps(_mm256_load_ps(buf)));
        std::memcpy(y + i, buf, (n - i) * sizeof(float));
    }
}

void softmax_rows_avx2(const float* in, float* out, std::size_t rows, std::size_t cols) {
    if (cols == 0) return;
    for (std::size_t r = 0; r < rows; ++r) {
        const float* x = in + r * cols;
        float* y = out + r * cols;

        // Row maximum (padded lanes contribute -FLT_MAX).
        __m256 vmax = _mm256_set1_ps(-FLT_MAX);
        std::size_t i = 0;
        for (; i + 8 <= cols; i += 8) vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(x + i));
        float max_value = hmax_ps(vmax);
        for (; i < cols; ++i) max_value = std::max(max_value, x[i]);

        // exp(x - max) and the row sum in one pass. The tail goes through a
        // padded lane buffer so every element sees the identical vector
        // polynomial (padding with kExpLo makes the dead lanes ~1e-38,
        // which are simply not read back).
        const __m256 vshift = _mm256_set1_ps(max_value);
        __m256 vsum = _mm256_setzero_ps();
        i = 0;
        for (; i + 8 <= cols; i += 8) {
            const __m256 e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vshift));
            _mm256_storeu_ps(y + i, e);
            vsum = _mm256_add_ps(vsum, e);
        }
        float sum = hsum_ps(vsum);
        if (i < cols) {
            alignas(32) float buf[8];
            for (std::size_t j = 0; j < 8; ++j) {
                buf[j] = (i + j < cols) ? x[i + j] - max_value : detail::kExpLo;
            }
            _mm256_store_ps(buf, exp_ps(_mm256_load_ps(buf)));
            for (std::size_t j = 0; i + j < cols; ++j) {
                y[i + j] = buf[j];
                sum += buf[j];
            }
        }

        const float inv = 1.0f / sum;
        const __m256 vinv = _mm256_set1_ps(inv);
        i = 0;
        for (; i + 8 <= cols; i += 8) {
            _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), vinv));
        }
        for (; i < cols; ++i) y[i] *= inv;
    }
}

void adamax_update_avx2(float* w, float* g, float* m, float* u, std::size_t n,
                        float rate, float beta1, float beta2, float epsilon) {
    const __m256 vb1 = _mm256_set1_ps(beta1);
    const __m256 vb1c = _mm256_set1_ps(1.0f - beta1);
    const __m256 vb2 = _mm256_set1_ps(beta2);
    const __m256 vrate = _mm256_set1_ps(rate);
    const __m256 veps = _mm256_set1_ps(epsilon);
    const __m256 vabs = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    const __m256 vzero = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 vg = _mm256_loadu_ps(g + i);
        const __m256 vm = _mm256_fmadd_ps(vb1, _mm256_loadu_ps(m + i), _mm256_mul_ps(vb1c, vg));
        const __m256 vu =
            _mm256_max_ps(_mm256_mul_ps(vb2, _mm256_loadu_ps(u + i)), _mm256_and_ps(vg, vabs));
        const __m256 vw = _mm256_fnmadd_ps(
            vrate, _mm256_div_ps(vm, _mm256_add_ps(vu, veps)), _mm256_loadu_ps(w + i));
        _mm256_storeu_ps(m + i, vm);
        _mm256_storeu_ps(u + i, vu);
        _mm256_storeu_ps(w + i, vw);
        _mm256_storeu_ps(g + i, vzero);
    }
    for (; i < n; ++i) {
        m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
        u[i] = std::max(beta2 * u[i], std::abs(g[i]));
        w[i] -= rate * m[i] / (u[i] + epsilon);
        g[i] = 0.0f;
    }
}

}  // namespace xpcore::simd

#else  // !(__AVX2__ && __FMA__): stubs, unreachable behind avx2_active().

namespace xpcore::simd {

bool compiled_with_avx2() { return false; }

namespace {
[[noreturn]] void unreachable_stub() { std::abort(); }
}  // namespace

void gemm_f32_avx2(std::size_t, std::size_t, std::size_t, const float*, std::size_t, bool,
                   const float*, std::size_t, bool, float*, std::size_t, bool, std::size_t,
                   std::size_t) {
    unreachable_stub();
}
void tanh_f32_avx2(const float*, float*, std::size_t) { unreachable_stub(); }
void exp_f32_avx2(const float*, float*, std::size_t) { unreachable_stub(); }
void softmax_rows_avx2(const float*, float*, std::size_t, std::size_t) { unreachable_stub(); }
void adamax_update_avx2(float*, float*, float*, float*, std::size_t, float, float, float,
                        float) {
    unreachable_stub();
}

}  // namespace xpcore::simd

#endif
