#include "xpcore/error.hpp"

namespace xpcore {

std::string Diagnostic::format() const {
    std::string text;
    if (!source.empty()) {
        text += source;
        text += ':';
        if (line > 0) {
            text += std::to_string(line);
            text += ':';
            if (column > 0) {
                text += std::to_string(column);
                text += ':';
            }
        }
        text += ' ';
    }
    text += message;
    return text;
}

Error::Error(Diagnostic diagnostic)
    : std::runtime_error(diagnostic.format()), diagnostic_(std::move(diagnostic)) {}

}  // namespace xpcore
