#pragma once

/// \file simd_poly.hpp (internal)
/// Shared polynomial/rational approximation coefficients for the fast tanh
/// and exp kernels, plus portable scalar reference implementations. The
/// AVX2 kernels in simd_avx2.cpp evaluate exactly these polynomials with
/// vector FMA; the scalar versions here use plain multiply-add, so the two
/// agree to within one or two ulps (the parity tests bound both against
/// std::tanh / std::exp instead of against each other).

#include <cmath>
#include <cstdint>
#include <cstring>

namespace xpcore::simd::detail {

// ---- tanh: R(x) = x * P(x^2) / Q(x^2), clamped to [-9, 9] ----------------
//
// The classic float-precision rational fit (13th/6th order, the same
// minimax coefficients used by Eigen, XNNPACK and friends). |tanh(9)| is
// within 1.5e-8 of 1, so clamping loses nothing at f32 precision. Max
// absolute error vs. std::tanh over [-20, 20]: measured 6e-8..2e-7
// depending on FMA contraction (pinned < 5e-7 by tests).
inline constexpr float kTanhClamp = 9.0f;
inline constexpr float kTanhAlpha1 = 4.89352455891786e-03f;
inline constexpr float kTanhAlpha3 = 6.37261928875436e-04f;
inline constexpr float kTanhAlpha5 = 1.48572235717979e-05f;
inline constexpr float kTanhAlpha7 = 5.12229709037114e-08f;
inline constexpr float kTanhAlpha9 = -8.60467152213735e-11f;
inline constexpr float kTanhAlpha11 = 2.00018790482477e-13f;
inline constexpr float kTanhAlpha13 = -2.76076847742355e-16f;
inline constexpr float kTanhBeta0 = 4.89352518554385e-03f;
inline constexpr float kTanhBeta2 = 2.26843463243900e-03f;
inline constexpr float kTanhBeta4 = 1.18534705686654e-04f;
inline constexpr float kTanhBeta6 = 1.19825839466702e-06f;

inline float tanh_approx_scalar(float x) {
    const float clamped = x < -kTanhClamp ? -kTanhClamp : (x > kTanhClamp ? kTanhClamp : x);
    const float x2 = clamped * clamped;
    float p = kTanhAlpha13;
    p = p * x2 + kTanhAlpha11;
    p = p * x2 + kTanhAlpha9;
    p = p * x2 + kTanhAlpha7;
    p = p * x2 + kTanhAlpha5;
    p = p * x2 + kTanhAlpha3;
    p = p * x2 + kTanhAlpha1;
    p = clamped * p;
    float q = kTanhBeta6;
    q = q * x2 + kTanhBeta4;
    q = q * x2 + kTanhBeta2;
    q = q * x2 + kTanhBeta0;
    return p / q;
}

// ---- exp: 2^n * P(r), x = n * ln2 + r, r in [-ln2/2, ln2/2] --------------
//
// Cephes-style expf: round x/ln2 to the nearest integer n (via floor of
// x*log2(e) + 0.5), subtract n*ln2 in two parts to keep r accurate, then a
// degree-5 polynomial for e^r and an exponent-bits multiply for 2^n.
// Inputs clamp to [kExpLo, kExpHi]: below, the result saturates at
// exp(kExpLo) ~ 1.2e-38 (the smallest normal neighborhood); above, at
// exp(kExpHi) ~ 2.3e38 (finite). Max relative error vs. std::exp over
// [-87, 87]: measured ~1.2e-7 (pinned < 5e-7 by tests).
inline constexpr float kExpHi = 88.3762626647950f;
inline constexpr float kExpLo = -87.3365478515625f;
inline constexpr float kLog2E = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;          // ln2 high part
inline constexpr float kExpC2 = -2.12194440e-4f;       // ln2 low part
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;

inline float exp_approx_scalar(float x) {
    const float clamped = x < kExpLo ? kExpLo : (x > kExpHi ? kExpHi : x);
    float fx = std::floor(clamped * kLog2E + 0.5f);
    const float r = clamped - fx * kExpC1 - fx * kExpC2;
    const float z = r * r;
    float p = kExpP0;
    p = p * r + kExpP1;
    p = p * r + kExpP2;
    p = p * r + kExpP3;
    p = p * r + kExpP4;
    p = p * r + kExpP5;
    p = p * z + r + 1.0f;
    // 2^n through the exponent bits (n is in [-127, 127] after clamping).
    const auto n = static_cast<std::int32_t>(fx);
    std::uint32_t bits;
    const float scale_src = 1.0f;
    std::memcpy(&bits, &scale_src, sizeof(bits));
    bits += static_cast<std::uint32_t>(n) << 23;
    float scale;
    std::memcpy(&scale, &bits, sizeof(scale));
    return p * scale;
}

}  // namespace xpcore::simd::detail
