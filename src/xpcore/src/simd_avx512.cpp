/// \file simd_avx512.cpp
/// AVX-512 compute kernels: the widened packed-panel SGEMM microkernel plus
/// 512-bit tanh/exp/softmax and the fused AdaMax update. Compiled with
/// -mavx512f -mavx512vl -mavx512bw -mavx512dq on x86 (see
/// src/xpcore/CMakeLists.txt); elsewhere the entry points remain as
/// never-called stubs and compiled_with_avx512() reports false, keeping
/// xpcore::simd::avx512_active() constantly false.
///
/// GEMM microkernel: 14x32 (28 zmm accumulators + 2 B loads + 1 A
/// broadcast = 31 of the 32 zmm registers). The panel/packing scheme and
/// the loop nest are identical to simd_avx2.cpp — per output element the
/// k-accumulation order depends only on the KC split, so the thread-count
/// bit-identity contract carries over unchanged; only the lane width (and
/// therefore the last-ulp rounding pattern vs. the other levels) differs.
///
/// Elementwise kernels use AVX-512 masked loads/stores for tails instead of
/// the AVX2 copy-through-buffer idiom: every element — tail included — runs
/// through the identical vector polynomial, and dead lanes are never read
/// or written.

#include "xpcore/simd_kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "simd_poly.hpp"

namespace xpcore::simd {

namespace {

constexpr std::size_t kMR = 14;          // microkernel rows
constexpr std::size_t kNR = 32;          // microkernel cols (2 zmm)
constexpr std::size_t kDefaultKC = 256;  // k panel
constexpr std::size_t kDefaultMC = 140;  // row block (10 micro-panels of 14)
constexpr std::size_t kDefaultNC = 960;  // col block (30 micro-panels of 32)

static_assert(kDefaultMC % kMR == 0 && kDefaultNC % kNR == 0);

std::atomic<std::size_t> g_kc{kDefaultKC};
std::atomic<std::size_t> g_mc{kDefaultMC};
std::atomic<std::size_t> g_nc{kDefaultNC};

}  // namespace

GemmTile gemm_tile_avx512() { return {kMR, kNR}; }

GemmBlocking default_gemm_blocking_avx512() { return {kDefaultKC, kDefaultMC, kDefaultNC}; }

GemmBlocking gemm_blocking_avx512() {
    return {g_kc.load(std::memory_order_relaxed), g_mc.load(std::memory_order_relaxed),
            g_nc.load(std::memory_order_relaxed)};
}

void set_gemm_blocking_avx512(GemmBlocking blocking) {
    const std::size_t kc = blocking.kc < 8 ? 8 : blocking.kc;
    const std::size_t mc = blocking.mc < kMR ? kMR : blocking.mc - blocking.mc % kMR;
    const std::size_t nc = blocking.nc < kNR ? kNR : blocking.nc - blocking.nc % kNR;
    g_kc.store(kc, std::memory_order_relaxed);
    g_mc.store(mc, std::memory_order_relaxed);
    g_nc.store(nc, std::memory_order_relaxed);
}

}  // namespace xpcore::simd

#if defined(__AVX512F__) && defined(__AVX512VL__) && defined(__AVX512BW__) && \
    defined(__AVX512DQ__)

#include <immintrin.h>

#include <algorithm>
#include <cfloat>
#include <cstring>
#include <vector>

namespace xpcore::simd {

bool compiled_with_avx512() { return true; }

namespace {

inline __mmask16 tail_mask(std::size_t n) {
    return static_cast<__mmask16>((1u << n) - 1u);
}

struct PackBuffers {
    std::vector<float> a;
    std::vector<float> b;
};

PackBuffers& pack_buffers(std::size_t kc, std::size_t mc, std::size_t nc) {
    thread_local PackBuffers buffers;
    if (buffers.a.size() < mc * kc) buffers.a.resize(mc * kc);
    if (buffers.b.size() < kc * nc) buffers.b.resize(kc * nc);
    return buffers;
}

/// Pack rows [row0, row0+mc) x k-slice [k0, k0+kc) of op(A) into
/// column-major micro-panels of kMR rows, zero-padded.
void pack_a(float* dst, const float* a, std::size_t lda, bool trans, std::size_t row0,
            std::size_t mc, std::size_t k0, std::size_t kc) {
    for (std::size_t p = 0; p < mc; p += kMR) {
        const std::size_t rows = std::min(kMR, mc - p);
        if (!trans) {
            for (std::size_t kk = 0; kk < kc; ++kk) {
                for (std::size_t i = 0; i < rows; ++i) {
                    dst[kk * kMR + i] = a[(row0 + p + i) * lda + k0 + kk];
                }
                for (std::size_t i = rows; i < kMR; ++i) dst[kk * kMR + i] = 0.0f;
            }
        } else {
            // op(A) = A^T with A stored [k x m]: element (r, kk) = a[kk*lda + r].
            // Rows are contiguous in the source here, so a masked 14-lane
            // copy per k step replaces the scalar loop.
            const __mmask16 rmask = tail_mask(rows);
            for (std::size_t kk = 0; kk < kc; ++kk) {
                const float* src = a + (k0 + kk) * lda + row0 + p;
                _mm512_mask_storeu_ps(dst + kk * kMR,
                                      tail_mask(kMR),  // always write all 14 slots
                                      _mm512_maskz_loadu_ps(rmask, src));
            }
        }
        dst += kMR * kc;
    }
}

/// Pack k-slice [k0, k0+kc) x cols [col0, col0+nc) of op(B) into row-major
/// micro-panels of kNR columns, zero-padded.
void pack_b(float* dst, const float* b, std::size_t ldb, bool trans, std::size_t k0,
            std::size_t kc, std::size_t col0, std::size_t nc) {
    for (std::size_t q = 0; q < nc; q += kNR) {
        const std::size_t cols = std::min(kNR, nc - q);
        if (!trans) {
            if (cols == kNR) {
                for (std::size_t kk = 0; kk < kc; ++kk) {
                    const float* src = b + (k0 + kk) * ldb + col0 + q;
                    float* out = dst + kk * kNR;
                    _mm512_storeu_ps(out, _mm512_loadu_ps(src));
                    _mm512_storeu_ps(out + 16, _mm512_loadu_ps(src + 16));
                }
            } else {
                const __mmask16 m0 = tail_mask(std::min<std::size_t>(cols, 16));
                const __mmask16 m1 = cols > 16 ? tail_mask(cols - 16) : 0;
                for (std::size_t kk = 0; kk < kc; ++kk) {
                    const float* src = b + (k0 + kk) * ldb + col0 + q;
                    float* out = dst + kk * kNR;
                    _mm512_storeu_ps(out, _mm512_maskz_loadu_ps(m0, src));
                    _mm512_storeu_ps(out + 16, _mm512_maskz_loadu_ps(m1, src + 16));
                }
            }
        } else {
            // op(B) = B^T with B stored [n x k]: element (kk, c) = b[c*ldb + kk].
            for (std::size_t kk = 0; kk < kc; ++kk) {
                float* out = dst + kk * kNR;
                for (std::size_t j = 0; j < cols; ++j) {
                    out[j] = b[(col0 + q + j) * ldb + k0 + kk];
                }
                for (std::size_t j = cols; j < kNR; ++j) out[j] = 0.0f;
            }
        }
        dst += kNR * kc;
    }
}

/// C[0..mr, 0..nr] += panel product of a kMR x kc column-major A micro-panel
/// with a kc x kNR row-major B micro-panel. The full 14x32 tile lives in 28
/// zmm accumulators; the valid region is added to C at the end.
void micro_14x32(std::size_t kc, const float* ap, const float* bp, float* c,
                 std::size_t ldc, std::size_t mr, std::size_t nr) {
    __m512 acc[kMR][2];
    for (std::size_t i = 0; i < kMR; ++i) {
        acc[i][0] = _mm512_setzero_ps();
        acc[i][1] = _mm512_setzero_ps();
    }
    for (std::size_t kk = 0; kk < kc; ++kk) {
        const __m512 b0 = _mm512_loadu_ps(bp + kk * kNR);
        const __m512 b1 = _mm512_loadu_ps(bp + kk * kNR + 16);
        const float* arow = ap + kk * kMR;
        for (std::size_t i = 0; i < kMR; ++i) {
            const __m512 ai = _mm512_set1_ps(arow[i]);
            acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
            acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
        }
    }
    if (mr == kMR && nr == kNR) {
        for (std::size_t i = 0; i < kMR; ++i) {
            float* crow = c + i * ldc;
            _mm512_storeu_ps(crow, _mm512_add_ps(_mm512_loadu_ps(crow), acc[i][0]));
            _mm512_storeu_ps(crow + 16, _mm512_add_ps(_mm512_loadu_ps(crow + 16), acc[i][1]));
        }
    } else {
        const __mmask16 m0 = tail_mask(std::min<std::size_t>(nr, 16));
        const __mmask16 m1 = nr > 16 ? tail_mask(nr - 16) : 0;
        for (std::size_t i = 0; i < mr; ++i) {
            float* crow = c + i * ldc;
            _mm512_mask_storeu_ps(
                crow, m0, _mm512_add_ps(_mm512_maskz_loadu_ps(m0, crow), acc[i][0]));
            if (m1) {
                _mm512_mask_storeu_ps(
                    crow + 16, m1,
                    _mm512_add_ps(_mm512_maskz_loadu_ps(m1, crow + 16), acc[i][1]));
            }
        }
    }
}

// ---- vector math ---------------------------------------------------------

inline __m512 tanh_ps(__m512 x) {
    using namespace detail;
    const __m512 clamp = _mm512_set1_ps(kTanhClamp);
    x = _mm512_max_ps(_mm512_min_ps(x, clamp), _mm512_sub_ps(_mm512_setzero_ps(), clamp));
    const __m512 x2 = _mm512_mul_ps(x, x);
    __m512 p = _mm512_set1_ps(kTanhAlpha13);
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(kTanhAlpha11));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(kTanhAlpha9));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(kTanhAlpha7));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(kTanhAlpha5));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(kTanhAlpha3));
    p = _mm512_fmadd_ps(p, x2, _mm512_set1_ps(kTanhAlpha1));
    p = _mm512_mul_ps(x, p);
    __m512 q = _mm512_set1_ps(kTanhBeta6);
    q = _mm512_fmadd_ps(q, x2, _mm512_set1_ps(kTanhBeta4));
    q = _mm512_fmadd_ps(q, x2, _mm512_set1_ps(kTanhBeta2));
    q = _mm512_fmadd_ps(q, x2, _mm512_set1_ps(kTanhBeta0));
    return _mm512_div_ps(p, q);
}

inline __m512 exp_ps(__m512 x) {
    using namespace detail;
    x = _mm512_min_ps(x, _mm512_set1_ps(kExpHi));
    x = _mm512_max_ps(x, _mm512_set1_ps(kExpLo));
    __m512 fx = _mm512_fmadd_ps(x, _mm512_set1_ps(kLog2E), _mm512_set1_ps(0.5f));
    // roundscale imm 0x09 = round toward -inf, suppress exceptions (floor).
    fx = _mm512_roundscale_ps(fx, 0x09);
    x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(kExpC1), x);
    x = _mm512_fnmadd_ps(fx, _mm512_set1_ps(kExpC2), x);
    const __m512 z = _mm512_mul_ps(x, x);
    __m512 p = _mm512_set1_ps(kExpP0);
    p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(kExpP1));
    p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(kExpP2));
    p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(kExpP3));
    p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(kExpP4));
    p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(kExpP5));
    p = _mm512_fmadd_ps(p, z, _mm512_add_ps(x, _mm512_set1_ps(1.0f)));
    const __m512i n = _mm512_cvttps_epi32(fx);
    const __m512i pow2 =
        _mm512_slli_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(127)), 23);
    return _mm512_mul_ps(p, _mm512_castsi512_ps(pow2));
}

}  // namespace

void gemm_f32_avx512(std::size_t m, std::size_t n, std::size_t k, const float* a,
                     std::size_t lda, bool trans_a, const float* b, std::size_t ldb,
                     bool trans_b, float* c, std::size_t ldc, bool accumulate,
                     std::size_t i0, std::size_t i1) {
    (void)m;
    if (i0 >= i1 || n == 0) return;
    if (!accumulate) {
        if (ldc == n) {
            std::memset(c + i0 * ldc, 0, (i1 - i0) * n * sizeof(float));
        } else {
            for (std::size_t i = i0; i < i1; ++i) {
                std::memset(c + i * ldc, 0, n * sizeof(float));
            }
        }
    }
    if (k == 0) return;

    const GemmBlocking blk = gemm_blocking_avx512();
    PackBuffers& buffers = pack_buffers(blk.kc, blk.mc, blk.nc);
    for (std::size_t jc = 0; jc < n; jc += blk.nc) {
        const std::size_t nc = std::min(blk.nc, n - jc);
        for (std::size_t pc = 0; pc < k; pc += blk.kc) {
            const std::size_t kc = std::min(blk.kc, k - pc);
            pack_b(buffers.b.data(), b, ldb, trans_b, pc, kc, jc, nc);
            for (std::size_t ic = i0; ic < i1; ic += blk.mc) {
                const std::size_t mc = std::min(blk.mc, i1 - ic);
                pack_a(buffers.a.data(), a, lda, trans_a, ic, mc, pc, kc);
                for (std::size_t jr = 0; jr < nc; jr += kNR) {
                    const std::size_t nr = std::min(kNR, nc - jr);
                    const float* bp = buffers.b.data() + (jr / kNR) * kNR * kc;
                    for (std::size_t ir = 0; ir < mc; ir += kMR) {
                        const std::size_t mr = std::min(kMR, mc - ir);
                        const float* ap = buffers.a.data() + (ir / kMR) * kMR * kc;
                        micro_14x32(kc, ap, bp, c + (ic + ir) * ldc + jc + jr, ldc, mr, nr);
                    }
                }
            }
        }
    }
}

void tanh_f32_avx512(const float* x, float* y, std::size_t n) {
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm512_storeu_ps(y + i, tanh_ps(_mm512_loadu_ps(x + i)));
    }
    if (i < n) {
        const __mmask16 m = tail_mask(n - i);
        _mm512_mask_storeu_ps(y + i, m, tanh_ps(_mm512_maskz_loadu_ps(m, x + i)));
    }
}

void exp_f32_avx512(const float* x, float* y, std::size_t n) {
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm512_storeu_ps(y + i, exp_ps(_mm512_loadu_ps(x + i)));
    }
    if (i < n) {
        const __mmask16 m = tail_mask(n - i);
        _mm512_mask_storeu_ps(y + i, m, exp_ps(_mm512_maskz_loadu_ps(m, x + i)));
    }
}

void softmax_rows_avx512(const float* in, float* out, std::size_t rows, std::size_t cols) {
    if (cols == 0) return;
    for (std::size_t r = 0; r < rows; ++r) {
        const float* x = in + r * cols;
        float* y = out + r * cols;

        // Row maximum; masked tail lanes contribute -FLT_MAX.
        __m512 vmax = _mm512_set1_ps(-FLT_MAX);
        std::size_t i = 0;
        for (; i + 16 <= cols; i += 16) vmax = _mm512_max_ps(vmax, _mm512_loadu_ps(x + i));
        if (i < cols) {
            const __mmask16 m = tail_mask(cols - i);
            vmax = _mm512_max_ps(vmax,
                                 _mm512_mask_loadu_ps(_mm512_set1_ps(-FLT_MAX), m, x + i));
        }
        const float max_value = _mm512_reduce_max_ps(vmax);

        // exp(x - max) and the row sum in one pass; dead tail lanes are
        // masked out of both the store and the reduction, so their value
        // never matters.
        const __m512 vshift = _mm512_set1_ps(max_value);
        __m512 vsum = _mm512_setzero_ps();
        i = 0;
        for (; i + 16 <= cols; i += 16) {
            const __m512 e = exp_ps(_mm512_sub_ps(_mm512_loadu_ps(x + i), vshift));
            _mm512_storeu_ps(y + i, e);
            vsum = _mm512_add_ps(vsum, e);
        }
        float sum = _mm512_reduce_add_ps(vsum);
        if (i < cols) {
            const __mmask16 m = tail_mask(cols - i);
            const __m512 src = _mm512_mask_loadu_ps(_mm512_set1_ps(0.0f), m, x + i);
            const __m512 e = exp_ps(_mm512_sub_ps(src, vshift));
            _mm512_mask_storeu_ps(y + i, m, e);
            sum += _mm512_reduce_add_ps(_mm512_maskz_mov_ps(m, e));
        }

        const float inv = 1.0f / sum;
        const __m512 vinv = _mm512_set1_ps(inv);
        i = 0;
        for (; i + 16 <= cols; i += 16) {
            _mm512_storeu_ps(y + i, _mm512_mul_ps(_mm512_loadu_ps(y + i), vinv));
        }
        if (i < cols) {
            const __mmask16 m = tail_mask(cols - i);
            _mm512_mask_storeu_ps(
                y + i, m, _mm512_mul_ps(_mm512_maskz_loadu_ps(m, y + i), vinv));
        }
    }
}

void adamax_update_avx512(float* w, float* g, float* m, float* u, std::size_t n,
                          float rate, float beta1, float beta2, float epsilon) {
    const __m512 vb1 = _mm512_set1_ps(beta1);
    const __m512 vb1c = _mm512_set1_ps(1.0f - beta1);
    const __m512 vb2 = _mm512_set1_ps(beta2);
    const __m512 vrate = _mm512_set1_ps(rate);
    const __m512 veps = _mm512_set1_ps(epsilon);
    const __m512 vzero = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 vg = _mm512_loadu_ps(g + i);
        const __m512 vm = _mm512_fmadd_ps(vb1, _mm512_loadu_ps(m + i), _mm512_mul_ps(vb1c, vg));
        const __m512 vu =
            _mm512_max_ps(_mm512_mul_ps(vb2, _mm512_loadu_ps(u + i)), _mm512_abs_ps(vg));
        const __m512 vw = _mm512_fnmadd_ps(
            vrate, _mm512_div_ps(vm, _mm512_add_ps(vu, veps)), _mm512_loadu_ps(w + i));
        _mm512_storeu_ps(m + i, vm);
        _mm512_storeu_ps(u + i, vu);
        _mm512_storeu_ps(w + i, vw);
        _mm512_storeu_ps(g + i, vzero);
    }
    if (i < n) {
        const __mmask16 km = tail_mask(n - i);
        const __m512 vg = _mm512_maskz_loadu_ps(km, g + i);
        const __m512 vm = _mm512_fmadd_ps(vb1, _mm512_maskz_loadu_ps(km, m + i),
                                          _mm512_mul_ps(vb1c, vg));
        const __m512 vu = _mm512_max_ps(_mm512_mul_ps(vb2, _mm512_maskz_loadu_ps(km, u + i)),
                                        _mm512_abs_ps(vg));
        const __m512 vw = _mm512_fnmadd_ps(
            vrate, _mm512_div_ps(vm, _mm512_add_ps(vu, veps)),
            _mm512_maskz_loadu_ps(km, w + i));
        _mm512_mask_storeu_ps(m + i, km, vm);
        _mm512_mask_storeu_ps(u + i, km, vu);
        _mm512_mask_storeu_ps(w + i, km, vw);
        _mm512_mask_storeu_ps(g + i, km, vzero);
    }
}

}  // namespace xpcore::simd

#else  // no AVX-512 compile support: stubs, unreachable behind avx512_active().

namespace xpcore::simd {

bool compiled_with_avx512() { return false; }

namespace {
[[noreturn]] void unreachable_stub() { std::abort(); }
}  // namespace

void gemm_f32_avx512(std::size_t, std::size_t, std::size_t, const float*, std::size_t, bool,
                     const float*, std::size_t, bool, float*, std::size_t, bool, std::size_t,
                     std::size_t) {
    unreachable_stub();
}
void tanh_f32_avx512(const float*, float*, std::size_t) { unreachable_stub(); }
void exp_f32_avx512(const float*, float*, std::size_t) { unreachable_stub(); }
void softmax_rows_avx512(const float*, float*, std::size_t, std::size_t) {
    unreachable_stub();
}
void adamax_update_avx512(float*, float*, float*, float*, std::size_t, float, float, float,
                          float) {
    unreachable_stub();
}

}  // namespace xpcore::simd

#endif
