#include "xpcore/net.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace xpcore::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int Socket::release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

Socket listen_tcp(std::uint16_t port, std::uint16_t* bound_port, int backlog) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) fail("socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopback(port);
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        fail("bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(sock.fd(), backlog) != 0) fail("listen");
    if (bound_port != nullptr) {
        sockaddr_in actual{};
        socklen_t len = sizeof(actual);
        if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
            fail("getsockname");
        }
        *bound_port = ntohs(actual.sin_port);
    }
    return sock;
}

Socket accept_connection(int listen_fd) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return Socket();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
}

Socket connect_tcp(std::uint16_t port, int timeout_ms) {
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) fail("socket");
    set_nonblocking(sock.fd());
    sockaddr_in addr = loopback(port);
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) fail("connect 127.0.0.1:" + std::to_string(port));
        pollfd pfd{sock.fd(), POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready <= 0) {
            throw std::runtime_error("connect 127.0.0.1:" + std::to_string(port) +
                                     ": timed out");
        }
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
            throw std::runtime_error("connect 127.0.0.1:" + std::to_string(port) + ": " +
                                     std::strerror(err));
        }
    }
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) fail("fcntl O_NONBLOCK");
}

bool wait_readable(int fd, int timeout_ms) {
    pollfd pfd{fd, POLLIN, 0};
    for (;;) {
        const int ready = ::poll(&pfd, 1, timeout_ms);
        if (ready > 0) return true;
        if (ready == 0) return false;
        if (errno != EINTR) return false;
    }
}

bool send_all(int fd, std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            pollfd pfd{fd, POLLOUT, 0};
            if (::poll(&pfd, 1, 10000) <= 0) return false;
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
    return true;
}

bool LineReader::read_line(std::string& line, int timeout_ms) {
    for (;;) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            return true;
        }
        if (!wait_readable(fd_, timeout_ms)) return false;
        char chunk[4096];
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
        return false;  // EOF or hard error
    }
}

WakePipe::WakePipe() {
    int fds[2];
    if (::pipe(fds) != 0) fail("pipe");
    read_end_ = Socket(fds[0]);
    write_end_ = Socket(fds[1]);
    set_nonblocking(read_end_.fd());
    set_nonblocking(write_end_.fd());
}

void WakePipe::notify() noexcept {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup; the result can be
    // ignored either way (and must be checked to satisfy warn_unused_result).
    [[maybe_unused]] const ssize_t n = ::write(write_end_.fd(), &byte, 1);
}

void WakePipe::drain() noexcept {
    char sink[64];
    while (::read(read_end_.fd(), sink, sizeof(sink)) > 0) {
    }
}

}  // namespace xpcore::net
