#include "xpcore/linalg.hpp"

#include <cmath>

namespace xpcore {

std::optional<std::vector<double>> solve_linear(MatrixD a, std::vector<double> b) {
    const std::size_t n = a.rows();
    if (n == 0 || a.cols() != n || b.size() != n) return std::nullopt;

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: bring the largest remaining entry to the diagonal.
        std::size_t pivot = col;
        double best = std::abs(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double mag = std::abs(a(r, col));
            if (mag > best) {
                best = mag;
                pivot = r;
            }
        }
        if (best < 1e-12) return std::nullopt;
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c) std::swap(a(pivot, c), a(col, c));
            std::swap(b[pivot], b[col]);
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a(r, col) / a(col, col);
            if (factor == 0.0) continue;
            for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double sum = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c) sum -= a(ri, c) * x[c];
        x[ri] = sum / a(ri, ri);
    }
    for (double v : x) {
        if (!std::isfinite(v)) return std::nullopt;
    }
    return x;
}

std::optional<std::vector<double>> least_squares(const MatrixD& a, std::span<const double> b) {
    const std::size_t rows = a.rows();
    const std::size_t cols = a.cols();
    if (rows == 0 || cols == 0 || b.size() != rows) return std::nullopt;

    MatrixD ata(cols, cols);
    std::vector<double> atb(cols, 0.0);
    for (std::size_t i = 0; i < cols; ++i) {
        for (std::size_t j = i; j < cols; ++j) {
            double sum = 0.0;
            for (std::size_t r = 0; r < rows; ++r) sum += a(r, i) * a(r, j);
            ata(i, j) = sum;
            ata(j, i) = sum;
        }
        double sum = 0.0;
        for (std::size_t r = 0; r < rows; ++r) sum += a(r, i) * b[r];
        atb[i] = sum;
    }

    if (auto solution = solve_linear(ata, atb)) return solution;

    // Collinear hypothesis terms on the sampled points: regularize with a
    // ridge proportional to the diagonal scale and retry.
    double diag_scale = 0.0;
    for (std::size_t i = 0; i < cols; ++i) diag_scale = std::max(diag_scale, std::abs(ata(i, i)));
    const double ridge = std::max(diag_scale, 1.0) * 1e-10;
    for (std::size_t i = 0; i < cols; ++i) ata(i, i) += ridge;
    return solve_linear(ata, atb);
}

}  // namespace xpcore
