#pragma once

/// \file trainer.hpp
/// Mini-batch training loop for classification networks.

#include <cstdint>
#include <span>

#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace xpcore {
class Rng;
}

namespace nn {

/// A labeled classification data set: one sample per row of `inputs`,
/// `labels[i]` is the class index of row i.
struct Dataset {
    Tensor inputs;                     // [samples x input_size]
    std::vector<std::int32_t> labels;  // [samples]

    std::size_t size() const { return labels.size(); }
};

/// Metrics of one epoch or evaluation pass.
struct EpochStats {
    double loss = 0.0;      ///< mean cross-entropy
    double accuracy = 0.0;  ///< fraction of correct argmax predictions
};

/// Split a data set into (train, holdout): the last `fraction` of a random
/// permutation becomes the holdout. Deterministic given the Rng state.
std::pair<Dataset, Dataset> split_dataset(const Dataset& data, double fraction,
                                          xpcore::Rng& rng);

/// Outcome of a validated training run.
struct FitReport {
    EpochStats train;         ///< stats of the last executed epoch
    EpochStats validation;    ///< holdout stats of the best epoch
    std::size_t epochs_run = 0;
    bool early_stopped = false;
};

/// Mini-batch trainer with shuffling.
class Trainer {
public:
    struct Config {
        std::size_t epochs = 1;
        std::size_t batch_size = 128;
        bool shuffle = true;
        /// With early_stop_patience > 0, fit_validated() stops once the
        /// holdout loss has not improved for this many consecutive epochs.
        std::size_t early_stop_patience = 0;
        /// Number of gradient shards each mini-batch is split into. 1 (the
        /// default) runs the serial training step. With R > 1, each batch
        /// is cut into R fixed contiguous row ranges whose forward/backward
        /// passes run concurrently on the xpcore thread pool into private
        /// gradient sinks; the sinks are then reduced in shard order, so
        /// the resulting weights depend only on R — never on the worker
        /// count. R = 1 is bitwise-identical to the pre-sharding trainer.
        std::size_t grad_shards = 1;
    };

    Trainer(Network& network, Optimizer& optimizer, Config config)
        : network_(network), optimizer_(optimizer), config_(config),
          params_(network_.params()) {
        optimizer_.attach(network_.params());
    }

    /// Train on the data set; returns the stats of the final epoch.
    EpochStats fit(const Dataset& data, xpcore::Rng& rng);

    /// Train with per-epoch holdout evaluation and optional early stopping
    /// (config.early_stop_patience). The network keeps the weights of the
    /// last executed epoch; the report carries the best holdout stats.
    FitReport fit_validated(const Dataset& train, const Dataset& holdout, xpcore::Rng& rng);

    /// Forward-only evaluation.
    EpochStats evaluate(const Dataset& data);

    /// Class-probability prediction for a batch of inputs.
    Tensor predict_proba(const Tensor& inputs);

private:
    /// One pass over the data with parameter updates.
    EpochStats run_epoch(const Dataset& data, xpcore::Rng& rng);

    /// The data-parallel training step for one gathered batch: process
    /// config_.grad_shards row ranges concurrently, then reduce the shard
    /// gradient sinks into the optimizer-attached accumulators.
    void run_batch_sharded(const Dataset& data, std::size_t begin, std::size_t batch_n,
                           double& loss_sum, std::size_t& correct);

    Network& network_;
    Optimizer& optimizer_;
    Config config_;
    /// Cached Network::params() (params() itself allocates): reduction
    /// targets of the sharded step, in the same order as each shard's sinks.
    std::vector<Param> params_;
    /// All mini-batch and forward/backward scratch. Reused across batches
    /// and epochs so the steady-state training step performs zero heap
    /// allocations (see nn/workspace.hpp).
    Workspace ws_;
};

/// Indices of the k largest entries of a probability row, best first.
std::vector<std::size_t> top_k_indices(std::span<const float> probabilities, std::size_t k);

}  // namespace nn
