#pragma once

/// \file loss.hpp
/// Softmax + cross-entropy, fused for numerical stability.

#include <cstdint>
#include <span>

#include "nn/tensor.hpp"

namespace nn {

/// Fused softmax activation and cross-entropy loss over integer class
/// labels. The paper's output layer is softmax over 43 classes.
class SoftmaxCrossEntropy {
public:
    /// Row-wise softmax of `logits` into `probs` (max-subtracted, stable).
    static void softmax(const Tensor& logits, Tensor& probs);

    /// Mean cross-entropy of `probs` against `labels` (one label per row).
    static double loss(const Tensor& probs, std::span<const std::int32_t> labels);

    /// Gradient of the mean cross-entropy w.r.t. the logits:
    /// (probs - onehot(labels)) / batch. Writes into grad_logits.
    static void backward(const Tensor& probs, std::span<const std::int32_t> labels,
                         Tensor& grad_logits);

    /// Same, with an explicit gradient scale instead of 1/rows. The
    /// data-parallel trainer passes 1/batch so a shard of the batch still
    /// contributes gradients scaled by the *global* batch size — summing
    /// shard gradients then equals the single-shard gradient up to FP
    /// addition order.
    static void backward(const Tensor& probs, std::span<const std::int32_t> labels,
                         Tensor& grad_logits, float scale);
};

}  // namespace nn
