#pragma once

/// \file optimizer.hpp
/// Gradient-descent optimizers. The paper trains with AdaMax (the
/// infinity-norm variant of Adam); plain SGD is provided as a baseline and
/// for tests.

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"

namespace nn {

/// Optimizer interface: owns per-parameter state, applies one update step
/// from the accumulated gradients, then zeroes them.
///
/// Gradient-clearing ownership: step() is the *single* owner of clearing
/// the gradient accumulators — every implementation fuses `g = 0` into its
/// update loop (one pass over the parameter memory instead of two). Callers
/// must NOT pair step() with zero_grad() per batch; zero_grad() exists only
/// for the rare "discard accumulated gradients without updating" case
/// (e.g. abandoning a partially accumulated batch).
class Optimizer {
public:
    virtual ~Optimizer() = default;

    /// Register the parameters to optimize (resets internal state).
    virtual void attach(std::vector<Param> params) = 0;

    /// Apply one update from the current gradients and clear them
    /// (postcondition: every grad tensor is all zeros).
    virtual void step() = 0;

    /// Discard accumulated gradients without updating. Not needed after
    /// step() — see the class comment on clearing ownership.
    void zero_grad();

protected:
    std::vector<Param> params_;
};

/// AdaMax (Kingma & Ba 2015, Sec. 7.1):
///   m_t = b1 * m + (1 - b1) * g
///   u_t = max(b2 * u, |g|)
///   w  -= lr / (1 - b1^t) * m_t / (u_t + eps)
class AdaMax final : public Optimizer {
public:
    struct Config {
        float learning_rate = 0.002f;
        float beta1 = 0.9f;
        float beta2 = 0.999f;
        float epsilon = 1e-8f;
    };

    AdaMax() : AdaMax(Config{}) {}
    explicit AdaMax(Config config) : config_(config) {}

    void attach(std::vector<Param> params) override;
    void step() override;

private:
    Config config_;
    std::vector<Tensor> m_;  // first moment per parameter
    std::vector<Tensor> u_;  // infinity-norm second moment per parameter
    std::size_t t_ = 0;      // step counter
};

/// Plain stochastic gradient descent: w -= lr * g.
class Sgd final : public Optimizer {
public:
    explicit Sgd(float learning_rate) : learning_rate_(learning_rate) {}

    void attach(std::vector<Param> params) override;
    void step() override;

private:
    float learning_rate_;
};

}  // namespace nn
