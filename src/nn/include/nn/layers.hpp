#pragma once

/// \file layers.hpp
/// Network layers: fully-connected (dense) and tanh activation — the two
/// building blocks of the paper's classifier (Sec. IV-D).

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace xpcore {
class Rng;
}

namespace nn {

/// A trainable parameter: value tensor plus its gradient accumulator.
struct Param {
    Tensor* value = nullptr;
    Tensor* grad = nullptr;
};

/// Abstract layer. Layers are stateless across batches except for trainable
/// parameters; all per-batch activations are owned by the Network so one
/// layer instance can be shared by training and inference paths.
class Layer {
public:
    virtual ~Layer() = default;

    /// Compute out = f(in). `in` is [batch x input_size()].
    virtual void forward(const Tensor& in, Tensor& out) const = 0;

    /// Given the batch inputs/outputs of forward and the loss gradient
    /// w.r.t. the outputs, compute grad_in and accumulate parameter grads.
    virtual void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                          Tensor& grad_in) = 0;

    /// Like backward(), but accumulate parameter gradients into the caller-
    /// provided `param_grads` (one pre-shaped tensor per params() entry, in
    /// params() order) instead of the layer's own accumulators. This is the
    /// hook the data-parallel trainer uses to give each gradient shard its
    /// own sinks so concurrent shards never race on layer state. The base
    /// implementation delegates to backward(), which is correct exactly for
    /// parameterless layers.
    virtual void backward_into(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                               Tensor& grad_in, std::span<Tensor> param_grads) {
        (void)param_grads;
        backward(in, out, grad_out, grad_in);
    }

    virtual std::size_t input_size() const = 0;
    virtual std::size_t output_size() const = 0;

    /// Trainable parameters (empty for activations).
    virtual std::vector<Param> params() { return {}; }

    /// Deep copy of the layer's configuration and weights. Gradient
    /// accumulators start zeroed in the copy.
    virtual std::unique_ptr<Layer> clone() const = 0;

    /// Serialization tag ("dense", "tanh").
    virtual std::string kind() const = 0;
    /// Write layer configuration + weights.
    virtual void save(std::ostream& out) const = 0;
};

/// Fully-connected layer: out = in * W + b, W is [in x out].
class Dense final : public Layer {
public:
    /// Glorot-uniform weights, zero bias.
    Dense(std::size_t in, std::size_t out, xpcore::Rng& rng);
    /// Uninitialized (for deserialization).
    Dense(std::size_t in, std::size_t out);

    void forward(const Tensor& in, Tensor& out) const override;
    void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                  Tensor& grad_in) override;
    void backward_into(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                       Tensor& grad_in, std::span<Tensor> param_grads) override;
    std::size_t input_size() const override { return weights_.rows(); }
    std::size_t output_size() const override { return weights_.cols(); }
    std::vector<Param> params() override;
    std::unique_ptr<Layer> clone() const override;
    std::string kind() const override { return "dense"; }
    void save(std::ostream& out) const override;
    static std::unique_ptr<Dense> load(std::istream& in);

    Tensor& weights() { return weights_; }
    Tensor& bias() { return bias_; }

private:
    Tensor weights_;       // [in x out]
    Tensor bias_;          // [1 x out]
    Tensor weights_grad_;  // same shapes
    Tensor bias_grad_;
};

/// Elementwise rectified linear unit: max(0, x). An alternative to the
/// paper's tanh, ablated in bench/ablation_adaptation-style sweeps.
class Relu final : public Layer {
public:
    explicit Relu(std::size_t size) : size_(size) {}

    void forward(const Tensor& in, Tensor& out) const override;
    void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                  Tensor& grad_in) override;
    std::size_t input_size() const override { return size_; }
    std::size_t output_size() const override { return size_; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<Relu>(size_); }
    std::string kind() const override { return "relu"; }
    void save(std::ostream& out) const override;
    static std::unique_ptr<Relu> load(std::istream& in);

private:
    std::size_t size_;
};

/// Elementwise hyperbolic tangent.
class Tanh final : public Layer {
public:
    explicit Tanh(std::size_t size) : size_(size) {}

    void forward(const Tensor& in, Tensor& out) const override;
    void backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                  Tensor& grad_in) override;
    std::size_t input_size() const override { return size_; }
    std::size_t output_size() const override { return size_; }
    std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(size_); }
    std::string kind() const override { return "tanh"; }
    void save(std::ostream& out) const override;
    static std::unique_ptr<Tanh> load(std::istream& in);

private:
    std::size_t size_;
};

}  // namespace nn
