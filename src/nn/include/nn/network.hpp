#pragma once

/// \file network.hpp
/// A feed-forward network as an ordered list of layers, with binary
/// serialization so pretrained classifiers can be cached on disk and
/// reloaded for domain adaptation (Sec. IV-E).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/workspace.hpp"

namespace xpcore {
class Rng;
}

namespace nn {

/// Hidden-layer activation choice for Network::mlp.
enum class Activation {
    Tanh,  ///< the paper's choice
    Relu,
};

/// Ordered layer stack. The Network owns the layers and the per-layer
/// activation buffers used during forward/backward.
class Network {
public:
    Network() = default;

    /// Build a dense MLP: sizes = {in, h1, ..., out}, the chosen activation
    /// after every hidden layer, linear output (softmax lives in the loss).
    static Network mlp(const std::vector<std::size_t>& sizes, xpcore::Rng& rng,
                       Activation activation = Activation::Tanh);

    void add(std::unique_ptr<Layer> layer);

    std::size_t layer_count() const { return layers_.size(); }
    Layer& layer(std::size_t i) { return *layers_[i]; }

    std::size_t input_size() const;
    std::size_t output_size() const;

    /// Forward pass; returns the output activations [batch x output_size].
    /// Keeps all intermediate activations (in the given workspace) for a
    /// subsequent backward(). The workspace-less overload uses a private
    /// member workspace, so repeated calls reuse the same buffers.
    const Tensor& forward(const Tensor& input);
    const Tensor& forward(const Tensor& input, Workspace& ws);

    /// Backward pass from the loss gradient w.r.t. the network output
    /// (shape like forward's result). Must follow a forward() on the same
    /// batch *and the same workspace*. Accumulates parameter gradients.
    void backward(const Tensor& grad_output);
    void backward(const Tensor& grad_output, Workspace& ws);

    /// Backward pass accumulating parameter gradients into caller-provided
    /// sinks (one pre-shaped tensor per params() entry, in params() order)
    /// instead of the layers' own accumulators. Layer state is only read,
    /// so concurrent calls with disjoint workspaces and sinks are safe —
    /// this is the kernel of the data-parallel training epoch.
    void backward(const Tensor& grad_output, Workspace& ws, std::span<Tensor> param_grads);

    /// Deep copy: clones every layer's configuration and weights. The copy
    /// starts with empty activation buffers and zeroed gradients — the
    /// cheap path for "retrain a copy" workflows like domain adaptation
    /// (no serialization round-trip).
    Network clone() const;

    /// All trainable parameters.
    std::vector<Param> params();

    /// Total number of trainable scalars.
    std::size_t parameter_count();

    /// Binary serialization (magic + version + layer list).
    void save(std::ostream& out) const;
    void save_file(const std::string& path) const;
    static Network load(std::istream& in);
    static Network load_file(const std::string& path);

private:
    std::vector<std::unique_ptr<Layer>> layers_;
    /// params() entries contributed by each layer, maintained by add() so
    /// the sink-directed backward() can slice its span without calling
    /// params() (which allocates) on the hot path.
    std::vector<std::size_t> layer_param_counts_;
    Workspace ws_;  // backs the workspace-less forward()/backward() overloads
};

}  // namespace nn
