#pragma once

/// \file workspace.hpp
/// Reusable scratch buffers for training and batched inference.
///
/// Every buffer the forward/backward pass and the mini-batch loop need is
/// collected in one Workspace so steady-state training steps and repeated
/// batched inference touch the heap zero times: Tensor::resize keeps
/// capacity when shrinking, so after the first (largest) batch every
/// subsequent resize is a pointer-arithmetic no-op. tests/test_zero_alloc.cpp
/// pins this with a counting global allocator.
///
/// A Workspace belongs to one thread of execution at a time. Network keeps a
/// private Workspace for the convenience overloads of forward()/backward();
/// callers that manage their own (Trainer, DnnModeler) pass it explicitly.

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace nn {

struct Workspace {
    // --- Network pass state -------------------------------------------
    Tensor input;                    ///< copy of the last forward() input
    std::vector<Tensor> activations; ///< activations[i] = output of layer i
    std::vector<Tensor> grads;       ///< per-layer input-gradient scratch

    // --- Mini-batch loop scratch (Trainer) ----------------------------
    Tensor batch;                      ///< gathered mini-batch inputs
    Tensor probs;                      ///< softmax probabilities
    Tensor grad_logits;                ///< loss gradient w.r.t. logits
    std::vector<std::int32_t> labels;  ///< gathered mini-batch labels
    std::vector<std::size_t> order;    ///< shuffled sample permutation
};

}  // namespace nn
