#pragma once

/// \file workspace.hpp
/// Reusable scratch buffers for training and batched inference.
///
/// Every buffer the forward/backward pass and the mini-batch loop need is
/// collected in one Workspace so steady-state training steps and repeated
/// batched inference touch the heap zero times: Tensor::resize keeps
/// capacity when shrinking, so after the first (largest) batch every
/// subsequent resize is a pointer-arithmetic no-op. tests/test_zero_alloc.cpp
/// pins this with a counting global allocator.
///
/// A Workspace belongs to one thread of execution at a time. Network keeps a
/// private Workspace for the convenience overloads of forward()/backward();
/// callers that manage their own (Trainer, DnnModeler) pass it explicitly.
/// The data-parallel trainer (Trainer::Config::grad_shards > 1) extends the
/// rule per shard: each GradShard owns a private sub-workspace plus private
/// gradient sinks, so concurrent shards of one batch share nothing but the
/// (read-only) network weights.

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace nn {

struct GradShard;

struct Workspace {
    // --- Network pass state -------------------------------------------
    Tensor input;                    ///< copy of the last forward() input
    std::vector<Tensor> activations; ///< activations[i] = output of layer i
    std::vector<Tensor> grads;       ///< per-layer input-gradient scratch

    // --- Mini-batch loop scratch (Trainer) ----------------------------
    Tensor batch;                      ///< gathered mini-batch inputs
    Tensor probs;                      ///< softmax probabilities
    Tensor grad_logits;                ///< loss gradient w.r.t. logits
    std::vector<std::int32_t> labels;  ///< gathered mini-batch labels
    std::vector<std::size_t> order;    ///< shuffled sample permutation

    // --- Data-parallel training (Trainer, grad_shards > 1) -------------
    /// One entry per gradient shard; empty on the serial path. The shard
    /// count is fixed by Trainer::Config::grad_shards — never by the worker
    /// count — so the batch partition, and therefore the trained weights,
    /// are identical for any number of pool threads.
    std::vector<GradShard> shards;
};

/// Private state of one gradient shard of a data-parallel training step:
/// its own forward/backward scratch and one gradient sink per network
/// parameter (Network::params() order). The trainer reduces shard sinks
/// into the optimizer-attached accumulators in fixed shard order (shard 0
/// copies, later shards add), which keeps the summed gradient — and hence
/// every subsequent weight — bit-identical across thread counts and
/// bit-identical to the serial path when grad_shards == 1.
struct GradShard {
    Workspace ws;               ///< per-shard pass + batch-gather scratch
    std::vector<Tensor> grads;  ///< per-parameter gradient sinks
    double loss_sum = 0.0;      ///< shard's summed (not averaged) loss
    std::size_t correct = 0;    ///< shard's correct argmax predictions
};

}  // namespace nn
