#pragma once

/// \file tensor.hpp
/// Dense 2-D float tensor and the GEMM kernels the network is built on.
///
/// The paper's classifier is a small dense MLP, so a row-major f32 matrix
/// with cache-blocked loop ordering (K panels x N blocks, unit-stride inner
/// loops that the compiler auto-vectorizes with FMA) is all the tensor
/// substrate the library needs. No external BLAS or ML framework is
/// required. Products large enough to amortize synchronization are split
/// into row ranges and dispatched onto the xpcore thread pool; the split is
/// over output rows only, so every element is accumulated in the same order
/// regardless of thread count and results are bit-identical for 0..N
/// threads.
///
/// Below the thread layer sits a data-parallel layer: the kernels sample
/// xpcore::simd::active_level() once per product and dispatch to the packed
/// AVX-512 or AVX2/FMA microkernel in xpcore (see xpcore/simd_kernels.hpp);
/// at Level::Scalar they run the blocked scalar loops below, which are
/// bit-identical to the pre-SIMD library. The first vector-level product in
/// a process triggers the startup GEMM autotuner (xpcore/gemm_tune.hpp).
/// The SIMD results differ from scalar only by FMA contraction and
/// summation-tree shape (tolerance-pinned in tests/test_simd_parity.cpp)
/// and remain bit-identical across thread counts at any fixed level.
///
/// Tensor storage is 64-byte aligned (xpcore/aligned.hpp): cache-line and
/// zmm-register boundaries for the vector kernels, asserted by the
/// zero-alloc test.

#include <cstddef>
#include <span>
#include <vector>

#include "xpcore/aligned.hpp"

namespace xpcore {
class Rng;
class ThreadPool;
}

namespace nn {

/// Row-major matrix of floats. A vector is a 1 x n or n x 1 tensor.
class Tensor {
public:
    Tensor() = default;
    Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
    float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }
    std::span<float> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
    std::span<const float> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }

    /// Resize without preserving contents. Shrinking (or growing within
    /// capacity()) never touches the heap; growing beyond capacity()
    /// allocates without copying the old contents (they are not preserved
    /// anyway). This is what makes reused workspace tensors allocation-free
    /// in steady state.
    void resize(std::size_t rows, std::size_t cols);

    /// Number of elements the current buffer can hold without reallocating.
    std::size_t capacity() const { return data_.capacity(); }

    /// Set every element to `value`.
    void fill(float value);

    /// Glorot/Xavier uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
    void glorot_uniform(std::size_t fan_in, std::size_t fan_out, xpcore::Rng& rng);

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float, xpcore::AlignedAllocator<float>> data_;
};

/// Work threshold (m * n * k multiply-adds) above which the GEMM kernels
/// dispatch row ranges onto the thread pool; below it they stay serial so
/// tiny products (1 x 11 inference lines) pay no synchronization. The
/// default (1 << 17) can be overridden with the XPDNN_GEMM_THRESHOLD
/// environment variable or, at runtime, with set_gemm_parallel_threshold
/// (0 restores the environment/default value).
std::size_t gemm_parallel_threshold();
void set_gemm_parallel_threshold(std::size_t flops);

/// c = a * b (+ c if accumulate). Dimensions: a[m x k], b[k x n], c[m x n].
/// The default overload runs on xpcore::ThreadPool::global(); the explicit
/// overload exists so tests can pin the worker count in-process.
void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
             xpcore::ThreadPool& pool);

/// c = a * b^T. Dimensions: a[m x k], b[n x k], c[m x n].
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
             xpcore::ThreadPool& pool);

/// c = a^T * b. Dimensions: a[k x m], b[k x n], c[m x n].
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
             xpcore::ThreadPool& pool);

/// y += alpha * x, elementwise over equal-shaped tensors.
void axpy(float alpha, const Tensor& x, Tensor& y);

}  // namespace nn
