#include "nn/tensor.hpp"

#include <cassert>
#include <cmath>

#include "xpcore/rng.hpp"

namespace nn {

void Tensor::resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
}

void Tensor::fill(float value) {
    for (auto& v : data_) v = value;
}

void Tensor::glorot_uniform(std::size_t fan_in, std::size_t fan_out, xpcore::Rng& rng) {
    const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (auto& v : data_) v = static_cast<float>(rng.uniform(-a, a));
}

void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    assert(b.rows() == k && c.rows() == m && c.cols() == n);
    if (!accumulate) c.fill(0.0f);
    // i-k-j ordering: the inner loop is unit-stride over both b and c, so
    // the compiler vectorizes it into FMA over the row of c.
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.data() + i * k;
        float* crow = c.data() + i * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float aik = arow[kk];
            if (aik == 0.0f) continue;
            const float* brow = b.data() + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
    }
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    assert(b.cols() == k && c.rows() == m && c.cols() == n);
    // Dot products of rows, four independent accumulators per product so
    // the reduction pipelines instead of serializing on one FMA chain.
    for (std::size_t i = 0; i < m; ++i) {
        const float* arow = a.data() + i * k;
        float* crow = c.data() + i * n;
        for (std::size_t j = 0; j < n; ++j) {
            const float* brow = b.data() + j * k;
            float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
            std::size_t kk = 0;
            for (; kk + 4 <= k; kk += 4) {
                s0 += arow[kk] * brow[kk];
                s1 += arow[kk + 1] * brow[kk + 1];
                s2 += arow[kk + 2] * brow[kk + 2];
                s3 += arow[kk + 3] * brow[kk + 3];
            }
            float sum = (s0 + s1) + (s2 + s3);
            for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
            crow[j] = accumulate ? crow[j] + sum : sum;
        }
    }
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    assert(b.rows() == k && c.rows() == m && c.cols() == n);
    if (!accumulate) c.fill(0.0f);
    // Outer products: for each sample kk, c += a_row^T * b_row.
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* arow = a.data() + kk * m;
        const float* brow = b.data() + kk * n;
        for (std::size_t i = 0; i < m; ++i) {
            const float aki = arow[i];
            if (aki == 0.0f) continue;
            float* crow = c.data() + i * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
        }
    }
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
    assert(x.rows() == y.rows() && x.cols() == y.cols());
    const float* xs = x.data();
    float* ys = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) ys[i] += alpha * xs[i];
}

}  // namespace nn
