#include "nn/tensor.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "xpcore/gemm_tune.hpp"
#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"
#include "xpcore/thread_pool.hpp"

namespace nn {

void Tensor::resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    const std::size_t n = rows * cols;
    // Contents are not preserved, so when the buffer must grow, drop the old
    // elements first — vector::resize alone would copy them into the new
    // allocation for nothing. Shrinking keeps the capacity.
    if (n > data_.capacity()) data_.clear();
    data_.resize(n);
}

void Tensor::fill(float value) {
    for (auto& v : data_) v = value;
}

void Tensor::glorot_uniform(std::size_t fan_in, std::size_t fan_out, xpcore::Rng& rng) {
    const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (auto& v : data_) v = static_cast<float>(rng.uniform(-a, a));
}

namespace {

// Cache blocking: K panels of kKC rows of b stay resident while they are
// streamed over a row block of c, and the j extent is cut into kNC-wide
// blocks so the active c rows and the b panel fit in L2 together.
// (kKC * kNC floats = 256 KiB panel, well under typical L2.)
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 256;
// Row-tile height of the tn (outer-product) kernel: a[kk, i0..i0+kTI) is a
// contiguous load and each b row is reused kTI times from L1.
constexpr std::size_t kTI = 16;

constexpr std::size_t kDefaultParallelThreshold = std::size_t{1} << 17;

std::size_t env_parallel_threshold() {
    static const std::size_t value = [] {
        if (const char* env = std::getenv("XPDNN_GEMM_THRESHOLD")) {
            const long long parsed = std::strtoll(env, nullptr, 10);
            if (parsed > 0) return static_cast<std::size_t>(parsed);
        }
        return kDefaultParallelThreshold;
    }();
    return value;
}

std::atomic<std::size_t> g_threshold_override{0};

/// Split the row range [0, rows) over the pool when the product is large
/// enough; otherwise run the range kernel inline. The kernels only ever
/// partition output rows, so the floating-point accumulation order of every
/// element is independent of the split.
template <typename RangeKernel>
void dispatch_rows(xpcore::ThreadPool& pool, std::size_t rows, std::size_t flops,
                   const RangeKernel& kernel) {
    if (rows >= 2 && pool.size() > 0 && flops >= gemm_parallel_threshold()) {
        xpcore::parallel_for(pool, rows,
                             [&](std::size_t begin, std::size_t end) { kernel(begin, end); });
    } else {
        kernel(0, rows);
    }
}

/// c[i0..i1) = (or +=) a[i0..i1) * b. i-k-j ordering inside K panels and
/// N blocks: the inner loop is unit-stride over both b and c, so the
/// compiler vectorizes it into FMA over the row of c. Per element the
/// k accumulation order equals the unblocked kernel's.
void gemm_nn_range(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
                   std::size_t i0, std::size_t i1) {
    const std::size_t k = a.cols(), n = b.cols();
    if (!accumulate) {
        std::memset(c.data() + i0 * n, 0, (i1 - i0) * n * sizeof(float));
    }
    for (std::size_t k0 = 0; k0 < k; k0 += kKC) {
        const std::size_t k1 = std::min(k0 + kKC, k);
        for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
            const std::size_t j1 = std::min(j0 + kNC, n);
            for (std::size_t i = i0; i < i1; ++i) {
                const float* arow = a.data() + i * k;
                float* crow = c.data() + i * n;
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const float aik = arow[kk];
                    if (aik == 0.0f) continue;
                    const float* brow = b.data() + kk * n;
                    for (std::size_t j = j0; j < j1; ++j) crow[j] += aik * brow[j];
                }
            }
        }
    }
}

/// c[i0..i1) rows of a * b^T. Dot products of rows, four independent
/// accumulators per product so the reduction pipelines instead of
/// serializing on one FMA chain; b^T rows are walked in kNC-row panels so
/// a panel stays cached across the whole row range.
void gemm_nt_range(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
                   std::size_t i0, std::size_t i1) {
    const std::size_t k = a.cols(), n = b.rows();
    for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
        const std::size_t j1 = std::min(j0 + kNC, n);
        for (std::size_t i = i0; i < i1; ++i) {
            const float* arow = a.data() + i * k;
            float* crow = c.data() + i * n;
            for (std::size_t j = j0; j < j1; ++j) {
                const float* brow = b.data() + j * k;
                float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
                std::size_t kk = 0;
                for (; kk + 4 <= k; kk += 4) {
                    s0 += arow[kk] * brow[kk];
                    s1 += arow[kk + 1] * brow[kk + 1];
                    s2 += arow[kk + 2] * brow[kk + 2];
                    s3 += arow[kk + 3] * brow[kk + 3];
                }
                float sum = (s0 + s1) + (s2 + s3);
                for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
                crow[j] = accumulate ? crow[j] + sum : sum;
            }
        }
    }
}

/// c rows [i0..i1) of a^T * b: for each sample kk, c[i, :] += a[kk, i] *
/// b[kk, :]. Row tiles of kTI make the a loads contiguous and reuse each
/// b row from L1; per element the kk accumulation order is unchanged.
void gemm_tn_range(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
                   std::size_t i0, std::size_t i1) {
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    if (!accumulate) {
        std::memset(c.data() + i0 * n, 0, (i1 - i0) * n * sizeof(float));
    }
    for (std::size_t it = i0; it < i1; it += kTI) {
        const std::size_t ie = std::min(it + kTI, i1);
        for (std::size_t k0 = 0; k0 < k; k0 += kKC) {
            const std::size_t k1 = std::min(k0 + kKC, k);
            for (std::size_t j0 = 0; j0 < n; j0 += kNC) {
                const std::size_t j1 = std::min(j0 + kNC, n);
                for (std::size_t kk = k0; kk < k1; ++kk) {
                    const float* arow = a.data() + kk * m;
                    const float* brow = b.data() + kk * n;
                    for (std::size_t i = it; i < ie; ++i) {
                        const float aki = arow[i];
                        if (aki == 0.0f) continue;
                        float* crow = c.data() + i * n;
                        for (std::size_t j = j0; j < j1; ++j) crow[j] += aki * brow[j];
                    }
                }
            }
        }
    }
}

/// The packed SIMD kernel for a dispatch level, or nullptr for the scalar
/// path. The level is sampled once per product so every row range of one
/// call runs the same kernel even if the level changes concurrently (tests
/// flip it between calls, never mid-call); the first vector-level call per
/// process runs the startup autotuner before any kernel executes.
using SimdGemmFn = void (*)(std::size_t, std::size_t, std::size_t, const float*,
                            std::size_t, bool, const float*, std::size_t, bool, float*,
                            std::size_t, bool, std::size_t, std::size_t);

SimdGemmFn select_simd_gemm() {
    const xpcore::simd::Level level = xpcore::simd::active_level();
    if (level == xpcore::simd::Level::Scalar) return nullptr;
    xpcore::simd::ensure_gemm_tuned(level);
    return level == xpcore::simd::Level::Avx512 ? xpcore::simd::gemm_f32_avx512
                                                : xpcore::simd::gemm_f32_avx2;
}

}  // namespace

std::size_t gemm_parallel_threshold() {
    const std::size_t override_value = g_threshold_override.load(std::memory_order_relaxed);
    return override_value != 0 ? override_value : env_parallel_threshold();
}

void set_gemm_parallel_threshold(std::size_t flops) {
    g_threshold_override.store(flops, std::memory_order_relaxed);
}

void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
             xpcore::ThreadPool& pool) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
    assert(b.rows() == k && c.rows() == m && c.cols() == n);
    const SimdGemmFn simd_gemm = select_simd_gemm();
    dispatch_rows(pool, m, m * n * k, [&](std::size_t begin, std::size_t end) {
        if (simd_gemm != nullptr) {
            simd_gemm(m, n, k, a.data(), k, false, b.data(), n, false, c.data(), n,
                      accumulate, begin, end);
        } else {
            gemm_nn_range(a, b, c, accumulate, begin, end);
        }
    });
}

void gemm_nn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
    gemm_nn(a, b, c, accumulate, xpcore::ThreadPool::global());
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
             xpcore::ThreadPool& pool) {
    const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
    assert(b.cols() == k && c.rows() == m && c.cols() == n);
    const SimdGemmFn simd_gemm = select_simd_gemm();
    dispatch_rows(pool, m, m * n * k, [&](std::size_t begin, std::size_t end) {
        if (simd_gemm != nullptr) {
            // op(B) = B^T of the [n x k]-stored b.
            simd_gemm(m, n, k, a.data(), k, false, b.data(), k, true, c.data(), n,
                      accumulate, begin, end);
        } else {
            gemm_nt_range(a, b, c, accumulate, begin, end);
        }
    });
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
    gemm_nt(a, b, c, accumulate, xpcore::ThreadPool::global());
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate,
             xpcore::ThreadPool& pool) {
    const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
    assert(b.rows() == k && c.rows() == m && c.cols() == n);
    const SimdGemmFn simd_gemm = select_simd_gemm();
    dispatch_rows(pool, m, m * n * k, [&](std::size_t begin, std::size_t end) {
        if (simd_gemm != nullptr) {
            // op(A) = A^T of the [k x m]-stored a.
            simd_gemm(m, n, k, a.data(), m, true, b.data(), n, false, c.data(), n,
                      accumulate, begin, end);
        } else {
            gemm_tn_range(a, b, c, accumulate, begin, end);
        }
    });
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
    gemm_tn(a, b, c, accumulate, xpcore::ThreadPool::global());
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
    assert(x.rows() == y.rows() && x.cols() == y.cols());
    const float* xs = x.data();
    float* ys = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) ys[i] += alpha * xs[i];
}

}  // namespace nn
