#include "nn/network.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "xpcore/rng.hpp"

namespace nn {

namespace {
constexpr char kMagic[4] = {'X', 'P', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

Network Network::mlp(const std::vector<std::size_t>& sizes, xpcore::Rng& rng,
                     Activation activation) {
    if (sizes.size() < 2) throw std::invalid_argument("Network::mlp: need input and output size");
    Network net;
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        net.add(std::make_unique<Dense>(sizes[i], sizes[i + 1], rng));
        const bool is_output = (i + 2 == sizes.size());
        if (!is_output) {
            if (activation == Activation::Relu) {
                net.add(std::make_unique<Relu>(sizes[i + 1]));
            } else {
                net.add(std::make_unique<Tanh>(sizes[i + 1]));
            }
        }
    }
    return net;
}

void Network::add(std::unique_ptr<Layer> layer) {
    if (!layers_.empty() && layers_.back()->output_size() != layer->input_size()) {
        throw std::invalid_argument("Network::add: layer size mismatch");
    }
    layers_.push_back(std::move(layer));
    layer_param_counts_.push_back(layers_.back()->params().size());
}

std::size_t Network::input_size() const {
    if (layers_.empty()) return 0;
    return layers_.front()->input_size();
}

std::size_t Network::output_size() const {
    if (layers_.empty()) return 0;
    return layers_.back()->output_size();
}

const Tensor& Network::forward(const Tensor& input) { return forward(input, ws_); }

const Tensor& Network::forward(const Tensor& input, Workspace& ws) {
    if (layers_.empty()) throw std::logic_error("Network::forward: no layers");
    // Grows the per-layer buffer lists once; the Tensors inside keep their
    // capacity across calls (Tensor::resize), so steady-state passes over
    // same-or-smaller batches are allocation-free.
    if (ws.activations.size() < layers_.size()) ws.activations.resize(layers_.size());
    if (ws.grads.size() < layers_.size()) ws.grads.resize(layers_.size());
    ws.input.resize(input.rows(), input.cols());
    std::copy_n(input.data(), input.size(), ws.input.data());
    const Tensor* current = &ws.input;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        layers_[i]->forward(*current, ws.activations[i]);
        current = &ws.activations[i];
    }
    return ws.activations[layers_.size() - 1];
}

void Network::backward(const Tensor& grad_output) { backward(grad_output, ws_); }

void Network::backward(const Tensor& grad_output, Workspace& ws) {
    if (layers_.empty()) throw std::logic_error("Network::backward: no layers");
    const Tensor* grad = &grad_output;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        const Tensor& in = (i == 0) ? ws.input : ws.activations[i - 1];
        layers_[i]->backward(in, ws.activations[i], *grad, ws.grads[i]);
        grad = &ws.grads[i];
    }
}

void Network::backward(const Tensor& grad_output, Workspace& ws,
                       std::span<Tensor> param_grads) {
    if (layers_.empty()) throw std::logic_error("Network::backward: no layers");
    std::size_t offset = param_grads.size();
    const Tensor* grad = &grad_output;
    for (std::size_t i = layers_.size(); i-- > 0;) {
        const std::size_t count = layer_param_counts_[i];
        offset -= count;
        const Tensor& in = (i == 0) ? ws.input : ws.activations[i - 1];
        layers_[i]->backward_into(in, ws.activations[i], *grad, ws.grads[i],
                                  param_grads.subspan(offset, count));
        grad = &ws.grads[i];
    }
}

Network Network::clone() const {
    Network copy;
    for (const auto& layer : layers_) copy.add(layer->clone());
    return copy;
}

std::vector<Param> Network::params() {
    std::vector<Param> all;
    for (auto& layer : layers_) {
        for (auto& p : layer->params()) all.push_back(p);
    }
    return all;
}

std::size_t Network::parameter_count() {
    std::size_t count = 0;
    for (const auto& p : params()) count += p.value->size();
    return count;
}

void Network::save(std::ostream& out) const {
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
    const std::uint64_t count = layers_.size();
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const auto& layer : layers_) {
        const std::string kind = layer->kind();
        const std::uint32_t len = static_cast<std::uint32_t>(kind.size());
        out.write(reinterpret_cast<const char*>(&len), sizeof(len));
        out.write(kind.data(), len);
        layer->save(out);
    }
    if (!out) throw std::runtime_error("Network::save: write failed");
}

void Network::save_file(const std::string& path) const {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("Network::save_file: cannot open " + path);
    save(out);
}

Network Network::load(std::istream& in) {
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::string(magic, 4) != std::string(kMagic, 4)) {
        throw std::runtime_error("Network::load: bad magic");
    }
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (version != kVersion) {
        throw std::runtime_error("Network::load: unsupported version " + std::to_string(version));
    }
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    Network net;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint32_t len = 0;
        in.read(reinterpret_cast<char*>(&len), sizeof(len));
        if (!in || len > 64) throw std::runtime_error("Network::load: bad layer tag");
        std::string kind(len, '\0');
        in.read(kind.data(), len);
        if (kind == "dense") {
            net.add(Dense::load(in));
        } else if (kind == "tanh") {
            net.add(Tanh::load(in));
        } else if (kind == "relu") {
            net.add(Relu::load(in));
        } else {
            throw std::runtime_error("Network::load: unknown layer kind '" + kind + "'");
        }
    }
    return net;
}

Network Network::load_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("Network::load_file: cannot open " + path);
    return load(in);
}

}  // namespace nn
