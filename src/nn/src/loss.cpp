#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"

namespace nn {

void SoftmaxCrossEntropy::softmax(const Tensor& logits, Tensor& probs) {
    probs.resize(logits.rows(), logits.cols());
    if (logits.cols() > 0) {
        // Vectorized max/exp/normalize per row (exp approximation bounds in
        // xpcore/simd_kernels.hpp); the scalar loop below stays bit-exact.
        if (xpcore::simd::avx512_active()) {
            xpcore::simd::softmax_rows_avx512(logits.data(), probs.data(), logits.rows(),
                                              logits.cols());
            return;
        }
        if (xpcore::simd::avx2_active()) {
            xpcore::simd::softmax_rows_avx2(logits.data(), probs.data(), logits.rows(),
                                            logits.cols());
            return;
        }
    }
    for (std::size_t r = 0; r < logits.rows(); ++r) {
        const float* in = logits.data() + r * logits.cols();
        float* out = probs.data() + r * probs.cols();
        float max_logit = in[0];
        for (std::size_t c = 1; c < logits.cols(); ++c) max_logit = std::max(max_logit, in[c]);
        float sum = 0.0f;
        for (std::size_t c = 0; c < logits.cols(); ++c) {
            out[c] = std::exp(in[c] - max_logit);
            sum += out[c];
        }
        const float inv = 1.0f / sum;
        for (std::size_t c = 0; c < logits.cols(); ++c) out[c] *= inv;
    }
}

double SoftmaxCrossEntropy::loss(const Tensor& probs, std::span<const std::int32_t> labels) {
    assert(probs.rows() == labels.size());
    double total = 0.0;
    for (std::size_t r = 0; r < probs.rows(); ++r) {
        const float p = probs(r, static_cast<std::size_t>(labels[r]));
        total += -std::log(std::max(p, 1e-12f));
    }
    return total / static_cast<double>(probs.rows());
}

void SoftmaxCrossEntropy::backward(const Tensor& probs, std::span<const std::int32_t> labels,
                                   Tensor& grad_logits) {
    backward(probs, labels, grad_logits, 1.0f / static_cast<float>(probs.rows()));
}

void SoftmaxCrossEntropy::backward(const Tensor& probs, std::span<const std::int32_t> labels,
                                   Tensor& grad_logits, float scale) {
    assert(probs.rows() == labels.size());
    grad_logits.resize(probs.rows(), probs.cols());
    for (std::size_t r = 0; r < probs.rows(); ++r) {
        const float* p = probs.data() + r * probs.cols();
        float* g = grad_logits.data() + r * probs.cols();
        for (std::size_t c = 0; c < probs.cols(); ++c) g[c] = p[c] * scale;
        g[static_cast<std::size_t>(labels[r])] -= scale;
    }
}

}  // namespace nn
