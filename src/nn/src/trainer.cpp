#include "nn/trainer.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "xpcore/rng.hpp"

namespace nn {

EpochStats Trainer::run_epoch(const Dataset& data, xpcore::Rng& rng) {
    const std::size_t n = data.size();
    if (n == 0) return {};
    const std::size_t input_size = data.inputs.cols();
    // Everything below works out of the member workspace: after the first
    // epoch sizes the buffers, further batches/epochs are allocation-free.
    ws_.order.resize(n);
    std::iota(ws_.order.begin(), ws_.order.end(), 0);
    if (config_.shuffle) rng.shuffle(ws_.order);

    EpochStats stats;
    double loss_sum = 0.0;
    std::size_t correct = 0;

    for (std::size_t begin = 0; begin < n; begin += config_.batch_size) {
        const std::size_t end = std::min(begin + config_.batch_size, n);
        const std::size_t batch_n = end - begin;
        ws_.batch.resize(batch_n, input_size);
        ws_.labels.resize(batch_n);
        for (std::size_t i = 0; i < batch_n; ++i) {
            const std::size_t src = ws_.order[begin + i];
            std::copy_n(data.inputs.data() + src * input_size, input_size,
                        ws_.batch.data() + i * input_size);
            ws_.labels[i] = data.labels[src];
        }

        const Tensor& logits = network_.forward(ws_.batch, ws_);
        SoftmaxCrossEntropy::softmax(logits, ws_.probs);
        loss_sum +=
            SoftmaxCrossEntropy::loss(ws_.probs, ws_.labels) * static_cast<double>(batch_n);
        for (std::size_t i = 0; i < batch_n; ++i) {
            const auto row = ws_.probs.row(i);
            const auto best = std::max_element(row.begin(), row.end()) - row.begin();
            if (best == ws_.labels[i]) ++correct;
        }
        SoftmaxCrossEntropy::backward(ws_.probs, ws_.labels, ws_.grad_logits);
        network_.backward(ws_.grad_logits, ws_);
        optimizer_.step();
    }
    stats.loss = loss_sum / static_cast<double>(n);
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(n);
    return stats;
}

EpochStats Trainer::fit(const Dataset& data, xpcore::Rng& rng) {
    EpochStats stats;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        stats = run_epoch(data, rng);
    }
    return stats;
}

FitReport Trainer::fit_validated(const Dataset& train, const Dataset& holdout,
                                 xpcore::Rng& rng) {
    FitReport report;
    double best_loss = std::numeric_limits<double>::infinity();
    std::size_t epochs_since_best = 0;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        report.train = run_epoch(train, rng);
        ++report.epochs_run;
        const EpochStats holdout_stats = evaluate(holdout);
        if (holdout_stats.loss < best_loss) {
            best_loss = holdout_stats.loss;
            report.validation = holdout_stats;
            epochs_since_best = 0;
        } else if (config_.early_stop_patience > 0 &&
                   ++epochs_since_best >= config_.early_stop_patience) {
            report.early_stopped = true;
            break;
        }
    }
    return report;
}

std::pair<Dataset, Dataset> split_dataset(const Dataset& data, double fraction,
                                          xpcore::Rng& rng) {
    fraction = std::clamp(fraction, 0.0, 1.0);
    const std::size_t n = data.size();
    const std::size_t input_size = data.inputs.cols();
    const auto holdout_n = static_cast<std::size_t>(static_cast<double>(n) * fraction);

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    auto take = [&](std::size_t begin, std::size_t end) {
        Dataset part;
        part.inputs.resize(end - begin, input_size);
        part.labels.resize(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            std::copy_n(data.inputs.data() + order[i] * input_size, input_size,
                        part.inputs.data() + (i - begin) * input_size);
            part.labels[i - begin] = data.labels[order[i]];
        }
        return part;
    };
    return {take(0, n - holdout_n), take(n - holdout_n, n)};
}

EpochStats Trainer::evaluate(const Dataset& data) {
    // Reuses the training workspace (never live at the same time as a batch).
    Tensor& probs = ws_.probs;
    SoftmaxCrossEntropy::softmax(network_.forward(data.inputs, ws_), probs);
    EpochStats stats;
    stats.loss = SoftmaxCrossEntropy::loss(probs, data.labels);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto row = probs.row(i);
        const auto best = std::max_element(row.begin(), row.end()) - row.begin();
        if (best == data.labels[i]) ++correct;
    }
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
    return stats;
}

Tensor Trainer::predict_proba(const Tensor& inputs) {
    Tensor probs;
    SoftmaxCrossEntropy::softmax(network_.forward(inputs, ws_), probs);
    return probs;
}

std::vector<std::size_t> top_k_indices(std::span<const float> probabilities, std::size_t k) {
    std::vector<std::size_t> order(probabilities.size());
    std::iota(order.begin(), order.end(), 0);
    k = std::min(k, order.size());
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return probabilities[a] > probabilities[b];
                      });
    order.resize(k);
    return order;
}

}  // namespace nn
