#include "nn/trainer.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>

#include "xpcore/rng.hpp"
#include "xpcore/thread_pool.hpp"

namespace nn {

EpochStats Trainer::run_epoch(const Dataset& data, xpcore::Rng& rng) {
    const std::size_t n = data.size();
    if (n == 0) return {};
    const std::size_t input_size = data.inputs.cols();
    // Everything below works out of the member workspace: after the first
    // epoch sizes the buffers, further batches/epochs are allocation-free.
    ws_.order.resize(n);
    std::iota(ws_.order.begin(), ws_.order.end(), 0);
    if (config_.shuffle) rng.shuffle(ws_.order);

    EpochStats stats;
    double loss_sum = 0.0;
    std::size_t correct = 0;

    for (std::size_t begin = 0; begin < n; begin += config_.batch_size) {
        const std::size_t end = std::min(begin + config_.batch_size, n);
        const std::size_t batch_n = end - begin;
        if (config_.grad_shards > 1) {
            run_batch_sharded(data, begin, batch_n, loss_sum, correct);
            optimizer_.step();
            continue;
        }
        ws_.batch.resize(batch_n, input_size);
        ws_.labels.resize(batch_n);
        for (std::size_t i = 0; i < batch_n; ++i) {
            const std::size_t src = ws_.order[begin + i];
            std::copy_n(data.inputs.data() + src * input_size, input_size,
                        ws_.batch.data() + i * input_size);
            ws_.labels[i] = data.labels[src];
        }

        const Tensor& logits = network_.forward(ws_.batch, ws_);
        SoftmaxCrossEntropy::softmax(logits, ws_.probs);
        loss_sum +=
            SoftmaxCrossEntropy::loss(ws_.probs, ws_.labels) * static_cast<double>(batch_n);
        for (std::size_t i = 0; i < batch_n; ++i) {
            const auto row = ws_.probs.row(i);
            const auto best = std::max_element(row.begin(), row.end()) - row.begin();
            if (best == ws_.labels[i]) ++correct;
        }
        SoftmaxCrossEntropy::backward(ws_.probs, ws_.labels, ws_.grad_logits);
        network_.backward(ws_.grad_logits, ws_);
        optimizer_.step();
    }
    stats.loss = loss_sum / static_cast<double>(n);
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(n);
    return stats;
}

void Trainer::run_batch_sharded(const Dataset& data, std::size_t begin, std::size_t batch_n,
                                double& loss_sum, std::size_t& correct) {
    const std::size_t input_size = data.inputs.cols();
    const std::size_t shard_count = config_.grad_shards;
    if (ws_.shards.size() < shard_count) ws_.shards.resize(shard_count);

    // The batch partition is a pure function of (batch_n, shard_count):
    // contiguous ranges, remainder rows on the leading shards. Shard 0 is
    // never empty while batch_n > 0.
    const std::size_t base = batch_n / shard_count;
    const std::size_t rem = batch_n % shard_count;
    const float scale = 1.0f / static_cast<float>(batch_n);

    auto process_shard = [&](std::size_t s) {
        GradShard& shard = ws_.shards[s];
        shard.loss_sum = 0.0;
        shard.correct = 0;
        const std::size_t s0 = s * base + std::min(s, rem);
        const std::size_t rows = base + (s < rem ? 1 : 0);
        if (rows == 0) return;
        if (shard.grads.size() < params_.size()) shard.grads.resize(params_.size());
        for (std::size_t p = 0; p < params_.size(); ++p) {
            shard.grads[p].resize(params_[p].grad->rows(), params_[p].grad->cols());
        }
        shard.ws.batch.resize(rows, input_size);
        shard.ws.labels.resize(rows);
        for (std::size_t i = 0; i < rows; ++i) {
            const std::size_t src = ws_.order[begin + s0 + i];
            std::copy_n(data.inputs.data() + src * input_size, input_size,
                        shard.ws.batch.data() + i * input_size);
            shard.ws.labels[i] = data.labels[src];
        }
        const Tensor& logits = network_.forward(shard.ws.batch, shard.ws);
        SoftmaxCrossEntropy::softmax(logits, shard.ws.probs);
        shard.loss_sum = SoftmaxCrossEntropy::loss(shard.ws.probs, shard.ws.labels) *
                         static_cast<double>(rows);
        for (std::size_t i = 0; i < rows; ++i) {
            const auto row = shard.ws.probs.row(i);
            const auto best = std::max_element(row.begin(), row.end()) - row.begin();
            if (best == shard.ws.labels[i]) ++shard.correct;
        }
        // Gradients scaled by the *global* batch size so the ordered sum of
        // shard sinks equals the whole-batch gradient up to FP grouping.
        SoftmaxCrossEntropy::backward(shard.ws.probs, shard.ws.labels, shard.ws.grad_logits,
                                      scale);
        network_.backward(shard.ws.grad_logits, shard.ws, shard.grads);
    };

    xpcore::ThreadPool& pool = xpcore::ThreadPool::global();
    if (pool.size() > 0 && xpcore::parallel_enabled()) {
        xpcore::parallel_for(pool, shard_count, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) process_shard(s);
        });
    } else {
        for (std::size_t s = 0; s < shard_count; ++s) process_shard(s);
    }

    // Fixed-order reduction: shard 0 *copies* into the optimizer-attached
    // accumulators (a memcpy cannot flip -0.0f the way adding to a zeroed
    // accumulator would, keeping grad_shards == 1 bitwise equal to the
    // serial path), later shards add. The order never depends on which
    // worker finished first — that is the whole determinism argument.
    for (std::size_t s = 0; s < shard_count; ++s) {
        GradShard& shard = ws_.shards[s];
        const std::size_t rows = base + (s < rem ? 1 : 0);
        if (rows == 0) continue;
        for (std::size_t p = 0; p < params_.size(); ++p) {
            Tensor& sink = shard.grads[p];
            Tensor& grad = *params_[p].grad;
            if (s == 0) {
                std::memcpy(grad.data(), sink.data(), sink.size() * sizeof(float));
            } else {
                axpy(1.0f, sink, grad);
            }
            sink.fill(0.0f);  // sinks accumulate; ready them for the next batch
        }
        loss_sum += shard.loss_sum;
        correct += shard.correct;
    }
}

EpochStats Trainer::fit(const Dataset& data, xpcore::Rng& rng) {
    EpochStats stats;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        stats = run_epoch(data, rng);
    }
    return stats;
}

FitReport Trainer::fit_validated(const Dataset& train, const Dataset& holdout,
                                 xpcore::Rng& rng) {
    FitReport report;
    double best_loss = std::numeric_limits<double>::infinity();
    std::size_t epochs_since_best = 0;
    for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
        report.train = run_epoch(train, rng);
        ++report.epochs_run;
        const EpochStats holdout_stats = evaluate(holdout);
        if (holdout_stats.loss < best_loss) {
            best_loss = holdout_stats.loss;
            report.validation = holdout_stats;
            epochs_since_best = 0;
        } else if (config_.early_stop_patience > 0 &&
                   ++epochs_since_best >= config_.early_stop_patience) {
            report.early_stopped = true;
            break;
        }
    }
    return report;
}

std::pair<Dataset, Dataset> split_dataset(const Dataset& data, double fraction,
                                          xpcore::Rng& rng) {
    fraction = std::clamp(fraction, 0.0, 1.0);
    const std::size_t n = data.size();
    const std::size_t input_size = data.inputs.cols();
    const auto holdout_n = static_cast<std::size_t>(static_cast<double>(n) * fraction);

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    auto take = [&](std::size_t begin, std::size_t end) {
        Dataset part;
        part.inputs.resize(end - begin, input_size);
        part.labels.resize(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            std::copy_n(data.inputs.data() + order[i] * input_size, input_size,
                        part.inputs.data() + (i - begin) * input_size);
            part.labels[i - begin] = data.labels[order[i]];
        }
        return part;
    };
    return {take(0, n - holdout_n), take(n - holdout_n, n)};
}

EpochStats Trainer::evaluate(const Dataset& data) {
    // Reuses the training workspace (never live at the same time as a batch).
    Tensor& probs = ws_.probs;
    SoftmaxCrossEntropy::softmax(network_.forward(data.inputs, ws_), probs);
    EpochStats stats;
    stats.loss = SoftmaxCrossEntropy::loss(probs, data.labels);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto row = probs.row(i);
        const auto best = std::max_element(row.begin(), row.end()) - row.begin();
        if (best == data.labels[i]) ++correct;
    }
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
    return stats;
}

Tensor Trainer::predict_proba(const Tensor& inputs) {
    Tensor probs;
    SoftmaxCrossEntropy::softmax(network_.forward(inputs, ws_), probs);
    return probs;
}

std::vector<std::size_t> top_k_indices(std::span<const float> probabilities, std::size_t k) {
    std::vector<std::size_t> order(probabilities.size());
    std::iota(order.begin(), order.end(), 0);
    k = std::min(k, order.size());
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return probabilities[a] > probabilities[b];
                      });
    order.resize(k);
    return order;
}

}  // namespace nn
