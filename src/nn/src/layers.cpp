#include "nn/layers.hpp"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "xpcore/rng.hpp"
#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"

namespace nn {

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in) throw std::runtime_error("nn: truncated layer data");
    return value;
}

void write_tensor(std::ostream& out, const Tensor& t) {
    write_pod<std::uint64_t>(out, t.rows());
    write_pod<std::uint64_t>(out, t.cols());
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
}

Tensor read_tensor(std::istream& in) {
    const auto rows = read_pod<std::uint64_t>(in);
    const auto cols = read_pod<std::uint64_t>(in);
    Tensor t(rows, cols);
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) throw std::runtime_error("nn: truncated tensor data");
    return t;
}

}  // namespace

Dense::Dense(std::size_t in, std::size_t out, xpcore::Rng& rng) : Dense(in, out) {
    weights_.glorot_uniform(in, out, rng);
}

Dense::Dense(std::size_t in, std::size_t out)
    : weights_(in, out), bias_(1, out), weights_grad_(in, out), bias_grad_(1, out) {}

void Dense::forward(const Tensor& in, Tensor& out) const {
    assert(in.cols() == weights_.rows());
    out.resize(in.rows(), weights_.cols());
    gemm_nn(in, weights_, out);
    for (std::size_t r = 0; r < out.rows(); ++r) {
        float* row = out.data() + r * out.cols();
        const float* b = bias_.data();
        for (std::size_t c = 0; c < out.cols(); ++c) row[c] += b[c];
    }
}

namespace {

// dW += X^T * dY, db += colsum(dY), dX = dY * W^T — shared by the in-place
// and sink-directed backward entry points.
void dense_backward_impl(const Tensor& in, const Tensor& grad_out, const Tensor& weights,
                         Tensor& grad_in, Tensor& weights_grad, Tensor& bias_grad) {
    gemm_tn(in, grad_out, weights_grad, /*accumulate=*/true);
    for (std::size_t r = 0; r < grad_out.rows(); ++r) {
        const float* row = grad_out.data() + r * grad_out.cols();
        float* b = bias_grad.data();
        for (std::size_t c = 0; c < grad_out.cols(); ++c) b[c] += row[c];
    }
    grad_in.resize(in.rows(), in.cols());
    gemm_nt(grad_out, weights, grad_in);
}

}  // namespace

void Dense::backward(const Tensor& in, const Tensor& /*out*/, const Tensor& grad_out,
                     Tensor& grad_in) {
    dense_backward_impl(in, grad_out, weights_, grad_in, weights_grad_, bias_grad_);
}

void Dense::backward_into(const Tensor& in, const Tensor& /*out*/, const Tensor& grad_out,
                          Tensor& grad_in, std::span<Tensor> param_grads) {
    assert(param_grads.size() == 2);
    dense_backward_impl(in, grad_out, weights_, grad_in, param_grads[0], param_grads[1]);
}

std::vector<Param> Dense::params() {
    return {{&weights_, &weights_grad_}, {&bias_, &bias_grad_}};
}

std::unique_ptr<Layer> Dense::clone() const {
    auto copy = std::make_unique<Dense>(weights_.rows(), weights_.cols());
    copy->weights_ = weights_;
    copy->bias_ = bias_;
    return copy;
}

void Dense::save(std::ostream& out) const {
    write_tensor(out, weights_);
    write_tensor(out, bias_);
}

std::unique_ptr<Dense> Dense::load(std::istream& in) {
    Tensor weights = read_tensor(in);
    Tensor bias = read_tensor(in);
    if (bias.rows() != 1 || bias.cols() != weights.cols()) {
        throw std::runtime_error("nn: inconsistent dense layer shapes");
    }
    auto layer = std::make_unique<Dense>(weights.rows(), weights.cols());
    layer->weights_ = std::move(weights);
    layer->bias_ = std::move(bias);
    return layer;
}

void Relu::forward(const Tensor& in, Tensor& out) const {
    out.resize(in.rows(), in.cols());
    const float* src = in.data();
    float* dst = out.data();
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void Relu::backward(const Tensor& in, const Tensor& /*out*/, const Tensor& grad_out,
                    Tensor& grad_in) {
    grad_in.resize(in.rows(), in.cols());
    const float* x = in.data();
    const float* dy = grad_out.data();
    float* dx = grad_in.data();
    for (std::size_t i = 0; i < in.size(); ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

void Relu::save(std::ostream& out) const { write_pod<std::uint64_t>(out, size_); }

std::unique_ptr<Relu> Relu::load(std::istream& in) {
    return std::make_unique<Relu>(read_pod<std::uint64_t>(in));
}

void Tanh::forward(const Tensor& in, Tensor& out) const {
    out.resize(in.rows(), in.cols());
    const float* src = in.data();
    float* dst = out.data();
    // Vectorized rational approximation (max abs error < 5e-7, see
    // xpcore/simd_kernels.hpp) — libm tanh per element is one of the
    // dominant scalar training costs at the paper's layer widths.
    if (xpcore::simd::avx512_active()) {
        xpcore::simd::tanh_f32_avx512(src, dst, in.size());
        return;
    }
    if (xpcore::simd::avx2_active()) {
        xpcore::simd::tanh_f32_avx2(src, dst, in.size());
        return;
    }
    for (std::size_t i = 0; i < in.size(); ++i) dst[i] = std::tanh(src[i]);
}

void Tanh::backward(const Tensor& in, const Tensor& out, const Tensor& grad_out,
                    Tensor& grad_in) {
    // d tanh(x)/dx = 1 - tanh(x)^2, and `out` already holds tanh(x).
    grad_in.resize(in.rows(), in.cols());
    const float* y = out.data();
    const float* dy = grad_out.data();
    float* dx = grad_in.data();
    for (std::size_t i = 0; i < out.size(); ++i) dx[i] = dy[i] * (1.0f - y[i] * y[i]);
}

void Tanh::save(std::ostream& out) const { write_pod<std::uint64_t>(out, size_); }

std::unique_ptr<Tanh> Tanh::load(std::istream& in) {
    return std::make_unique<Tanh>(read_pod<std::uint64_t>(in));
}

}  // namespace nn
