#include "nn/optimizer.hpp"

#include <cmath>

#include "xpcore/simd.hpp"
#include "xpcore/simd_kernels.hpp"

namespace nn {

void Optimizer::zero_grad() {
    for (auto& p : params_) p.grad->fill(0.0f);
}

void AdaMax::attach(std::vector<Param> params) {
    params_ = std::move(params);
    m_.clear();
    u_.clear();
    m_.reserve(params_.size());
    u_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.emplace_back(p.value->rows(), p.value->cols());
        u_.emplace_back(p.value->rows(), p.value->cols());
    }
    t_ = 0;
}

void AdaMax::step() {
    ++t_;
    const float bias_correction =
        1.0f - std::pow(config_.beta1, static_cast<float>(t_));
    const float rate = config_.learning_rate / bias_correction;
    const xpcore::simd::Level level = xpcore::simd::active_level();
    for (std::size_t p = 0; p < params_.size(); ++p) {
        float* w = params_[p].value->data();
        float* g = params_[p].grad->data();
        float* m = m_[p].data();
        float* u = u_[p].data();
        const std::size_t n = params_[p].value->size();
        if (level != xpcore::simd::Level::Scalar) {
            // Fused vector update; clears g in the same pass (step() owns
            // gradient clearing — see Optimizer's class comment).
            if (level == xpcore::simd::Level::Avx512) {
                xpcore::simd::adamax_update_avx512(w, g, m, u, n, rate, config_.beta1,
                                                   config_.beta2, config_.epsilon);
            } else {
                xpcore::simd::adamax_update_avx2(w, g, m, u, n, rate, config_.beta1,
                                                 config_.beta2, config_.epsilon);
            }
            continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
            m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
            u[i] = std::max(config_.beta2 * u[i], std::abs(g[i]));
            w[i] -= rate * m[i] / (u[i] + config_.epsilon);
            g[i] = 0.0f;
        }
    }
}

void Sgd::attach(std::vector<Param> params) { params_ = std::move(params); }

void Sgd::step() {
    for (auto& p : params_) {
        float* w = p.value->data();
        float* g = p.grad->data();
        for (std::size_t i = 0; i < p.value->size(); ++i) {
            w[i] -= learning_rate_ * g[i];
            g[i] = 0.0f;
        }
    }
}

}  // namespace nn
