#pragma once

/// \file model.hpp
/// Pluggable noise-family models and the family registry.
///
/// The paper assumes multiplicative *uniform* noise (Sec. IV-B), but real
/// measurements on shared clusters exhibit Gaussian, lognormal, and
/// multimodal interference — Copik et al. show polluted measurements are
/// segment mixtures. Each family is a \ref NoiseModel registered by string
/// key (mirroring the modeling::Modeler registry): it can sample noisy
/// measurements for the simulators and training-data generator, estimate
/// its own noise level from an experiment set (the generic rrd debiasing
/// is family-conditional: the Monte-Carlo inversion simulates *this*
/// family's deviations), and contribute shape statistics that let
/// \ref detect_family pick the best-fitting family from the pooled
/// relative deviations of real data.
///
/// All families are parameterized by one `level` n scaled so that the
/// multiplicative factor has variance n^2/12 — the variance of the paper's
/// uniform U(-n/2, +n/2) — making levels comparable across families: a
/// lognormal level of 0.10 perturbs measurements as strongly as the paper's
/// 10% uniform noise.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "measure/experiment.hpp"
#include "xpcore/rng.hpp"

namespace noise {

/// One noise family: a multiplicative perturbation model for synthetic
/// measurements plus family-conditional level estimation.
///
/// Implementations are stateless (all state lives in the caller's Rng), so
/// one registered instance serves every consumer concurrently.
class NoiseModel {
public:
    virtual ~NoiseModel() = default;

    /// Registry key ("uniform", "gaussian", "lognormal", "mixture").
    virtual const std::string& family() const = 0;

    /// One noisy sample of `true_value` at noise level `level` (a fraction;
    /// 0.10 means the factor's standard deviation matches 10% uniform
    /// noise). Always draws from `rng`, even at level 0, so consumers that
    /// mix families keep aligned streams; the level-0 fast path lives in
    /// noise::Injector.
    virtual double sample(double true_value, double level, xpcore::Rng& rng) const = 0;

    /// `count` noisy samples of the true value.
    std::vector<double> repetitions(double true_value, double level, std::size_t count,
                                    xpcore::Rng& rng) const;

    /// Family-conditional noise-level estimate for a whole experiment set.
    ///
    /// Generalizes the paper's rrd debiasing: the raw pooled
    /// range-of-relative-deviation is inverted against E[raw rrd | level]
    /// computed by a deterministic Monte-Carlo run *of this family* over the
    /// set's repetition profile (seed 0x5EEDCA11, 48 trials, three
    /// fixed-point iterations). For the uniform family this reproduces
    /// noise::estimate_noise bit-for-bit.
    double estimate_level(const measure::ExperimentSet& set) const;
};

/// Register a family under `model->family()`, replacing any previous
/// registration of the same key. The built-in families (uniform, gaussian,
/// lognormal, mixture) are registered on first registry use.
void register_noise_model(std::unique_ptr<const NoiseModel> model);

/// True iff `family` is a registered key.
bool is_registered_family(std::string_view family);

/// All registered family names, sorted.
std::vector<std::string> registered_families();

/// Look up a registered family. Throws xpcore::ValidationError (source
/// "<noise>") for unknown keys, so CLI-reachable bad specs exit 2 with a
/// diagnostic naming the valid families.
const NoiseModel& noise_model(std::string_view family);

/// Parse a comma-separated family list ("uniform,lognormal"). Order is
/// preserved (it joins pretrain-cache fingerprints). Throws
/// xpcore::ValidationError naming `source` for any unregistered family —
/// including the empty names produced by "", "a,", or ",b".
std::vector<std::string> parse_family_list(std::string_view spec,
                                           const std::string& source = "<noise>");

/// A parsed `family:level` noise specification.
struct NoiseSpec {
    std::string family = "uniform";
    double level = 0.10;
};

/// Parse a CLI noise spec: either a bare level ("0.25", uniform family) or
/// `family:level` ("lognormal:0.10"). Throws xpcore::ParseError for
/// undecodable levels and xpcore::ValidationError for unknown families,
/// negative or non-finite levels — both carrying `source` in the
/// diagnostic.
NoiseSpec parse_noise_spec(std::string_view text, const std::string& source = "<noise>");

/// Result of the noise-family arbiter.
struct FamilyDetection {
    std::string family = "uniform";  ///< best-fitting family
    double level = 0.0;              ///< that family's level estimate
    double score = 0.0;              ///< winner's misfit (lower is better)
    /// Per-family misfit scores, sorted by family name.
    std::vector<std::pair<std::string, double>> scores;
};

/// Pick the best-fitting registered family for an experiment set.
///
/// A vector of shape statistics of the pooled relative deviations —
/// moment skewness and excess kurtosis, log-domain skewness, robust
/// quantile asymmetries, and a standardized quantile profile — is scored
/// against each family's Monte-Carlo reference distribution (Gaussian
/// negative log-likelihood with the full reference covariance) at a
/// variance-matched level over the set's repetition profile; the family
/// with the smallest score wins, and its public level estimate is
/// reported. Deterministic: all Monte-Carlo streams are fixed-seeded (the
/// references share common random numbers so their sampling error cancels
/// in score differences), and the input set is not touched beyond const
/// reads, so running detection perturbs no caller RNG state. Sets with
/// fewer than 10 pooled deviations fall back to "uniform" with score 0.
FamilyDetection detect_family(const measure::ExperimentSet& set);

}  // namespace noise
