#pragma once

/// \file estimator.hpp
/// Heuristic noise estimation (Sec. IV-B of the paper).
///
/// Performance variability is modeled as multiplicative uniform noise of
/// width n around the true value: v = f(P) * (1 + U(-n/2, +n/2)); a noise
/// level of n = 10% therefore means +-5% divergence. With at most five
/// repetitions per point the true distribution cannot be identified, so the
/// paper follows the principle of indifference and assumes uniformity.
///
/// The *range of relative deviation* (rrd) heuristic pools the relative
/// deviations rd(v_Ps) = (v_Ps - mean_P) / mean_P of all repetitions across
/// all measurement points and estimates the noise level as
/// rrd = max(D_V) - min(D_V). Pooling counteracts the off-center shift of
/// any single point's deviations (the sample mean rarely equals the true
/// value), so the combined range approaches the full noise width.

#include <span>
#include <vector>

#include "measure/experiment.hpp"

namespace noise {

/// Relative deviations of one repetition group from its mean. Returns an
/// empty vector for fewer than two repetitions or a near-zero mean: means
/// below 1e-9 of the largest magnitude in the group would turn the division
/// into huge spurious deviations that poison the pooled rrd, so such groups
/// are dropped entirely.
std::vector<double> relative_deviations(std::span<const double> values);

/// Relative deviations of one measurement's repetitions.
std::vector<double> relative_deviations(const measure::Measurement& m);

/// All relative deviations of an experiment set, pooled (the set D_V).
std::vector<double> pooled_relative_deviations(const measure::ExperimentSet& set);

/// Range of a deviation set: max - min. Zero for fewer than two entries.
double range_of_relative_deviation(std::span<const double> deviations);

/// Uncalibrated rrd estimate: the pooled range itself. Biased — it
/// over-estimates for many pooled samples (extreme order statistics) and
/// under-estimates for few repetitions (sample-mean shrinkage).
double estimate_noise_raw(const measure::ExperimentSet& set);

/// The paper's global noise-level estimate for a whole experiment set, as a
/// fraction (0.10 == 10% noise == +-5% divergence).
///
/// The raw rrd statistic is debiased by simulation: under the uniform-noise
/// model the relative deviations are independent of the measured function,
/// so the expected raw rrd for a candidate level and this experiment's
/// repetition profile can be computed by a short deterministic Monte-Carlo
/// run, and a few fixed-point iterations invert the mapping. This keeps the
/// average estimation error at the ~5% the paper reports (Sec. IV-B)
/// across repetition counts and experiment sizes.
double estimate_noise(const measure::ExperimentSet& set);

/// Per-measurement-point noise estimates (used for the noise-distribution
/// analysis of Fig. 5 and for picking the domain-adaptation noise range).
/// With `rep` repetitions the expected range of uniform samples is only
/// (rep-1)/(rep+1) of the true width; `bias_correct` rescales accordingly.
std::vector<double> per_point_noise(const measure::ExperimentSet& set, bool bias_correct = true);

/// Summary statistics over per-point noise levels, all as fractions.
struct NoiseStats {
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double median = 0.0;
};

/// Fig. 5 style distribution summary of an experiment set's noise.
NoiseStats analyze_noise(const measure::ExperimentSet& set, bool bias_correct = true);

}  // namespace noise
