#pragma once

/// \file injector.hpp
/// Synthetic noise injection matching the paper's noise semantics.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "noise/model.hpp"
#include "xpcore/rng.hpp"

namespace noise {

/// Applies multiplicative noise of level `n` (fraction of the true value;
/// n = 0.10 means +-5% for the default uniform family) to synthetic
/// measurements. The distribution is any registered \ref NoiseModel; the
/// default is the paper's uniform family.
class Injector {
public:
    /// Uniform-family injector (the paper's model). `level` must be >= 0;
    /// a negative level throws xpcore::ValidationError.
    Injector(double level, xpcore::Rng& rng);

    /// Injector for a specific family instance.
    Injector(const NoiseModel& model, double level, xpcore::Rng& rng);

    /// Injector for a registered family by name. Throws
    /// xpcore::ValidationError for unknown families or a negative level.
    Injector(std::string_view family, double level, xpcore::Rng& rng);

    double level() const { return level_; }

    /// Name of the injected noise family.
    const std::string& family() const { return model_->family(); }

    /// One noisy sample of the true value. Level 0 returns the true value
    /// without consuming a random draw, for every family.
    double sample(double true_value);

    /// `repetitions` noisy samples of the true value.
    std::vector<double> repetitions(double true_value, std::size_t repetitions);

private:
    const NoiseModel* model_;
    double level_;
    xpcore::Rng& rng_;
};

}  // namespace noise
