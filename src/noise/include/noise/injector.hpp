#pragma once

/// \file injector.hpp
/// Synthetic noise injection matching the paper's noise semantics.

#include <cstddef>
#include <vector>

#include "xpcore/rng.hpp"

namespace noise {

/// Applies multiplicative uniform noise of level `n` (fraction of the true
/// value; n = 0.10 means +-5%) to synthetic measurements.
class Injector {
public:
    /// `level` must be >= 0.
    Injector(double level, xpcore::Rng& rng);

    double level() const { return level_; }

    /// One noisy sample of the true value.
    double sample(double true_value);

    /// `repetitions` noisy samples of the true value.
    std::vector<double> repetitions(double true_value, std::size_t repetitions);

private:
    double level_;
    xpcore::Rng& rng_;
};

}  // namespace noise
