#include "noise/estimator.hpp"

#include <algorithm>
#include <vector>

#include "xpcore/rng.hpp"
#include "xpcore/stats.hpp"

namespace noise {

std::vector<double> relative_deviations(const measure::Measurement& m) {
    if (m.values.size() < 2) return {};
    const double mean = m.mean();
    if (mean == 0.0) return {};
    std::vector<double> rd;
    rd.reserve(m.values.size());
    for (double v : m.values) rd.push_back((v - mean) / mean);
    return rd;
}

std::vector<double> pooled_relative_deviations(const measure::ExperimentSet& set) {
    std::vector<double> pooled;
    for (const auto& m : set.measurements()) {
        const auto rd = relative_deviations(m);
        pooled.insert(pooled.end(), rd.begin(), rd.end());
    }
    return pooled;
}

double range_of_relative_deviation(std::span<const double> deviations) {
    if (deviations.size() < 2) return 0.0;
    const auto [lo, hi] = std::minmax_element(deviations.begin(), deviations.end());
    return *hi - *lo;
}

double estimate_noise_raw(const measure::ExperimentSet& set) {
    return range_of_relative_deviation(pooled_relative_deviations(set));
}

namespace {

/// Expected raw rrd for a given noise level and repetition profile, by
/// Monte-Carlo over the same protocol (deterministic seed). Relative
/// deviations do not depend on the measured values under multiplicative
/// noise, so simulating with unit true values is exact.
double expected_raw_rrd(const std::vector<std::size_t>& repetition_profile, double level,
                        std::size_t trials) {
    xpcore::Rng rng(0x5EEDCA11);
    double sum = 0.0;
    std::vector<double> values;
    for (std::size_t t = 0; t < trials; ++t) {
        double lo = 0.0, hi = 0.0;
        bool first = true;
        for (std::size_t reps : repetition_profile) {
            values.clear();
            double mean_v = 0.0;
            for (std::size_t s = 0; s < reps; ++s) {
                values.push_back(1.0 + rng.uniform(-level / 2.0, level / 2.0));
                mean_v += values.back();
            }
            mean_v /= static_cast<double>(reps);
            for (double v : values) {
                const double rd = (v - mean_v) / mean_v;
                if (first) {
                    lo = hi = rd;
                    first = false;
                } else {
                    lo = std::min(lo, rd);
                    hi = std::max(hi, rd);
                }
            }
        }
        sum += hi - lo;
    }
    return sum / static_cast<double>(trials);
}

}  // namespace

double estimate_noise(const measure::ExperimentSet& set) {
    const double raw = estimate_noise_raw(set);
    if (raw <= 0.0) return 0.0;

    std::vector<std::size_t> repetition_profile;
    for (const auto& m : set.measurements()) {
        if (m.values.size() >= 2) repetition_profile.push_back(m.values.size());
    }
    if (repetition_profile.empty()) return 0.0;

    // Invert level -> E[raw rrd | level] by fixed-point iteration. The
    // mapping is close to linear, so three iterations converge well below
    // the Monte-Carlo noise floor.
    double level = raw;
    for (int iteration = 0; iteration < 3; ++iteration) {
        const double expected = expected_raw_rrd(repetition_profile, level, 48);
        if (expected <= 0.0) break;
        level = raw * (level / expected);
    }
    return level;
}

std::vector<double> per_point_noise(const measure::ExperimentSet& set, bool bias_correct) {
    std::vector<double> levels;
    levels.reserve(set.size());
    for (const auto& m : set.measurements()) {
        const auto rd = relative_deviations(m);
        if (rd.size() < 2) continue;
        double level = range_of_relative_deviation(rd);
        if (bias_correct) {
            // E[range of k uniform samples] = (k-1)/(k+1) * width
            const double k = static_cast<double>(rd.size());
            level *= (k + 1.0) / (k - 1.0);
        }
        levels.push_back(level);
    }
    return levels;
}

NoiseStats analyze_noise(const measure::ExperimentSet& set, bool bias_correct) {
    const auto levels = per_point_noise(set, bias_correct);
    NoiseStats stats;
    if (levels.empty()) return stats;
    stats.min = xpcore::min_value(levels);
    stats.max = xpcore::max_value(levels);
    stats.mean = xpcore::mean(levels);
    stats.median = xpcore::median(levels);
    return stats;
}

}  // namespace noise
