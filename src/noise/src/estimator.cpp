#include "noise/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "noise/model.hpp"
#include "xpcore/stats.hpp"

namespace noise {

std::vector<double> relative_deviations(std::span<const double> values) {
    if (values.size() < 2) return {};
    double mean = 0.0, max_abs = 0.0;
    for (double v : values) {
        mean += v;
        max_abs = std::max(max_abs, std::abs(v));
    }
    mean /= static_cast<double>(values.size());
    // Relative-epsilon cutoff: a mean this far below the group's magnitude
    // only arises from cancellation (mixed-sign or all-zero groups), where
    // "relative to the mean" is meaningless and the quotients explode.
    if (std::abs(mean) <= 1e-9 * max_abs) return {};
    std::vector<double> rd;
    rd.reserve(values.size());
    for (double v : values) rd.push_back((v - mean) / mean);
    return rd;
}

std::vector<double> relative_deviations(const measure::Measurement& m) {
    return relative_deviations(std::span<const double>(m.values));
}

std::vector<double> pooled_relative_deviations(const measure::ExperimentSet& set) {
    std::vector<double> pooled;
    for (const auto& m : set.measurements()) {
        const auto rd = relative_deviations(m);
        pooled.insert(pooled.end(), rd.begin(), rd.end());
    }
    return pooled;
}

double range_of_relative_deviation(std::span<const double> deviations) {
    if (deviations.size() < 2) return 0.0;
    const auto [lo, hi] = std::minmax_element(deviations.begin(), deviations.end());
    return *hi - *lo;
}

double estimate_noise_raw(const measure::ExperimentSet& set) {
    return range_of_relative_deviation(pooled_relative_deviations(set));
}

double estimate_noise(const measure::ExperimentSet& set) {
    // The paper's estimator is the uniform family's: the Monte-Carlo
    // debiasing now lives in NoiseModel::estimate_level, whose uniform
    // sampling path is bit-identical to the pre-registry loop (pinned by
    // the parity suite).
    return noise_model("uniform").estimate_level(set);
}

std::vector<double> per_point_noise(const measure::ExperimentSet& set, bool bias_correct) {
    std::vector<double> levels;
    levels.reserve(set.size());
    for (const auto& m : set.measurements()) {
        const auto rd = relative_deviations(m);
        if (rd.size() < 2) continue;
        double level = range_of_relative_deviation(rd);
        if (bias_correct) {
            // E[range of k uniform samples] = (k-1)/(k+1) * width
            const double k = static_cast<double>(rd.size());
            level *= (k + 1.0) / (k - 1.0);
        }
        levels.push_back(level);
    }
    return levels;
}

NoiseStats analyze_noise(const measure::ExperimentSet& set, bool bias_correct) {
    const auto levels = per_point_noise(set, bias_correct);
    NoiseStats stats;
    if (levels.empty()) return stats;
    stats.min = xpcore::min_value(levels);
    stats.max = xpcore::max_value(levels);
    stats.mean = xpcore::mean(levels);
    stats.median = xpcore::median(levels);
    return stats;
}

}  // namespace noise
