#include "noise/model.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <span>
#include <string>

#include "noise/estimator.hpp"
#include "xpcore/error.hpp"
#include "xpcore/hash.hpp"
#include "xpcore/parse.hpp"
#include "xpcore/stats.hpp"

namespace noise {

std::vector<double> NoiseModel::repetitions(double true_value, double level, std::size_t count,
                                            xpcore::Rng& rng) const {
    std::vector<double> out(count);
    for (auto& v : out) v = sample(true_value, level, rng);
    return out;
}

namespace {

// All families share the variance normalization var(factor) = level^2 / 12,
// the variance of the paper's U(-level/2, +level/2) factor, so one `level`
// means the same perturbation strength everywhere. 1/sqrt(12):
constexpr double kInvSqrt12 = 0.28867513459481288;

/// The paper's model: factor 1 + U(-n/2, +n/2). The expression must stay
/// exactly `true_value * (1.0 + u)` — the parity suite pins estimate_noise
/// and the 17-kernel selections to this sampling path bit-for-bit.
class UniformModel final : public NoiseModel {
public:
    const std::string& family() const override {
        static const std::string name = "uniform";
        return name;
    }
    double sample(double true_value, double level, xpcore::Rng& rng) const override {
        return true_value * (1.0 + rng.uniform(-level / 2.0, level / 2.0));
    }
};

/// Gaussian interference: factor 1 + N(0, n/sqrt(12)). A standard normal is
/// drawn and scaled so level 0 stays a valid distribution parameterization.
class GaussianModel final : public NoiseModel {
public:
    const std::string& family() const override {
        static const std::string name = "gaussian";
        return name;
    }
    double sample(double true_value, double level, xpcore::Rng& rng) const override {
        return true_value * (1.0 + rng.normal(0.0, 1.0) * (level * kInvSqrt12));
    }
};

/// Lognormal interference (heavy right tail, typical for contention): factor
/// exp(N(mu, sigma)) with sigma^2 = ln(1 + n^2/12) and mu = -sigma^2/2, so
/// the factor has unit mean and variance n^2/12.
class LognormalModel final : public NoiseModel {
public:
    const std::string& family() const override {
        static const std::string name = "lognormal";
        return name;
    }
    double sample(double true_value, double level, xpcore::Rng& rng) const override {
        const double sigma2 = std::log1p(level * level / 12.0);
        const double sigma = std::sqrt(sigma2);
        return true_value * std::exp(rng.normal(0.0, 1.0) * sigma - sigma2 / 2.0);
    }
};

/// Two-segment multimodal pollution (Copik et al., "Extracting Clean
/// Performance Models from Tainted Programs"): 75% of measurements carry the
/// paper's uniform noise, 25% are tainted — shifted up by a full noise
/// width, the second mode of a bimodal factor distribution.
class MixtureModel final : public NoiseModel {
public:
    const std::string& family() const override {
        static const std::string name = "mixture";
        return name;
    }
    double sample(double true_value, double level, xpcore::Rng& rng) const override {
        const double u = rng.uniform(-level / 2.0, level / 2.0);
        const bool tainted = rng.chance(0.25);
        return true_value * (1.0 + (tainted ? level + u : u));
    }
};

using Registry = std::map<std::string, std::unique_ptr<const NoiseModel>, std::less<>>;

Registry& registry() {
    static Registry instance = [] {
        Registry r;
        const auto add = [&r](std::unique_ptr<const NoiseModel> model) {
            std::string key = model->family();
            r[std::move(key)] = std::move(model);
        };
        add(std::make_unique<UniformModel>());
        add(std::make_unique<GaussianModel>());
        add(std::make_unique<LognormalModel>());
        add(std::make_unique<MixtureModel>());
        return r;
    }();
    return instance;
}

std::string known_families_hint() {
    std::string hint;
    for (const auto& [name, model] : registry()) {
        if (!hint.empty()) hint += ", ";
        hint += name;
    }
    return hint;
}

}  // namespace

void register_noise_model(std::unique_ptr<const NoiseModel> model) {
    std::string key = model->family();
    registry()[std::move(key)] = std::move(model);
}

bool is_registered_family(std::string_view family) {
    return registry().find(family) != registry().end();
}

std::vector<std::string> registered_families() {
    std::vector<std::string> names;
    for (const auto& [name, model] : registry()) names.push_back(name);
    return names;  // std::map iterates sorted
}

const NoiseModel& noise_model(std::string_view family) {
    const auto it = registry().find(family);
    if (it == registry().end()) {
        throw xpcore::ValidationError({"<noise>", 0, 0,
                                       "unknown noise family '" + std::string(family) +
                                           "' (known: " + known_families_hint() + ")"});
    }
    return *it->second;
}

std::vector<std::string> parse_family_list(std::string_view spec, const std::string& source) {
    std::vector<std::string> families;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        const std::size_t end = std::min(spec.find(',', begin), spec.size());
        std::string family(spec.substr(begin, end - begin));
        if (!is_registered_family(family)) {
            throw xpcore::ValidationError({source, 0, begin,
                                           "unknown noise family '" + family +
                                               "' (known: " + known_families_hint() + ")"});
        }
        families.push_back(std::move(family));
        begin = end + 1;
    }
    return families;
}

// ---- family:level spec parsing ---------------------------------------------

namespace {

/// Level token parsing with the repo's error taxonomy: undecodable text is
/// a ParseError, a decodable but non-finite / out-of-range / negative value
/// a ValidationError. Locale-independent via std::from_chars (one leading
/// '+' accepted, as in xpcore::parse_double).
double parse_level(std::string_view text, const std::string& source, std::size_t column) {
    std::string_view t = text;
    if (!t.empty() && t.front() == '+') t.remove_prefix(1);
    double value = 0.0;
    const char* last = t.data() + t.size();
    const auto [ptr, ec] = std::from_chars(t.data(), last, value);
    if (t.empty() || ptr != last || (ec != std::errc() && ec != std::errc::result_out_of_range)) {
        throw xpcore::ParseError(
            {source, 0, column, "malformed noise level '" + std::string(text) + "'"});
    }
    if (ec == std::errc::result_out_of_range || !std::isfinite(value)) {
        throw xpcore::ValidationError(
            {source, 0, column, "noise level '" + std::string(text) + "' is not a finite number"});
    }
    if (value < 0.0) {
        throw xpcore::ValidationError({source, 0, column, "negative noise level"});
    }
    return value;
}

}  // namespace

NoiseSpec parse_noise_spec(std::string_view text, const std::string& source) {
    NoiseSpec spec;
    const auto colon = text.find(':');
    if (colon == std::string_view::npos) {
        // Bare level ("0.25") keeps the historical uniform semantics; a bare
        // family name ("lognormal") takes the default level.
        double value = 0.0;
        if (xpcore::parse_double(text, value)) {
            spec.level = parse_level(text, source, 1);  // re-parse for range checks
            return spec;
        }
        spec.family = std::string(noise_model(text).family());
        return spec;
    }
    const std::string_view family = text.substr(0, colon);
    const auto it = registry().find(family);
    if (it == registry().end()) {
        throw xpcore::ValidationError({source, 0, 1,
                                       "unknown noise family '" + std::string(family) +
                                           "' (known: " + known_families_hint() + ")"});
    }
    spec.family = it->first;
    spec.level = parse_level(text.substr(colon + 1), source, colon + 2);
    return spec;
}

// ---- family-conditional level estimation -----------------------------------

namespace {

/// Expected raw rrd for a family, level, and repetition profile, by
/// Monte-Carlo over the same protocol (deterministic seed). Relative
/// deviations do not depend on the measured values under multiplicative
/// noise, so simulating with unit true values is exact. For the uniform
/// family this loop is bit-identical to the pre-registry estimator.
double expected_raw_rrd(const NoiseModel& model, const std::vector<std::size_t>& repetition_profile,
                        double level, std::size_t trials) {
    xpcore::Rng rng(0x5EEDCA11);
    double sum = 0.0;
    std::vector<double> values;
    for (std::size_t t = 0; t < trials; ++t) {
        double lo = 0.0, hi = 0.0;
        bool first = true;
        for (std::size_t reps : repetition_profile) {
            values.clear();
            double mean_v = 0.0;
            for (std::size_t s = 0; s < reps; ++s) {
                values.push_back(model.sample(1.0, level, rng));
                mean_v += values.back();
            }
            mean_v /= static_cast<double>(reps);
            for (double v : values) {
                const double rd = (v - mean_v) / mean_v;
                if (first) {
                    lo = hi = rd;
                    first = false;
                } else {
                    lo = std::min(lo, rd);
                    hi = std::max(hi, rd);
                }
            }
        }
        sum += hi - lo;
    }
    return sum / static_cast<double>(trials);
}

std::vector<std::size_t> repetition_profile_of(const measure::ExperimentSet& set) {
    std::vector<std::size_t> profile;
    for (const auto& m : set.measurements()) {
        if (m.values.size() >= 2) profile.push_back(m.values.size());
    }
    return profile;
}

}  // namespace

double NoiseModel::estimate_level(const measure::ExperimentSet& set) const {
    const double raw = estimate_noise_raw(set);
    if (raw <= 0.0) return 0.0;

    const auto repetition_profile = repetition_profile_of(set);
    if (repetition_profile.empty()) return 0.0;

    // Invert level -> E[raw rrd | level] by fixed-point iteration. The
    // mapping is close to linear for every family, so three iterations
    // converge well below the Monte-Carlo noise floor.
    double level = raw;
    for (int iteration = 0; iteration < 3; ++iteration) {
        const double expected = expected_raw_rrd(*this, repetition_profile, level, 48);
        if (expected <= 0.0) break;
        level = raw * (level / expected);
    }
    return level;
}

// ---- family detection ------------------------------------------------------

namespace {

/// The shape statistics the arbiter compares: skewness and excess
/// kurtosis of the pooled relative deviations, plus the skewness of the
/// pooled per-point *log* deviations. The log-domain skew separates
/// gaussian (left-skewed logs) from lognormal (symmetric logs) factors,
/// which are indistinguishable by linear skew at low levels.
struct ShapeStats {
    double skew = 0.0;
    double kurtosis = 0.0;
    double log_skew = 0.0;
    /// Quantile asymmetries (q_hi + q_lo - 2 median) / (q_hi - q_lo) of the
    /// pooled linear and log deviations: self-normalizing and nearly immune
    /// to the tail noise that inflates the variance of moment skewness for
    /// heavy-tailed families.
    double decile_asymmetry = 0.0;
    double quartile_asymmetry = 0.0;
    double log_decile_asymmetry = 0.0;
    /// Standardized quantile profile of the pooled deviations: the
    /// quantiles at kQuantilePoints, each divided by the pooled standard
    /// deviation. Scale-free (the level cancels), so it captures the full
    /// CDF *shape* — far more statistical power against near-symmetric
    /// alternatives (gaussian vs lognormal at low levels) than the
    /// bulk-dominated third moment alone.
    std::vector<double> std_quantiles;
};

double quantile_asymmetry(std::span<const double> xs, double upper) {
    if (xs.size() < 8) return 0.0;
    const double hi = xpcore::quantile(xs, upper);
    const double lo = xpcore::quantile(xs, 1.0 - upper);
    const double mid = xpcore::median(xs);
    const double spread = hi - lo;
    if (spread <= 0.0) return 0.0;
    return (hi + lo - 2.0 * mid) / spread;
}

constexpr double kQuantilePoints[] = {0.05, 0.15, 0.25, 0.35, 0.45,
                                      0.55, 0.65, 0.75, 0.85, 0.95};

std::vector<double> standardized_quantiles(std::span<const double> xs) {
    std::vector<double> out(std::size(kQuantilePoints), 0.0);
    if (xs.size() < 8) return out;
    const double spread = xpcore::stddev(xs);
    if (spread <= 0.0) return out;
    for (std::size_t q = 0; q < out.size(); ++q) {
        out[q] = xpcore::quantile(xs, kQuantilePoints[q]) / spread;
    }
    return out;
}

double skewness_of(const std::vector<double>& xs) {
    const std::size_t n = xs.size();
    if (n < 3) return 0.0;
    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(n);
    double m2 = 0.0, m3 = 0.0;
    for (double x : xs) {
        const double d = x - mean;
        m2 += d * d;
        m3 += d * d * d;
    }
    m2 /= static_cast<double>(n);
    m3 /= static_cast<double>(n);
    if (m2 <= 1e-24) return 0.0;
    return m3 / std::pow(m2, 1.5);
}

double excess_kurtosis_of(const std::vector<double>& xs) {
    const std::size_t n = xs.size();
    if (n < 4) return 0.0;
    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(n);
    double m2 = 0.0, m4 = 0.0;
    for (double x : xs) {
        const double d = x - mean;
        m2 += d * d;
        m4 += d * d * d * d;
    }
    m2 /= static_cast<double>(n);
    m4 /= static_cast<double>(n);
    if (m2 <= 1e-24) return 0.0;
    return m4 / (m2 * m2) - 3.0;
}

/// Shape statistics of a list of repetition groups. Linear deviations use
/// the same demeaning (and near-zero-mean guard) as relative_deviations;
/// log deviations demean ln(v) per group and skip groups with non-positive
/// values, so truth magnitudes cancel in both domains.
ShapeStats shape_of(const std::vector<std::vector<double>>& groups,
                    std::size_t* pooled_count = nullptr) {
    std::vector<double> linear, logs;
    for (const auto& values : groups) {
        const auto rd = relative_deviations(values);
        linear.insert(linear.end(), rd.begin(), rd.end());
        if (values.size() < 2) continue;
        if (std::any_of(values.begin(), values.end(), [](double v) { return v <= 0.0; })) continue;
        double log_mean = 0.0;
        for (double v : values) log_mean += std::log(v);
        log_mean /= static_cast<double>(values.size());
        for (double v : values) logs.push_back(std::log(v) - log_mean);
    }
    if (pooled_count) *pooled_count = linear.size();
    ShapeStats stats;
    stats.skew = skewness_of(linear);
    stats.kurtosis = excess_kurtosis_of(linear);
    stats.log_skew = skewness_of(logs);
    stats.decile_asymmetry = quantile_asymmetry(linear, 0.90);
    stats.quartile_asymmetry = quantile_asymmetry(linear, 0.75);
    stats.log_decile_asymmetry = quantile_asymmetry(logs, 0.90);
    stats.std_quantiles = standardized_quantiles(linear);
    return stats;
}

/// Expected pooled-deviation standard deviation for a family, level, and
/// repetition profile (deterministic Monte-Carlo, like expected_raw_rrd).
double expected_pooled_spread(const NoiseModel& model,
                              const std::vector<std::size_t>& profile, double level,
                              std::size_t trials) {
    xpcore::Rng rng(0x5EEDCA11);
    double sum = 0.0;
    std::vector<double> pooled;
    for (std::size_t t = 0; t < trials; ++t) {
        pooled.clear();
        for (std::size_t reps : profile) {
            const auto rd = relative_deviations(model.repetitions(1.0, level, reps, rng));
            pooled.insert(pooled.end(), rd.begin(), rd.end());
        }
        sum += xpcore::stddev(pooled);
    }
    return sum / static_cast<double>(trials);
}

/// Family-conditional level fit for *reference calibration*: matches the
/// standard deviation of the pooled deviations instead of their range. The
/// public estimate_level keeps the paper's range-based rrd (and its uniform
/// byte-parity), but the range statistic is extreme-value noise for
/// heavy-tailed families — references simulated at a variance-matched level
/// track the observed set far more tightly.
double reference_level(const NoiseModel& model, const std::vector<std::size_t>& profile,
                       double observed_spread) {
    if (observed_spread <= 0.0) return 0.0;
    double level = observed_spread * 3.4641016151377544;  // sqrt(12): exact for uniform
    for (int iteration = 0; iteration < 3; ++iteration) {
        const double expected = expected_pooled_spread(model, profile, level, 48);
        if (expected <= 0.0) break;
        level *= observed_spread / expected;
    }
    return level;
}

/// Flatten the statistics into one vector for multivariate scoring.
std::vector<double> statistics_vector(const ShapeStats& stats) {
    std::vector<double> v = {stats.skew,
                             stats.kurtosis,
                             stats.log_skew,
                             stats.decile_asymmetry,
                             stats.quartile_asymmetry,
                             stats.log_decile_asymmetry};
    v.insert(v.end(), stats.std_quantiles.begin(), stats.std_quantiles.end());
    return v;
}

/// Gaussian negative log-likelihood (x2, up to a shared constant) of the
/// observed statistic vector against the reference trials: Mahalanobis
/// distance plus log-determinant. The full covariance matters twice over —
/// the statistics are strongly correlated, so a diagonal score would count
/// shared sampling noise once per statistic and drown the discriminating
/// directions; and the log-det normalization keeps a loose-spread family
/// from "accepting" everything. The covariance is ridge-regularized
/// (trials are finite) and solved by an in-place Cholesky factorization.
double reference_nll(const std::vector<std::vector<double>>& trials,
                     const std::vector<double>& observed) {
    const std::size_t n = trials.size();
    const std::size_t d = observed.size();
    std::vector<double> mean(d, 0.0);
    for (const auto& t : trials) {
        for (std::size_t i = 0; i < d; ++i) mean[i] += t[i];
    }
    for (double& m : mean) m /= static_cast<double>(n);

    std::vector<double> cov(d * d, 0.0);
    for (const auto& t : trials) {
        for (std::size_t i = 0; i < d; ++i) {
            const double di = t[i] - mean[i];
            for (std::size_t j = 0; j <= i; ++j) cov[i * d + j] += di * (t[j] - mean[j]);
        }
    }
    for (double& c : cov) c /= static_cast<double>(n - 1);

    // Ridge: a fraction of the average variance plus an absolute floor, so
    // near-degenerate directions (quantile statistics of tiny sets) cannot
    // blow up the inverse.
    double trace = 0.0;
    for (std::size_t i = 0; i < d; ++i) trace += cov[i * d + i];
    const double ridge = 0.05 * trace / static_cast<double>(d) + 1e-12;
    for (std::size_t i = 0; i < d; ++i) cov[i * d + i] += ridge;

    // In-place lower Cholesky cov = L L^T.
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = cov[i * d + j];
            for (std::size_t k = 0; k < j; ++k) sum -= cov[i * d + k] * cov[j * d + k];
            if (i == j) {
                cov[i * d + i] = std::sqrt(std::max(sum, 1e-300));
            } else {
                cov[i * d + j] = sum / cov[j * d + j];
            }
        }
    }

    // Mahalanobis^2 = ||L^-1 (x - mean)||^2 by forward substitution;
    // log det(cov) = 2 sum ln(L_ii).
    double mahalanobis = 0.0, log_det = 0.0;
    std::vector<double> y(d, 0.0);
    for (std::size_t i = 0; i < d; ++i) {
        double sum = observed[i] - mean[i];
        for (std::size_t k = 0; k < i; ++k) sum -= cov[i * d + k] * y[k];
        y[i] = sum / cov[i * d + i];
        mahalanobis += y[i] * y[i];
        log_det += 2.0 * std::log(cov[i * d + i]);
    }
    return mahalanobis + log_det;
}

}  // namespace

FamilyDetection detect_family(const measure::ExperimentSet& set) {
    FamilyDetection out;

    std::vector<std::vector<double>> groups;
    for (const auto& m : set.measurements()) {
        if (m.values.size() >= 2) groups.push_back(m.values);
    }
    std::vector<std::size_t> profile;
    for (const auto& g : groups) profile.push_back(g.size());

    std::size_t pooled = 0;
    const ShapeStats observed = shape_of(groups, &pooled);
    out.level = noise_model("uniform").estimate_level(set);
    if (pooled < 10 || estimate_noise_raw(set) <= 0.0) return out;  // uniform fallback, score 0

    const double observed_spread = xpcore::stddev(pooled_relative_deviations(set));

    constexpr std::size_t kTrials = 128;
    bool first = true;
    for (const auto& name : registered_families()) {
        const NoiseModel& model = noise_model(name);
        const double level = reference_level(model, profile, observed_spread);

        // Reference distribution of the statistics under this family at its
        // own level estimate, over the set's exact repetition profile. All
        // families share one fixed seed (common random numbers): references
        // of near-identical hypotheses then carry *correlated* Monte-Carlo
        // error, which cancels in the score difference instead of deciding
        // close calls by simulation noise.
        xpcore::Rng rng(0x5EEDFA417EA5ull);

        std::vector<std::vector<double>> trial_stats;
        trial_stats.reserve(kTrials);
        std::vector<std::vector<double>> trial_groups(profile.size());
        for (std::size_t t = 0; t < kTrials; ++t) {
            for (std::size_t g = 0; g < profile.size(); ++g) {
                trial_groups[g] = model.repetitions(1.0, level, profile[g], rng);
            }
            trial_stats.push_back(statistics_vector(shape_of(trial_groups)));
        }
        const double score = reference_nll(trial_stats, statistics_vector(observed));
        out.scores.emplace_back(name, score);
        if (first || score < out.score) {
            out.family = name;
            out.score = score;
            first = false;
        }
    }
    // The reported level is the winner's own (paper-style, range-based)
    // estimate — the reference_level fit above is calibration-internal.
    out.level = noise_model(out.family).estimate_level(set);
    return out;
}

}  // namespace noise
