#include "noise/injector.hpp"

#include <stdexcept>

namespace noise {

Injector::Injector(double level, xpcore::Rng& rng) : level_(level), rng_(rng) {
    if (level < 0.0) throw std::invalid_argument("noise::Injector: negative noise level");
}

double Injector::sample(double true_value) {
    if (level_ == 0.0) return true_value;
    return true_value * (1.0 + rng_.uniform(-level_ / 2.0, level_ / 2.0));
}

std::vector<double> Injector::repetitions(double true_value, std::size_t repetitions) {
    std::vector<double> out(repetitions);
    for (auto& v : out) v = sample(true_value);
    return out;
}

}  // namespace noise
