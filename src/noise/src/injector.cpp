#include "noise/injector.hpp"

#include "xpcore/error.hpp"

namespace noise {

namespace {

double validate_level(double level) {
    if (level < 0.0) {
        throw xpcore::ValidationError({"<noise>", 0, 0, "negative noise level"});
    }
    return level;
}

}  // namespace

Injector::Injector(double level, xpcore::Rng& rng)
    : model_(&noise_model("uniform")), level_(validate_level(level)), rng_(rng) {}

Injector::Injector(const NoiseModel& model, double level, xpcore::Rng& rng)
    : model_(&model), level_(validate_level(level)), rng_(rng) {}

Injector::Injector(std::string_view family, double level, xpcore::Rng& rng)
    : model_(&noise_model(family)), level_(validate_level(level)), rng_(rng) {}

double Injector::sample(double true_value) {
    if (level_ == 0.0) return true_value;
    return model_->sample(true_value, level_, rng_);
}

std::vector<double> Injector::repetitions(double true_value, std::size_t repetitions) {
    std::vector<double> out(repetitions);
    for (auto& v : out) v = sample(true_value);
    return out;
}

}  // namespace noise
