#pragma once

/// \file protocol.hpp
/// The xpdnnd wire protocol: newline-delimited JSON requests/responses.
///
/// One request per line, one response line per request (responses to
/// pipelined requests may arrive out of order — correlate with "id").
/// Documented in docs/FILE_FORMATS.md ("Serving protocol"). Verbs:
///
///   {"verb": "ping"}
///   {"verb": "modelers"}
///   {"verb": "model", "measurements": "<text format>", "modeler": "...",
///    "task": "...", "alternatives": N, "timings": bool,
///    "pretrain_noise": "f1,f2,..."}
///   {"verb": "model", "archive": "<path>", "kernel": "...", "metric": "...",
///    ...}   (model from a server-side measurement file — an "xpdnn.arch"
///   binary archive opens via mmap without parsing; kernel/metric select
///   the entry of a multi-kernel archive)
///   {"verb": "ingest", "archive": "<path>", "measurements": "<text format>",
///    "kernel": "...", "metric": "...", "remodel": bool, ...}   (append a
///   measurement batch to a live binary archive — created when absent,
///   repaired when corrupt — and, with remodel (the default), re-model the
///   touched experiment incrementally)
///   {"verb": "predict", "task": "...", "point": [x1, ...]}
///   {"verb": "store"}                   (persistent-store stats; requires
///   --store=DIR. With "evict": N the oldest entries beyond N are dropped;
///   with "task": "..." the byte-exact stored report is fetched — "report"
///   is the last key, like the model verb)
///   {"verb": "compact", "archive": "<path>"}   (merge the archive's
///   append-only section log: one section per (kernel, metric), text
///   materialization byte-identical; serialized against ingest)
///   {"verb": "sleep", "ms": N}          (diagnostics/testing)
///   {"verb": "shutdown"}
///
/// Every request may carry "id" (any scalar, echoed verbatim) and
/// "deadline_ms" (per-request deadline override, measured from arrival).
/// Success envelope: {"ok": true, "id": ..., "verb": ..., ...payload...}.
/// Failure envelope: {"ok": false, "id": ..., "error":
/// {"code": "...", "message": "..."}} — codes below.

#include <cstddef>
#include <string>
#include <vector>

namespace serve {

/// Version stamped into ping responses; bump on incompatible changes.
inline constexpr int kProtocolVersion = 1;

/// Machine-readable error codes of the failure envelope.
enum class ErrorCode {
    BadRequest,        ///< request decodes but violates protocol shape
    ParseError,        ///< request line or measurements text undecodable
    ValidationError,   ///< semantic rule violated (arity, no model, ...)
    UnknownVerb,
    UnknownModeler,
    UnknownTask,       ///< predict against a task never modeled (or evicted)
    Overloaded,        ///< request queue full — back off and retry (429-style)
    DeadlineExceeded,  ///< spent its deadline queued before a worker got to it
    ShuttingDown,      ///< daemon is draining; no new work accepted
    Internal,
};

/// The wire name of an error code ("overloaded", "parse_error", ...).
const char* error_code_name(ErrorCode code);

/// One decoded request. `id_json` is the raw JSON of the client's "id"
/// scalar ("" when absent) so responses echo it byte-exactly.
struct Request {
    std::string verb;
    std::string id_json;
    std::string modeler = "adaptive";   ///< model: registry name
    std::string task;                   ///< model: cache key; predict: lookup key
    std::string measurements;           ///< model: measurement text format
    std::string archive;                ///< model/ingest: server-side archive path
    std::string kernel;                 ///< model/ingest: archive entry selector
    std::string metric;                 ///< model/ingest: archive entry selector
    std::string pretrain_noise;         ///< model/ingest: pretrain family mix ("" = server default)
    bool remodel = true;                ///< ingest: re-model the touched experiment
    std::vector<double> point;          ///< predict: evaluation coordinate
    std::size_t alternatives = 0;       ///< model: runner-up count
    bool include_timings = true;        ///< model: emit wall-clock timings
    long deadline_ms = -1;              ///< per-request override; -1 = server default
    long sleep_ms = 0;                  ///< sleep: duration
    long evict = -1;                    ///< store: keep-count; -1 = stats only
};

/// Decode one request line. Throws xpcore::ParseError on malformed JSON
/// and xpcore::ValidationError on a structurally invalid request (wrong
/// field type, missing verb, unknown field). The verb itself is NOT
/// validated here — dispatch owns the unknown_verb error so it can still
/// echo the id.
Request parse_request(const std::string& line);

/// Thrown by verb handlers to select a specific error code for the
/// failure envelope (exceptions with fixed mappings — ParseError,
/// ValidationError — are caught directly by the dispatcher).
struct ProtocolFault {
    ErrorCode code;
    std::string message;
};

/// Build the failure envelope (single line, no trailing newline).
std::string error_response(ErrorCode code, const std::string& message,
                           const std::string& id_json);

/// Start the success envelope: `{"ok": true, "id": ..., "verb": "..."` —
/// callers append `, "key": value` pairs and close with '}'.
std::string ok_response_prefix(const std::string& verb, const std::string& id_json);

}  // namespace serve
