#pragma once

/// \file daemon.hpp
/// The xpdnnd daemon entry point, shared by the standalone `xpdnnd`
/// binary and the `xpdnn serve` CLI verb.
///
/// Builds a ServerConfig from CLI flags, installs SIGTERM/SIGINT handlers
/// that begin a graceful drain (Server::request_stop is async-signal-safe),
/// announces the bound port on stdout, and blocks until the drain
/// completes.
///
/// Flags:
///   --port=N           listening port (default 0 = ephemeral, announced)
///   --workers=N        worker threads / resident sessions (default 1)
///   --queue=N          request queue capacity (default 64)
///   --deadline-ms=N    default per-request queue deadline (default 30000)
///   --cache=N          report cache capacity for predict (default 128)
///   --no-warm          skip pretraining the sessions before serving
///   --seed=N, --net=PROFILE, ... (modeling::Options::from_args)
///   --drain-after-ms=N self-initiated drain timer (tests/smoke runs)

#include <iosfwd>

namespace xpcore {
class CliArgs;
}

namespace serve {

/// Run the daemon until drained. Returns a process exit code.
int daemon_main(const xpcore::CliArgs& args, std::ostream& out, std::ostream& err);

}  // namespace serve
