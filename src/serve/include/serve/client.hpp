#pragma once

/// \file client.hpp
/// Minimal blocking client for the xpdnnd protocol.
///
/// One connection, newline-delimited JSON both ways. request() is the
/// common path (send one line, wait for one line); send()/read_response()
/// are split out so tests and the throughput harness can pipeline several
/// requests before reading any response.

#include <cstdint>
#include <string>

#include "xpcore/net.hpp"

namespace serve {

class Client {
public:
    /// Connect to the daemon on 127.0.0.1:`port`. Throws on refusal.
    explicit Client(std::uint16_t port, int timeout_ms = 5000);

    /// Send one request line (the '\n' is appended). Throws when the
    /// connection is gone.
    void send(const std::string& line);

    /// Read the next response line, waiting up to `timeout_ms` (-1 =
    /// forever). Throws on EOF or timeout.
    std::string read_response(int timeout_ms = -1);

    /// send() + read_response().
    std::string request(const std::string& line, int timeout_ms = -1);

    int fd() const { return socket_.fd(); }

private:
    xpcore::net::Socket socket_;
    xpcore::net::LineReader reader_;
};

}  // namespace serve
