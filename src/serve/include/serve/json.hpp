#pragma once

/// \file json.hpp
/// A small generic JSON value parser for the serving protocol.
///
/// The repository's other JSON parsers (report.hpp, pmnf/serialize.hpp)
/// are schema-directed: they know every key up front. Protocol requests
/// are client-authored and open-ended (ids of any scalar type, optional
/// fields), so the daemon parses them into a generic value tree first and
/// validates shape afterwards. Same strictness discipline as the rest of
/// the tree: locale-independent numbers (xpcore/parse.hpp), ASCII-only
/// \u escapes, and every failure is an xpcore::ParseError whose
/// Diagnostic carries line:column of the offending byte.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace serve {

/// One parsed JSON value. Object member order is preserved.
class JsonValue {
public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool bool_value = false;
    double number_value = 0.0;
    std::string string_value;
    std::vector<JsonValue> items;                               ///< Kind::Array
    std::vector<std::pair<std::string, JsonValue>> members;     ///< Kind::Object

    bool is_null() const { return kind == Kind::Null; }
    bool is_bool() const { return kind == Kind::Bool; }
    bool is_number() const { return kind == Kind::Number; }
    bool is_string() const { return kind == Kind::String; }
    bool is_array() const { return kind == Kind::Array; }
    bool is_object() const { return kind == Kind::Object; }

    /// Member lookup (objects only); nullptr when absent.
    const JsonValue* find(const std::string& key) const;
};

/// Parse one complete JSON document (trailing characters are an error).
/// Throws xpcore::ParseError with `source` and line:column on malformed
/// input.
JsonValue parse_json(const std::string& text, const std::string& source = "<request>");

/// Serialize a scalar value back to JSON (used to echo request ids
/// verbatim). Arrays/objects are not supported — protocol ids are scalars.
std::string scalar_to_json(const JsonValue& value);

/// Escape + quote a string for embedding in a JSON document.
std::string json_quote(const std::string& text);

}  // namespace serve
