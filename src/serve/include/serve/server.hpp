#pragma once

/// \file server.hpp
/// xpdnnd: the long-lived modeling daemon.
///
/// One IO thread multiplexes a loopback TCP listener and all client
/// connections with poll(); complete request lines are decoded
/// (serve/protocol.hpp) and pushed onto a bounded queue. A fixed pool of
/// worker threads — each owning its own modeling::Session, so the
/// session's snapshot/restore discipline keeps results independent of
/// request order and of which worker serves a request — pops requests,
/// dispatches verbs, and writes one response line per request under a
/// per-connection write mutex (responses to pipelined requests may
/// therefore arrive out of order; clients correlate with "id").
///
/// A request carrying "pretrain_noise" selects a worker-local Session
/// variant pretrained with that family mix (materialized on first use,
/// bounded FIFO per worker; the disk pretrain cache makes re-opening a mix
/// cheap). "ingest" appends to a live binary archive (serialized by a
/// server-wide mutex so concurrent batches cannot drop each other's
/// commits) and re-models the touched experiment on the worker's session.
///
/// Backpressure and liveness guarantees:
///   - queue full        → "overloaded" error written immediately (429-style)
///   - queued too long   → "deadline_exceeded" instead of stale work
///   - request_stop()    → async-signal-safe graceful drain: stop accepting,
///                         finish queued + in-flight requests, flush, exit
///
/// Reports for requests that carry a "task" key are cached (hash-map index,
/// bounded FIFO eviction) so "predict" is served without re-modeling. With
/// `store_dir` set (xpdnnd --store=DIR) every cached task is also
/// write-through-persisted to an xpcore::store::Store — report + model JSON
/// in one blob — so "predict" survives a daemon restart byte-identically:
/// a memory miss falls back to the store and re-parses the model. The
/// "store" verb exposes stats/evict/fetch; "compact" merges the section
/// log of a long-lived ingest archive (one section per (kernel, metric)).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "measure/experiment.hpp"
#include "modeling/session.hpp"
#include "serve/protocol.hpp"
#include "xpcore/net.hpp"
#include "xpcore/store.hpp"

namespace serve {

struct ServerConfig {
    std::uint16_t port = 0;            ///< 0 = ephemeral (read back via bound_port)
    std::size_t workers = 1;           ///< worker threads == resident Sessions
    std::size_t queue_capacity = 64;   ///< pending requests before "overloaded"
    long default_deadline_ms = 30'000; ///< max queue wait; overridable per request
    std::size_t report_cache_capacity = 128;  ///< tasks kept for "predict"
    std::size_t max_line_bytes = 8u << 20;    ///< request line cap; exceeding closes
    bool warm_start = false;           ///< pretrain sessions before serving
    std::string store_dir;             ///< persistent report store dir; "" = memory only
    std::size_t store_capacity = 0;    ///< persistent store entry cap; 0 = unbounded
    modeling::Options options;         ///< every worker session's configuration
};

/// Counters for observability and tests. Snapshot via Server::stats().
struct ServerStats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t requests_ok = 0;
    std::uint64_t requests_failed = 0;     ///< error envelopes (all codes)
    std::uint64_t rejected_overload = 0;
    std::uint64_t rejected_deadline = 0;
};

class Server {
public:
    /// Bind, listen, and start the IO + worker threads. Throws
    /// xpcore::Error when the port cannot be bound.
    explicit Server(ServerConfig config);

    /// Drains (request_stop + wait) if still running.
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// The actually-bound listening port.
    std::uint16_t bound_port() const { return bound_port_; }

    /// Begin a graceful drain. Async-signal-safe (atomic store + pipe
    /// write) — this is the SIGTERM/SIGINT hook. Idempotent.
    void request_stop();

    /// Block until the drain completes and all threads have exited.
    void wait();

    /// request_stop() + wait().
    void stop();

    /// True once a drain has been requested.
    bool stopping() const { return stop_requested_.load(std::memory_order_acquire); }

    ServerStats stats() const;

private:
    struct Connection {
        explicit Connection(xpcore::net::Socket s) : socket(std::move(s)) {}
        xpcore::net::Socket socket;
        std::mutex write_mutex;
        std::string input;  ///< bytes read but not yet terminated by '\n'
        bool closed = false;
    };
    using ConnectionPtr = std::shared_ptr<Connection>;

    struct WorkItem {
        ConnectionPtr conn;
        Request request;
        std::chrono::steady_clock::time_point arrival;
    };

    /// A modeled task retained for "predict".
    struct CachedModel {
        pmnf::Model model;
        std::size_t arity = 0;
    };

    /// One worker's modeling state: the default-configured session plus
    /// lazily-materialized variants for requests that override the
    /// pretraining noise mix (key: the canonical family list).
    struct WorkerState {
        explicit WorkerState(const modeling::Options& options) : base(options) {}
        modeling::Session base;
        std::vector<std::pair<std::string, std::unique_ptr<modeling::Session>>> variants;
    };

    void io_main();
    void worker_main(std::size_t index);
    void handle_line(const ConnectionPtr& conn, const std::string& line);
    void dispatch(WorkerState& state, const WorkItem& item);
    void respond(const ConnectionPtr& conn, const std::string& body);

    /// The session serving this request: `state.base` unless the request
    /// names a pretrain_noise mix. Throws ProtocolFault (validation_error)
    /// for an unregistered family.
    modeling::Session& session_for(WorkerState& state, const Request& request);

    /// The measurement set a model/ingest request names: inline
    /// "measurements" text, or a server-side archive file (mmap for
    /// binary), with kernel/metric selecting a multi-kernel entry.
    measure::ExperimentSet resolve_measurements(const Request& request) const;

    std::string handle_model(WorkerState& state, const Request& request);
    std::string handle_ingest(WorkerState& state, const Request& request);
    std::string handle_predict(const Request& request);
    std::string handle_modelers(modeling::Session& session, const Request& request);
    std::string handle_store(const Request& request);
    std::string handle_compact(const Request& request);

    /// Insert/replace the task's cached model for "predict" and, with a
    /// persistent store configured, write-through the report + model JSON.
    void cache_model(const std::string& task, const pmnf::Model& model, std::size_t arity,
                     const std::string& report_json);

    /// Memory-only insert (used when re-hydrating from the store).
    void cache_model_memory(const std::string& task, CachedModel cached);

    /// Look `task` up in the persistent store, re-parse the model, and
    /// report the arity + report bytes. False on a miss (or no store).
    bool load_stored(const std::string& task, CachedModel* out, std::string* report_json);

    ServerConfig config_;
    xpcore::net::Socket listener_;
    std::uint16_t bound_port_ = 0;
    xpcore::net::WakePipe wake_;

    std::atomic<bool> stop_requested_{false};

    std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<WorkItem> queue_;
    bool draining_ = false;  ///< set under queue_mutex_ once the IO thread stops feeding

    std::mutex cache_mutex_;
    std::deque<std::string> cache_order_;  ///< FIFO eviction order
    std::unordered_map<std::string, CachedModel> cache_;  ///< O(1) task index
    std::unique_ptr<xpcore::store::Store> store_;  ///< null without --store

    std::mutex warm_mutex_;  ///< serializes warm-start pretraining across workers
    std::mutex ingest_mutex_;  ///< serializes archive append commits across workers

    std::atomic<std::uint64_t> connections_accepted_{0};
    std::atomic<std::uint64_t> requests_ok_{0};
    std::atomic<std::uint64_t> requests_failed_{0};
    std::atomic<std::uint64_t> rejected_overload_{0};
    std::atomic<std::uint64_t> rejected_deadline_{0};

    std::thread io_thread_;
    std::vector<std::thread> workers_;
    std::mutex join_mutex_;  ///< wait() may be called from several threads
    bool joined_ = false;
};

}  // namespace serve
