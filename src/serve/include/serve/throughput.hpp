#pragma once

/// \file throughput.hpp
/// Closed-loop throughput/latency measurement of the xpdnnd daemon.
///
/// Starts an in-process Server, seeds its report cache with one modeled
/// task, then drives it with C concurrent client connections issuing
/// round-trip requests (predict against the cached task by default).
/// Per-request latencies are recorded client-side; the result carries
/// req/s plus the p50/p90/p99/max percentiles and evaluates the
/// acceptance gates recorded in BENCH_serve.json.

#include <cstddef>
#include <string>

#include "modeling/session.hpp"

namespace serve {

struct ThroughputConfig {
    std::size_t connections = 4;              ///< concurrent client threads
    std::size_t requests_per_connection = 500;
    std::size_t workers = 2;                  ///< daemon worker threads
    std::string verb = "predict";             ///< "predict" or "ping"
    modeling::Options options;                ///< daemon session options
    double min_rps = 500.0;                   ///< acceptance gate (0 = off)
    double max_p99_ms = 0.0;                  ///< acceptance gate (0 = off)
};

struct ThroughputResult {
    std::size_t requests = 0;   ///< completed round-trips
    std::size_t failures = 0;   ///< non-ok responses (gate: must be 0)
    double seconds = 0.0;       ///< wall-clock of the measurement window
    double rps = 0.0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;

    bool rps_ok = true;   ///< rps >= min_rps (or gate off)
    bool p99_ok = true;   ///< p99 <= max_p99_ms (or gate off)
    bool ok() const { return rps_ok && p99_ok && failures == 0; }
};

/// Run the measurement. Throws on setup failures (bind, connect, seeding
/// the model); per-request failures are counted, not thrown.
ThroughputResult run_throughput(const ThroughputConfig& config);

/// Write BENCH_serve.json: machine provenance (shared with BENCH_nn.json),
/// the configuration, the measured numbers, and the gate verdicts.
void write_bench_json(const ThroughputConfig& config, const ThroughputResult& result,
                      const std::string& path);

}  // namespace serve
