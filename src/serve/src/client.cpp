#include "serve/client.hpp"

#include <stdexcept>

namespace serve {

Client::Client(std::uint16_t port, int timeout_ms)
    : socket_(xpcore::net::connect_tcp(port, timeout_ms)), reader_(socket_.fd()) {}

void Client::send(const std::string& line) {
    if (!xpcore::net::send_all(socket_.fd(), line + "\n")) {
        throw std::runtime_error("serve::Client: connection closed while sending");
    }
}

std::string Client::read_response(int timeout_ms) {
    std::string line;
    if (!reader_.read_line(line, timeout_ms)) {
        throw std::runtime_error("serve::Client: no response (connection closed or timeout)");
    }
    return line;
}

std::string Client::request(const std::string& line, int timeout_ms) {
    send(line);
    return read_response(timeout_ms);
}

}  // namespace serve
